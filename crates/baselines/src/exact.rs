//! Exact ground-truth oracle: BFS on `G ∖ F` per query.
//!
//! This is the comparator for every stretch measurement, and also the
//! "no preprocessing" baseline for query-time comparisons: `O(m)` per query
//! with full access to the graph, versus the labeling scheme's
//! `O(1+ε⁻¹)^{2α}|F|² log n` from `|F| + 2` labels.

use fsdl_graph::{bfs, Dist, FaultSet, Graph, NodeId};

/// The exact forbidden-set distance oracle (stretch 1, full graph access).
///
/// # Examples
///
/// ```
/// use fsdl_baselines::ExactOracle;
/// use fsdl_graph::{generators, FaultSet, NodeId};
///
/// let g = generators::cycle(10);
/// let oracle = ExactOracle::new(&g);
/// let f = FaultSet::from_vertices([NodeId::new(1)]);
/// assert_eq!(
///     oracle.distance(NodeId::new(0), NodeId::new(2), &f).finite(),
///     Some(8)
/// );
/// ```
#[derive(Clone, Debug)]
pub struct ExactOracle {
    graph: Graph,
}

impl ExactOracle {
    /// Wraps a graph (clones the CSR arrays).
    pub fn new(g: &Graph) -> Self {
        ExactOracle { graph: g.clone() }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Exact `d_{G∖F}(s, t)` by early-exit BFS.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn distance(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> Dist {
        bfs::pair_distance_avoiding(&self.graph, s, t, faults)
    }

    /// Exact distances from `s` to every vertex in `G ∖ F`.
    pub fn distances_from(&self, s: NodeId, faults: &FaultSet) -> Vec<Dist> {
        bfs::distances_avoiding(&self.graph, s, faults)
    }

    /// Exact connectivity in `G ∖ F`.
    pub fn connected(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> bool {
        self.distance(s, t, faults).is_finite()
    }

    /// One shortest `s → t` path in `G ∖ F`, if any.
    pub fn shortest_path(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> Option<Vec<NodeId>> {
        bfs::shortest_path_avoiding(&self.graph, s, t, faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;

    #[test]
    fn matches_direct_bfs() {
        let g = generators::grid2d(5, 5);
        let oracle = ExactOracle::new(&g);
        let f = FaultSet::from_vertices([NodeId::new(12)]);
        let all = oracle.distances_from(NodeId::new(0), &f);
        for t in g.vertices() {
            assert_eq!(oracle.distance(NodeId::new(0), t, &f), all[t.index()]);
        }
    }

    #[test]
    fn connectivity_and_paths() {
        let g = generators::path(7);
        let oracle = ExactOracle::new(&g);
        let f = FaultSet::from_vertices([NodeId::new(3)]);
        assert!(!oracle.connected(NodeId::new(0), NodeId::new(6), &f));
        assert!(oracle
            .shortest_path(NodeId::new(0), NodeId::new(6), &f)
            .is_none());
        let p = oracle
            .shortest_path(NodeId::new(0), NodeId::new(2), &f)
            .unwrap();
        assert_eq!(p.len(), 3);
    }
}
