//! Exact 2-hop (hub) distance labels — the road-network state of the art
//! the paper wants to extend.
//!
//! The paper's applications section points at hub labels (Abraham, Delling,
//! Goldberg, Werneck; SEA 2011/2014) as "currently the fastest way to
//! compute distances on content-scale road networks" and proposes that the
//! forbidden-set machinery "extend the notion of hub labels to allow
//! dynamic and forbidden-set distance labels". This module implements the
//! standard *failure-free* hub labeling via pruned landmark labeling
//! (Akiba, Iwata, Yoshida; SIGMOD 2013): each vertex stores a list of
//! `(hub, distance)` pairs such that every shortest path is covered by a
//! common hub; queries are exact and take `O(|L(u)| + |L(v)|)` time on
//! sorted labels.
//!
//! It serves the evaluation as the "what the paper wants to generalize"
//! baseline: exact and tiny on low-highway-dimension graphs, but with *no*
//! fault tolerance — under `F ≠ ∅` its answers are wrong exactly like the
//! fault-oblivious baseline, which is the gap the forbidden-set scheme
//! fills.

use std::collections::VecDeque;

use fsdl_graph::{Dist, Graph, NodeId};
use fsdl_nets::{ceil_log2, NetHierarchy};

/// The hub label of one vertex: sorted `(hub, distance)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HubLabel {
    /// `(hub, d_G(owner, hub))`, sorted by hub id for merge-joins.
    pub hubs: Vec<(NodeId, u32)>,
}

impl HubLabel {
    /// Number of hub entries.
    pub fn len(&self) -> usize {
        self.hubs.len()
    }

    /// `true` when no hubs are stored.
    pub fn is_empty(&self) -> bool {
        self.hubs.is_empty()
    }

    /// Label size in bits (`⌈log n⌉` per id and per distance).
    pub fn bits(&self, n: usize) -> usize {
        self.hubs.len() * 2 * ceil_log2(n).max(1) as usize
    }
}

/// An exact failure-free 2-hop labeling built by pruned landmark labeling.
///
/// # Examples
///
/// ```
/// use fsdl_baselines::HubLabeling;
/// use fsdl_graph::{generators, NodeId};
///
/// let g = generators::grid2d(5, 5);
/// let hl = HubLabeling::build(&g);
/// let d = HubLabeling::query(&hl.label_of(NodeId::new(0)), &hl.label_of(NodeId::new(24)));
/// assert_eq!(d.finite(), Some(8));
/// ```
#[derive(Clone, Debug)]
pub struct HubLabeling {
    labels: Vec<HubLabel>,
}

impl HubLabeling {
    /// Builds the labeling: landmarks ordered by net-hierarchy level
    /// (coarsest net points first — central at every scale, which keeps
    /// labels logarithmic on paths and meshes where plain degree ordering
    /// degenerates), ties broken by degree then id; each landmark runs a
    /// pruned BFS.
    ///
    /// # Panics
    ///
    /// Panics if `g` is empty.
    pub fn build(g: &Graph) -> Self {
        let n = g.num_vertices();
        assert!(n > 0, "hub labeling needs a nonempty graph");
        let nets = NetHierarchy::build(g);
        let mut order: Vec<NodeId> = g.vertices().collect();
        order.sort_by_key(|&v| {
            (
                std::cmp::Reverse(nets.level_of(v)),
                std::cmp::Reverse(g.degree(v)),
                v,
            )
        });
        let mut labels = vec![HubLabel::default(); n];
        let mut dist = vec![u32::MAX; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut queue = VecDeque::new();
        for &landmark in &order {
            // Pruned BFS from the landmark.
            queue.clear();
            dist[landmark.index()] = 0;
            touched.push(landmark.index());
            queue.push_back(landmark);
            while let Some(u) = queue.pop_front() {
                let du = dist[u.index()];
                // Prune: if the existing labels already certify
                // d(landmark, u) <= du, u's subtree gains nothing.
                let certified = Self::query(&labels[landmark.index()], &labels[u.index()]);
                if certified.finite().is_some_and(|c| c <= du) {
                    continue;
                }
                Self::insert_hub(&mut labels[u.index()], landmark, du);
                for w in g.neighbor_ids(u) {
                    if dist[w.index()] == u32::MAX {
                        dist[w.index()] = du + 1;
                        touched.push(w.index());
                        queue.push_back(w);
                    }
                }
            }
            for &k in &touched {
                dist[k] = u32::MAX;
            }
            touched.clear();
        }
        HubLabeling { labels }
    }

    fn insert_hub(label: &mut HubLabel, hub: NodeId, d: u32) {
        match label.hubs.binary_search_by_key(&hub, |&(h, _)| h) {
            Ok(k) => label.hubs[k].1 = label.hubs[k].1.min(d),
            Err(k) => label.hubs.insert(k, (hub, d)),
        }
    }

    /// The label of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_of(&self, v: NodeId) -> HubLabel {
        self.labels[v.index()].clone()
    }

    /// Exact `d_G(u, v)` by a sorted merge-join over the two labels.
    pub fn query(a: &HubLabel, b: &HubLabel) -> Dist {
        let mut best = Dist::INFINITE;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.hubs.len() && j < b.hubs.len() {
            let (ha, da) = a.hubs[i];
            let (hb, db) = b.hubs[j];
            match ha.cmp(&hb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let sum = Dist::new(da).saturating_add_raw(db);
                    if sum < best {
                        best = sum;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Mean and max label entries over all vertices.
    pub fn size_stats(&self) -> (f64, usize) {
        let total: usize = self.labels.iter().map(HubLabel::len).sum();
        let max = self.labels.iter().map(HubLabel::len).max().unwrap_or(0);
        (total as f64 / self.labels.len() as f64, max)
    }

    /// Mean label bits.
    pub fn mean_bits(&self, n: usize) -> f64 {
        let total: usize = self.labels.iter().map(|l| l.bits(n)).sum();
        total as f64 / self.labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::{bfs, generators, FaultSet};

    fn check_exact(g: &Graph) {
        let hl = HubLabeling::build(g);
        for s in g.vertices() {
            let truth = bfs::distances(g, s);
            let ls = hl.label_of(s);
            for t in g.vertices() {
                let d = HubLabeling::query(&ls, &hl.label_of(t));
                assert_eq!(d, truth[t.index()], "{s}->{t}");
            }
        }
    }

    #[test]
    fn exact_on_standard_families() {
        check_exact(&generators::path(20));
        check_exact(&generators::cycle(15));
        check_exact(&generators::grid2d(6, 6));
        check_exact(&generators::balanced_tree(3, 3));
        check_exact(&generators::random_geometric(60, 0.2, 3));
        check_exact(&generators::complete(8));
    }

    #[test]
    fn exact_on_disconnected() {
        let mut b = fsdl_graph::GraphBuilder::new(6);
        b.add_edges([(0, 1), (2, 3)]).unwrap();
        let g = b.build();
        let hl = HubLabeling::build(&g);
        assert!(
            HubLabeling::query(&hl.label_of(NodeId::new(0)), &hl.label_of(NodeId::new(3)))
                .is_infinite()
        );
        assert_eq!(
            HubLabeling::query(&hl.label_of(NodeId::new(2)), &hl.label_of(NodeId::new(3))).finite(),
            Some(1)
        );
    }

    #[test]
    fn pruning_keeps_labels_small() {
        // On a path, PLL with degree order gives O(log n)-ish labels.
        let g = generators::path(256);
        let hl = HubLabeling::build(&g);
        let (mean, max) = hl.size_stats();
        assert!(mean <= 24.0, "mean label entries {mean}");
        assert!(max <= 48, "max label entries {max}");
    }

    #[test]
    fn labels_sorted_by_hub() {
        let g = generators::grid2d(5, 5);
        let hl = HubLabeling::build(&g);
        for v in g.vertices() {
            let l = hl.label_of(v);
            assert!(l.hubs.windows(2).all(|w| w[0].0 < w[1].0));
            // Every vertex has itself or a dominating hub at the right
            // distance; at minimum, distance 0 to itself via some hub chain.
            assert_eq!(HubLabeling::query(&l, &l).finite(), Some(0));
        }
    }

    #[test]
    fn oblivious_to_faults_by_design() {
        // The contrast the evaluation draws: hub labels ignore F.
        let g = generators::cycle(20);
        let hl = HubLabeling::build(&g);
        let wrong = HubLabeling::query(&hl.label_of(NodeId::new(0)), &hl.label_of(NodeId::new(2)));
        // True surviving distance with v1 failed is 18; hub labels say 2.
        let f = FaultSet::from_vertices([NodeId::new(1)]);
        let truth = bfs::pair_distance_avoiding(&g, NodeId::new(0), NodeId::new(2), &f);
        assert_eq!(wrong.finite(), Some(2));
        assert_eq!(truth.finite(), Some(18));
    }

    #[test]
    fn deterministic() {
        let g = generators::random_geometric(80, 0.18, 5);
        let a = HubLabeling::build(&g);
        let b = HubLabeling::build(&g);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn single_vertex() {
        let g = fsdl_graph::GraphBuilder::new(1).build();
        let hl = HubLabeling::build(&g);
        assert_eq!(
            HubLabeling::query(&hl.label_of(NodeId::new(0)), &hl.label_of(NodeId::new(0))).finite(),
            Some(0)
        );
    }
}
