//! # fsdl-baselines — comparators for the fsdl evaluation
//!
//! Every experiment in the workspace compares the forbidden-set labeling
//! scheme against at least one of:
//!
//! * [`ExactOracle`] — ground truth `d_{G∖F}` by BFS (stretch 1, full graph
//!   access, `O(m)` per query);
//! * [`FaultObliviousBaseline`] — failure-free labels that ignore `F`
//!   (fast and small, but answers are wrong under faults);
//! * [`RebuildOracle`] — rebuild-the-labeling-on-every-failure (correct,
//!   but pays full preprocessing per fault-set change — the recovery delay
//!   the paper's scheme eliminates);
//! * [`TreeLabeling`] — exact forbidden-set labels for trees via centroid
//!   decomposition: the treewidth-1 case of Courcelle–Twigg (STACS 2007),
//!   the predecessor the paper generalizes;
//! * [`HubLabeling`] — exact failure-free 2-hop labels via pruned landmark
//!   labeling: the road-network state of the art the paper's applications
//!   section wants to make fault-tolerant.
//!
//! ## Example
//!
//! ```
//! use fsdl_baselines::ExactOracle;
//! use fsdl_graph::{generators, FaultSet, NodeId};
//!
//! let g = generators::grid2d(4, 4);
//! let exact = ExactOracle::new(&g);
//! let f = FaultSet::from_vertices([NodeId::new(5)]);
//! assert_eq!(exact.distance(NodeId::new(0), NodeId::new(15), &f).finite(), Some(6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exact;
mod hub_labels;
mod naive;
mod tree_labels;

pub use exact::ExactOracle;
pub use hub_labels::{HubLabel, HubLabeling};
pub use naive::{FaultObliviousBaseline, RebuildOracle};
pub use tree_labels::{TreeLabel, TreeLabeling, TreeOracle};
