//! Negative and cost-model baselines.
//!
//! * [`FaultObliviousBaseline`] — failure-free `(1+ε)` labels that simply
//!   *ignore* the forbidden set: demonstrates why fault-oblivious labels
//!   are not enough (their answers can undershoot `d_{G∖F}` by an unbounded
//!   factor — experiment `exp_t1` quantifies this).
//! * [`RebuildOracle`] — the "recompute on failure" strawman: on every
//!   change of the forbidden set, rebuild a failure-free labeling of
//!   `G ∖ F` from scratch, then answer at stretch `1+ε`. Answers are as good
//!   as the forbidden-set scheme's, but each fault-set change costs a full
//!   preprocessing pass — exactly the recovery delay the paper's scheme
//!   eliminates.

use fsdl_graph::subgraph::{self, Subgraph};
use fsdl_graph::{Dist, FaultSet, Graph, NodeId};
use fsdl_labels::failure_free::{query_failure_free, FailureFreeLabeling};

/// Failure-free labels that ignore `F` (returns `d_G`-based estimates, not
/// `d_{G∖F}`): the negative baseline.
#[derive(Clone, Debug)]
pub struct FaultObliviousBaseline {
    graph: Graph,
    epsilon: f64,
}

impl FaultObliviousBaseline {
    /// Builds the oblivious baseline at precision `epsilon`.
    pub fn new(g: &Graph, epsilon: f64) -> Self {
        FaultObliviousBaseline {
            graph: g.clone(),
            epsilon,
        }
    }

    /// Answers the query while *ignoring* the forbidden set — a
    /// `(1+ε)`-approximation of `d_G(s,t)`, which can be arbitrarily smaller
    /// than `d_{G∖F}(s,t)`.
    pub fn distance_ignoring_faults(&self, s: NodeId, t: NodeId, _faults: &FaultSet) -> Dist {
        let ff = FailureFreeLabeling::build(&self.graph, self.epsilon);
        query_failure_free(&ff.label_of(s), &ff.label_of(t))
    }
}

/// The rebuild-on-failure strawman: stretch-`(1+ε)` answers, but every
/// fault-set change triggers a full relabeling of `G ∖ F`.
#[derive(Debug)]
pub struct RebuildOracle {
    graph: Graph,
    epsilon: f64,
    /// The fault set the cached labeling was built for.
    cached_faults: Option<FaultSet>,
    cached_base: Option<Subgraph>,
    rebuilds: usize,
}

impl RebuildOracle {
    /// Creates the oracle at precision `epsilon`.
    pub fn new(g: &Graph, epsilon: f64) -> Self {
        RebuildOracle {
            graph: g.clone(),
            epsilon,
            cached_faults: None,
            cached_base: None,
            rebuilds: 0,
        }
    }

    /// Number of full rebuilds performed so far (the cost this baseline
    /// pays and the forbidden-set scheme avoids).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Answers `(s, t, F)`: rebuilds the failure-free labeling of `G ∖ F`
    /// if `F` differs from the cached fault set, then queries it.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn distance(&mut self, s: NodeId, t: NodeId, faults: &FaultSet) -> Dist {
        assert!(
            self.graph.contains(s) && self.graph.contains(t),
            "query vertex out of range"
        );
        if self.cached_faults.as_ref() != Some(faults) {
            self.cached_base = Some(subgraph::remove_faults(&self.graph, faults));
            self.cached_faults = Some(faults.clone());
            self.rebuilds += 1;
        }
        let base = self.cached_base.as_ref().expect("cached above");
        let (Some(bs), Some(bt)) = (base.map(s), base.map(t)) else {
            return Dist::INFINITE;
        };
        if base.graph.num_vertices() == 0 {
            return Dist::INFINITE;
        }
        let ff = FailureFreeLabeling::build(&base.graph, self.epsilon);
        query_failure_free(&ff.label_of(bs), &ff.label_of(bt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;

    #[test]
    fn oblivious_baseline_underestimates_under_faults() {
        let g = generators::cycle(30);
        let baseline = FaultObliviousBaseline::new(&g, 0.5);
        let f = FaultSet::from_vertices([NodeId::new(1)]);
        let wrong = baseline
            .distance_ignoring_faults(NodeId::new(0), NodeId::new(2), &f)
            .finite()
            .unwrap();
        // Truth in G \ F is 28 (the long way); the oblivious answer stays
        // near d_G = 2.
        assert!(wrong <= 3, "oblivious baseline should ignore the fault");
    }

    #[test]
    fn rebuild_oracle_is_correct_but_rebuilds() {
        let g = generators::cycle(20);
        let mut oracle = RebuildOracle::new(&g, 0.5);
        let f1 = FaultSet::from_vertices([NodeId::new(1)]);
        let d = oracle
            .distance(NodeId::new(0), NodeId::new(2), &f1)
            .finite()
            .unwrap();
        assert!(d >= 18);
        assert!(f64::from(d) <= 18.0 * 1.5 + 1e-9);
        assert_eq!(oracle.rebuilds(), 1);
        // Same fault set: no rebuild.
        let _ = oracle.distance(NodeId::new(0), NodeId::new(5), &f1);
        assert_eq!(oracle.rebuilds(), 1);
        // New fault set: rebuild.
        let f2 = FaultSet::from_vertices([NodeId::new(3)]);
        let _ = oracle.distance(NodeId::new(0), NodeId::new(5), &f2);
        assert_eq!(oracle.rebuilds(), 2);
    }

    #[test]
    fn rebuild_oracle_detects_disconnection() {
        let g = generators::path(9);
        let mut oracle = RebuildOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(4)]);
        assert!(oracle
            .distance(NodeId::new(0), NodeId::new(8), &f)
            .is_infinite());
        assert!(oracle
            .distance(NodeId::new(4), NodeId::new(8), &f)
            .is_infinite());
    }
}
