//! Exact forbidden-set distance labels for **trees** — the
//! Courcelle–Twigg comparison point.
//!
//! The paper extends the forbidden-set paradigm of Courcelle & Twigg
//! (STACS 2007) from *exact distances on bounded treewidth* to *approximate
//! distances on bounded doubling dimension*. This module implements the
//! treewidth-1 case of the predecessor exactly, as a concrete related-work
//! baseline: on a tree, centroid-decomposition labels of `O(log² n)` bits
//! answer forbidden-set distance queries *exactly*:
//!
//! * every vertex stores its `O(log n)` centroid ancestors with exact
//!   distances;
//! * `d_T(u, v) = min over shared centroids c of d(u,c) + d(c,v)` (every
//!   `u–v` path crosses their topmost common centroid);
//! * a vertex `f` lies on the unique `s–t` path iff
//!   `d(s,f) + d(f,t) = d(s,t)`, and an edge `(a,b)` lies on it iff both
//!   endpoints do — all computable from the labels of `s`, `t`, `F` alone,
//!   so `d_{T∖F}(s,t)` is `d_T(s,t)` when no forbidden element lies on the
//!   path and `∞` otherwise.
//!
//! The `exp_t9_related` experiment compares these (tiny, exact) labels with
//! the doubling-dimension scheme on tree workloads.

use fsdl_graph::{connectivity, Dist, FaultSet, Graph, NodeId};

/// A centroid-decomposition label: the vertex's centroid ancestors with
/// exact distances, ordered from the topmost (whole-tree) centroid down.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeLabel {
    /// The vertex this label belongs to.
    pub owner: NodeId,
    /// `(centroid, d_T(owner, centroid))` pairs, topmost first.
    pub ancestors: Vec<(NodeId, u32)>,
}

impl TreeLabel {
    /// Label size in bits: each entry is a `⌈log n⌉`-bit id plus a
    /// `⌈log n⌉`-bit distance.
    pub fn bits(&self, n: usize) -> usize {
        let w = fsdl_nets_ceil_log2(n).max(1) as usize;
        self.ancestors.len() * 2 * w
    }
}

// Local copy to avoid a dependency edge just for one helper.
fn fsdl_nets_ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// The exact forbidden-set distance labeling for trees.
///
/// # Examples
///
/// ```
/// use fsdl_baselines::TreeLabeling;
/// use fsdl_graph::{generators, FaultSet, NodeId};
///
/// let t = generators::balanced_tree(2, 3);
/// let scheme = TreeLabeling::build(&t);
/// let ls = scheme.label_of(NodeId::new(7));
/// let lt = scheme.label_of(NodeId::new(8));
/// let d = TreeLabeling::query(&ls, &lt, &[]);
/// assert_eq!(d.finite(), Some(2)); // siblings under vertex 3
/// ```
#[derive(Clone, Debug)]
pub struct TreeLabeling {
    labels: Vec<TreeLabel>,
}

impl TreeLabeling {
    /// Builds the centroid decomposition of `tree` and all labels.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not a tree (connected, `m = n − 1`) or is empty.
    pub fn build(tree: &Graph) -> Self {
        let n = tree.num_vertices();
        assert!(n > 0, "tree must be nonempty");
        assert!(
            tree.num_edges() == n - 1 && connectivity::is_connected(tree),
            "input must be a connected tree"
        );
        let mut labels: Vec<TreeLabel> = tree
            .vertices()
            .map(|v| TreeLabel {
                owner: v,
                ancestors: Vec::new(),
            })
            .collect();
        // Iterative centroid decomposition over the "alive" subforest.
        let mut alive = vec![true; n];
        let mut stack: Vec<NodeId> = vec![NodeId::new(0)];
        let mut subtree = vec![0u32; n];
        while let Some(root) = stack.pop() {
            if !alive[root.index()] {
                continue;
            }
            let component = collect_component(tree, root, &alive);
            let centroid = find_centroid(tree, &component, &alive, &mut subtree);
            // BFS from the centroid within the alive component records the
            // (centroid, distance) entry for every member.
            let dists = bfs_within(tree, centroid, &alive);
            for &(v, d) in &dists {
                labels[v.index()].ancestors.push((centroid, d));
            }
            alive[centroid.index()] = false;
            for w in tree.neighbor_ids(centroid) {
                if alive[w.index()] {
                    stack.push(w);
                }
            }
        }
        TreeLabeling { labels }
    }

    /// The label of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_of(&self, v: NodeId) -> TreeLabel {
        self.labels[v.index()].clone()
    }

    /// Exact `d_T(u, v)` from two labels.
    pub fn distance(a: &TreeLabel, b: &TreeLabel) -> Dist {
        if a.owner == b.owner {
            return Dist::ZERO;
        }
        let mut best = Dist::INFINITE;
        for &(c, da) in &a.ancestors {
            for &(c2, db) in &b.ancestors {
                if c == c2 {
                    let sum = Dist::new(da).saturating_add_raw(db);
                    if sum < best {
                        best = sum;
                    }
                }
            }
        }
        best
    }

    /// Exact forbidden-set query: `d_{T∖F}(s, t)` from the labels of `s`,
    /// `t`, and the forbidden vertices (edge faults are given as endpoint
    /// label pairs through [`TreeLabeling::query_with_edges`]).
    pub fn query(s: &TreeLabel, t: &TreeLabel, forbidden: &[&TreeLabel]) -> Dist {
        Self::query_with_edges(s, t, forbidden, &[])
    }

    /// Like [`TreeLabeling::query`] with forbidden edges as label pairs.
    pub fn query_with_edges(
        s: &TreeLabel,
        t: &TreeLabel,
        forbidden: &[&TreeLabel],
        forbidden_edges: &[(&TreeLabel, &TreeLabel)],
    ) -> Dist {
        for f in forbidden {
            if f.owner == s.owner || f.owner == t.owner {
                return Dist::INFINITE;
            }
        }
        let d_st = Self::distance(s, t);
        let Some(dst) = d_st.finite() else {
            return Dist::INFINITE;
        };
        let on_path = |x: &TreeLabel| -> bool {
            let dsx = Self::distance(s, x).finite();
            let dxt = Self::distance(x, t).finite();
            matches!((dsx, dxt), (Some(a), Some(b)) if a + b == dst)
        };
        for f in forbidden {
            if on_path(f) {
                return Dist::INFINITE;
            }
        }
        for (a, b) in forbidden_edges {
            if on_path(a) && on_path(b) {
                return Dist::INFINITE;
            }
        }
        d_st
    }

    /// Mean and max label bits over all vertices.
    pub fn size_stats(&self, n: usize) -> (f64, usize) {
        let total: usize = self.labels.iter().map(|l| l.bits(n)).sum();
        let max = self.labels.iter().map(|l| l.bits(n)).max().unwrap_or(0);
        (total as f64 / self.labels.len() as f64, max)
    }
}

/// All alive vertices reachable from `root`.
fn collect_component(tree: &Graph, root: NodeId, alive: &[bool]) -> Vec<NodeId> {
    let mut seen = vec![root];
    let mut visited: std::collections::HashSet<NodeId> = seen.iter().copied().collect();
    let mut k = 0;
    while k < seen.len() {
        let v = seen[k];
        k += 1;
        for w in tree.neighbor_ids(v) {
            if alive[w.index()] && visited.insert(w) {
                seen.push(w);
            }
        }
    }
    seen
}

/// The centroid of an alive component: a vertex whose removal leaves parts
/// of size `≤ |component| / 2`.
fn find_centroid(
    tree: &Graph,
    component: &[NodeId],
    alive: &[bool],
    subtree: &mut [u32],
) -> NodeId {
    let total = component.len() as u32;
    let root = component[0];
    // Iterative post-order subtree sizes within the alive component.
    let mut order = Vec::with_capacity(component.len());
    let mut parent: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
    let mut stack = vec![root];
    parent.insert(root, root);
    while let Some(v) = stack.pop() {
        order.push(v);
        for w in tree.neighbor_ids(v) {
            if alive[w.index()] && !parent.contains_key(&w) {
                parent.insert(w, v);
                stack.push(w);
            }
        }
    }
    for &v in order.iter().rev() {
        subtree[v.index()] = 1;
    }
    for &v in order.iter().rev() {
        let p = parent[&v];
        if p != v {
            subtree[p.index()] += subtree[v.index()];
        }
    }
    // The centroid: max part size <= total / 2.
    for &v in &order {
        let mut max_part = total - subtree[v.index()];
        for w in tree.neighbor_ids(v) {
            if alive[w.index()] && parent.get(&w) == Some(&v) {
                max_part = max_part.max(subtree[w.index()]);
            }
        }
        if max_part <= total / 2 {
            return v;
        }
    }
    unreachable!("every tree has a centroid")
}

/// BFS distances from `src` within the alive component.
fn bfs_within(tree: &Graph, src: NodeId, alive: &[bool]) -> Vec<(NodeId, u32)> {
    let mut out = vec![(src, 0u32)];
    let mut dist: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
    dist.insert(src, 0);
    let mut k = 0;
    while k < out.len() {
        let (v, d) = out[k];
        k += 1;
        for w in tree.neighbor_ids(v) {
            if alive[w.index()] && !dist.contains_key(&w) {
                dist.insert(w, d + 1);
                out.push((w, d + 1));
            }
        }
    }
    out
}

/// Convenience wrapper answering queries by vertex id against a stored
/// labeling (the oracle form).
#[derive(Clone, Debug)]
pub struct TreeOracle {
    labeling: TreeLabeling,
    graph: Graph,
}

impl TreeOracle {
    /// Builds the oracle for a tree.
    ///
    /// # Panics
    ///
    /// Panics if the input is not a tree.
    pub fn new(tree: &Graph) -> Self {
        TreeOracle {
            labeling: TreeLabeling::build(tree),
            graph: tree.clone(),
        }
    }

    /// The underlying labeling.
    pub fn labeling(&self) -> &TreeLabeling {
        &self.labeling
    }

    /// Exact `d_{T∖F}(s, t)`.
    ///
    /// # Panics
    ///
    /// Panics if a vertex is out of range or an edge fault is not an edge.
    pub fn distance(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> Dist {
        let ls = self.labeling.label_of(s);
        let lt = self.labeling.label_of(t);
        let fls: Vec<TreeLabel> = faults
            .vertices()
            .map(|f| self.labeling.label_of(f))
            .collect();
        let fl_refs: Vec<&TreeLabel> = fls.iter().collect();
        let els: Vec<(TreeLabel, TreeLabel)> = faults
            .edges()
            .map(|e| {
                assert!(self.graph.has_edge(e.lo(), e.hi()), "{e} is not an edge");
                (
                    self.labeling.label_of(e.lo()),
                    self.labeling.label_of(e.hi()),
                )
            })
            .collect();
        let el_refs: Vec<(&TreeLabel, &TreeLabel)> = els.iter().map(|(a, b)| (a, b)).collect();
        TreeLabeling::query_with_edges(&ls, &lt, &fl_refs, &el_refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::{bfs, generators};

    fn check_tree(tree: &Graph) {
        let oracle = TreeOracle::new(tree);
        let n = tree.num_vertices();
        // Failure-free distances are exact.
        for s in (0..n as u32).step_by(3) {
            let truth = bfs::distances(tree, NodeId::new(s));
            for t in 0..n as u32 {
                let d = oracle.distance(NodeId::new(s), NodeId::new(t), &FaultSet::empty());
                assert_eq!(d, truth[t as usize], "{s}->{t}");
            }
        }
    }

    #[test]
    fn exact_on_paths_and_trees() {
        check_tree(&generators::path(17));
        check_tree(&generators::balanced_tree(2, 4));
        check_tree(&generators::balanced_tree(3, 3));
        check_tree(&generators::caterpillar(6, 2));
        check_tree(&generators::random_tree(40, 7));
        check_tree(&generators::star(12));
    }

    #[test]
    fn label_count_is_logarithmic() {
        let tree = generators::path(1024);
        let scheme = TreeLabeling::build(&tree);
        for v in tree.vertices() {
            let l = scheme.label_of(v);
            assert!(
                l.ancestors.len() <= 11,
                "centroid depth {} too large at {v}",
                l.ancestors.len()
            );
        }
    }

    #[test]
    fn vertex_faults_exact() {
        let tree = generators::balanced_tree(2, 4);
        let oracle = TreeOracle::new(&tree);
        for f in [0u32, 1, 5, 14] {
            let faults = FaultSet::from_vertices([NodeId::new(f)]);
            for s in 0..31u32 {
                for t in 0..31u32 {
                    if s == f || t == f {
                        continue;
                    }
                    let d = oracle.distance(NodeId::new(s), NodeId::new(t), &faults);
                    let truth =
                        bfs::pair_distance_avoiding(&tree, NodeId::new(s), NodeId::new(t), &faults);
                    assert_eq!(d, truth, "s={s} t={t} f={f}");
                }
            }
        }
    }

    #[test]
    fn edge_faults_exact() {
        let tree = generators::random_tree(30, 11);
        let oracle = TreeOracle::new(&tree);
        let edges: Vec<_> = tree.edges().collect();
        for e in edges.iter().step_by(3) {
            let faults = FaultSet::from_edges(&tree, [(e.lo(), e.hi())]);
            for s in (0..30u32).step_by(2) {
                for t in (0..30u32).step_by(3) {
                    let d = oracle.distance(NodeId::new(s), NodeId::new(t), &faults);
                    let truth =
                        bfs::pair_distance_avoiding(&tree, NodeId::new(s), NodeId::new(t), &faults);
                    assert_eq!(d, truth, "s={s} t={t} e={e}");
                }
            }
        }
    }

    #[test]
    fn faulty_endpoint_infinite() {
        let tree = generators::path(5);
        let oracle = TreeOracle::new(&tree);
        let faults = FaultSet::from_vertices([NodeId::new(0)]);
        assert!(oracle
            .distance(NodeId::new(0), NodeId::new(3), &faults)
            .is_infinite());
    }

    #[test]
    fn single_vertex_tree() {
        let g = fsdl_graph::GraphBuilder::new(1).build();
        let oracle = TreeOracle::new(&g);
        assert_eq!(
            oracle
                .distance(NodeId::new(0), NodeId::new(0), &FaultSet::empty())
                .finite(),
            Some(0)
        );
    }

    #[test]
    #[should_panic(expected = "connected tree")]
    fn rejects_non_trees() {
        let g = generators::cycle(5);
        let _ = TreeLabeling::build(&g);
    }

    #[test]
    fn size_stats_reasonable() {
        let tree = generators::balanced_tree(2, 7); // 255 vertices
        let scheme = TreeLabeling::build(&tree);
        let (mean, max) = scheme.size_stats(255);
        // O(log^2 n) bits: ~8 ancestors x 16 bits = ~128.
        assert!(mean > 0.0 && max <= 16 * 9 * 2, "mean {mean}, max {max}");
    }
}
