//! Property tests for the baseline labelings: hub labels must be exact on
//! arbitrary graphs, tree labels exact on arbitrary trees (including under
//! faults).

use fsdl_baselines::{HubLabeling, TreeOracle};
use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_testkit::Rng;

fn random_graph(rng: &mut Rng) -> Graph {
    let n = rng.gen_range(1usize..24);
    let mut b = GraphBuilder::new(n);
    for _ in 0..rng.gen_range(0..40usize) {
        let a = rng.gen_range(0..n as u32);
        let c = rng.gen_range(0..n as u32);
        if a != c {
            b.add_edge(a, c).expect("in range");
        }
    }
    b.build()
}

fn random_tree(rng: &mut Rng) -> Graph {
    let n = rng.gen_range(1usize..30);
    let mut b = GraphBuilder::new(n);
    for child in 1..n {
        let p = rng.gen_range(0..child);
        b.add_edge(p as u32, child as u32).expect("in range");
    }
    b.build()
}

#[test]
fn hub_labels_exact_on_arbitrary_graphs() {
    fsdl_testkit::check("hub_labels_exact_on_arbitrary_graphs", 32, |rng| {
        let g = random_graph(rng);
        let n = g.num_vertices() as u32;
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        let hl = HubLabeling::build(&g);
        let got = HubLabeling::query(&hl.label_of(s), &hl.label_of(t));
        let truth = bfs::pair_distance_avoiding(&g, s, t, &FaultSet::empty());
        assert_eq!(got, truth);
    });
}

#[test]
fn tree_labels_exact_under_any_single_fault() {
    fsdl_testkit::check("tree_labels_exact_under_any_single_fault", 32, |rng| {
        let tree = random_tree(rng);
        let n = tree.num_vertices() as u32;
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        let f = NodeId::new(rng.gen_range(0..n));
        let oracle = TreeOracle::new(&tree);
        let faults = FaultSet::from_vertices([f]);
        let got = oracle.distance(s, t, &faults);
        let truth = if f == s || f == t {
            fsdl_graph::Dist::INFINITE
        } else {
            bfs::pair_distance_avoiding(&tree, s, t, &faults)
        };
        assert_eq!(got, truth);
    });
}

#[test]
fn tree_labels_exact_under_edge_fault() {
    fsdl_testkit::check("tree_labels_exact_under_edge_fault", 32, |rng| {
        let tree = random_tree(rng);
        let edges: Vec<_> = tree.edges().collect();
        if edges.is_empty() {
            return;
        }
        let n = tree.num_vertices() as u32;
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        let e = edges[rng.gen_range(0..edges.len())];
        let oracle = TreeOracle::new(&tree);
        let faults = FaultSet::from_edges(&tree, [(e.lo(), e.hi())]);
        let got = oracle.distance(s, t, &faults);
        let truth = bfs::pair_distance_avoiding(&tree, s, t, &faults);
        assert_eq!(got, truth);
    });
}

#[test]
fn hub_label_sizes_bounded_by_n() {
    fsdl_testkit::check("hub_label_sizes_bounded_by_n", 32, |rng| {
        // Sanity: no label ever exceeds n entries (every hub distinct).
        let g = random_graph(rng);
        let hl = HubLabeling::build(&g);
        let (_, max) = hl.size_stats();
        assert!(max <= g.num_vertices());
    });
}
