//! Property tests for the baseline labelings: hub labels must be exact on
//! arbitrary graphs, tree labels exact on arbitrary trees (including under
//! faults).

use fsdl_baselines::{HubLabeling, TreeOracle};
use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..40).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (a, c) in pairs {
                if a != c {
                    b.add_edge(a, c).expect("in range");
                }
            }
            b.build()
        })
    })
}

fn arb_tree() -> impl Strategy<Value = Graph> {
    (1usize..30).prop_flat_map(|n| {
        proptest::collection::vec(0usize..30, n.saturating_sub(1)).prop_map(move |parents| {
            let mut b = GraphBuilder::new(n);
            for (i, p) in parents.iter().enumerate().take(n - 1) {
                let child = i + 1;
                b.add_edge((p % child) as u32, child as u32)
                    .expect("in range");
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hub_labels_exact_on_arbitrary_graphs(g in arb_graph(), s in 0u32..24, t in 0u32..24) {
        let n = g.num_vertices() as u32;
        let (s, t) = (NodeId::new(s % n), NodeId::new(t % n));
        let hl = HubLabeling::build(&g);
        let got = HubLabeling::query(&hl.label_of(s), &hl.label_of(t));
        let truth = bfs::pair_distance_avoiding(&g, s, t, &FaultSet::empty());
        prop_assert_eq!(got, truth);
    }

    #[test]
    fn tree_labels_exact_under_any_single_fault(
        tree in arb_tree(),
        s in 0u32..30,
        t in 0u32..30,
        f in 0u32..30,
    ) {
        let n = tree.num_vertices() as u32;
        let (s, t, f) = (NodeId::new(s % n), NodeId::new(t % n), NodeId::new(f % n));
        let oracle = TreeOracle::new(&tree);
        let faults = FaultSet::from_vertices([f]);
        let got = oracle.distance(s, t, &faults);
        let truth = if f == s || f == t {
            fsdl_graph::Dist::INFINITE
        } else {
            bfs::pair_distance_avoiding(&tree, s, t, &faults)
        };
        prop_assert_eq!(got, truth);
    }

    #[test]
    fn tree_labels_exact_under_edge_fault(
        tree in arb_tree(),
        s in 0u32..30,
        t in 0u32..30,
        e_pick in 0usize..40,
    ) {
        let edges: Vec<_> = tree.edges().collect();
        if edges.is_empty() {
            return Ok(());
        }
        let n = tree.num_vertices() as u32;
        let (s, t) = (NodeId::new(s % n), NodeId::new(t % n));
        let e = edges[e_pick % edges.len()];
        let oracle = TreeOracle::new(&tree);
        let faults = FaultSet::from_edges(&tree, [(e.lo(), e.hi())]);
        let got = oracle.distance(s, t, &faults);
        let truth = bfs::pair_distance_avoiding(&tree, s, t, &faults);
        prop_assert_eq!(got, truth);
    }

    #[test]
    fn hub_label_sizes_bounded_by_n(g in arb_graph()) {
        // Sanity: no label ever exceeds n entries (every hub distinct).
        let hl = HubLabeling::build(&g);
        let (_, max) = hl.size_stats();
        prop_assert!(max <= g.num_vertices());
    }
}
