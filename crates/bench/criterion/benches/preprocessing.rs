//! Criterion bench: preprocessing cost (the paper's "all labels can be
//! computed in polynomial time").
//!
//! Measures (a) `Labeling::build` — net hierarchy construction, the shared
//! preprocessing — and (b) per-label materialization, across graph sizes
//! and families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsdl_graph::{generators, NodeId};
use fsdl_labels::{Labeling, SchemeParams};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("labeling_build");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let g = generators::path(n);
        group.bench_with_input(BenchmarkId::new("path", n), &g, |b, g| {
            b.iter(|| Labeling::build(g, SchemeParams::new(1.0, g.num_vertices())))
        });
    }
    for side in [8usize, 16, 24] {
        let g = generators::grid2d(side, side);
        group.bench_with_input(BenchmarkId::new("grid2d", side * side), &g, |b, g| {
            b.iter(|| Labeling::build(g, SchemeParams::new(1.0, g.num_vertices())))
        });
    }
    group.finish();
}

fn bench_materialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_materialize");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let g = generators::path(n);
        let labeling = Labeling::build(&g, SchemeParams::new(1.0, n));
        group.bench_with_input(BenchmarkId::new("path", n), &labeling, |b, l| {
            b.iter(|| l.label_of(NodeId::from_index(n / 2)))
        });
    }
    {
        let g = generators::grid2d(16, 16);
        let labeling = Labeling::build(&g, SchemeParams::new(1.0, 256));
        group.bench_with_input(BenchmarkId::new("grid2d", 256), &labeling, |b, l| {
            b.iter(|| l.label_of(NodeId::new(120)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_materialize);
criterion_main!(benches);
