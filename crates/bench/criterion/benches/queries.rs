//! Criterion bench: decoder query time (Lemma 2.6) versus the exact-BFS
//! baseline.
//!
//! * `query_vs_faults` — decoder time as `|F|` doubles (expected `~|F|²`
//!   asymptote);
//! * `query_vs_eps` — decoder time as `ε` shrinks (label growth);
//! * `baseline_exact_bfs` — ground-truth BFS per query for scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsdl_baselines::ExactOracle;
use fsdl_bench::measure::random_faults;
use fsdl_graph::{generators, FaultSet, Graph, NodeId};
use fsdl_labels::ForbiddenSetOracle;
use fsdl_testkit::Rng;

fn fixed_cases(g: &Graph, nf: usize, rounds: usize) -> Vec<(NodeId, NodeId, FaultSet)> {
    let mut rng = Rng::seed_from_u64(42);
    let n = g.num_vertices();
    (0..rounds)
        .map(|k| {
            let s = NodeId::from_index((k * 13) % n);
            let t = NodeId::from_index((k * 29 + n / 2) % n);
            let f = random_faults(g, nf, s, t, &mut rng);
            (s, t, f)
        })
        .collect()
}

fn bench_query_vs_faults(c: &mut Criterion) {
    let g = generators::grid2d(12, 12);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    // Pre-materialize all labels so only decoding is measured.
    for v in g.vertices() {
        let _ = oracle.label(v);
    }
    let mut group = c.benchmark_group("query_vs_faults");
    group.sample_size(10);
    for nf in [1usize, 4, 16] {
        let cases = fixed_cases(&g, nf, 8);
        group.bench_with_input(BenchmarkId::from_parameter(nf), &cases, |b, cases| {
            b.iter(|| {
                for (s, t, f) in cases {
                    let _ = oracle.distance(*s, *t, f);
                }
            })
        });
    }
    group.finish();
}

fn bench_query_vs_eps(c: &mut Criterion) {
    let g = generators::path(1024);
    let mut group = c.benchmark_group("query_vs_eps");
    group.sample_size(10);
    for eps in [2.0f64, 1.0, 0.5] {
        let oracle = ForbiddenSetOracle::new(&g, eps);
        for v in g.vertices() {
            let _ = oracle.label(v);
        }
        let cases = fixed_cases(&g, 4, 8);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps-{eps}")),
            &cases,
            |b, cases| {
                b.iter(|| {
                    for (s, t, f) in cases {
                        let _ = oracle.distance(*s, *t, f);
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_exact_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_exact_bfs");
    group.sample_size(10);
    for n in [1024usize, 4096, 16384] {
        let g = generators::cycle(n);
        let exact = ExactOracle::new(&g);
        let cases = fixed_cases(&g, 4, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &cases, |b, cases| {
            b.iter(|| {
                for (s, t, f) in cases {
                    let _ = exact.distance(*s, *t, f);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_query_vs_faults,
    bench_query_vs_eps,
    bench_exact_baseline
);
criterion_main!(benches);
