//! Criterion bench: routing-scheme costs (Theorem 2.7).
//!
//! * `routing_table_build` — per-vertex table materialization;
//! * `routing_hops` — full packet delivery (header computation + hop-by-hop
//!   forwarding) under a fixed fault set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsdl_graph::{generators, FaultSet, NodeId};
use fsdl_labels::{Labeling, SchemeParams};
use fsdl_routing::{Network, RoutingScheme};

fn bench_table_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_table_build");
    group.sample_size(10);
    for side in [8usize, 12, 16] {
        let g = generators::grid2d(side, side);
        let labeling = Labeling::build(&g, SchemeParams::new(1.0, side * side));
        group.bench_with_input(
            BenchmarkId::from_parameter(side * side),
            &labeling,
            |b, l| {
                let scheme = RoutingScheme::new(l);
                b.iter(|| scheme.table_of(NodeId::from_index(side * side / 2)))
            },
        );
    }
    group.finish();
}

fn bench_routing_hops(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_hops");
    group.sample_size(10);
    let g = generators::grid2d(12, 12);
    let net = Network::new(&g, 1.0);
    // Warm the table cache so steady-state forwarding is measured.
    for v in g.vertices() {
        let _ = net.table(v);
    }
    let faults = FaultSet::from_vertices([NodeId::new(66), NodeId::new(67)]);
    group.bench_function(BenchmarkId::from_parameter("grid-12x12-2faults"), |b| {
        b.iter(|| {
            net.route(NodeId::new(0), NodeId::new(143), &faults)
                .expect("connected")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table_build, bench_routing_hops);
criterion_main!(benches);
