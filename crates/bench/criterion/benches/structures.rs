//! Criterion bench: companion-structure construction costs — the net
//! spanner, hub labels (PLL), and exact tree labels, for scale against the
//! forbidden-set labeling itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsdl_baselines::{HubLabeling, TreeLabeling};
use fsdl_graph::generators;
use fsdl_nets::Spanner;

fn bench_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanner_build");
    group.sample_size(10);
    for side in [8usize, 16] {
        let g = generators::grid2d(side, side);
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &g, |b, g| {
            b.iter(|| Spanner::build(g, 1.0))
        });
    }
    group.finish();
}

fn bench_hub_labels(c: &mut Criterion) {
    let mut group = c.benchmark_group("hub_labels_build");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let g = generators::path(n);
        group.bench_with_input(BenchmarkId::new("path", n), &g, |b, g| {
            b.iter(|| HubLabeling::build(g))
        });
    }
    let g = generators::grid2d(16, 16);
    group.bench_with_input(BenchmarkId::new("grid2d", 256), &g, |b, g| {
        b.iter(|| HubLabeling::build(g))
    });
    group.finish();
}

fn bench_tree_labels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_labels_build");
    group.sample_size(10);
    for n in [255usize, 1023] {
        let g = generators::balanced_tree(2, if n == 255 { 7 } else { 9 });
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| TreeLabeling::build(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spanner, bench_hub_labels, bench_tree_labels);
criterion_main!(benches);
