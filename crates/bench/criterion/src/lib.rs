//! Empty library crate: the package exists solely for its criterion
//! benches (see `benches/`), kept out of the hermetic build graph.
