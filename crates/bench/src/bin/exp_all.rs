//! Runs every experiment binary in sequence — the one-shot reproduction of
//! `EXPERIMENTS.md`. Each experiment self-asserts its claims, so a clean
//! exit means every theorem's predicted behaviour was re-verified.
//!
//! ```text
//! cargo run --release -p fsdl-bench --bin exp_all
//! ```

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_t1_stretch",
    "exp_t2_labels",
    "exp_t3_query",
    "exp_t4_routing",
    "exp_t5_lowerbound",
    "exp_t6_dynamic",
    "exp_t7_oracle",
    "exp_t8_ablation",
    "exp_t9_related",
    "exp_t10_preproc",
    "exp_t11_recovery",
    "exp_t12_weighted",
    "exp_t13_throughput",
    "exp_t14_query_latency",
    "exp_t15_store",
    "exp_t16_wal",
    "exp_t17_serve",
    "exp_t18_labelplane",
    "exp_t19_shard",
    "exp_f1_trace",
    "exp_f2_lowlevel",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================= {name} =================\n");
        let path = bin_dir.join(name);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo (e.g. when run via `cargo run` from a
            // different profile directory).
            Command::new("cargo")
                .args([
                    "run",
                    "--quiet",
                    "--release",
                    "-p",
                    "fsdl-bench",
                    "--bin",
                    name,
                ])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e}");
                failures.push(*name);
            }
        }
    }
    println!("\n=================================================");
    if failures.is_empty() {
        println!("all {} experiments passed", EXPERIMENTS.len());
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
