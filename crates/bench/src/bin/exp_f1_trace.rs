//! Experiment F1 — reproduces the paper's Figure 1 as a query trace.
//!
//! Figure 1 illustrates the existence proof of Lemma 2.4: the sketch path
//! from `s` to `t` hops between net points `M̂_j`, and the hop length
//! `2^{i(v_j)}` rises as the walk gets farther from the fault set and falls
//! again near the destination side. This binary runs one query on a long
//! cycle (the figure's 1-D setting) with a fault cluster near `s` and
//! prints, for every hop of the decoder's witness path: the admitted level,
//! the edge kind (real inside the protected region, virtual outside), the
//! hop weight, and the hop's true distance to the fault set — making the
//! level rise/fall of the figure visible.

use fsdl_graph::{bfs, generators, Edge, FaultSet, NodeId};
use fsdl_labels::{build_sketch, ForbiddenSetOracle, QueryLabels};

fn main() {
    println!("Experiment F1: sketch-path trace (paper Figure 1)\n");

    let n = 768usize;
    let g = generators::cycle(n);
    let oracle = ForbiddenSetOracle::new(&g, 2.0);

    // Fault cluster a few hops behind s; t far ahead.
    let mut faults = FaultSet::empty();
    for f in [0u32, 1, 766, 767] {
        faults.forbid_vertex(NodeId::new(f));
    }
    let s = NodeId::new(4);
    let t = NodeId::new(330);

    let answer = oracle.query(s, t, &faults);
    let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
    println!(
        "query: s = {s}, t = {t}, |F| = {}; exact d_(G\\F) = {}, decoder = {} (stretch {:.3})",
        faults.len(),
        truth,
        answer.distance,
        f64::from(answer.distance.finite().unwrap()) / f64::from(truth.finite().unwrap())
    );

    // Rebuild the sketch to read edge provenance for the witness path.
    let source = oracle.label(s);
    let target = oracle.label(t);
    let fault_labels: Vec<_> = faults.vertices().map(|f| oracle.label(f)).collect();
    let ql = QueryLabels {
        fault_vertices: fault_labels.iter().map(|l| l.as_ref()).collect(),
        fault_edges: Vec::new(),
    };
    let sketch = build_sketch(oracle.params(), &source, &target, &ql);
    println!(
        "sketch graph: {} vertices, {} edges; scheme c = {}\n",
        sketch.graph.num_vertices(),
        sketch.graph.num_edges(),
        oracle.params().c()
    );

    let dist_to_f = |v: NodeId| -> u32 {
        faults
            .vertices()
            .map(|f| {
                bfs::pair_distance_avoiding(&g, v, f, &FaultSet::empty())
                    .finite()
                    .unwrap_or(u32::MAX)
            })
            .min()
            .unwrap_or(u32::MAX)
    };

    println!("witness path ({} waypoints):", answer.path.len());
    println!(
        "{:<12} {:>6} {:>7} {:>8} {:>9}",
        "hop", "level", "weight", "kind", "d(.,F)"
    );
    let mut max_level = 0u32;
    for pair in answer.path.windows(2) {
        let info = sketch
            .edge_info
            .get(&Edge::new(pair[0], pair[1]))
            .expect("path edge has provenance");
        max_level = max_level.max(if info.real { 0 } else { info.level });
        println!(
            "{:<12} {:>6} {:>7} {:>8} {:>9}",
            format!("{}->{}", pair[0], pair[1]),
            info.level,
            info.weight,
            if info.real { "real" } else { "virtual" },
            dist_to_f(pair[0])
        );
    }
    println!("\nExpected shape (Fig. 1): short/real hops near the fault cluster, virtual hops");
    println!("whose level (and weight) grows with d(., F), then shrinks approaching t.");
    assert!(
        max_level > oracle.params().c() + 1,
        "trace should climb above the lowest level"
    );
}
