//! Experiment F2 — reproduces the paper's Figure 2 as a query trace.
//!
//! Figure 2 illustrates the `ℓ = c`, `ℓ′ = c+1` case of Claim 2: very close
//! to a fault the sketch path must walk real weight-1 edges of `G`, then
//! climbs to the level-`(c+1)` net point `M̂` once the clearance radius
//! `μ_{c+1}` is regained. This binary forces a query *through* the
//! immediate neighbourhood of a fault and prints the real-edge prefix and
//! the first virtual climb.

use fsdl_graph::{bfs, generators, FaultSet, NodeId};
use fsdl_labels::{trace_query, ForbiddenSetOracle, QueryLabels};

fn main() {
    println!("Experiment F2: low-level case trace (paper Figure 2)\n");

    // A long cycle with one fault; s and t sit just next to the fault so the
    // route starts inside the fault's protected region.
    let n = 96usize;
    let g = generators::cycle(n);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let fault = NodeId::new(0);
    let faults = FaultSet::from_vertices([fault]);
    let s = NodeId::new(1); // adjacent to the fault
    let t = NodeId::new(n as u32 / 2);

    let source = oracle.label(s);
    let target = oracle.label(t);
    let fl = oracle.label(fault);
    let ql = QueryLabels {
        fault_vertices: vec![fl.as_ref()],
        fault_edges: Vec::new(),
    };
    let trace = trace_query(oracle.params(), &source, &target, &ql);
    let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
    println!(
        "query: s = {s} (adjacent to fault {fault}), t = {t}; exact = {truth}, decoder = {}",
        trace.distance
    );

    let c = oracle.params().c();
    println!("scheme c = {c}; lowest level = {}\n", c + 1);
    println!("{:<12} {:>6} {:>7} {:>8}", "hop", "level", "weight", "kind");
    for h in &trace.hops {
        println!(
            "{:<12} {:>6} {:>7} {:>8}",
            format!("{}->{}", h.from, h.to),
            h.level,
            h.weight,
            if h.real { "real" } else { "virtual" }
        );
    }
    let real_prefix = trace.real_prefix_len();
    println!(
        "\nreal-edge prefix length: {real_prefix} (the Fig. 2 walk out of the protected region)"
    );
    println!("Expected shape: weight-1 real edges while d(., F) <= mu, then virtual climbs.");
    assert!(
        real_prefix > 0,
        "a query starting adjacent to a fault must begin with real edges"
    );
}
