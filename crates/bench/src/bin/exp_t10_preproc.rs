//! Experiment T10 — preprocessing cost ("all labels can be computed in
//! polynomial time").
//!
//! Tables the wall-clock cost of the two preprocessing phases as `n` grows:
//! the shared net-hierarchy construction (`Labeling::build`, parallelized
//! over levels) and per-label materialization, plus the derived full-oracle
//! build estimate `n ×` label cost. Expected shape: both phases scale
//! near-linearly in `n · polylog` on paths and meshes — the polynomial
//! claim, made concrete.

use std::time::Instant;

use fsdl_bench::tables::{f1, Table};
use fsdl_graph::{generators, Graph, NodeId};
use fsdl_labels::{Labeling, SchemeParams};

fn time_build(g: &Graph) -> (f64, Labeling) {
    let start = Instant::now();
    let labeling = Labeling::build(g, SchemeParams::new(1.0, g.num_vertices()));
    (start.elapsed().as_secs_f64() * 1e3, labeling)
}

fn time_labels(labeling: &Labeling, samples: usize) -> f64 {
    let n = labeling.graph().num_vertices();
    let stride = (n / samples).max(1);
    let start = Instant::now();
    let mut count = 0usize;
    let mut v = 0usize;
    while v < n && count < samples {
        let _ = labeling.label_of(NodeId::from_index(v));
        v += stride;
        count += 1;
    }
    start.elapsed().as_secs_f64() * 1e3 / count as f64
}

fn main() {
    println!("Experiment T10: preprocessing cost (eps = 1)\n");

    let mut table = Table::new(
        "build + per-label materialization vs n",
        &["family", "n", "build ms", "ms/label", "est. full oracle s"],
    );
    let workloads: Vec<(String, Graph)> = vec![
        ("path".into(), generators::path(1024)),
        ("path".into(), generators::path(4096)),
        ("path".into(), generators::path(16384)),
        ("grid2d".into(), generators::grid2d(16, 16)),
        ("grid2d".into(), generators::grid2d(32, 32)),
        ("udg".into(), generators::random_geometric(1000, 0.055, 1)),
    ];
    for (name, g) in workloads {
        let n = g.num_vertices();
        let (build_ms, labeling) = time_build(&g);
        let per_label_ms = time_labels(&labeling, 8);
        table.row(&[
            name,
            n.to_string(),
            f1(build_ms),
            f1(per_label_ms),
            f1(per_label_ms * n as f64 / 1e3),
        ]);
    }
    table.print();
    println!("Expected shape: near-linear growth in n (times polylog) for both phases;");
    println!("the full-oracle estimate is what a centralized deployment pays once.");
}
