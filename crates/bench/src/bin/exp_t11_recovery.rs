//! Experiment T11 — the paper's fast-recovery protocol, fleet-level.
//!
//! Simulates the applications-section scenario end to end: a network runs
//! steady traffic; a batch of routers fails with *nobody informed*;
//! knowledge spreads only by probing and piggybacking on packets, and every
//! better-informed router reroutes in flight. The table tracks, per traffic
//! epoch: fleet awareness, delivery rate, mean reroutes per packet, and
//! mean hop stretch vs the omniscient optimum. Expected shape: awareness
//! climbs toward 1.0 under traffic alone, reroutes spike right after the
//! failure and decay to 0, and stretch converges to the steady-state
//! (1+ε-bounded) value — recovery without any global recomputation.

use fsdl_bench::tables::{f1, f3, Table};
use fsdl_graph::{bfs, generators, NodeId};
use fsdl_routing::{Network, RecoverySim, RouteFailure};
use fsdl_testkit::Rng;

fn main() {
    println!("Experiment T11: fast recovery by probing + piggybacking\n");

    let g = generators::grid2d(10, 10);
    let n = g.num_vertices();
    let mut sim = RecoverySim::new(Network::new(&g, 1.0));
    let mut rng = Rng::seed_from_u64(0x11EC);

    let mut table = Table::new(
        "grid-10x10: 8 epochs x 25 packets; 4 routers fail after epoch 2",
        &[
            "epoch",
            "awareness",
            "delivered",
            "dropped",
            "mean reroutes",
            "mean stretch",
        ],
    );

    for epoch in 0..8 {
        if epoch == 2 {
            for f in [44u32, 45, 54, 55] {
                sim.fail_vertex(NodeId::new(f));
            }
            println!("(epoch 2: center block v44,v45,v54,v55 fails — nobody informed)\n");
        }
        let mut delivered = 0usize;
        let mut dropped = 0usize;
        let mut reroutes = 0usize;
        let mut stretch_sum = 0.0f64;
        let mut stretch_count = 0usize;
        for _ in 0..25 {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            if sim.ground_truth().is_vertex_faulty(s) || sim.ground_truth().is_vertex_faulty(t) {
                continue;
            }
            let truth = bfs::pair_distance_avoiding(&g, s, t, sim.ground_truth());
            match sim.send(s, t) {
                Ok(out) => {
                    delivered += 1;
                    reroutes += out.reroutes;
                    if let Some(td) = truth.finite() {
                        if td > 0 {
                            stretch_sum += out.hops as f64 / f64::from(td);
                            stretch_count += 1;
                        }
                    }
                }
                Err(RouteFailure::Unreachable) => {
                    assert!(truth.is_infinite(), "dropped a deliverable packet");
                    dropped += 1;
                }
                Err(e) => panic!("recovery invariant violated: {e}"),
            }
        }
        table.row(&[
            epoch.to_string(),
            f3(sim.awareness()),
            delivered.to_string(),
            dropped.to_string(),
            f1(reroutes as f64 / delivered.max(1) as f64),
            if stretch_count > 0 {
                f3(stretch_sum / stretch_count as f64)
            } else {
                "-".into()
            },
        ]);
    }
    table.print();
    println!("Expected shape: awareness 0 -> ~1 under traffic alone; reroutes spike at the");
    println!("failure epoch and decay; stretch transiently above 1 then back to ~1.0.");
}
