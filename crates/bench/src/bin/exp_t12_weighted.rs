//! Experiment T12 — the weighted extension (edge subdivision).
//!
//! The paper handles unweighted graphs; `WeightedOracle` extends it to
//! small integer weights by exact subdivision. This experiment validates
//! the extension end to end on weighted grid-like maps: every query is
//! checked against weighted Dijkstra ground truth, and the table reports
//! the subdivision blow-up (vertices and label bits) as the weight range
//! `W` grows — the cost model for the extension.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fsdl_bench::tables::{f3, Table};
use fsdl_graph::{generators, NodeId};
use fsdl_labels::{WeightedFaults, WeightedOracle};
use fsdl_testkit::Rng;

/// Weighted grid: the `w × h` mesh with uniform random weights in `1..=max_w`.
fn weighted_grid(w: usize, h: usize, max_w: u32, seed: u64) -> (usize, Vec<(u32, u32, u32)>) {
    let g = generators::grid2d(w, h);
    let mut rng = Rng::seed_from_u64(seed);
    let edges = g
        .edges()
        .map(|e| (e.lo().raw(), e.hi().raw(), rng.gen_range(1..=max_w)))
        .collect();
    (w * h, edges)
}

fn dijkstra(n: usize, edges: &[(u32, u32, u32)], s: usize, forbidden: &[NodeId]) -> Vec<u64> {
    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for &(u, v, w) in edges {
        if forbidden.contains(&NodeId::new(u)) || forbidden.contains(&NodeId::new(v)) {
            continue;
        }
        adj[u as usize].push((v as usize, u64::from(w)));
        adj[v as usize].push((u as usize, u64::from(w)));
    }
    let mut dist = vec![u64::MAX; n];
    if forbidden.contains(&NodeId::from_index(s)) {
        return dist;
    }
    let mut heap = BinaryHeap::new();
    dist[s] = 0;
    heap.push(Reverse((0u64, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            if d + w < dist[v] {
                dist[v] = d + w;
                heap.push(Reverse((d + w, v)));
            }
        }
    }
    dist
}

fn main() {
    println!("Experiment T12: weighted extension via subdivision (eps = 1)\n");

    let mut table = Table::new(
        "weighted 8x8 grid, weights in 1..=W: subdivision cost + verified stretch",
        &[
            "W",
            "orig n",
            "subdiv n",
            "max stretch",
            "mean stretch",
            "checked",
        ],
    );
    for max_w in [1u32, 2, 3, 4] {
        let (n, edges) = weighted_grid(8, 8, max_w, 0xE16);
        let oracle = WeightedOracle::new(n, &edges, 1.0);
        let mut rng = Rng::seed_from_u64(max_w as u64);
        let mut max_stretch: f64 = 1.0;
        let mut sum = 0.0;
        let mut checked = 0usize;
        for _ in 0..60 {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            let fault = NodeId::from_index(rng.gen_range(0..n));
            if fault.index() == s || fault.index() == t {
                continue;
            }
            let faults = WeightedFaults {
                vertices: vec![fault],
                edges: vec![],
            };
            let got = oracle.distance(NodeId::from_index(s), NodeId::from_index(t), &faults);
            let truth = dijkstra(n, &edges, s, &[fault]);
            match (got.finite(), truth[t]) {
                (None, u64::MAX) => {}
                (Some(g), td) if td != u64::MAX => {
                    assert!(u64::from(g) >= td, "unsound weighted answer");
                    if td > 0 {
                        let stretch = f64::from(g) / td as f64;
                        assert!(stretch <= 2.0 + 1e-9, "weighted stretch violated");
                        max_stretch = max_stretch.max(stretch);
                        sum += stretch;
                        checked += 1;
                    }
                }
                (a, b) => panic!("connectivity disagreement: {a:?} vs {b}"),
            }
        }
        table.row(&[
            max_w.to_string(),
            n.to_string(),
            oracle.subdivision().num_vertices().to_string(),
            f3(max_stretch),
            f3(sum / checked.max(1) as f64),
            checked.to_string(),
        ]);
    }
    table.print();
    println!("Expected shape: subdivision grows ~(W+1)/2 x; stretch stays within 1+eps —");
    println!("the unweighted theory transfers to small integer weights at linear cost.");
}
