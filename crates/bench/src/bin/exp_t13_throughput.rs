//! Experiment T13 — build/serve throughput of the concurrent oracle engine.
//!
//! The oracle is `Send + Sync`: labels live in a lock-free `OnceLock` arena
//! behind `Arc`s, so one shared instance can serve queries from many
//! threads. This experiment measures, on the standard graph families,
//!
//! * **build**: wall-clock to materialize every label with 1 worker vs.
//!   all available workers (`Labeling::materialize_all_workers`);
//! * **serve**: queries/second for a mixed fault workload answered
//!   sequentially vs. `query_batch` fanned across worker threads —
//!   asserting the parallel answers are bit-identical to the sequential
//!   ones before trusting the timing.
//!
//! Results are printed as tables and written to `BENCH_throughput.json`
//! (`--quick` shrinks the workload for CI smoke runs; `--out PATH`
//! redirects the JSON artifact).

use std::fmt::Write as _;
use std::time::Instant;

use fsdl_bench::tables::{f1, Table};
use fsdl_graph::{generators, FaultSet, Graph, NodeId};
use fsdl_labels::{ForbiddenSetOracle, Labeling, SchemeParams};
use fsdl_nets::parallel;
use fsdl_testkit::Rng;

struct FamilyResult {
    family: String,
    n: usize,
    workers: usize,
    build_1_ms: f64,
    build_p_ms: f64,
    queries: usize,
    qps_1: f64,
    qps_p: f64,
}

impl FamilyResult {
    fn build_speedup(&self) -> f64 {
        self.build_1_ms / self.build_p_ms.max(1e-9)
    }

    fn serve_speedup(&self) -> f64 {
        self.qps_p / self.qps_1.max(1e-9)
    }
}

/// A deterministic mixed workload of `(s, t, F)` queries with 0–2 vertex
/// faults each.
fn workload(n: usize, queries: usize, seed: u64) -> Vec<(NodeId, NodeId, FaultSet)> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..queries)
        .map(|_| {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            let mut f = FaultSet::empty();
            for _ in 0..rng.gen_range(0..3usize) {
                let v = NodeId::from_index(rng.gen_range(0..n));
                if v != s && v != t {
                    f.forbid_vertex(v);
                }
            }
            (s, t, f)
        })
        .collect()
}

fn measure_family(family: &str, g: Graph, queries: usize, workers: usize) -> FamilyResult {
    let n = g.num_vertices();
    let labeling = Labeling::build(&g, SchemeParams::new(1.0, n));

    let start = Instant::now();
    let seq_labels = labeling.materialize_all_workers(1);
    let build_1_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let par_labels = labeling.materialize_all_workers(workers);
    let build_p_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        seq_labels, par_labels,
        "parallel build must be bit-identical to sequential"
    );
    drop((seq_labels, par_labels));

    let oracle = ForbiddenSetOracle::from_labeling(labeling);
    oracle.prewarm_workers(workers);
    let batch = workload(n, queries, 0x7137);

    let start = Instant::now();
    let sequential = oracle.query_batch_workers(&batch, 1);
    let qps_1 = batch.len() as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel_answers = oracle.query_batch_workers(&batch, workers);
    let qps_p = batch.len() as f64 / start.elapsed().as_secs_f64();
    assert_eq!(
        sequential, parallel_answers,
        "query_batch must be bit-identical to sequential"
    );

    FamilyResult {
        family: family.to_string(),
        n,
        workers,
        build_1_ms,
        build_p_ms,
        queries: batch.len(),
        qps_1,
        qps_p,
    }
}

fn json_artifact(results: &[FamilyResult]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"t13_throughput\",\n  \"families\": [\n");
    for (k, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \"workers\": {}, \
             \"build_ms_1\": {:.3}, \"build_ms_p\": {:.3}, \"build_speedup\": {:.3}, \
             \"queries\": {}, \"qps_1\": {:.1}, \"qps_p\": {:.1}, \"serve_speedup\": {:.3}}}{}",
            r.family,
            r.n,
            r.workers,
            r.build_1_ms,
            r.build_p_ms,
            r.build_speedup(),
            r.queries,
            r.qps_1,
            r.qps_p,
            r.serve_speedup(),
            if k + 1 < results.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_throughput.json")
        .to_string();

    let workers = parallel::default_workers(usize::MAX);
    println!("Experiment T13: build/serve throughput, 1 vs {workers} workers (eps = 1)\n");

    let (scale, queries) = if quick { (1, 64) } else { (4, 512) };
    let families: Vec<(&str, Graph)> = vec![
        ("path", generators::path(1024 * scale)),
        ("grid2d", generators::grid2d(16 * scale, 16 * scale)),
        (
            "udg",
            generators::random_geometric(250 * scale, 0.11 / (scale as f64).sqrt(), 1),
        ),
    ];

    let mut results = Vec::new();
    for (family, g) in families {
        results.push(measure_family(family, g, queries, workers));
    }

    let mut table = Table::new(
        "label build: 1 worker vs all",
        &["family", "n", "1w ms", "Pw ms", "speedup"],
    );
    for r in &results {
        table.row(&[
            r.family.clone(),
            r.n.to_string(),
            f1(r.build_1_ms),
            f1(r.build_p_ms),
            format!("{:.2}x", r.build_speedup()),
        ]);
    }
    table.print();

    let mut table = Table::new(
        "query serving: sequential vs query_batch",
        &["family", "queries", "1w q/s", "Pw q/s", "speedup"],
    );
    for r in &results {
        table.row(&[
            r.family.clone(),
            r.queries.to_string(),
            f1(r.qps_1),
            f1(r.qps_p),
            format!("{:.2}x", r.serve_speedup()),
        ]);
    }
    table.print();

    let artifact = json_artifact(&results);
    std::fs::write(&out_path, &artifact).expect("write BENCH_throughput.json");
    println!("wrote {out_path}");
    println!("\nExpected shape: answers bit-identical (asserted); with >= 4 cores the");
    println!("serve speedup clears 2x — queries are embarrassingly parallel over a");
    println!("shared read-only label arena.");

    if workers >= 4 && !quick {
        let worst = results
            .iter()
            .map(FamilyResult::serve_speedup)
            .fold(f64::INFINITY, f64::min);
        assert!(
            worst >= 2.0,
            "serve speedup {worst:.2}x below the 2x acceptance bar"
        );
    }
}
