//! Experiment T14 — single-query decode latency of the zero-allocation
//! fast path.
//!
//! Three decoders answer the same `(s, t, F)` workloads, with `|F| ∈
//! {0, 1, 4, 16}` on the standard families:
//!
//! * **alloc** — the frozen allocating reference path
//!   (`decode::query_with`): builds a fresh `HashMap`/`HashSet` sketch
//!   per query;
//! * **cold** — the sorted-slice fast path with a brand-new
//!   [`DecodeScratch`] every query (measures the path itself, no buffer
//!   reuse);
//! * **reuse** — the fast path with one long-lived scratch per thread,
//!   the intended serving configuration: after warm-up, zero allocations
//!   per query.
//!
//! Every fast-path answer is asserted bit-identical (distance, witness
//! path, sketch sizes) to the reference before any timing is trusted.
//! The acceptance bar — enforced even under `--quick` so CI trips on a
//! regression — is a `>= 1.5x` median speedup of **reuse** over
//! **alloc** at `|F| = 4`.
//!
//! Results are printed as tables and written to
//! `BENCH_query_latency.json` (`--out PATH` redirects).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use fsdl_bench::tables::{f1, Table};
use fsdl_graph::{generators, DijkstraScratch, Graph, NodeId};
use fsdl_labels::{
    query_with, query_with_scratch, DecodeScratch, ForbiddenSetOracle, Label, QueryAnswer,
    QueryLabels,
};
use fsdl_testkit::Rng;

const FAULT_SIZES: [usize; 4] = [0, 1, 4, 16];

/// One pre-materialized query: endpoint labels plus fault-vertex labels.
struct PreparedQuery {
    source: Arc<Label>,
    target: Arc<Label>,
    fault_vertices: Vec<Arc<Label>>,
}

impl PreparedQuery {
    fn labels(&self) -> QueryLabels<'_> {
        QueryLabels {
            fault_vertices: self.fault_vertices.iter().map(|l| &**l).collect(),
            fault_edges: vec![],
        }
    }
}

/// Latency distribution of one decoder on one workload.
struct PathStats {
    p50_ns: u64,
    p99_ns: u64,
    total_ns: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn stats_of(mut samples: Vec<u64>) -> PathStats {
    let total_ns = samples.iter().sum();
    samples.sort_unstable();
    PathStats {
        p50_ns: percentile(&samples, 0.50),
        p99_ns: percentile(&samples, 0.99),
        total_ns,
    }
}

/// Times `decode(q)` for every query, returning per-query nanoseconds and
/// the answers (for the bit-identity assertion).
fn run_path<F: FnMut(&PreparedQuery) -> QueryAnswer>(
    queries: &[PreparedQuery],
    mut decode: F,
) -> (Vec<u64>, Vec<QueryAnswer>) {
    let mut ns = Vec::with_capacity(queries.len());
    let mut answers = Vec::with_capacity(queries.len());
    for q in queries {
        let start = Instant::now();
        let a = decode(q);
        ns.push(start.elapsed().as_nanos() as u64);
        answers.push(a);
    }
    (ns, answers)
}

struct Measurement {
    family: String,
    n: usize,
    f: usize,
    queries: usize,
    alloc: PathStats,
    cold: PathStats,
    reuse: PathStats,
}

impl Measurement {
    /// Median speedup of the reused-scratch path over the allocating
    /// reference.
    fn reuse_speedup(&self) -> f64 {
        self.alloc.p50_ns as f64 / (self.reuse.p50_ns as f64).max(1.0)
    }
}

/// Draws `count` queries with exactly `f` distinct fault vertices, none
/// equal to `s` or `t`, and materializes every label up front so timing
/// sees only decode work.
fn prepare(
    oracle: &ForbiddenSetOracle,
    n: usize,
    f: usize,
    count: usize,
    seed: u64,
) -> Vec<PreparedQuery> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            let mut owners: Vec<NodeId> = Vec::with_capacity(f);
            while owners.len() < f {
                let v = NodeId::from_index(rng.gen_range(0..n));
                if v != s && v != t && !owners.contains(&v) {
                    owners.push(v);
                }
            }
            PreparedQuery {
                source: oracle.label(s),
                target: oracle.label(t),
                fault_vertices: owners.iter().map(|&v| oracle.label(v)).collect(),
            }
        })
        .collect()
}

fn measure(
    family: &str,
    oracle: &ForbiddenSetOracle,
    n: usize,
    f: usize,
    count: usize,
) -> Measurement {
    let queries = prepare(oracle, n, f, count, 0x714 + f as u64);
    let params = oracle.params();

    // Warm-up pass (untimed): faults the labels into cache for all three
    // timed passes and grows the reused scratch to working-set size.
    let mut reused = DecodeScratch::new();
    for q in &queries {
        query_with_scratch(params, &q.source, &q.target, &q.labels(), &mut reused);
    }

    let (alloc_ns, reference) = run_path(&queries, |q| {
        query_with(
            params,
            &q.source,
            &q.target,
            &q.labels(),
            &mut DijkstraScratch::new(),
        )
    });
    let (cold_ns, cold_answers) = run_path(&queries, |q| {
        query_with_scratch(
            params,
            &q.source,
            &q.target,
            &q.labels(),
            &mut DecodeScratch::new(),
        )
    });
    let (reuse_ns, reuse_answers) = run_path(&queries, |q| {
        query_with_scratch(params, &q.source, &q.target, &q.labels(), &mut reused)
    });

    assert_eq!(
        reference, cold_answers,
        "{family} |F|={f}: cold-scratch answers diverged from the reference path"
    );
    assert_eq!(
        reference, reuse_answers,
        "{family} |F|={f}: reused-scratch answers diverged from the reference path"
    );

    Measurement {
        family: family.to_string(),
        n,
        f,
        queries: queries.len(),
        alloc: stats_of(alloc_ns),
        cold: stats_of(cold_ns),
        reuse: stats_of(reuse_ns),
    }
}

fn json_artifact(results: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"t14_query_latency\",\n  \"rows\": [\n");
    for (k, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \"f\": {}, \"queries\": {}, \
             \"alloc_p50_ns\": {}, \"alloc_p99_ns\": {}, \
             \"cold_p50_ns\": {}, \"cold_p99_ns\": {}, \
             \"reuse_p50_ns\": {}, \"reuse_p99_ns\": {}, \
             \"reuse_speedup_p50\": {:.3}}}{}",
            r.family,
            r.n,
            r.f,
            r.queries,
            r.alloc.p50_ns,
            r.alloc.p99_ns,
            r.cold.p50_ns,
            r.cold.p99_ns,
            r.reuse.p50_ns,
            r.reuse.p99_ns,
            r.reuse_speedup(),
            if k + 1 < results.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_query_latency.json")
        .to_string();

    println!(
        "Experiment T14: single-query decode latency, alloc vs cold vs reused scratch (eps = 1)\n"
    );

    let (scale, count) = if quick { (1, 48) } else { (2, 192) };
    let families: Vec<(&str, Graph)> = vec![
        ("path", generators::path(1024 * scale)),
        ("grid2d", generators::grid2d(16 * scale, 16 * scale)),
        (
            "udg",
            generators::random_geometric(250 * scale, 0.11 / (scale as f64).sqrt(), 1),
        ),
    ];

    let mut results = Vec::new();
    for (family, g) in &families {
        let n = g.num_vertices();
        let oracle = ForbiddenSetOracle::new(g, 1.0);
        oracle.prewarm_workers(0);
        for f in FAULT_SIZES {
            results.push(measure(family, &oracle, n, f, count));
        }
    }

    let mut table = Table::new(
        "decode latency (ns/query): allocating reference vs scratch fast path",
        &[
            "family",
            "n",
            "|F|",
            "alloc p50",
            "alloc p99",
            "cold p50",
            "reuse p50",
            "reuse p99",
            "speedup",
        ],
    );
    for r in &results {
        table.row(&[
            r.family.clone(),
            r.n.to_string(),
            r.f.to_string(),
            r.alloc.p50_ns.to_string(),
            r.alloc.p99_ns.to_string(),
            r.cold.p50_ns.to_string(),
            r.reuse.p50_ns.to_string(),
            r.reuse.p99_ns.to_string(),
            format!("{:.2}x", r.reuse_speedup()),
        ]);
    }
    table.print();

    let mut table = Table::new(
        "total decode time (ms) over the whole workload",
        &["family", "|F|", "alloc", "cold", "reuse"],
    );
    for r in &results {
        table.row(&[
            r.family.clone(),
            r.f.to_string(),
            f1(r.alloc.total_ns as f64 / 1e6),
            f1(r.cold.total_ns as f64 / 1e6),
            f1(r.reuse.total_ns as f64 / 1e6),
        ]);
    }
    table.print();

    let artifact = json_artifact(&results);
    std::fs::write(&out_path, &artifact).expect("write BENCH_query_latency.json");
    println!("wrote {out_path}");
    println!("\nExpected shape: answers bit-identical across all three paths (asserted);");
    println!("the reused scratch allocates nothing per query, so its p50 clears 1.5x");
    println!("over the allocating reference at |F| = 4, and its p99 stays close to");
    println!("its p50 (no per-query allocator noise).");

    // Acceptance bar — enforced in quick mode too, so the CI smoke run
    // trips on a fast-path regression.
    let worst = results
        .iter()
        .filter(|r| r.f == 4)
        .map(Measurement::reuse_speedup)
        .fold(f64::INFINITY, f64::min);
    assert!(
        worst >= 1.5,
        "reused-scratch median speedup {worst:.2}x at |F|=4 is below the 1.5x bar"
    );
    println!("\nacceptance: worst |F|=4 reuse speedup {worst:.2}x >= 1.5x");
}
