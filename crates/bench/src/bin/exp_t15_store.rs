//! Experiment T15 — persistent label store: cold build vs warm open.
//!
//! For each standard family the experiment measures the two ways of
//! getting a serving-ready oracle:
//!
//! * **cold** — build the oracle from the graph and materialize every
//!   label (per-label BFS over the net hierarchy, the expensive path);
//! * **warm** — `ForbiddenSetOracle::open` a store generation written by
//!   a previous `save` and materialize every label by *decoding* it from
//!   the checksummed segment.
//!
//! Both end fully materialized, so the comparison is fair. Before any
//! timing is trusted, a probe matrix (with faults) is asserted
//! bit-identical between the cold and warm oracles — the store must be
//! a cache, never an approximation. The acceptance bar, enforced under
//! `--quick` too so CI trips on a regression: warm open is at least
//! 1.5x faster than the cold build on every family (1.2x at full
//! scale, where multi-megabyte grid labels make the warm path memory-
//! bandwidth-bound rather than BFS-bound).
//!
//! Results are printed as a table and written to `BENCH_store.json`
//! (`--out PATH` redirects).

use std::fmt::Write as _;
use std::time::Instant;

use fsdl_bench::tables::{f1, Table};
use fsdl_graph::{generators, FaultSet, Graph, NodeId};
use fsdl_labels::ForbiddenSetOracle;

struct Measurement {
    family: String,
    n: usize,
    labels: usize,
    cold_build_ms: f64,
    save_ms: f64,
    store_bytes: u64,
    warm_open_ms: f64,
    probes: usize,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.cold_build_ms / self.warm_open_ms.max(1e-6)
    }
}

/// Compares the cold and warm oracles on a probe matrix with single-vertex
/// faults; returns the number of probes checked.
fn assert_probe_identity(cold: &ForbiddenSetOracle, warm: &ForbiddenSetOracle, n: usize) -> usize {
    let mut probes = 0;
    for s in (0..n).step_by((n / 12).max(1)) {
        for t in (0..n).step_by((n / 8).max(1)) {
            let (s, t) = (NodeId::from_index(s), NodeId::from_index(t));
            let fault = NodeId::from_index((s.index() + t.index() + 1) % n);
            let faults = FaultSet::from_vertices([fault]);
            assert_eq!(
                cold.query(s, t, &faults),
                warm.query(s, t, &faults),
                "warm-opened oracle diverged from cold build at {s}->{t} avoiding {fault}"
            );
            probes += 1;
        }
    }
    probes
}

fn measure(family: &str, g: &Graph, dir: &std::path::Path) -> Measurement {
    let n = g.num_vertices();

    let start = Instant::now();
    let cold = ForbiddenSetOracle::new(g, 1.0);
    cold.prewarm_workers(0);
    let cold_build_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let report = cold.save(dir).expect("save store generation");
    let save_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let warm = ForbiddenSetOracle::open(dir, g).expect("open store generation");
    warm.prewarm_workers(0);
    let warm_open_ms = start.elapsed().as_secs_f64() * 1e3;

    let probes = assert_probe_identity(&cold, &warm, n);

    Measurement {
        family: family.to_string(),
        n,
        labels: report.labels,
        cold_build_ms,
        save_ms,
        store_bytes: report.segment_bytes,
        warm_open_ms,
        probes,
    }
}

fn json_artifact(results: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"t15_store\",\n  \"rows\": [\n");
    for (k, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \"labels\": {}, \
             \"cold_build_ms\": {:.3}, \"save_ms\": {:.3}, \"store_bytes\": {}, \
             \"warm_open_ms\": {:.3}, \"warm_speedup\": {:.3}, \"probes\": {}}}{}",
            r.family,
            r.n,
            r.labels,
            r.cold_build_ms,
            r.save_ms,
            r.store_bytes,
            r.warm_open_ms,
            r.speedup(),
            r.probes,
            if k + 1 < results.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_store.json")
        .to_string();

    println!("Experiment T15: persistent label store, cold build vs warm open (eps = 1)\n");

    let scale = if quick { 1 } else { 2 };
    let families: Vec<(&str, Graph)> = vec![
        ("path", generators::path(1024 * scale)),
        ("grid2d", generators::grid2d(16 * scale, 16 * scale)),
        (
            "udg",
            generators::random_geometric(250 * scale, 0.11 / (scale as f64).sqrt(), 1),
        ),
    ];

    let base = std::env::temp_dir().join(format!("fsdl-exp-t15-{}", std::process::id()));
    let mut results = Vec::new();
    for (family, g) in &families {
        let dir = base.join(family);
        let _ = std::fs::remove_dir_all(&dir);
        results.push(measure(family, g, &dir));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);

    let mut table = Table::new(
        "store round trip: cold build vs save vs warm open (all labels materialized)",
        &[
            "family",
            "n",
            "cold build ms",
            "save ms",
            "store KiB",
            "warm open ms",
            "speedup",
            "probes",
        ],
    );
    for r in &results {
        table.row(&[
            r.family.clone(),
            r.n.to_string(),
            f1(r.cold_build_ms),
            f1(r.save_ms),
            f1(r.store_bytes as f64 / 1024.0),
            f1(r.warm_open_ms),
            format!("{:.1}x", r.speedup()),
            r.probes.to_string(),
        ]);
    }
    table.print();

    let artifact = json_artifact(&results);
    std::fs::write(&out_path, &artifact).expect("write BENCH_store.json");
    println!("wrote {out_path}");
    println!("\nExpected shape: warm open skips the per-label BFS entirely — it pays");
    println!("only segment read + checksum + decode — so it lands well above the");
    println!("acceptance bar on every family, and the probe matrix is bit-identical");
    println!("(asserted) between the cold-built and warm-opened oracles.");

    // Acceptance bar — enforced in quick mode too, so the CI smoke run
    // trips if warm opens stop being a clear win. Full scale uses a
    // lower bar: grid2d labels there run to megabytes each, so the
    // warm path is bound by decode memory bandwidth rather than the
    // skipped per-label BFS, and the win narrows by design.
    let bar = if quick { 1.5 } else { 1.2 };
    let worst = results
        .iter()
        .map(Measurement::speedup)
        .fold(f64::INFINITY, f64::min);
    assert!(
        worst >= bar,
        "warm open speedup {worst:.2}x is below the {bar}x bar"
    );
    println!("\nacceptance: worst warm-open speedup {worst:.2}x >= {bar}x");
}
