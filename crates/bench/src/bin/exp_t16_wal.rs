//! Experiment T16 — durable dynamic oracle: query availability during
//! background rebuilds, plus WAL health.
//!
//! The serving contract under test: when the fault buffer crosses the
//! rebuild threshold in [`RebuildMode::Background`], the next generation
//! is built off the serving path — queries keep hitting the current
//! `Arc`-swapped generation and never wait on the rebuild. The experiment
//! measures query latency in two regimes:
//!
//! * **idle** — no rebuild in flight;
//! * **in-flight** — a background rebuild is running (verified, not
//!   assumed: every counted sample saw `rebuild_in_flight()` true), with
//!   carry-over updates landing mid-rebuild.
//!
//! Acceptance gate, enforced in `--quick` too: in-flight p99 is at most
//! 3x the idle p99 (with a small floor absorbing scheduler noise on
//! microsecond-scale queries) and **zero** queries blocked on the
//! rebuild (`blocked_on_rebuild == 0` — the counter increments only when
//! a query finds the serving lock held while a build is computing, which
//! the design makes structurally impossible). A durability smoke then
//! drops the oracle, reopens the store, and asserts the fault set and
//! probe answers survived.
//!
//! Results are printed and written to `BENCH_wal.json` (`--out PATH`
//! redirects).

use std::fmt::Write as _;
use std::time::Instant;

use fsdl_graph::{generators, NodeId};
use fsdl_labels::{DynamicConfig, DynamicOracle, RebuildMode};

/// The p99-ratio acceptance bar.
const MAX_P99_RATIO: f64 = 3.0;
/// Floor (µs) for the idle p99 in the ratio: queries here run in
/// microseconds, where scheduler jitter on a loaded CI box can exceed the
/// query itself; the gate is about *not blocking on the rebuild*, not
/// about sub-scheduler-quantum noise.
const IDLE_FLOOR_US: f64 = 50.0;

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let k = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[k.min(sorted_us.len() - 1)]
}

/// Pacing gap between queries in both regimes. The bench models a
/// serving workload (queries arrive, they are not an unbounded spin):
/// a briefly-sleeping query thread wakes with low vruntime and preempts
/// the CPU-bound build worker promptly, so the measured p99 reflects the
/// serving path's lock behaviour rather than how long a fair-share
/// scheduler lets a batch thread keep one core. Identical in the idle
/// and in-flight regimes, so the ratio stays apples-to-apples.
const PACING_GAP_US: u64 = 200;

/// One timed query; returns latency in microseconds.
fn timed_query(oracle: &DynamicOracle, s: NodeId, t: NodeId) -> f64 {
    std::thread::sleep(std::time::Duration::from_micros(PACING_GAP_US));
    let start = Instant::now();
    let d = oracle.try_distance(s, t).expect("probe in range");
    std::hint::black_box(d);
    start.elapsed().as_secs_f64() * 1e6
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_wal.json")
        .to_string();

    println!("Experiment T16: query availability during background rebuilds (eps = 1)\n");

    let side = if quick { 18 } else { 28 };
    let g = generators::grid2d(side, side);
    let n = g.num_vertices();
    let threshold = 4;
    let idle_samples = if quick { 2_000 } else { 8_000 };
    let target_inflight = if quick { 500 } else { 2_000 };
    let max_rounds = if quick { 12 } else { 20 };
    // One query worker: on a single-core box every runnable thread adds
    // one timeslice of fair-share delay to the measured p99, so the
    // expected in-flight ratio is (query threads + build workers) / 1.
    // One querier + one builder keeps the no-blocking measurement honest
    // (~2x from CPU sharing) without manufacturing scheduler contention
    // the gate is not about.
    let query_threads = 1;

    let dir = std::env::temp_dir().join(format!("fsdl-exp-t16-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut oracle = DynamicOracle::try_with_config(
        &g,
        DynamicConfig {
            epsilon: 1.0,
            threshold: Some(threshold),
            mode: RebuildMode::Background,
            rebuild_workers: 0, // cores - 1: one core stays with the serving path
        },
    )
    .expect("valid config");
    oracle.attach_store(&dir).expect("attach store");

    // Probe pairs spread across the grid. The deletion script below only
    // ever removes ids ≡ 0 (mod 3); probe endpoints dodge those so every
    // sample pays the full decode cost in both regimes (a probe on a
    // deleted endpoint short-circuits to INFINITE and would flatter the
    // in-flight numbers).
    let dodge = |v: usize| -> usize {
        let v = v % n;
        if v.is_multiple_of(3) {
            if v + 1 < n {
                v + 1
            } else {
                1
            }
        } else {
            v
        }
    };
    let probes: Vec<(NodeId, NodeId)> = (0..n)
        .step_by(7)
        .map(|k| {
            let s = dodge(k);
            let mut t = dodge((k * 13 + n / 2) % n);
            if t == s {
                t = dodge(t + 4);
            }
            (NodeId::from_index(s), NodeId::from_index(t))
        })
        .collect();

    // ---- idle regime ----
    let mut idle_us = Vec::with_capacity(idle_samples);
    for k in 0..idle_samples {
        let (s, t) = probes[k % probes.len()];
        idle_us.push(timed_query(&oracle, s, t));
    }

    // ---- in-flight regime ----
    // Each round deletes threshold + 1 fresh vertices (spawning a
    // background rebuild), immediately lands two more updates mid-rebuild
    // (the carry-over path), then hammers queries from worker threads for
    // as long as the rebuild is verifiably in flight.
    let mut inflight_us: Vec<f64> = Vec::new();
    let mut next_victim = 0u32;
    let mut rounds = 0usize;
    let mut carry_over_seen = 0u64;
    while inflight_us.len() < target_inflight && rounds < max_rounds {
        rounds += 1;
        for _ in 0..=threshold {
            let v = NodeId::new(next_victim);
            next_victim += 3;
            match oracle.delete_vertex(v) {
                Ok(()) | Err(fsdl_labels::DynamicError::RebuildFailed { .. }) => {}
                Err(e) => panic!("update failed: {e}"),
            }
        }
        // Carry-over updates: arrive while the build is computing.
        for _ in 0..2 {
            let v = NodeId::new(next_victim);
            next_victim += 3;
            match oracle.delete_vertex(v) {
                Ok(()) | Err(fsdl_labels::DynamicError::RebuildFailed { .. }) => {}
                Err(e) => panic!("update failed: {e}"),
            }
        }
        let shared = &oracle;
        let probes = &probes;
        let round_samples: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..query_threads)
                .map(|w| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        let mut k = w * 17;
                        while shared.rebuild_in_flight() {
                            let (s, t) = probes[k % probes.len()];
                            k += 1;
                            let us = timed_query(shared, s, t);
                            // Count the sample only if the rebuild was
                            // still running when the query finished —
                            // every counted latency truly overlapped.
                            if shared.rebuild_in_flight() {
                                local.push(us);
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        oracle.wait_for_rebuild();
        carry_over_seen = carry_over_seen.max(oracle.stats().carry_over_depth);
        inflight_us.extend(round_samples.into_iter().flatten());
    }
    assert!(
        !inflight_us.is_empty(),
        "no query ever overlapped a background rebuild — the in-flight regime was never measured"
    );

    // One tail update so the WAL-since-rotation counters are visibly live.
    let v = NodeId::new(next_victim);
    match oracle.delete_vertex(v) {
        Ok(()) | Err(fsdl_labels::DynamicError::RebuildFailed { .. }) => {}
        Err(e) => panic!("update failed: {e}"),
    }
    let stats = oracle.stats();

    // ---- durability smoke: reopen and compare ----
    let faults_before = oracle.current_faults();
    let reference: Vec<_> = probes
        .iter()
        .take(40)
        .map(|&(s, t)| oracle.try_distance(s, t).expect("probe"))
        .collect();
    drop(oracle);
    let reopened = DynamicOracle::open(&dir, &g).expect("store reopens after churn");
    assert_eq!(
        reopened.current_faults(),
        faults_before,
        "fault set diverged across reopen"
    );
    for (&(s, t), expected) in probes.iter().take(40).zip(&reference) {
        assert_eq!(
            reopened.try_distance(s, t).expect("probe"),
            *expected,
            "answer diverged across reopen at {s}->{t}"
        );
    }
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);

    // ---- report ----
    idle_us.sort_by(f64::total_cmp);
    inflight_us.sort_by(f64::total_cmp);
    let idle_p50 = percentile(&idle_us, 0.50);
    let idle_p99 = percentile(&idle_us, 0.99);
    let inflight_p50 = percentile(&inflight_us, 0.50);
    let inflight_p99 = percentile(&inflight_us, 0.99);
    let ratio = inflight_p99 / idle_p99.max(IDLE_FLOOR_US);

    println!("grid {side}x{side} (n = {n}), threshold {threshold}, {query_threads} query threads, {rounds} rebuild rounds\n");
    println!("            samples      p50 us      p99 us");
    println!(
        "idle      {:>9}  {idle_p50:>10.1}  {idle_p99:>10.1}",
        idle_us.len()
    );
    println!(
        "in-flight {:>9}  {inflight_p50:>10.1}  {inflight_p99:>10.1}",
        inflight_us.len()
    );
    println!();
    println!(
        "rebuilds: {} total, {} background, {} failed, last {:.1} ms",
        stats.rebuilds, stats.background_rebuilds, stats.failed_rebuilds, stats.last_rebuild_ms
    );
    println!(
        "wal: {} records / {} bytes since rotation; carry-over depth (max seen) {}",
        stats.wal_records_since_rotation, stats.wal_bytes_since_rotation, carry_over_seen
    );
    println!(
        "blocked on rebuild: {}, install-swap contended: {}",
        stats.blocked_on_rebuild, stats.serving_swaps_contended
    );

    // ---- health assertions (the stats satellite rides the same gate) ----
    assert!(
        stats.background_rebuilds >= 1,
        "no background rebuild ever installed"
    );
    assert!(
        stats.last_rebuild_ms > 0.0,
        "installed rebuilds must report a duration"
    );
    assert!(
        stats.wal_records_since_rotation >= 1,
        "the tail update must be visible in the WAL counters"
    );

    // ---- availability gate ----
    // On a single-core box the "background" build worker and the query
    // thread timeshare one CPU, so the in-flight/idle ratio measures the
    // scheduler, not the serving path — the ratio bar would flake on
    // exactly the machines it has nothing to say about. The structural
    // guarantee (zero queries blocked on the rebuild lock) holds on any
    // core count and stays enforced.
    let single_core = std::thread::available_parallelism()
        .map(|p| p.get() == 1)
        .unwrap_or(false);
    let blocked = stats.blocked_on_rebuild;
    let pass = blocked == 0 && (single_core || ratio <= MAX_P99_RATIO);

    let mut artifact = String::from("{\n  \"experiment\": \"t16_wal\",\n");
    let _ = writeln!(artifact, "  \"quick\": {quick},");
    let _ = writeln!(artifact, "  \"n\": {n},");
    let _ = writeln!(artifact, "  \"threshold\": {threshold},");
    let _ = writeln!(artifact, "  \"rebuild_rounds\": {rounds},");
    let _ = writeln!(artifact, "  \"idle_samples\": {},", idle_us.len());
    let _ = writeln!(artifact, "  \"idle_p50_us\": {idle_p50:.2},");
    let _ = writeln!(artifact, "  \"idle_p99_us\": {idle_p99:.2},");
    let _ = writeln!(artifact, "  \"inflight_samples\": {},", inflight_us.len());
    let _ = writeln!(artifact, "  \"inflight_p50_us\": {inflight_p50:.2},");
    let _ = writeln!(artifact, "  \"inflight_p99_us\": {inflight_p99:.2},");
    let _ = writeln!(artifact, "  \"p99_ratio\": {ratio:.3},");
    let _ = writeln!(artifact, "  \"blocked_on_rebuild\": {blocked},");
    let _ = writeln!(
        artifact,
        "  \"serving_swaps_contended\": {},",
        stats.serving_swaps_contended
    );
    let _ = writeln!(
        artifact,
        "  \"background_rebuilds\": {},",
        stats.background_rebuilds
    );
    let _ = writeln!(
        artifact,
        "  \"failed_rebuilds\": {},",
        stats.failed_rebuilds
    );
    let _ = writeln!(
        artifact,
        "  \"last_rebuild_ms\": {:.3},",
        stats.last_rebuild_ms
    );
    let _ = writeln!(artifact, "  \"carry_over_depth\": {carry_over_seen},");
    let _ = writeln!(
        artifact,
        "  \"wal_records_since_rotation\": {},",
        stats.wal_records_since_rotation
    );
    let _ = writeln!(artifact, "  \"durability_reopen_ok\": true,");
    let _ = writeln!(artifact, "  \"single_core\": {single_core},");
    let _ = writeln!(
        artifact,
        "  \"gate\": {{\"max_p99_ratio\": {MAX_P99_RATIO}, \"idle_floor_us\": {IDLE_FLOOR_US}, \"pass\": {pass}}}"
    );
    artifact.push_str("}\n");
    std::fs::write(&out_path, &artifact).expect("write BENCH_wal.json");
    println!("\nwrote {out_path}");

    println!("\nExpected shape: queries read one Arc snapshot behind a lock the");
    println!("rebuild never takes, so the in-flight p99 tracks CPU contention from");
    println!("the build workers (bounded by leaving one core free), not lock waits —");
    println!("and blocked_on_rebuild stays exactly 0.");

    assert!(
        blocked == 0,
        "availability gate: {blocked} queries blocked on the rebuild lock"
    );
    if single_core {
        println!(
            "\nacceptance: blocked-on-rebuild = 0; p99 ratio bar SKIPPED \
             (available_parallelism = 1: the build worker and query thread \
             timeshare one CPU, so the ratio measures the scheduler, not \
             the serving path; measured {ratio:.2}x for the record)"
        );
    } else {
        assert!(
            ratio <= MAX_P99_RATIO,
            "availability gate: in-flight p99 {inflight_p99:.1}us is {ratio:.2}x the idle p99 \
             {idle_p99:.1}us (bar {MAX_P99_RATIO}x over a {IDLE_FLOOR_US}us floor)"
        );
        println!("\nacceptance: p99 ratio {ratio:.2}x <= {MAX_P99_RATIO}x, blocked-on-rebuild = 0");
    }
}
