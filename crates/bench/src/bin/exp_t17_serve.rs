//! Experiment T17 — serving the oracle over the wire: correctness,
//! saturation, and the protocol-hygiene gate.
//!
//! The labels are self-contained (a query needs only the `≤ 2 + |F|`
//! labels it names), so the serving layer should add transport and
//! nothing else. This experiment certifies that in three phases against
//! an in-process `fsdl_server::Server` on a unix socket:
//!
//! 1. **Differential** — seeded queries (the exact generator
//!    `fsdl-loadgen` replays, from `fsdl_bench::serveload`) are sent
//!    over the wire and re-answered in-process via `query_batch`; every
//!    field (distance, sketch sizes, witness path) must be
//!    bit-identical. The wire is a codec, not an approximation.
//! 2. **Saturation** — C connections hammer the server and we report
//!    sustained QPS with p50/p99 round-trip latency; then the same
//!    workload repeats behind a fleet of `100 x C` idle connections
//!    (the many-mostly-idle-clients shape an oracle service actually
//!    sees) and must hold ≥ 0.9x the no-idle QPS — the readiness-driven
//!    reactor's whole claim is that idle sockets are free, where the
//!    old connection-per-worker server starved outright.
//! 3. **Gate** — zero protocol errors over the whole run, p99 under a
//!    fairness-aware latency bar at the sustained QPS: the reactor
//!    round-robins connections, so the saturated mean round trip is
//!    `conns / qps` (Little's law) and the bar is a small multiple of
//!    that, with a 50ms floor (it catches pathological serialization —
//!    a pool stuck on a lock shows up as p99 exploding past the
//!    fair-queueing mean — not CI box speed), the idle-fleet QPS
//!    ratio, and a graceful drain:
//!    shutdown leaves no socket file and the report's counters
//!    reconcile with the client side.
//!
//! Results are printed and written to `BENCH_serve.json` (`--out PATH`
//! redirects). `--quick` shrinks everything for CI.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use fsdl_bench::serveload::{percentile_us, Op, OpStream, WorkloadConfig};
use fsdl_graph::{generators, NodeId};
use fsdl_labels::ForbiddenSetOracle;
use fsdl_routing::Network;
use fsdl_server::{Client, Endpoint, ServeEngine, Server, ServerConfig, WireFaults};

/// Fixed floor (µs) of the p99 round-trip bar for the saturation gate.
/// Local unix-socket round trips for sub-millisecond decodes sit far
/// below this on any healthy pool. The effective bar is
/// `max(floor, P99_FAIRNESS_MULT * conns / qps)`: the reactor
/// round-robins connections, so at saturation every round trip waits
/// behind the other in-flight frames and the *mean* is `conns / qps`
/// by Little's law (on a single-core host that exceeds any fixed bar
/// once enough connections stack). The multiple still catches what the
/// bar is for — a serialized or stalled pool, whose tail lands far
/// beyond the fair-queueing mean — without gating on box speed.
const MAX_P99_FLOOR_US: f64 = 50_000.0;

/// Allowed p99 tail as a multiple of the fair-queueing mean round trip.
const P99_FAIRNESS_MULT: f64 = 3.0;

/// The idle-fleet gate: sustained QPS behind 100x idle connections must
/// stay within 10% of the no-idle baseline (ROADMAP's bar). Idle
/// sockets cost a readiness-driven server nothing but slab slots.
const MIN_IDLE_QPS_RATIO: f64 = 0.9;

/// One saturation run: `conns` connections each replay `ops_per_conn`
/// seeded queries. Returns (total queries, per-query latencies µs, wall
/// seconds).
fn run_saturation(
    endpoint: &Endpoint,
    conns: usize,
    ops_per_conn: usize,
    n: u32,
    seed: u64,
) -> (u64, Vec<f64>, f64) {
    let started = Instant::now();
    let per_conn: Vec<(u64, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    let mut client =
                        Client::connect_with_retry(&endpoint, std::time::Duration::from_secs(10))
                            .expect("connect");
                    let mut stream =
                        OpStream::new(seed, c as u64, WorkloadConfig::for_static(n, 0.8, 0.25, 4));
                    let mut latencies = Vec::with_capacity(ops_per_conn);
                    let mut queries = 0u64;
                    while (queries as usize) < ops_per_conn {
                        let Op::Query { s, t, faults } = stream.next_op() else {
                            continue;
                        };
                        let start = Instant::now();
                        client.query(s, t, faults).expect("load query");
                        latencies.push(start.elapsed().as_secs_f64() * 1e6);
                        queries += 1;
                    }
                    (queries, latencies)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load connection"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();
    let queries: u64 = per_conn.iter().map(|(q, _)| q).sum();
    let latencies: Vec<f64> = per_conn.into_iter().flat_map(|(_, l)| l).collect();
    (queries, latencies, wall_s)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_serve.json")
        .to_string();

    println!("Experiment T17: oracle serving over the wire (eps = 1)\n");

    let side = if quick { 14 } else { 24 };
    let seed: u64 = 0x717;
    let g = generators::grid2d(side, side);
    let n = g.num_vertices() as u32;
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let net = Arc::new(Network::from_oracle(oracle));

    let sock = std::env::temp_dir().join(format!("fsdl-exp-t17-{}.sock", std::process::id()));
    let server = Server::bind(
        &Endpoint::Unix(sock.clone()),
        ServeEngine::Static(Arc::clone(&net)),
        ServerConfig::default(),
    )
    .expect("bind");
    let endpoint = server.local_endpoint().expect("endpoint");
    let workers = server.resolved_workers();
    let server_thread = std::thread::spawn(move || server.run());
    println!("serving grid {side}x{side} (n = {n}) on {endpoint} with {workers} workers");

    // ---- phase 1: differential ----
    let diff_queries = if quick { 300 } else { 2_000 };
    let config = WorkloadConfig::for_static(n, 0.8, 0.3, 4);
    let mut stream = OpStream::new(seed, 0, config.clone());
    let mut client =
        Client::connect_with_retry(&endpoint, std::time::Duration::from_secs(10)).expect("connect");
    let mut mismatches = 0usize;
    let mut checked = 0usize;
    while checked < diff_queries {
        let Op::Query { s, t, faults } = stream.next_op() else {
            continue;
        };
        let wire = client.query(s, t, faults.clone()).expect("wire query");
        let local = net
            .oracle()
            .query(NodeId::new(s), NodeId::new(t), &faults.to_fault_set());
        let identical = wire.distance == local.distance.raw()
            && wire.sketch_vertices as usize == local.sketch_vertices
            && wire.sketch_edges as usize == local.sketch_edges
            && wire.path == local.path.iter().map(|v| v.raw()).collect::<Vec<_>>();
        if !identical {
            mismatches += 1;
            if mismatches <= 3 {
                eprintln!(
                    "MISMATCH {s}->{t} |F|={}: wire {} vs local {}",
                    faults.vertices.len(),
                    wire.distance,
                    local.distance.raw()
                );
            }
        }
        checked += 1;
    }
    println!("differential: {checked} seeded queries, {mismatches} mismatches");
    assert_eq!(
        mismatches, 0,
        "wire answers must be bit-identical to in-process query_batch"
    );

    // The same tuples through a batch frame agree with query_batch.
    let mut stream = OpStream::new(seed, 1, config);
    let tuples: Vec<(u32, u32, WireFaults)> = std::iter::from_fn(|| Some(stream.next_op()))
        .filter_map(|op| match op {
            Op::Query { s, t, faults } => Some((s, t, faults)),
            Op::Churn { .. } => None,
        })
        .take(if quick { 64 } else { 256 })
        .collect();
    let local_tuples: Vec<_> = tuples
        .iter()
        .map(|(s, t, f)| (NodeId::new(*s), NodeId::new(*t), f.to_fault_set()))
        .collect();
    let wire_items = client.batch(tuples).expect("batch");
    let local_items = net.oracle().query_batch(&local_tuples);
    for (k, (w, l)) in wire_items.iter().zip(&local_items).enumerate() {
        assert_eq!(
            (
                w.distance,
                w.sketch_vertices as usize,
                w.sketch_edges as usize
            ),
            (l.distance.raw(), l.sketch_vertices, l.sketch_edges),
            "batch item {k} diverged"
        );
    }
    println!(
        "batch differential: {} tuples, all identical",
        wire_items.len()
    );
    drop(client);

    // ---- phase 2: saturation, then the same load behind an idle fleet ----
    let conns = if quick { 2 } else { 8 };
    let ops_per_conn = if quick { 500 } else { 4_000 };
    let (load_queries, mut latencies, wall_s) =
        run_saturation(&endpoint, conns, ops_per_conn, n, seed ^ 0xB00B5);
    let qps = load_queries as f64 / wall_s.max(1e-9);
    let p50 = percentile_us(&mut latencies, 0.50);
    let p99 = percentile_us(&mut latencies, 0.99);
    let p99_bar_us = MAX_P99_FLOOR_US.max(P99_FAIRNESS_MULT * 1e6 * conns as f64 / qps.max(1e-9));
    println!(
        "\nsaturation: {conns} conns x {ops_per_conn} ops in {wall_s:.2}s -> \
         {qps:.0} queries/s, p50 {p50:.1}us, p99 {p99:.1}us (bar {p99_bar_us:.0}us)"
    );

    // 100x idle connections (clamped to the fd budget), then the
    // identical workload again. The fleet never sends a byte; a
    // readiness-driven server must not notice it.
    let idle_target = conns * 100;
    let idle_budget = (fsdl_reactor::fd_soft_limit_or(640).saturating_sub(128) / 2) as usize;
    let idle_count = idle_target.min(idle_budget);
    if idle_count < idle_target {
        println!("note: idle fleet clamped to {idle_count} by the fd soft limit");
    }
    let idle_fleet: Vec<Client> = (0..idle_count)
        .map(|_| {
            Client::connect_with_retry(&endpoint, std::time::Duration::from_secs(10))
                .expect("idle connect")
        })
        .collect();
    let (idle_queries, mut idle_latencies, idle_wall_s) =
        run_saturation(&endpoint, conns, ops_per_conn, n, seed ^ 0x1D7E);
    drop(idle_fleet);
    let idle_qps = idle_queries as f64 / idle_wall_s.max(1e-9);
    let idle_p99 = percentile_us(&mut idle_latencies, 0.99);
    let qps_ratio = idle_qps / qps.max(1e-9);
    println!(
        "idle-fleet saturation: {conns} conns x {ops_per_conn} ops behind {idle_count} idle \
         connections in {idle_wall_s:.2}s -> {idle_qps:.0} queries/s (ratio {qps_ratio:.3}), \
         p99 {idle_p99:.1}us"
    );

    // ---- phase 3: drain and gate ----
    let mut client =
        Client::connect_with_retry(&endpoint, std::time::Duration::from_secs(10)).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.vertices as u32, n,
        "stats frame must report the served graph"
    );
    client.shutdown().expect("shutdown");
    let report = server_thread.join().expect("server thread must not panic");
    assert!(!sock.exists(), "socket file must be gone after drain");

    let expected_queries = checked as u64 + load_queries + idle_queries;
    assert_eq!(
        report.queries, expected_queries,
        "server-side query count must reconcile with the client side"
    );
    assert_eq!(
        report.batch_queries,
        wire_items.len() as u64,
        "server-side batch count must reconcile"
    );
    let protocol_errors = report.protocol_errors;
    let pass = protocol_errors == 0
        && p99 <= p99_bar_us
        && qps_ratio >= MIN_IDLE_QPS_RATIO
        && report.deadline_closes == 0;

    println!(
        "drained: {} connections, {} queries ({} batched), {} protocol errors, \
         {} deadline closes",
        report.connections,
        report.queries,
        report.batch_queries,
        protocol_errors,
        report.deadline_closes
    );

    let mut artifact = String::from("{\n  \"experiment\": \"t17_serve\",\n");
    let _ = writeln!(artifact, "  \"quick\": {quick},");
    let _ = writeln!(artifact, "  \"n\": {n},");
    let _ = writeln!(artifact, "  \"workers\": {workers},");
    let _ = writeln!(artifact, "  \"differential_queries\": {checked},");
    let _ = writeln!(artifact, "  \"differential_mismatches\": {mismatches},");
    let _ = writeln!(artifact, "  \"batch_tuples\": {},", wire_items.len());
    let _ = writeln!(artifact, "  \"load_connections\": {conns},");
    let _ = writeln!(artifact, "  \"load_queries\": {load_queries},");
    let _ = writeln!(artifact, "  \"wall_s\": {wall_s:.3},");
    let _ = writeln!(artifact, "  \"qps\": {qps:.1},");
    let _ = writeln!(artifact, "  \"p50_us\": {p50:.2},");
    let _ = writeln!(artifact, "  \"p99_us\": {p99:.2},");
    let _ = writeln!(artifact, "  \"idle_connections\": {idle_count},");
    let _ = writeln!(artifact, "  \"idle_qps\": {idle_qps:.1},");
    let _ = writeln!(artifact, "  \"idle_p99_us\": {idle_p99:.2},");
    let _ = writeln!(artifact, "  \"idle_qps_ratio\": {qps_ratio:.4},");
    let _ = writeln!(artifact, "  \"protocol_errors\": {protocol_errors},");
    let _ = writeln!(
        artifact,
        "  \"deadline_closes\": {},",
        report.deadline_closes
    );
    let _ = writeln!(artifact, "  \"drained_clean\": true,");
    let _ = writeln!(
        artifact,
        "  \"gate\": {{\"max_p99_us\": {p99_bar_us:.0}, \"zero_protocol_errors\": true, \
         \"min_idle_qps_ratio\": {MIN_IDLE_QPS_RATIO}, \"pass\": {pass}}}"
    );
    artifact.push_str("}\n");
    std::fs::write(&out_path, &artifact).expect("write BENCH_serve.json");
    println!("\nwrote {out_path}");

    println!("\nExpected shape: the wire adds a socket round trip to an unchanged");
    println!("decode — bit-identical answers, QPS scaling with the worker pool, and");
    println!("a p99 that tracks the decode cost, not lock contention.");

    assert_eq!(
        protocol_errors, 0,
        "saturation gate: the run must be protocol-clean"
    );
    assert!(
        p99 <= p99_bar_us,
        "saturation gate: p99 {p99:.0}us exceeds {p99_bar_us:.0}us at {qps:.0} qps \
         ({conns} conns)"
    );
    assert!(
        qps_ratio >= MIN_IDLE_QPS_RATIO,
        "idle-fleet gate: {idle_qps:.0} qps behind {idle_count} idle connections is \
         {qps_ratio:.3}x the {qps:.0} qps baseline (bar: {MIN_IDLE_QPS_RATIO})"
    );
    assert_eq!(
        report.deadline_closes, 0,
        "no connection in this run stalls mid-frame; deadline closes must be zero"
    );
    println!(
        "\nacceptance: {qps:.0} qps with p99 {p99:.0}us <= {p99_bar_us:.0}us, \
         {qps_ratio:.3}x QPS behind {idle_count} idle connections \
         (bar {MIN_IDLE_QPS_RATIO}), 0 protocol errors"
    );
}
