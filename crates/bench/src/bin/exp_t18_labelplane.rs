//! Experiment T18 — the zero-copy label plane.
//!
//! Three claims about the serving-side label plane, each self-asserted:
//!
//! * **Lazy open wins cold starts.** `ForbiddenSetOracle::open_with(..,
//!   Lazy)` maps the segment and validates only header + index, so
//!   open-to-first-answer pays O(touched labels) instead of O(n). The
//!   gate: at the largest graph in the run, lazy open + first query is
//!   at least 5x faster than the eager warm open (open + prewarm) +
//!   the same query.
//! * **Batched varint decode wins the inner loop.** `codec::decode_with`
//!   pulls each field stream with `read_varint_batch` (one 16-byte
//!   window load amortized across many varints) instead of reloading
//!   the window per varint. The gate: >= 1.2x decode throughput over
//!   `codec::decode` on the |F|=4 working set (the six labels — s, t,
//!   and four faults — a faulty query actually touches).
//! * **The canonical codec earns its bit packing.** An ablation decodes
//!   the same labels through the byte-aligned group-varint codec
//!   (`fsdl_labels::groupvarint`); the canonical delta+bitpack encoding
//!   must stay within 1.1x of group-varint's mean bytes/label (it is
//!   normally well under 1x — smaller, at a decode-speed cost the
//!   batched reader claws back).
//!
//! Before any timing is trusted, a probe matrix with faults is asserted
//! bit-identical between the eager- and lazy-opened oracles — zero
//! tolerance, the lazy plane must be a cache, never an approximation.
//!
//! Results are printed as tables and written to `BENCH_labelplane.json`
//! (`--out PATH` redirects).

use std::fmt::Write as _;
use std::time::Instant;

use fsdl_bench::tables::{f1, Table};
use fsdl_graph::{generators, FaultSet, Graph, NodeId};
use fsdl_labels::codec::{self, VarintScratch};
use fsdl_labels::{groupvarint, ForbiddenSetOracle, OpenMode};

struct Measurement {
    family: String,
    n: usize,
    eager_open_ms: f64,
    lazy_open_ms: f64,
    single_ns_per_label: f64,
    batched_ns_per_label: f64,
    canonical_bytes_per_label: f64,
    groupvarint_bytes_per_label: f64,
    groupvarint_ns_per_label: f64,
    probes: usize,
}

impl Measurement {
    fn open_speedup(&self) -> f64 {
        self.eager_open_ms / self.lazy_open_ms.max(1e-6)
    }

    fn decode_speedup(&self) -> f64 {
        self.single_ns_per_label / self.batched_ns_per_label.max(1e-3)
    }

    fn size_ratio(&self) -> f64 {
        self.canonical_bytes_per_label / self.groupvarint_bytes_per_label.max(1e-6)
    }
}

/// The six labels a |F|=4 faulty query touches: source, target, and the
/// four forbidden vertices — the real working set of the decode loop.
fn working_set(q: usize, n: usize) -> [usize; 6] {
    let s = (q * 7919) % n;
    let t = (q * 104_729 + 1) % n;
    [
        s,
        t,
        (s + t + 1) % n,
        (s * 3 + 5) % n,
        (t * 5 + 11) % n,
        (s + t * 7 + 17) % n,
    ]
}

/// Probes both oracles across a matrix of (s, t) pairs with mixed
/// vertex + edge faults; panics on the first divergence.
fn assert_bit_identity(eager: &ForbiddenSetOracle, lazy: &ForbiddenSetOracle, g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut probes = 0;
    for s in (0..n).step_by((n / 12).max(1)) {
        for t in (0..n).step_by((n / 8).max(1)) {
            let (s, t) = (NodeId::from_index(s), NodeId::from_index(t));
            let mut faults =
                FaultSet::from_vertices([NodeId::from_index((s.index() + t.index() + 1) % n)]);
            if let Some(&w) = g.neighbors(s).first() {
                let w = NodeId::new(w);
                faults.forbid_edge_unchecked(s.min(w), s.max(w));
            }
            assert_eq!(
                eager.query(s, t, &faults),
                lazy.query(s, t, &faults),
                "lazy-opened oracle diverged from eager at {s}->{t}"
            );
            probes += 1;
        }
    }
    probes
}

/// Encodes every label of `oracle` through the canonical codec,
/// returning `(bytes, bit_len)` per vertex.
fn canonical_payloads(oracle: &ForbiddenSetOracle, n: usize) -> Vec<(Vec<u8>, usize)> {
    (0..n)
        .map(|v| {
            let label = oracle.label(NodeId::from_index(v));
            let w = codec::try_encode(&label, n).expect("canonical encode");
            (w.as_bytes().to_vec(), w.len_bits())
        })
        .collect()
}

fn measure(family: &str, g: &Graph, dir: &std::path::Path, rounds: usize) -> Measurement {
    let n = g.num_vertices();
    let built = ForbiddenSetOracle::new(g, 1.0);
    built.prewarm_workers(0);
    built.save(dir).expect("save store generation");

    let probe = |oracle: &ForbiddenSetOracle| {
        let f = FaultSet::from_vertices([NodeId::from_index(n / 2)]);
        oracle.query(NodeId::from_index(0), NodeId::from_index(n - 1), &f)
    };

    // Eager warm open: whole-file checksum + full prewarm, then a query.
    let start = Instant::now();
    let eager = ForbiddenSetOracle::open_with(dir, g, OpenMode::Eager).expect("eager open");
    eager.prewarm_workers(0);
    let eager_answer = probe(&eager);
    let eager_open_ms = start.elapsed().as_secs_f64() * 1e3;

    // Lazy open: header + index validation only, then the same query —
    // it decodes exactly the labels the query touches.
    let start = Instant::now();
    let lazy = ForbiddenSetOracle::open_with(dir, g, OpenMode::Lazy).expect("lazy open");
    let lazy_answer = probe(&lazy);
    let lazy_open_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(eager_answer, lazy_answer, "first answers diverged");

    let probes = assert_bit_identity(&eager, &lazy, g);

    // Decode throughput on the |F|=4 working set, single-window reader
    // vs batched. One untimed warm-up of each path first, so neither
    // timed pass pays cold caches or first-touch page faults.
    let payloads = canonical_payloads(&built, n);
    let queries = 64.min(n);
    let mut scratch = VarintScratch::new();
    let mut time_decodes = |batched: bool, rounds: usize| -> f64 {
        let start = Instant::now();
        let mut decoded = 0usize;
        for _ in 0..rounds {
            for q in 0..queries {
                for v in working_set(q, n) {
                    let (bytes, bits) = &payloads[v];
                    let label = if batched {
                        codec::decode_with(bytes, *bits, n, &mut scratch)
                    } else {
                        codec::decode(bytes, *bits, n)
                    }
                    .expect("decode canonical payload");
                    std::hint::black_box(&label);
                    decoded += 1;
                }
            }
        }
        start.elapsed().as_nanos() as f64 / decoded as f64
    };
    // Interleaved min-of-3 after a warm-up of each path: the minimum is
    // robust to scheduler noise, and interleaving cancels thermal drift
    // between the two paths.
    time_decodes(false, 1);
    time_decodes(true, 1);
    let mut single_ns_per_label = f64::INFINITY;
    let mut batched_ns_per_label = f64::INFINITY;
    for _ in 0..3 {
        single_ns_per_label = single_ns_per_label.min(time_decodes(false, rounds));
        batched_ns_per_label = batched_ns_per_label.min(time_decodes(true, rounds));
    }

    // Codec ablation: same labels through the byte-aligned group-varint
    // codec — bytes/label and decode ns/label.
    let gv_payloads: Vec<Vec<u8>> = (0..n)
        .map(|v| {
            let label = built.label(NodeId::from_index(v));
            groupvarint::encode(&label, n).expect("groupvarint encode")
        })
        .collect();
    for (v, bytes) in gv_payloads.iter().enumerate() {
        let label = groupvarint::decode(bytes, n).expect("groupvarint decode");
        assert_eq!(label, *built.label(NodeId::from_index(v)), "ablation lied");
    }
    let start = Instant::now();
    let mut decoded = 0usize;
    for _ in 0..rounds {
        for q in 0..queries {
            for v in working_set(q, n) {
                std::hint::black_box(
                    groupvarint::decode(&gv_payloads[v], n).expect("groupvarint decode"),
                );
                decoded += 1;
            }
        }
    }
    let groupvarint_ns_per_label = start.elapsed().as_nanos() as f64 / decoded as f64;

    let canonical_bytes: usize = payloads.iter().map(|(b, _)| b.len()).sum();
    let gv_bytes: usize = gv_payloads.iter().map(Vec::len).sum();

    Measurement {
        family: family.to_string(),
        n,
        eager_open_ms,
        lazy_open_ms,
        single_ns_per_label,
        batched_ns_per_label,
        canonical_bytes_per_label: canonical_bytes as f64 / n as f64,
        groupvarint_bytes_per_label: gv_bytes as f64 / n as f64,
        groupvarint_ns_per_label,
        probes,
    }
}

fn json_artifact(results: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"t18_labelplane\",\n  \"rows\": [\n");
    for (k, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \
             \"eager_open_ms\": {:.3}, \"lazy_open_ms\": {:.3}, \"open_speedup\": {:.3}, \
             \"single_ns_per_label\": {:.1}, \"batched_ns_per_label\": {:.1}, \
             \"decode_speedup\": {:.3}, \
             \"canonical_bytes_per_label\": {:.2}, \"groupvarint_bytes_per_label\": {:.2}, \
             \"groupvarint_ns_per_label\": {:.1}, \"size_ratio\": {:.3}, \"probes\": {}}}{}",
            r.family,
            r.n,
            r.eager_open_ms,
            r.lazy_open_ms,
            r.open_speedup(),
            r.single_ns_per_label,
            r.batched_ns_per_label,
            r.decode_speedup(),
            r.canonical_bytes_per_label,
            r.groupvarint_bytes_per_label,
            r.groupvarint_ns_per_label,
            r.size_ratio(),
            r.probes,
            if k + 1 < results.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_labelplane.json")
        .to_string();

    println!("Experiment T18: zero-copy label plane — lazy open, batched decode, codec ablation (eps = 1)\n");

    let scale = if quick { 1 } else { 2 };
    let rounds = if quick { 8 } else { 40 };
    let families: Vec<(&str, Graph)> = vec![
        (
            "udg",
            generators::random_geometric(250 * scale, 0.11 / (scale as f64).sqrt(), 1),
        ),
        ("grid2d", generators::grid2d(16 * scale, 16 * scale)),
        ("path", generators::path(1024 * scale)),
    ];

    let base = std::env::temp_dir().join(format!("fsdl-exp-t18-{}", std::process::id()));
    let mut results = Vec::new();
    for (family, g) in &families {
        let dir = base.join(family);
        let _ = std::fs::remove_dir_all(&dir);
        results.push(measure(family, g, &dir, rounds));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);

    let mut open_table = Table::new(
        "open-to-first-answer: eager warm open (open + prewarm) vs lazy",
        &["family", "n", "eager ms", "lazy ms", "speedup", "probes"],
    );
    for r in &results {
        open_table.row(&[
            r.family.clone(),
            r.n.to_string(),
            f1(r.eager_open_ms),
            f1(r.lazy_open_ms),
            format!("{:.1}x", r.open_speedup()),
            r.probes.to_string(),
        ]);
    }
    open_table.print();
    println!();

    let mut decode_table = Table::new(
        "decode ns/label on the |F|=4 working set + codec ablation",
        &[
            "family",
            "single ns",
            "batched ns",
            "speedup",
            "canon B/label",
            "gv B/label",
            "gv ns",
        ],
    );
    for r in &results {
        decode_table.row(&[
            r.family.clone(),
            f1(r.single_ns_per_label),
            f1(r.batched_ns_per_label),
            format!("{:.2}x", r.decode_speedup()),
            f1(r.canonical_bytes_per_label),
            f1(r.groupvarint_bytes_per_label),
            f1(r.groupvarint_ns_per_label),
        ]);
    }
    decode_table.print();

    let artifact = json_artifact(&results);
    std::fs::write(&out_path, &artifact).expect("write BENCH_labelplane.json");
    println!("\nwrote {out_path}");
    println!("\nExpected shape: lazy open skips both the whole-file checksum and the");
    println!("O(n) prewarm, so its open-to-first-answer cost is a handful of label");
    println!("decodes; the batched reader amortizes window loads across each field");
    println!("stream; and the canonical codec stays at or under group-varint's size.");

    // Gate 1 — at the largest graph, lazy open-to-first-answer must beat
    // the eager warm open by >= 5x. Enforced in quick mode too.
    let largest = results
        .iter()
        .max_by_key(|r| r.n)
        .expect("at least one family");
    assert!(
        largest.open_speedup() >= 5.0,
        "lazy open speedup {:.2}x at {} (n = {}) is below the 5x bar",
        largest.open_speedup(),
        largest.family,
        largest.n
    );

    // Gate 2 — batched decode must hold a >= 1.2x win somewhere real:
    // judged at the largest graph (small-label families are dominated
    // by per-label fixed costs that batching cannot touch).
    assert!(
        largest.decode_speedup() >= 1.2,
        "batched decode speedup {:.2}x at {} is below the 1.2x bar",
        largest.decode_speedup(),
        largest.family
    );

    // Gate 3 — the canonical codec may not pay more than 10% size over
    // the byte-aligned ablation on any family (it normally wins).
    for r in &results {
        assert!(
            r.size_ratio() <= 1.1,
            "canonical codec is {:.3}x the group-varint size on {} — over the 1.1x bar",
            r.size_ratio(),
            r.family
        );
    }

    println!(
        "\nacceptance: lazy open {:.1}x (>= 5x) and batched decode {:.2}x (>= 1.2x) at {}; \
         worst size ratio {:.3}x (<= 1.1x)",
        largest.open_speedup(),
        largest.decode_speedup(),
        largest.family,
        results
            .iter()
            .map(Measurement::size_ratio)
            .fold(0.0, f64::max),
    );
}
