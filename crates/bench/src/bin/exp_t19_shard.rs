//! Experiment T19 — sharded scatter-gather serving: partition, route,
//! reassemble, and prove nothing changed.
//!
//! The labels are self-contained (a query touches only the `≤ 2 + |F|`
//! labels it names), so the label plane shards horizontally with no
//! cross-shard coupling: partition the vertex set, give each shard its
//! slice of the store, and put a scatter-gather router in front that
//! fetches the named labels and runs the decode locally. This
//! experiment certifies the two claims that make that deployment
//! shape worth having:
//!
//! 1. **Differential** — a 4-shard fleet behind the router answers
//!    seeded queries (single and batch frames, fault sets up to
//!    `max_faults`) *bit-identically* to the in-process oracle:
//!    distance, sketch statistics, and the witness path. Sharding adds
//!    transport and partitioning, never approximation. The run must
//!    also be protocol-clean: zero protocol errors and zero shard
//!    failures on both sides of the wire.
//! 2. **Scaling** — the fetch plane's capacity grows with the shard
//!    count. Each shard is benched *in isolation* (one loadgen thread
//!    speaking `label-fetch`, single-worker server, the core to
//!    itself) and the fleet capacity is the sum: on a host with a core
//!    per shard this *is* the wall-clock throughput, because shards
//!    share no state, no locks, and no sockets. Measuring concurrent
//!    wall-clock QPS instead would gate on the bench box's core count
//!    (a 1-core CI runner time-slices the fleet and measures the
//!    scheduler, not the architecture). Gate: aggregate capacity at
//!    S = 4 is ≥ 2.5x the S = 1 capacity (≥ 1.5x under `--quick`).
//!
//! A third, informational phase drives concurrent end-to-end queries
//! through the router and reports the QPS without gating on it — the
//! single router loop is the known ceiling for one client box, and the
//! deployment answer to that is more routers, not a bigger one.
//!
//! Results are printed and written to `BENCH_shard.json` (`--out PATH`
//! redirects). `--quick` shrinks everything for CI.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use fsdl_bench::serveload::{Op, OpStream, WorkloadConfig};
use fsdl_graph::{generators, NodeId};
use fsdl_labels::partition::{shard_dir_name, PartitionPlan, ShardStore};
use fsdl_labels::{write_shard_stores, DecodeScratch, ForbiddenSetOracle};
use fsdl_server::{
    Client, Endpoint, Router, RouterConfig, ServeEngine, ServeReport, Server, ServerConfig,
    ShutdownHandle, WireFaults,
};
use fsdl_testkit::Rng;

/// Labels fetched per `label-fetch` frame in the capacity bench — the
/// chunk a router would request for a mid-size fault set.
const FETCH_CHUNK: usize = 16;

/// Required aggregate-capacity scaling from S = 1 to S = 4.
const MIN_SCALING: f64 = 2.5;
const MIN_SCALING_QUICK: f64 = 1.5;

struct Fleet {
    endpoints: Vec<Endpoint>,
    handles: Vec<(std::thread::JoinHandle<ServeReport>, ShutdownHandle)>,
}

/// Writes `shards` shard stores for `oracle` under `dir` and serves
/// each on its own single-worker unix-socket server.
fn spawn_fleet(oracle: &ForbiddenSetOracle, dir: &Path, shards: u32) -> (PartitionPlan, Fleet) {
    let plan = PartitionPlan::for_oracle(oracle, shards);
    let reports = write_shard_stores(oracle, dir, &plan).expect("write shard stores");
    let mut endpoints = Vec::new();
    let mut handles = Vec::new();
    for report in &reports {
        let store =
            ShardStore::open(&dir.join(shard_dir_name(report.shard))).expect("reopen shard");
        let endpoint = Endpoint::Unix(dir.join(format!("shard-{}.sock", report.shard)));
        let server = Server::bind(
            &endpoint,
            ServeEngine::from_shard(store),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind shard");
        let handle = server.shutdown_handle();
        handles.push((std::thread::spawn(move || server.run()), handle));
        endpoints.push(endpoint);
    }
    (plan, Fleet { endpoints, handles })
}

fn stop_fleet(fleet: Fleet) -> u64 {
    let mut fetches = 0;
    for (thread, handle) in fleet.handles {
        handle.signal();
        fetches += thread.join().expect("shard thread").label_fetches;
    }
    fetches
}

/// One shard's isolated fetch capacity: a single client hammers the
/// shard with `calls` label-fetch frames of `FETCH_CHUNK` ids sampled
/// from the shard's own vertices. Returns frames per second.
fn fetch_capacity(endpoint: &Endpoint, owned: &[NodeId], calls: usize, seed: u64) -> f64 {
    let mut client = Client::connect_with_retry(endpoint, std::time::Duration::from_secs(10))
        .expect("connect for capacity bench");
    let mut rng = Rng::seed_from_u64(seed);
    let started = Instant::now();
    for _ in 0..calls {
        let ids: Vec<u32> = (0..FETCH_CHUNK)
            .map(|_| owned[(rng.next_u64() % owned.len() as u64) as usize].raw())
            .collect();
        let reply = client.label_fetch(ids).expect("capacity fetch");
        assert_eq!(reply.labels.len(), FETCH_CHUNK, "short fetch reply");
    }
    calls as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

/// Aggregate fleet capacity: each shard benched alone, capacities
/// summed. Returns (per-shard frames/s, aggregate frames/s).
fn fleet_capacity(
    plan: &PartitionPlan,
    fleet: &Fleet,
    calls_per_shard: usize,
    seed: u64,
) -> (Vec<f64>, f64) {
    let per_shard: Vec<f64> = fleet
        .endpoints
        .iter()
        .enumerate()
        .map(|(s, endpoint)| {
            let owned = plan.vertices_of(s as u32);
            fetch_capacity(endpoint, &owned, calls_per_shard, seed ^ s as u64)
        })
        .collect();
    let aggregate = per_shard.iter().sum();
    (per_shard, aggregate)
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fsdl-exp-t19-{tag}-{}", std::process::id()))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_shard.json")
        .to_string();
    let min_scaling = if quick { MIN_SCALING_QUICK } else { MIN_SCALING };

    println!("Experiment T19: sharded scatter-gather serving (eps = 0.5)\n");

    let side = if quick { 12 } else { 24 };
    let seed: u64 = 0x719;
    let g = generators::grid2d(side, side);
    let n = g.num_vertices() as u32;
    let oracle = ForbiddenSetOracle::new(&g, 0.5);

    // ---- phase 1: differential through the router, 4 shards ----
    let shards = 4u32;
    let dir = scratch_dir("diff");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let (plan, fleet) = spawn_fleet(&oracle, &dir, shards);
    let router = Router::bind(
        &Endpoint::Unix(dir.join("router.sock")),
        fleet.endpoints.clone(),
        plan.clone(),
        RouterConfig::default(),
    )
    .expect("bind router");
    let router_endpoint = router.local_endpoint().expect("router endpoint");
    let router_shutdown = router.shutdown_handle();
    let router_thread = std::thread::spawn(move || router.run());
    println!(
        "grid {side}x{side} (n = {n}) partitioned over {shards} shards, \
         router on {router_endpoint}"
    );

    let diff_queries = if quick { 200 } else { 1_000 };
    let config = WorkloadConfig::for_static(n, 0.8, 0.3, 4);
    let mut stream = OpStream::new(seed, 0, config.clone());
    let mut client = Client::connect_with_retry(&router_endpoint, std::time::Duration::from_secs(10))
        .expect("connect");
    let mut scratch = DecodeScratch::new();
    let mut mismatches = 0usize;
    let mut checked = 0usize;
    while checked < diff_queries {
        let Op::Query { s, t, faults } = stream.next_op() else {
            continue;
        };
        let wire = client.query(s, t, faults.clone()).expect("routed query");
        let local = oracle.query_with(
            NodeId::new(s),
            NodeId::new(t),
            &faults.to_fault_set(),
            &mut scratch,
        );
        let identical = wire.distance == local.distance.raw()
            && wire.sketch_vertices as usize == local.sketch_vertices
            && wire.sketch_edges as usize == local.sketch_edges
            && wire.path == local.path.iter().map(|v| v.raw()).collect::<Vec<_>>();
        if !identical {
            mismatches += 1;
            if mismatches <= 3 {
                eprintln!(
                    "MISMATCH {s}->{t} |F|={}: routed {} vs local {}",
                    faults.vertices.len(),
                    wire.distance,
                    local.distance.raw()
                );
            }
        }
        checked += 1;
    }
    println!("differential: {checked} routed queries, {mismatches} mismatches");

    // The same stream through batch frames: one scatter per frame,
    // per-item bit-identity.
    let mut stream = OpStream::new(seed, 1, config);
    let tuples: Vec<(u32, u32, WireFaults)> = std::iter::from_fn(|| Some(stream.next_op()))
        .filter_map(|op| match op {
            Op::Query { s, t, faults } => Some((s, t, faults)),
            Op::Churn { .. } => None,
        })
        .take(if quick { 64 } else { 256 })
        .collect();
    let wire_items = client.batch(tuples.clone()).expect("routed batch");
    let mut batch_mismatches = 0usize;
    for ((s, t, faults), item) in tuples.iter().zip(&wire_items) {
        let local = oracle.query_with(
            NodeId::new(*s),
            NodeId::new(*t),
            &faults.to_fault_set(),
            &mut scratch,
        );
        if item.distance != local.distance.raw()
            || item.sketch_vertices as usize != local.sketch_vertices
            || item.sketch_edges as usize != local.sketch_edges
        {
            batch_mismatches += 1;
        }
    }
    println!(
        "batch differential: {} tuples, {batch_mismatches} mismatches",
        wire_items.len()
    );

    // ---- phase 3 (interleaved while the fleet is up): informational
    // end-to-end router throughput under concurrent clients ----
    let rt_conns = 2usize;
    let rt_ops = if quick { 200 } else { 1_000 };
    let rt_started = Instant::now();
    let rt_queries: u64 = std::thread::scope(|scope| {
        (0..rt_conns)
            .map(|c| {
                let endpoint = router_endpoint.clone();
                scope.spawn(move || {
                    let mut client =
                        Client::connect_with_retry(&endpoint, std::time::Duration::from_secs(10))
                            .expect("connect");
                    let mut stream = OpStream::new(
                        seed ^ 0xE2E,
                        c as u64,
                        WorkloadConfig::for_static(n, 0.8, 0.25, 4),
                    );
                    let mut queries = 0u64;
                    while (queries as usize) < rt_ops {
                        let Op::Query { s, t, faults } = stream.next_op() else {
                            continue;
                        };
                        client.query(s, t, faults).expect("throughput query");
                        queries += 1;
                    }
                    queries
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("throughput conn"))
            .sum()
    });
    let router_qps = rt_queries as f64 / rt_started.elapsed().as_secs_f64().max(1e-9);
    println!(
        "router end-to-end (informational): {rt_conns} conns, {rt_queries} queries \
         -> {router_qps:.0} queries/s"
    );

    let stats = client.stats().expect("stats");
    let stats_protocol_errors = stats.protocol_errors;
    client.shutdown().expect("shutdown");
    let report = router_thread.join().expect("router thread");
    drop(router_shutdown);
    let shard_fetches = stop_fleet(fleet);
    println!(
        "router drained: {} queries ({} batched), {} upstream fetches \
         ({shard_fetches} served by shards), {} protocol errors, {} shard failures",
        report.queries,
        report.batch_queries,
        report.upstream_fetches,
        report.protocol_errors,
        report.shard_failures
    );
    let _ = std::fs::remove_dir_all(&dir);

    // ---- phase 2: fetch-plane capacity scaling, S = 1 vs S = 4 ----
    let calls = if quick { 2_000 } else { 8_000 };
    let mut capacities = Vec::new();
    for s in [1u32, shards] {
        let dir = scratch_dir(&format!("cap{s}"));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let (plan, fleet) = spawn_fleet(&oracle, &dir, s);
        let (per_shard, aggregate) = fleet_capacity(&plan, &fleet, calls, seed ^ 0xCAB);
        stop_fleet(fleet);
        let _ = std::fs::remove_dir_all(&dir);
        let detail: Vec<String> = per_shard.iter().map(|q| format!("{q:.0}")).collect();
        println!(
            "fetch capacity S={s}: [{}] frames/s isolated -> {aggregate:.0} aggregate",
            detail.join(", ")
        );
        capacities.push((s, per_shard, aggregate));
    }
    let capacity_1 = capacities[0].2;
    let capacity_s = capacities[1].2;
    let scaling = capacity_s / capacity_1.max(1e-9);
    println!(
        "scaling: {scaling:.2}x from S=1 to S={shards} (gate: >= {min_scaling}x)"
    );

    let pass = mismatches == 0
        && batch_mismatches == 0
        && report.protocol_errors == 0
        && report.shard_failures == 0
        && stats_protocol_errors == 0
        && scaling >= min_scaling;

    let mut artifact = String::from("{\n  \"experiment\": \"t19_shard\",\n");
    let _ = writeln!(artifact, "  \"quick\": {quick},");
    let _ = writeln!(artifact, "  \"n\": {n},");
    let _ = writeln!(artifact, "  \"shards\": {shards},");
    let _ = writeln!(artifact, "  \"differential_queries\": {checked},");
    let _ = writeln!(artifact, "  \"differential_mismatches\": {mismatches},");
    let _ = writeln!(artifact, "  \"batch_tuples\": {},", wire_items.len());
    let _ = writeln!(artifact, "  \"batch_mismatches\": {batch_mismatches},");
    let _ = writeln!(artifact, "  \"upstream_fetches\": {},", report.upstream_fetches);
    let _ = writeln!(artifact, "  \"protocol_errors\": {},", report.protocol_errors);
    let _ = writeln!(artifact, "  \"shard_failures\": {},", report.shard_failures);
    let _ = writeln!(artifact, "  \"router_qps_informational\": {router_qps:.1},");
    let _ = writeln!(artifact, "  \"fetch_calls_per_shard\": {calls},");
    let _ = writeln!(artifact, "  \"fetch_chunk\": {FETCH_CHUNK},");
    for (s, per_shard, aggregate) in &capacities {
        let detail: Vec<String> = per_shard.iter().map(|q| format!("{q:.1}")).collect();
        let _ = writeln!(
            artifact,
            "  \"capacity_s{s}\": {{\"per_shard_fps\": [{}], \"aggregate_fps\": {aggregate:.1}}},",
            detail.join(", ")
        );
    }
    let _ = writeln!(artifact, "  \"scaling\": {scaling:.4},");
    let _ = writeln!(
        artifact,
        "  \"gate\": {{\"min_scaling\": {min_scaling}, \"zero_mismatches\": true, \
         \"zero_protocol_errors\": true, \"zero_shard_failures\": true, \"pass\": {pass}}}"
    );
    artifact.push_str("}\n");
    std::fs::write(&out_path, &artifact).expect("write BENCH_shard.json");
    println!("\nwrote {out_path}");

    println!("\nExpected shape: routed answers identical to the in-process oracle in");
    println!("every field, and fetch-plane capacity growing linearly with the shard");
    println!("count — each shard serves its slice at full rate because shards share");
    println!("nothing.");

    assert_eq!(mismatches, 0, "routed answers must be bit-identical");
    assert_eq!(batch_mismatches, 0, "routed batch items must be bit-identical");
    assert_eq!(
        report.protocol_errors, 0,
        "the differential run must be protocol-clean"
    );
    assert_eq!(report.shard_failures, 0, "no shard may fail mid-run");
    assert_eq!(stats_protocol_errors, 0, "router stats must be clean");
    assert!(
        scaling >= min_scaling,
        "scaling gate: aggregate fetch capacity grew {scaling:.2}x from S=1 to \
         S={shards} (bar: {min_scaling}x)"
    );
    println!(
        "\nacceptance: {checked}+{} bit-identical routed answers, 0 protocol errors, \
         0 shard failures, {scaling:.2}x fetch-plane scaling (bar {min_scaling}x)",
        wire_items.len()
    );
}
