//! Experiment T1 — Theorem 2.1 stretch validation.
//!
//! For every workload family, precision `ε`, and fault-set size `|F|`, runs
//! randomized queries and reports realized stretch against exact ground
//! truth, plus the fault-oblivious baseline's violation rate (how often
//! ignoring `F` under-reports the true surviving distance). Expected shape:
//! `max stretch ≤ 1 + ε` always, usually far below; the oblivious baseline
//! violates frequently as soon as `|F| > 0`.

use fsdl_baselines::{ExactOracle, FaultObliviousBaseline};
use fsdl_bench::measure::{measure_stretch, measure_stretch_adversarial, random_faults};
use fsdl_bench::tables::{f3, Table};
use fsdl_bench::workloads::{audit, stretch_suite};
use fsdl_graph::NodeId;
use fsdl_labels::ForbiddenSetOracle;
use fsdl_testkit::Rng;

fn main() {
    println!("Experiment T1: forbidden-set (1+eps) stretch (Theorem 2.1)\n");

    let mut table = Table::new(
        "stretch vs family, eps, |F| (random faults, 60 queries each)",
        &[
            "family", "n", "alpha~", "eps", "|F|", "max", "mean", "exact%", "disconn",
        ],
    );
    for w in stretch_suite() {
        let alpha = audit(&w);
        for &eps in &[0.5, 1.0, 2.0] {
            let oracle = ForbiddenSetOracle::new(&w.graph, eps);
            for &nf in &[0usize, 1, 4, 8] {
                let stats = measure_stretch(&w.graph, &oracle, nf, 60, 0xF00D + nf as u64);
                assert!(
                    stats.max_stretch <= 1.0 + eps + 1e-9,
                    "stretch guarantee violated on {}",
                    w.name
                );
                table.row(&[
                    w.name.clone(),
                    w.n().to_string(),
                    alpha.to_string(),
                    format!("{eps}"),
                    nf.to_string(),
                    f3(stats.max_stretch),
                    f3(stats.mean_stretch),
                    format!("{:.0}%", stats.exact_fraction * 100.0),
                    stats.disconnected.to_string(),
                ]);
            }
        }
    }
    table.print();

    // Adversarial fault sets: articulation points, bridges, hubs.
    let mut adversarial = Table::new(
        "adversarial (cut-structure) faults, eps = 1, 40 queries each",
        &["family", "|F|", "max", "mean", "exact%", "disconn"],
    );
    for w in stretch_suite() {
        let oracle = ForbiddenSetOracle::new(&w.graph, 1.0);
        for &nf in &[2usize, 6] {
            let stats = measure_stretch_adversarial(&w.graph, &oracle, nf, 40, 0xAD);
            assert!(
                stats.max_stretch <= 2.0 + 1e-9,
                "adversarial stretch violated"
            );
            adversarial.row(&[
                w.name.clone(),
                nf.to_string(),
                f3(stats.max_stretch),
                f3(stats.mean_stretch),
                format!("{:.0}%", stats.exact_fraction * 100.0),
                stats.disconnected.to_string(),
            ]);
        }
    }
    adversarial.print();

    // Fault-oblivious baseline: how often does ignoring F under-report the
    // surviving distance?
    let mut baseline_table = Table::new(
        "fault-oblivious baseline violation rate (answers < d_{G\\F})",
        &["family", "|F|", "violations", "queries"],
    );
    for w in stretch_suite() {
        let exact = ExactOracle::new(&w.graph);
        let oblivious = FaultObliviousBaseline::new(&w.graph, 1.0);
        let mut rng = Rng::seed_from_u64(0xBAD);
        for &nf in &[1usize, 4] {
            let mut violations = 0usize;
            let rounds = 40usize;
            for _ in 0..rounds {
                let s = NodeId::from_index(rng.gen_range(0..w.n()));
                let t = NodeId::from_index(rng.gen_range(0..w.n()));
                let f = random_faults(&w.graph, nf, s, t, &mut rng);
                let truth = exact.distance(s, t, &f);
                let naive = oblivious.distance_ignoring_faults(s, t, &f);
                let violated = match (naive.finite(), truth.finite()) {
                    (Some(nd), Some(td)) => nd < td,
                    (Some(_), None) => true, // claims a path that does not exist
                    _ => false,
                };
                if violated {
                    violations += 1;
                }
            }
            baseline_table.row(&[
                w.name.clone(),
                nf.to_string(),
                violations.to_string(),
                rounds.to_string(),
            ]);
        }
    }
    baseline_table.print();

    println!(
        "PASS: all queries within the 1+eps guarantee; oblivious baseline violates as expected."
    );
}
