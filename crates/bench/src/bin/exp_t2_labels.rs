//! Experiment T2 — Lemma 2.5 label length `O(1+ε⁻¹)^{2α} log² n`.
//!
//! Three sweeps:
//!
//! 1. `n` sweep on paths (`α = 1`): mean label bits should grow like
//!    `log² n` — the table reports `bits / log² n`, which should flatten;
//! 2. `ε` sweep at fixed graph: bits grow as `ε` shrinks (exponent `2α` per
//!    halving once `c` starts moving);
//! 3. dimension sweep on `G_{p,d}` at matched `n`: bits grow exponentially
//!    in `α` — the paper's "huge constants" made visible.

use fsdl_bench::measure::measure_label_sizes;
use fsdl_bench::tables::{f1, Table};
use fsdl_bench::workloads::{audit, dimension_sweep, size_sweep_paths};
use fsdl_graph::generators;
use fsdl_labels::{ForbiddenSetOracle, SchemeParams};

fn main() {
    println!("Experiment T2: label length (Lemma 2.5)\n");

    let mut t1 = Table::new(
        "n sweep on paths (alpha = 1, eps = 1): bits ~ log^2 n",
        &[
            "n",
            "mean bits",
            "fixed-width bits",
            "entries",
            "bits/log2(n)^2",
        ],
    );
    for w in size_sweep_paths() {
        let oracle = ForbiddenSetOracle::new(&w.graph, 1.0);
        let s = measure_label_sizes(&oracle, 16);
        let mid = oracle
            .labeling()
            .label_of(fsdl_graph::NodeId::from_index(w.n() / 2));
        let fixed = fsdl_labels::codec::encoded_bits_fixed(&mid, w.n());
        let log2n = (w.n() as f64).log2();
        t1.row(&[
            w.n().to_string(),
            f1(s.mean_bits),
            fixed.to_string(),
            f1(s.mean_entries),
            f1(s.mean_bits / (log2n * log2n)),
        ]);
    }
    t1.print();

    let mut t2 = Table::new(
        "eps sweep on path-2048 (alpha = 1): bits vs precision",
        &["eps", "c", "mean bits", "max bits", "guaranteed"],
    );
    let g = generators::path(2048);
    for &eps in &[4.0, 2.0, 1.0, 0.5, 0.25] {
        let params = SchemeParams::new(eps, g.num_vertices());
        let c = params.c();
        let oracle = ForbiddenSetOracle::with_params(&g, params);
        let s = measure_label_sizes(&oracle, 12);
        t2.row(&[
            format!("{eps}"),
            c.to_string(),
            f1(s.mean_bits),
            s.max_bits.to_string(),
            "yes".into(),
        ]);
    }
    t2.print();

    let mut t3 = Table::new(
        "dimension sweep at n ~ 1760 (eps = 2): bits vs alpha",
        &["family", "n", "alpha~", "mean bits", "max bits", "entries"],
    );
    for w in dimension_sweep() {
        let alpha = audit(&w);
        let oracle = ForbiddenSetOracle::new(&w.graph, 2.0);
        let s = measure_label_sizes(&oracle, 6);
        t3.row(&[
            w.name.clone(),
            w.n().to_string(),
            alpha.to_string(),
            f1(s.mean_bits),
            s.max_bits.to_string(),
            f1(s.mean_entries),
        ]);
    }
    t3.print();

    // Where do the bits live? Per-level breakdown on one instance.
    let g = generators::grid2d(12, 12);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let mut t4 = Table::new(
        "per-level breakdown, grid-12x12 (eps = 1): the low levels dominate",
        &["level", "mean points", "mean virtual", "mean real"],
    );
    for r in oracle.labeling().level_report(8) {
        t4.row(&[
            r.level.to_string(),
            f1(r.mean_points),
            f1(r.mean_virtual_edges),
            f1(r.mean_real_edges),
        ]);
    }
    t4.print();

    println!("Expected shape: col 5 of table 1 flattens (log^2 n law);");
    println!("table 2 grows as eps shrinks; table 3 grows steeply with alpha;");
    println!("table 4 shows the (O(1)/eps)^2a constant living in the low levels.");
}
