//! Experiment T3 — Lemma 2.6 query time `O(1+ε⁻¹)^{2α}·|F|² log n`.
//!
//! Sweeps `|F|` on a fixed graph and times the decoder (labels
//! pre-materialized so only decoding is measured), reporting microseconds
//! per query, sketch sizes, and the ratio to the previous row — for an
//! `|F|²` law the time ratio should approach 4 as `|F|` doubles (it is
//! below 4 while the `|F|`-linear sketch-construction term dominates).
//! The exact-BFS baseline is timed for comparison: its cost is flat in
//! `|F|` but proportional to the whole graph.

use fsdl_bench::measure::{measure_exact_time, measure_query_time};
use fsdl_bench::tables::{f1, f3, Table};
use fsdl_graph::generators;
use fsdl_labels::ForbiddenSetOracle;

fn main() {
    println!("Experiment T3: query time vs |F| (Lemma 2.6)\n");

    for (name, g) in [
        ("cycle-1024", generators::cycle(1024)),
        ("grid-16x16", generators::grid2d(16, 16)),
    ] {
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let mut table = Table::new(
            format!("{name}: decoder time vs |F| (eps = 1, 30 queries/row)"),
            &[
                "|F|",
                "us/query",
                "ratio",
                "sketch V",
                "sketch E",
                "exact BFS us",
            ],
        );
        let mut prev = 0.0f64;
        for &nf in &[1usize, 2, 4, 8, 16, 32] {
            let (micros, sv, se) = measure_query_time(&g, &oracle, nf, 30, 77);
            let exact_us = measure_exact_time(&g, nf, 30, 77);
            let ratio = if prev > 0.0 { micros / prev } else { f64::NAN };
            table.row(&[
                nf.to_string(),
                f1(micros),
                if ratio.is_nan() {
                    "-".into()
                } else {
                    f3(ratio)
                },
                f1(sv),
                f1(se),
                f1(exact_us),
            ]);
            prev = micros;
        }
        table.print();
    }

    println!("Expected shape: us/query grows superlinearly in |F| (toward x4 per doubling);");
    println!("exact BFS is flat in |F| but scales with graph size, not label size.");
}
