//! Experiment T4 — Theorem 2.7 routing: stretch `1+ε`, table and header
//! sizes.
//!
//! Routes random packets under random fault sets through the simulator
//! (local forwarding only), verifying delivery and measuring realized hop
//! stretch, header length, and routing-table size. Expected shape: routing
//! stretch equals the labeling stretch (≤ 1+ε), headers are short (a few
//! waypoints), tables have the same size law as labels.

use fsdl_bench::measure::random_faults;
use fsdl_bench::tables::{f1, f3, Table};
use fsdl_bench::workloads::stretch_suite;
use fsdl_graph::{bfs, NodeId};
use fsdl_routing::{Network, RouteFailure};
use fsdl_testkit::Rng;

fn main() {
    println!("Experiment T4: forbidden-set routing (Theorem 2.7)\n");

    let eps = 1.0;
    let mut table = Table::new(
        "routing under random faults (eps = 1, 40 packets/row)",
        &[
            "family",
            "|F|",
            "delivered",
            "unreach",
            "max stretch",
            "mean header",
            "mean table bits",
        ],
    );
    for w in stretch_suite() {
        let net = Network::new(&w.graph, eps);
        let mut rng = Rng::seed_from_u64(0x2077);
        for &nf in &[0usize, 2, 6] {
            let mut delivered = 0usize;
            let mut unreachable = 0usize;
            let mut max_stretch: f64 = 1.0;
            let mut header_sum = 0usize;
            let rounds = 40usize;
            for _ in 0..rounds {
                let s = NodeId::from_index(rng.gen_range(0..w.n()));
                let t = NodeId::from_index(rng.gen_range(0..w.n()));
                let f = random_faults(&w.graph, nf, s, t, &mut rng);
                let truth = bfs::pair_distance_avoiding(&w.graph, s, t, &f);
                match net.route(s, t, &f) {
                    Ok(d) => {
                        delivered += 1;
                        header_sum += d.header.len();
                        let td = truth.finite().expect("delivered implies connected");
                        if td > 0 {
                            max_stretch = max_stretch.max(d.hops as f64 / f64::from(td));
                        }
                    }
                    Err(RouteFailure::Unreachable) => {
                        assert!(truth.is_infinite(), "spurious unreachable");
                        unreachable += 1;
                    }
                    Err(e) => panic!("routing invariant violated on {}: {e}", w.name),
                }
            }
            assert!(max_stretch <= 1.0 + eps + 1e-9, "routing stretch violated");
            // Table size: sample a few vertices, measured by the bit-exact
            // codec.
            let max_deg = w.graph.max_degree();
            let mut table_bits = 0usize;
            let sample = [0usize, w.n() / 2, w.n() - 1];
            for &v in &sample {
                table_bits += net
                    .table(NodeId::from_index(v))
                    .encode(w.n(), max_deg)
                    .len_bits();
            }
            table.row(&[
                w.name.clone(),
                nf.to_string(),
                delivered.to_string(),
                unreachable.to_string(),
                f3(max_stretch),
                f1(header_sum as f64 / delivered.max(1) as f64),
                f1(table_bits as f64 / sample.len() as f64),
            ]);
        }
    }
    table.print();
    println!("PASS: every delivered packet avoided F and met the 1+eps hop bound.");
}
