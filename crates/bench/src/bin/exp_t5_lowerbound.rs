//! Experiment T5 — Theorem 3.1 lower bound `Ω(2^{α/2} + log n)`.
//!
//! Three parts:
//!
//! 1. the counting bound for the family `F_{n,α}` at several `(p, d)`:
//!    per-label bits `(|E(G_{p,d})| − |E(H_{p,d})|)/n` versus `2^{α/2}` and
//!    versus our scheme's *measured* label bits on a random member —
//!    bracketing the scheme between the bound and its upper-bound law;
//! 2. the everywhere-failure adjacency attack run end-to-end through our
//!    labeling oracle: exact reconstruction of a random member (the
//!    information really is in the labels);
//! 3. the path-distinctness check (`≥ n − 2` distinct labels on `P_n`).

use fsdl_bench::measure::measure_label_sizes;
use fsdl_bench::tables::{f1, Table};
use fsdl_bounds::{find_path_label_collision, reconstruct_graph, LowerBoundFamily};
use fsdl_graph::{generators, NodeId};
use fsdl_labels::ForbiddenSetOracle;

fn main() {
    println!("Experiment T5: connectivity lower bound (Theorem 3.1)\n");

    let mut t = Table::new(
        "counting bound vs measured label bits (eps = 3 connectivity regime)",
        &[
            "family",
            "n",
            "alpha=2d",
            "2^(a/2)",
            "free edges",
            "LB bits/label",
            "measured bits",
        ],
    );
    for (p, d) in [(4usize, 2usize), (6, 2), (8, 2), (3, 4)] {
        let fam = LowerBoundFamily::new(p, d);
        let member = fam.random_member(1234);
        let oracle = ForbiddenSetOracle::new(&member, 3.0);
        let s = measure_label_sizes(&oracle, 6);
        t.row(&[
            format!("F(p={p},d={d})"),
            fam.num_vertices().to_string(),
            fam.alpha().to_string(),
            (1u64 << (fam.alpha() / 2)).to_string(),
            fam.log2_size().to_string(),
            f1(fam.per_label_lower_bound_bits()),
            f1(s.mean_bits),
        ]);
        assert!(
            s.mean_bits >= fam.per_label_lower_bound_bits() / 64.0,
            "scheme labels implausibly below the counting bound"
        );
    }
    t.print();

    // Part 2: the attack, through our labels.
    let fam = LowerBoundFamily::new(3, 2);
    let member = fam.random_member(99);
    let oracle = ForbiddenSetOracle::new(&member, 3.0);
    let rebuilt = reconstruct_graph(&oracle);
    let ok = rebuilt == member;
    println!(
        "adjacency attack on F(p=3,d=2) member ({} vertices, {} edges): reconstruction {}",
        member.num_vertices(),
        member.num_edges(),
        if ok { "EXACT" } else { "FAILED" }
    );
    assert!(ok, "attack failed: labels did not determine the graph");

    // Part 3: path label distinctness.
    let n = 24;
    let g = generators::path(n);
    let oracle = ForbiddenSetOracle::new(&g, 2.0);
    let labels: Vec<Vec<u8>> = (0..n as u32)
        .map(|v| {
            let l = oracle.label(NodeId::new(v));
            fsdl_labels::codec::encode(&l, n).as_bytes().to_vec()
        })
        .collect();
    match find_path_label_collision(&labels) {
        None => println!("path P_{n}: all labels distinct (>= n-2 requirement satisfied)"),
        Some((x, y)) => panic!("label collision on path at ({x}, {y})"),
    }

    println!("\nExpected shape: LB bits/label grows ~2^(alpha/2); measured bits sit above it");
    println!("(up to the scheme's polylog factor), and the attack always reconstructs exactly.");
}
