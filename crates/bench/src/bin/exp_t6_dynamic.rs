//! Experiment T6 — the fully-dynamic oracle byproduct (STOC'12 transform).
//!
//! Streams random vertex/edge deletions and restorations through
//! [`DynamicOracle`] at several rebuild thresholds, reporting rebuild
//! counts, mean update time, and mean query time, with spot-checked
//! correctness against exact BFS on the live graph. Expected shape: a
//! `√n`-flavoured threshold balances update cost (rebuilds) against query
//! cost (`|F|²` decoding) — tiny thresholds rebuild constantly, huge ones
//! decode slowly.

use std::time::Instant;

use fsdl_baselines::ExactOracle;
use fsdl_bench::tables::{f1, Table};
use fsdl_graph::{generators, NodeId};
use fsdl_labels::DynamicOracle;
use fsdl_testkit::Rng;

fn main() {
    println!("Experiment T6: fully dynamic oracle (buffer + rebuild)\n");

    let g = generators::cycle(256);
    let exact = ExactOracle::new(&g);
    let n = g.num_vertices();
    let sqrt_n = (n as f64).sqrt().ceil() as usize;

    let mut table = Table::new(
        format!("cycle-256 (sqrt(n) = {sqrt_n}): 60 updates + 120 queries per threshold"),
        &[
            "threshold",
            "rebuilds",
            "mean update us",
            "mean query us",
            "checked",
        ],
    );

    for &threshold in &[1usize, 4, 16, sqrt_n, 64] {
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, threshold);
        let mut rng = Rng::seed_from_u64(0xD1CE);
        let mut update_time = 0.0f64;
        let mut deleted: Vec<NodeId> = Vec::new();
        let updates = 60usize;
        for _ in 0..updates {
            let start = Instant::now();
            if !deleted.is_empty() && rng.gen_bool(0.3) {
                let k = rng.gen_range(0..deleted.len());
                let v = deleted.swap_remove(k);
                oracle.restore_vertex(v).expect("v was deleted");
            } else {
                let v = NodeId::from_index(rng.gen_range(0..n));
                if !deleted.contains(&v) {
                    oracle.delete_vertex(v).expect("v in range");
                    deleted.push(v);
                }
            }
            update_time += start.elapsed().as_secs_f64();
        }
        // Queries with correctness spot checks against the live graph.
        let faults = oracle.current_faults();
        let mut query_time = 0.0f64;
        let mut checked = 0usize;
        let queries = 120usize;
        for _ in 0..queries {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            let start = Instant::now();
            let d = oracle.distance(s, t);
            query_time += start.elapsed().as_secs_f64();
            let truth = exact.distance(s, t, &faults);
            match (d.finite(), truth.finite()) {
                (None, None) => {}
                (Some(dd), Some(td)) => {
                    assert!(dd >= td, "unsound dynamic answer");
                    assert!(
                        f64::from(dd) <= 2.0 * f64::from(td) + 1e-9,
                        "dynamic stretch violated"
                    );
                }
                (a, b) => {
                    // Endpoint deleted: both sides must agree.
                    assert!(
                        faults.is_vertex_faulty(s) || faults.is_vertex_faulty(t),
                        "connectivity disagreement: {a:?} vs {b:?}"
                    );
                }
            }
            checked += 1;
        }
        table.row(&[
            threshold.to_string(),
            oracle.rebuilds().to_string(),
            f1(update_time * 1e6 / updates as f64),
            f1(query_time * 1e6 / queries as f64),
            checked.to_string(),
        ]);
    }
    table.print();
    println!("Expected shape: rebuilds fall as the threshold grows; query time rises with");
    println!("the buffered |F|; the sqrt(n) row balances the two (the STOC'12 tradeoff).");
}
