//! Experiment T7 — the oracle-size byproduct.
//!
//! The paper notes that the labels aggregate into a forbidden-set distance
//! oracle of size `n ×` label length, independent of the number of faults
//! tolerated. This binary reports, per family, the total oracle size in
//! bits/bytes and its per-vertex share — alongside the failure-free labels'
//! size for contrast (the price paid for fault tolerance).

use fsdl_bench::tables::{f1, Table};
use fsdl_bench::workloads::stretch_suite;
use fsdl_graph::NodeId;
use fsdl_labels::{FailureFreeLabeling, ForbiddenSetOracle};

fn main() {
    println!("Experiment T7: aggregated oracle size (byproduct)\n");

    let mut table = Table::new(
        "total oracle size (eps = 1)",
        &[
            "family",
            "n",
            "oracle bits",
            "KiB",
            "bits/vertex",
            "failure-free bits/vertex",
        ],
    );
    for w in stretch_suite() {
        let oracle = ForbiddenSetOracle::new(&w.graph, 1.0);
        let total = oracle.total_bits();
        let ff = FailureFreeLabeling::build(&w.graph, 1.0);
        let ff_bits: u64 = (0..w.n() as u32)
            .step_by((w.n() / 8).max(1))
            .map(|v| ff.label_bits(NodeId::new(v)) as u64)
            .sum::<u64>()
            / ((w.n() as u64 / (w.n() as u64 / 8).max(1)).max(1));
        table.row(&[
            w.name.clone(),
            w.n().to_string(),
            total.to_string(),
            f1(total as f64 / 8192.0),
            f1(total as f64 / w.n() as f64),
            ff_bits.to_string(),
        ]);
    }
    table.print();
    println!("Expected shape: oracle size = n x label bits, independent of |F|;");
    println!("fault tolerance costs a constant factor (the virtual-edge lists) over");
    println!("failure-free labels of the same stretch.");
}
