//! Experiment T8 — ablations of the design choices DESIGN.md calls out.
//!
//! Two ablations:
//!
//! 1. **Waypoint pruning** (our deviation 2): storing only virtual pairs
//!    with a waypoint-level endpoint vs. the paper's literal all-pairs
//!    `E(H_i(v))` — same stretch (asserted), labels several times smaller.
//! 2. **Precision offset `c`** below the guarantee threshold
//!    `⌈log₂(6/ε)⌉`: labels shrink while the *measured* stretch stays far
//!    below the now-voided guarantee — quantifying how conservative the
//!    worst-case schedule is on non-adversarial inputs.

use fsdl_bench::measure::{measure_label_sizes, measure_stretch};
use fsdl_bench::tables::{f1, f3, Table};
use fsdl_graph::generators;
use fsdl_labels::{ForbiddenSetOracle, Labeling, LabelingOptions, SchemeParams};

fn main() {
    println!("Experiment T8: ablations\n");

    // Ablation 1: waypoint pruning vs all-pairs labels.
    let mut t1 = Table::new(
        "waypoint pruning vs paper-literal all-pairs (eps = 1)",
        &[
            "family",
            "variant",
            "mean bits",
            "max stretch",
            "mean stretch",
        ],
    );
    for (name, g) in [
        ("grid-9x9", generators::grid2d(9, 9)),
        ("cycle-96", generators::cycle(96)),
    ] {
        for (variant, all_pairs) in [("pruned (ours)", false), ("all-pairs (paper)", true)] {
            let params = SchemeParams::new(1.0, g.num_vertices());
            let labeling = Labeling::build_with_options(&g, params, LabelingOptions { all_pairs });
            let oracle = oracle_from(labeling);
            let sizes = measure_label_sizes(&oracle, 8);
            let stats = measure_stretch(&g, &oracle, 4, 40, 0xAB1);
            assert!(
                stats.max_stretch <= 2.0 + 1e-9,
                "stretch broke under ablation"
            );
            t1.row(&[
                name.to_string(),
                variant.to_string(),
                f1(sizes.mean_bits),
                f3(stats.max_stretch),
                f3(stats.mean_stretch),
            ]);
        }
    }
    t1.print();

    // Ablation 2: c below the guarantee threshold.
    let mut t2 = Table::new(
        "precision offset c below the eps = 0.5 threshold (needs c >= 4) on cycle-128",
        &[
            "c",
            "guaranteed",
            "mean bits",
            "max stretch",
            "mean stretch",
        ],
    );
    let g = generators::cycle(128);
    for c in [2u32, 3, 4, 5] {
        let params = SchemeParams::with_c(0.5, c, g.num_vertices());
        let guaranteed = params.stretch_guaranteed();
        let oracle = ForbiddenSetOracle::with_params(&g, params);
        let sizes = measure_label_sizes(&oracle, 8);
        let stats = measure_stretch(&g, &oracle, 4, 40, 0xAB2);
        t2.row(&[
            c.to_string(),
            if guaranteed { "yes" } else { "no" }.to_string(),
            f1(sizes.mean_bits),
            f3(stats.max_stretch),
            f3(stats.mean_stretch),
        ]);
    }
    t2.print();

    println!("Expected shape: pruning shrinks labels materially at identical stretch;");
    println!("sub-threshold c shrinks labels further while measured stretch stays near 1 —");
    println!("the schedule's constants are worst-case, not typical-case.");
}

fn oracle_from(labeling: Labeling) -> ForbiddenSetOracle {
    // ForbiddenSetOracle::with_params rebuilds; expose a direct path via the
    // labeling-owning constructor.
    ForbiddenSetOracle::from_labeling(labeling)
}
