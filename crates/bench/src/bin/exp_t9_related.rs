//! Experiment T9 — positioning against the related work the paper builds
//! on and around.
//!
//! 1. **Courcelle–Twigg (treewidth)**: on trees (treewidth 1), the exact
//!    centroid-decomposition labels answer forbidden-set queries exactly
//!    with `O(log² n)` bits — orders of magnitude smaller than the doubling
//!    scheme on the same input. The doubling scheme's value is *generality*
//!    (it needs bounded doubling dimension, not bounded treewidth): on
//!    grids and unit-disk graphs the tree scheme does not apply at all.
//! 2. **Net-hierarchy spanner**: the classic `(1+ε)`-spanner from the same
//!    nets — a *global* structure of comparable total size to the label
//!    table, but not distributable and not fault-aware (removing `F` from
//!    the spanner loses the stretch guarantee; the table shows how often
//!    its fault-pruned distances overshoot).

use fsdl_baselines::{HubLabeling, TreeOracle};
use fsdl_bench::measure::measure_label_sizes;
use fsdl_bench::tables::{f1, f3, Table};
use fsdl_graph::{bfs, generators, FaultSet, NodeId, SketchGraph};
use fsdl_labels::ForbiddenSetOracle;
use fsdl_nets::Spanner;
use fsdl_testkit::Rng;

fn main() {
    println!("Experiment T9: related-work comparison\n");

    // Part 1: tree inputs — exact CT-style labels vs the doubling scheme.
    let mut t1 = Table::new(
        "trees: Courcelle-Twigg-style exact labels vs doubling labels (eps = 1)",
        &[
            "tree",
            "n",
            "CT mean bits",
            "CT exact",
            "doubling mean bits",
            "ratio",
        ],
    );
    for (name, tree) in [
        ("path-256", generators::path(256)),
        ("tree-2x7", generators::balanced_tree(2, 7)),
        ("caterpillar-40x2", generators::caterpillar(40, 2)),
    ] {
        let n = tree.num_vertices();
        let ct = TreeOracle::new(&tree);
        let (ct_mean, _) = ct.labeling().size_stats(n);
        // Spot-check CT exactness under faults.
        let mut rng = Rng::seed_from_u64(0x7E57);
        let mut all_exact = true;
        for _ in 0..30 {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            let f = NodeId::from_index(rng.gen_range(0..n));
            if f == s || f == t {
                continue;
            }
            let faults = FaultSet::from_vertices([f]);
            let got = ct.distance(s, t, &faults);
            let truth = bfs::pair_distance_avoiding(&tree, s, t, &faults);
            if got != truth {
                all_exact = false;
            }
        }
        let ours = ForbiddenSetOracle::new(&tree, 1.0);
        let sizes = measure_label_sizes(&ours, 8);
        t1.row(&[
            name.to_string(),
            n.to_string(),
            f1(ct_mean),
            if all_exact { "yes" } else { "NO" }.to_string(),
            f1(sizes.mean_bits),
            f1(sizes.mean_bits / ct_mean),
        ]);
        assert!(all_exact, "CT baseline must be exact on trees");
    }
    t1.print();

    // Part 2: the spanner is global and fault-oblivious.
    let mut t2 = Table::new(
        "spanner (global structure) vs labels under faults (grid-9x9, eps = 1)",
        &["|F|", "spanner-pruned max stretch", "labels max stretch"],
    );
    let g = generators::grid2d(9, 9);
    let spanner = Spanner::build(&g, 1.0);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let mut rng = Rng::seed_from_u64(0x5A);
    for &nf in &[1usize, 4] {
        let mut spanner_worst: f64 = 1.0;
        let mut label_worst: f64 = 1.0;
        for _ in 0..40 {
            let s = NodeId::from_index(rng.gen_range(0..81));
            let t = NodeId::from_index(rng.gen_range(0..81));
            let mut faults = FaultSet::empty();
            while faults.len() < nf {
                let v = NodeId::from_index(rng.gen_range(0..81));
                if v != s && v != t {
                    faults.forbid_vertex(v);
                }
            }
            let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
            let Some(td) = truth.finite() else { continue };
            if td == 0 {
                continue;
            }
            // Naive fault handling on the spanner: drop edges whose
            // *endpoints* are faulty (the spanner cannot tell which interior
            // vertices its virtual edges use).
            let mut pruned = SketchGraph::new();
            for (a, b, w) in spanner.edges() {
                if !faults.is_vertex_faulty(a) && !faults.is_vertex_faulty(b) {
                    pruned.add_edge(a, b, u64::from(w));
                }
            }
            if let Some(ds) = pruned.shortest_distance(s, t) {
                // The pruned spanner can under-report (paths through faulty
                // interiors) or over-report; measure |error| as stretch.
                let ratio = ds as f64 / f64::from(td);
                spanner_worst = spanner_worst.max(ratio.max(1.0 / ratio.max(1e-9)));
            }
            let dl = oracle.distance(s, t, &faults).finite().expect("connected");
            label_worst = label_worst.max(f64::from(dl) / f64::from(td));
        }
        t2.row(&[nf.to_string(), f3(spanner_worst), f3(label_worst)]);
    }
    t2.print();

    // Part 3: hub labels (exact, tiny, failure-free) vs the forbidden-set
    // scheme: size of what the paper proposes to generalize.
    let mut t3 = Table::new(
        "hub labels (PLL, exact, failure-free) vs forbidden-set labels (eps = 1)",
        &["family", "n", "hub mean bits", "hub exact", "fs mean bits"],
    );
    for (name, g) in [
        ("grid-10x10", generators::grid2d(10, 10)),
        ("udg-150", generators::random_geometric(150, 0.14, 8)),
    ] {
        let n = g.num_vertices();
        let hl = HubLabeling::build(&g);
        // Spot-check exactness.
        let mut rng = Rng::seed_from_u64(3);
        let mut exact_ok = true;
        for _ in 0..40 {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            let d = HubLabeling::query(&hl.label_of(s), &hl.label_of(t));
            let truth = bfs::pair_distance_avoiding(&g, s, t, &FaultSet::empty());
            if d != truth {
                exact_ok = false;
            }
        }
        assert!(exact_ok, "hub labels must be exact failure-free");
        let ours = ForbiddenSetOracle::new(&g, 1.0);
        let sizes = measure_label_sizes(&ours, 8);
        t3.row(&[
            name.to_string(),
            n.to_string(),
            f1(hl.mean_bits(n)),
            "yes".to_string(),
            f1(sizes.mean_bits),
        ]);
    }
    t3.print();

    println!("Expected shape: CT labels are far smaller *on trees* but do not generalize;");
    println!("the spanner (same nets, same total size class) mis-estimates under faults");
    println!("while the labels stay within 1+eps — fault awareness is the contribution.");
}
