//! `fsdl-loadgen` — seeded workload replay against a running `fsdl serve`.
//!
//! ```text
//! fsdl-loadgen --connect unix:/tmp/fsdl.sock [--seed N] [--conns C]
//!              [--ops N] [--zipf THETA] [--faults RATE] [--max-faults K]
//!              [--churn RATE] [--batch SIZE] [--idle-conns I] [--quick]
//!              [--shutdown yes]
//! ```
//!
//! Each of the `C` connections replays its own deterministic operation
//! stream (see `fsdl_bench::serveload` — the same generator the T17
//! experiment certifies differentially against the in-process oracle):
//! Zipf-skewed vertex pairs, optional per-query forbidden sets
//! (`--faults`, static servers), optional fault churn (`--churn`,
//! dynamic servers), optionally batched `--batch` queries per frame.
//! Reports sustained QPS and p50/p99 latency; exits nonzero if any
//! connection saw a protocol error or unexpected reply.
//!
//! `--idle-conns I` opens `I` extra connections that never send a byte
//! and holds them for the whole run — the many-mostly-idle-clients shape
//! an oracle service actually sees; a readiness-driven server must show
//! no QPS difference (the count is clamped below the process's fd soft
//! limit). `--shutdown yes` sends a shutdown frame after the run (for
//! smoke tests that own the server); `--quick` shrinks the run for CI.

use std::time::Instant;

use fsdl_bench::serveload::{churn_updates, percentile_us, Op, OpStream, WorkloadConfig};
use fsdl_server::{Client, ClientError, Endpoint, WireFaults};

struct Args {
    connect: Endpoint,
    seed: u64,
    conns: usize,
    ops: usize,
    zipf: f64,
    faults: f64,
    max_faults: usize,
    churn: f64,
    batch: usize,
    idle_conns: usize,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fsdl-loadgen --connect tcp:HOST:PORT|unix:PATH [--seed N] \
         [--conns C] [--ops N] [--zipf THETA] [--faults RATE] \
         [--max-faults K] [--churn RATE] [--batch SIZE] [--idle-conns I] \
         [--quick] [--shutdown yes]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut connect = None;
    let mut seed = 42u64;
    let mut conns = 4usize;
    let mut ops = 5_000usize;
    let mut zipf = 0.8f64;
    let mut faults = 0.25f64;
    let mut max_faults = 4usize;
    let mut churn = 0.0f64;
    let mut batch = 0usize;
    let mut idle_conns = 0usize;
    let mut shutdown = false;
    let mut quick = false;
    let mut i = 0;
    let value = |raw: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        raw.get(*i)
            .unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
            .clone()
    };
    while i < raw.len() {
        match raw[i].as_str() {
            "--connect" => {
                let v = value(&raw, &mut i, "--connect");
                connect = Some(if let Some(addr) = v.strip_prefix("tcp:") {
                    Endpoint::Tcp(addr.to_string())
                } else if let Some(path) = v.strip_prefix("unix:") {
                    Endpoint::Unix(path.into())
                } else {
                    eprintln!("error: --connect must be tcp:HOST:PORT or unix:PATH");
                    usage()
                });
            }
            "--seed" => {
                seed = value(&raw, &mut i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--conns" => {
                conns = value(&raw, &mut i, "--conns")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--ops" => {
                ops = value(&raw, &mut i, "--ops")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--zipf" => {
                zipf = value(&raw, &mut i, "--zipf")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--faults" => {
                faults = value(&raw, &mut i, "--faults")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--max-faults" => {
                max_faults = value(&raw, &mut i, "--max-faults")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--churn" => {
                churn = value(&raw, &mut i, "--churn")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--batch" => {
                batch = value(&raw, &mut i, "--batch")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--idle-conns" => {
                idle_conns = value(&raw, &mut i, "--idle-conns")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--shutdown" => shutdown = value(&raw, &mut i, "--shutdown") == "yes",
            "--quick" => quick = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag '{other}'");
                usage()
            }
        }
        i += 1;
    }
    if quick {
        conns = conns.min(2);
        ops = ops.min(400);
        idle_conns = idle_conns.min(200);
    }
    let Some(connect) = connect else {
        eprintln!("error: --connect is required");
        usage()
    };
    let valid = zipf.is_finite()
        && zipf >= 0.0
        && (0.0..=1.0).contains(&faults)
        && (0.0..=1.0).contains(&churn);
    if !valid {
        eprintln!("error: --zipf must be >= 0; --faults/--churn must be in [0, 1]");
        usage()
    }
    Args {
        connect,
        seed,
        conns,
        ops,
        zipf,
        faults,
        max_faults,
        churn,
        batch,
        idle_conns,
        shutdown,
    }
}

/// Opens `requested` connections that never send a byte, clamped below
/// the fd soft limit (each costs one fd here and one in the server,
/// which usually shares the host). Returns the held-open sockets.
fn open_idle_fleet(endpoint: &Endpoint, requested: usize) -> Vec<Client> {
    let budget = (fsdl_reactor::fd_soft_limit_or(640).saturating_sub(128) / 2) as usize;
    let count = requested.min(budget);
    if count < requested {
        eprintln!(
            "note: clamping --idle-conns {requested} to {count} \
             (fd soft limit {budget} after reserve)"
        );
    }
    let mut fleet = Vec::with_capacity(count);
    for k in 0..count {
        match Client::connect(endpoint) {
            Ok(c) => fleet.push(c),
            Err(e) => {
                eprintln!("error: idle connection {k} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    fleet
}

struct ConnReport {
    ops: u64,
    queries: u64,
    updates: u64,
    latencies_us: Vec<f64>,
}

/// Replays one connection's stream. Latency is measured per round-trip
/// (a batch frame is one sample covering `--batch` queries).
fn run_connection(args: &Args, conn: u64, n: u32) -> Result<ConnReport, ClientError> {
    let mut client = Client::connect(&args.connect)?;
    let config = if args.churn > 0.0 {
        WorkloadConfig::for_dynamic(n, args.zipf, args.churn)
    } else {
        WorkloadConfig::for_static(n, args.zipf, args.faults, args.max_faults)
    };
    let mut stream = OpStream::new(args.seed, conn, config);
    let mut report = ConnReport {
        ops: 0,
        queries: 0,
        updates: 0,
        latencies_us: Vec::with_capacity(args.ops),
    };
    let mut pending_batch: Vec<(u32, u32, WireFaults)> = Vec::new();
    for _ in 0..args.ops {
        match stream.next_op() {
            Op::Query { s, t, faults } => {
                if args.batch > 1 {
                    pending_batch.push((s, t, faults));
                    if pending_batch.len() == args.batch {
                        let frame = std::mem::take(&mut pending_batch);
                        let count = frame.len() as u64;
                        let start = Instant::now();
                        client.batch(frame)?;
                        report
                            .latencies_us
                            .push(start.elapsed().as_secs_f64() * 1e6);
                        report.queries += count;
                        report.ops += 1;
                    }
                } else {
                    let start = Instant::now();
                    client.query(s, t, faults)?;
                    report
                        .latencies_us
                        .push(start.elapsed().as_secs_f64() * 1e6);
                    report.queries += 1;
                    report.ops += 1;
                }
            }
            Op::Churn { v } => {
                for update in churn_updates(v) {
                    let start = Instant::now();
                    match client.update(update) {
                        Ok(_) => {
                            report
                                .latencies_us
                                .push(start.elapsed().as_secs_f64() * 1e6);
                            report.updates += 1;
                            report.ops += 1;
                        }
                        // A delete can race another connection's churn of
                        // the same hot vertex; the server answers typed,
                        // the workload moves on. Transport errors abort.
                        Err(ClientError::Server(_)) => {
                            report.ops += 1;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
    if !pending_batch.is_empty() {
        let count = pending_batch.len() as u64;
        let start = Instant::now();
        client.batch(std::mem::take(&mut pending_batch))?;
        report
            .latencies_us
            .push(start.elapsed().as_secs_f64() * 1e6);
        report.queries += count;
        report.ops += 1;
    }
    Ok(report)
}

fn main() {
    let args = parse_args();

    // One scout connection learns the graph size (and fails fast if the
    // server is unreachable or speaking something else).
    let stats = match Client::connect(&args.connect).and_then(|mut c| c.stats()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot reach server at {}: {e}", args.connect);
            std::process::exit(1);
        }
    };
    let n = u32::try_from(stats.vertices).unwrap_or(u32::MAX);
    if n == 0 {
        eprintln!("error: server reports an empty graph");
        std::process::exit(1);
    }
    if args.churn > 0.0 && stats.dynamic == 0 {
        eprintln!("error: --churn needs a dynamic server (serve --dynamic)");
        std::process::exit(1);
    }

    // The idle fleet connects BEFORE the workload threads: a
    // worker-starving server would park its pool on these and never
    // answer a single query below.
    let idle_fleet = open_idle_fleet(&args.connect, args.idle_conns);

    println!(
        "fsdl-loadgen: {} conns x {} ops against {} (n = {n}, seed {}, zipf {}, \
         faults {}, churn {}, batch {}, idle conns {})",
        args.conns,
        args.ops,
        args.connect,
        args.seed,
        args.zipf,
        args.faults,
        args.churn,
        args.batch,
        idle_fleet.len()
    );

    let started = Instant::now();
    let results: Vec<Result<ConnReport, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.conns)
            .map(|c| {
                let args = &args;
                scope.spawn(move || run_connection(args, c as u64, n))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();
    // The fleet stayed open for the whole measured window.
    drop(idle_fleet);

    let mut total_ops = 0u64;
    let mut total_queries = 0u64;
    let mut total_updates = 0u64;
    let mut transport_failures = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    for (c, result) in results.into_iter().enumerate() {
        match result {
            Ok(report) => {
                total_ops += report.ops;
                total_queries += report.queries;
                total_updates += report.updates;
                latencies.extend(report.latencies_us);
            }
            Err(e) => {
                eprintln!("connection {c} failed: {e}");
                transport_failures += 1;
            }
        }
    }

    let qps = total_queries as f64 / wall_s.max(1e-9);
    let p50 = percentile_us(&mut latencies, 0.50);
    let p99 = percentile_us(&mut latencies, 0.99);
    println!(
        "replayed {total_ops} ops ({total_queries} queries, {total_updates} updates) \
         in {wall_s:.2}s: {qps:.0} queries/s, p50 {p50:.1}us, p99 {p99:.1}us"
    );

    // The server's own error counter is the ground truth for protocol
    // hygiene: this run must not have tripped it.
    let server_errors = match Client::connect(&args.connect).and_then(|mut c| c.stats()) {
        Ok(after) => after.protocol_errors.saturating_sub(stats.protocol_errors),
        Err(e) => {
            eprintln!("error: cannot re-read server stats: {e}");
            transport_failures += 1;
            0
        }
    };
    println!("protocol errors during run: {server_errors}");

    if args.shutdown {
        match Client::connect(&args.connect).and_then(|mut c| c.shutdown()) {
            Ok(()) => println!("sent shutdown; server draining"),
            Err(e) => {
                eprintln!("error: shutdown failed: {e}");
                transport_failures += 1;
            }
        }
    }

    if transport_failures > 0 || server_errors > 0 {
        eprintln!(
            "FAIL: {transport_failures} transport failure(s), {server_errors} protocol error(s)"
        );
        std::process::exit(1);
    }
}
