//! # fsdl-bench — experiment harness shared plumbing
//!
//! The paper is theory-only, so the "tables and figures" this workspace
//! regenerates are the quantitative behaviours its theorems predict (see
//! `EXPERIMENTS.md` at the repository root for the full index). This crate
//! holds what every `exp_*` binary shares:
//!
//! * [`workloads`] — the named graph families with their advertised
//!   doubling dimensions (audited by the estimator before use);
//! * [`measure`] — stretch/size/time measurement runners against the exact
//!   baseline;
//! * [`tables`] — plain-text table rendering so every experiment prints the
//!   same way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measure;
pub mod serveload;
pub mod tables;
pub mod workloads;
