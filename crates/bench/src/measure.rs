//! Measurement runners shared by the experiment binaries.

use std::time::Instant;

use fsdl_baselines::ExactOracle;
use fsdl_graph::{FaultSet, Graph, NodeId};
use fsdl_labels::ForbiddenSetOracle;
use fsdl_testkit::Rng;

/// Aggregated stretch statistics over a batch of queries.
#[derive(Clone, Copy, Debug, Default)]
pub struct StretchStats {
    /// Number of connected (finite-truth) queries measured.
    pub queries: usize,
    /// Number of disconnected queries (decoder must agree; counted
    /// separately).
    pub disconnected: usize,
    /// Maximum realized stretch.
    pub max_stretch: f64,
    /// Mean realized stretch.
    pub mean_stretch: f64,
    /// Fraction of queries answered exactly (stretch = 1).
    pub exact_fraction: f64,
}

/// Samples a fault set of `size` elements (`vertex_bias` fraction vertices,
/// rest edges) avoiding `s`/`t` as fault vertices.
pub fn random_faults(g: &Graph, size: usize, s: NodeId, t: NodeId, rng: &mut Rng) -> FaultSet {
    let n = g.num_vertices();
    let mut f = FaultSet::empty();
    let mut attempts = 0;
    while f.len() < size && attempts < size * 50 + 100 {
        attempts += 1;
        if rng.gen_bool(0.7) {
            let v = NodeId::from_index(rng.gen_range(0..n));
            if v != s && v != t {
                f.forbid_vertex(v);
            }
        } else {
            let v = NodeId::from_index(rng.gen_range(0..n));
            let nbrs = g.neighbors(v);
            if !nbrs.is_empty() {
                let w = NodeId::new(nbrs[rng.gen_range(0..nbrs.len())]);
                f.forbid_edge_unchecked(v, w);
            }
        }
    }
    f
}

/// Runs `rounds` random queries with `fault_count` random faults each,
/// comparing the labeling oracle against exact ground truth.
///
/// # Panics
///
/// Panics if the decoder ever reports a spurious disconnection or a
/// distance below the truth (soundness violations).
pub fn measure_stretch(
    g: &Graph,
    oracle: &ForbiddenSetOracle,
    fault_count: usize,
    rounds: usize,
    seed: u64,
) -> StretchStats {
    let exact = ExactOracle::new(g);
    let mut rng = Rng::seed_from_u64(seed);
    let n = g.num_vertices();
    let mut stats = StretchStats {
        max_stretch: 1.0,
        ..StretchStats::default()
    };
    let mut sum = 0.0;
    let mut exact_hits = 0usize;
    for _ in 0..rounds {
        let s = NodeId::from_index(rng.gen_range(0..n));
        let t = NodeId::from_index(rng.gen_range(0..n));
        let f = random_faults(g, fault_count, s, t, &mut rng);
        let answer = oracle.distance(s, t, &f);
        let truth = exact.distance(s, t, &f);
        match truth.finite() {
            None => {
                assert!(answer.is_infinite(), "decoder invented a path {s}->{t}");
                stats.disconnected += 1;
            }
            Some(0) => {
                assert_eq!(answer.finite(), Some(0));
                stats.queries += 1;
                sum += 1.0;
                exact_hits += 1;
            }
            Some(td) => {
                let ad = answer
                    .finite()
                    .expect("decoder reported spurious disconnection");
                assert!(ad >= td, "unsound answer {ad} < truth {td}");
                let stretch = f64::from(ad) / f64::from(td);
                stats.queries += 1;
                sum += stretch;
                if ad == td {
                    exact_hits += 1;
                }
                if stretch > stats.max_stretch {
                    stats.max_stretch = stretch;
                }
            }
        }
    }
    if stats.queries > 0 {
        stats.mean_stretch = sum / stats.queries as f64;
        stats.exact_fraction = exact_hits as f64 / stats.queries as f64;
    }
    stats
}

/// Builds an adversarial fault set from the graph's cut structure:
/// articulation points first (maximal detours/disconnections), then
/// bridges, then the highest-degree vertices — skipping `s`/`t`.
pub fn adversarial_faults(g: &Graph, size: usize, s: NodeId, t: NodeId) -> FaultSet {
    let cs = fsdl_graph::cut::cut_structure(g);
    let mut f = FaultSet::empty();
    for ap in cs.articulation_points {
        if f.len() >= size {
            return f;
        }
        if ap != s && ap != t {
            f.forbid_vertex(ap);
        }
    }
    for e in cs.bridges {
        if f.len() >= size {
            return f;
        }
        f.forbid_edge_unchecked(e.lo(), e.hi());
    }
    let mut by_degree: Vec<NodeId> = g.vertices().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    for v in by_degree {
        if f.len() >= size {
            break;
        }
        if v != s && v != t && !f.is_vertex_faulty(v) {
            f.forbid_vertex(v);
        }
    }
    f
}

/// Like [`measure_stretch`] but with adversarial (cut-structure) fault sets
/// instead of random ones.
///
/// # Panics
///
/// Panics on any soundness violation (as [`measure_stretch`]).
pub fn measure_stretch_adversarial(
    g: &Graph,
    oracle: &ForbiddenSetOracle,
    fault_count: usize,
    rounds: usize,
    seed: u64,
) -> StretchStats {
    let exact = ExactOracle::new(g);
    let mut rng = Rng::seed_from_u64(seed);
    let n = g.num_vertices();
    let mut stats = StretchStats {
        max_stretch: 1.0,
        ..StretchStats::default()
    };
    let mut sum = 0.0;
    let mut exact_hits = 0usize;
    for _ in 0..rounds {
        let s = NodeId::from_index(rng.gen_range(0..n));
        let t = NodeId::from_index(rng.gen_range(0..n));
        let f = adversarial_faults(g, fault_count, s, t);
        let answer = oracle.distance(s, t, &f);
        let truth = exact.distance(s, t, &f);
        match truth.finite() {
            None => {
                assert!(answer.is_infinite(), "decoder invented a path {s}->{t}");
                stats.disconnected += 1;
            }
            Some(0) => {
                assert_eq!(answer.finite(), Some(0));
                stats.queries += 1;
                sum += 1.0;
                exact_hits += 1;
            }
            Some(td) => {
                let ad = answer.finite().expect("spurious disconnection");
                assert!(ad >= td, "unsound answer {ad} < truth {td}");
                let stretch = f64::from(ad) / f64::from(td);
                stats.queries += 1;
                sum += stretch;
                if ad == td {
                    exact_hits += 1;
                }
                if stretch > stats.max_stretch {
                    stats.max_stretch = stretch;
                }
            }
        }
    }
    if stats.queries > 0 {
        stats.mean_stretch = sum / stats.queries as f64;
        stats.exact_fraction = exact_hits as f64 / stats.queries as f64;
    }
    stats
}

/// Label-size statistics over sampled vertices.
#[derive(Clone, Copy, Debug, Default)]
pub struct SizeStats {
    /// Number of labels sampled.
    pub samples: usize,
    /// Mean encoded bits per label.
    pub mean_bits: f64,
    /// Maximum encoded bits.
    pub max_bits: usize,
    /// Mean stored entries (points + edges) per label.
    pub mean_entries: f64,
}

/// Samples `samples` vertex labels uniformly (deterministic stride) and
/// reports size statistics.
pub fn measure_label_sizes(oracle: &ForbiddenSetOracle, samples: usize) -> SizeStats {
    let n = oracle.labeling().graph().num_vertices();
    let samples = samples.min(n).max(1);
    let stride = (n / samples).max(1);
    let mut total_bits = 0usize;
    let mut total_entries = 0usize;
    let mut max_bits = 0usize;
    let mut count = 0usize;
    let mut v = 0usize;
    while v < n && count < samples {
        let id = NodeId::from_index(v);
        let label = oracle.labeling().label_of(id);
        let bits = fsdl_labels::codec::encoded_bits(&label, n);
        total_bits += bits;
        total_entries += label.stats().entries();
        max_bits = max_bits.max(bits);
        count += 1;
        v += stride;
    }
    SizeStats {
        samples: count,
        mean_bits: total_bits as f64 / count as f64,
        max_bits,
        mean_entries: total_entries as f64 / count as f64,
    }
}

/// Times `rounds` decoder queries (labels pre-materialized) and returns the
/// mean microseconds per query plus mean sketch sizes.
pub fn measure_query_time(
    g: &Graph,
    oracle: &ForbiddenSetOracle,
    fault_count: usize,
    rounds: usize,
    seed: u64,
) -> (f64, f64, f64) {
    let mut rng = Rng::seed_from_u64(seed);
    let n = g.num_vertices();
    // Pre-materialize every label we'll use so only decoding is timed.
    let cases: Vec<(NodeId, NodeId, FaultSet)> = (0..rounds)
        .map(|_| {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            let f = random_faults(g, fault_count, s, t, &mut rng);
            (s, t, f)
        })
        .collect();
    for (s, t, f) in &cases {
        let _ = oracle.label(*s);
        let _ = oracle.label(*t);
        for v in f.vertices() {
            let _ = oracle.label(v);
        }
        for e in f.edges() {
            let _ = oracle.label(e.lo());
            let _ = oracle.label(e.hi());
        }
    }
    let mut sketch_v = 0usize;
    let mut sketch_e = 0usize;
    let start = Instant::now();
    for (s, t, f) in &cases {
        let a = oracle.query(*s, *t, f);
        sketch_v += a.sketch_vertices;
        sketch_e += a.sketch_edges;
    }
    let micros = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
    (
        micros,
        sketch_v as f64 / rounds as f64,
        sketch_e as f64 / rounds as f64,
    )
}

/// Times `rounds` exact BFS queries for comparison; returns mean
/// microseconds per query.
pub fn measure_exact_time(g: &Graph, fault_count: usize, rounds: usize, seed: u64) -> f64 {
    let exact = ExactOracle::new(g);
    let mut rng = Rng::seed_from_u64(seed);
    let n = g.num_vertices();
    let cases: Vec<(NodeId, NodeId, FaultSet)> = (0..rounds)
        .map(|_| {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            let f = random_faults(g, fault_count, s, t, &mut rng);
            (s, t, f)
        })
        .collect();
    let start = Instant::now();
    for (s, t, f) in &cases {
        let _ = exact.distance(*s, *t, f);
    }
    start.elapsed().as_secs_f64() * 1e6 / rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;

    #[test]
    fn stretch_stats_within_guarantee() {
        let g = generators::grid2d(7, 7);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let stats = measure_stretch(&g, &oracle, 3, 30, 5);
        assert!(stats.queries + stats.disconnected == 30);
        assert!(stats.max_stretch <= 2.0 + 1e-9);
        assert!(stats.mean_stretch >= 1.0);
    }

    #[test]
    fn adversarial_stretch_within_guarantee() {
        let g = generators::caterpillar(12, 2);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let stats = measure_stretch_adversarial(&g, &oracle, 3, 20, 7);
        assert!(stats.max_stretch <= 2.0 + 1e-9);
        assert!(stats.queries + stats.disconnected == 20);
    }

    #[test]
    fn adversarial_faults_prefer_cuts() {
        let g = generators::barbell(4, 3);
        let f = adversarial_faults(&g, 2, NodeId::new(0), NodeId::new(10));
        // The bridge path vertices are articulation points; they go first.
        assert!(f.vertices().any(|v| (4..7).contains(&v.raw())), "{f:?}");
    }

    #[test]
    fn size_stats_sampled() {
        let g = generators::path(128);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let s = measure_label_sizes(&oracle, 8);
        assert_eq!(s.samples, 8);
        assert!(s.mean_bits > 0.0);
        assert!(s.max_bits as f64 >= s.mean_bits);
    }

    #[test]
    fn timing_runs() {
        let g = generators::cycle(48);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let (micros, sv, se) = measure_query_time(&g, &oracle, 2, 5, 1);
        assert!(micros > 0.0);
        assert!(sv > 0.0 && se > 0.0);
        assert!(measure_exact_time(&g, 2, 5, 1) > 0.0);
    }

    #[test]
    fn random_faults_avoid_endpoints() {
        let g = generators::path(30);
        let mut rng = Rng::seed_from_u64(9);
        let f = random_faults(&g, 5, NodeId::new(0), NodeId::new(29), &mut rng);
        assert!(!f.is_vertex_faulty(NodeId::new(0)));
        assert!(!f.is_vertex_faulty(NodeId::new(29)));
    }
}
