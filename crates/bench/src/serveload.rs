//! Shared workload generation for the serving benchmarks: `fsdl-loadgen`
//! and `exp_t17_serve` drive the server through exactly this module, so
//! the differential assertion in the experiment certifies the same ops
//! the load generator replays.
//!
//! Everything is deterministic from a seed: vertex pairs come from a
//! Zipf-skewed rank distribution over a seeded permutation of the vertex
//! ids (hot vertices exist, but *which* vertices are hot depends on the
//! seed), and each connection forks its own [`Rng`] stream so a
//! multi-connection run is reproducible regardless of thread
//! interleaving.

use fsdl_server::{UpdateOp, WireFaults};
use fsdl_testkit::Rng;

/// Zipf-skewed sampler over `0..n` vertex ids.
///
/// Rank `k` (0-based) gets probability proportional to `1/(k+1)^theta`;
/// `theta = 0` is uniform. Ranks map to vertex ids through a seeded
/// Fisher–Yates permutation so the hot set is spread across the graph.
pub struct ZipfVertices {
    cdf: Vec<f64>,
    perm: Vec<u32>,
}

impl ZipfVertices {
    /// Builds the sampler for `n` vertices with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: u32, theta: f64, rng: &mut Rng) -> Self {
        assert!(n > 0, "sampler needs at least one vertex");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "zipf skew must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / f64::from(k + 1).powf(theta);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        let mut perm: Vec<u32> = (0..n).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        ZipfVertices { cdf, perm }
    }

    /// Draws one vertex id.
    pub fn sample(&self, rng: &mut Rng) -> u32 {
        let u = rng.gen_f64();
        let rank = self.cdf.partition_point(|&c| c < u);
        self.perm[rank.min(self.perm.len() - 1)]
    }

    /// Number of vertices the sampler covers.
    pub fn len(&self) -> u32 {
        self.perm.len() as u32
    }

    /// Whether the sampler is empty (never true — `new` rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }
}

/// One operation of the serving workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// A single query with (possibly empty) per-query faults.
    Query {
        /// Source vertex.
        s: u32,
        /// Target vertex.
        t: u32,
        /// Per-query forbidden set.
        faults: WireFaults,
    },
    /// A fault-churn pair: delete a vertex, then restore it. Replayed
    /// against dynamic servers; static runs fold these into faulty
    /// queries instead (see [`WorkloadConfig::for_static`]).
    Churn {
        /// The vertex to delete and then restore.
        v: u32,
    },
}

/// Tunables for one workload stream.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Vertex count of the served graph (from the server's stats frame).
    pub n: u32,
    /// Zipf skew for endpoint picks (0 = uniform).
    pub theta: f64,
    /// Probability a query carries a forbidden set (static mode).
    pub fault_rate: f64,
    /// Maximum forbidden vertices per faulty query.
    pub max_faults: usize,
    /// Fraction of ops that are fault churn (dynamic mode writes).
    pub churn_rate: f64,
}

impl WorkloadConfig {
    /// A static-mode config: per-query faults, no churn.
    pub fn for_static(n: u32, theta: f64, fault_rate: f64, max_faults: usize) -> Self {
        WorkloadConfig {
            n,
            theta,
            fault_rate,
            max_faults,
            churn_rate: 0.0,
        }
    }

    /// A dynamic-mode config: churn writes, no per-query faults (the
    /// dynamic oracle serves its own fault set).
    pub fn for_dynamic(n: u32, theta: f64, churn_rate: f64) -> Self {
        WorkloadConfig {
            n,
            theta,
            fault_rate: 0.0,
            max_faults: 0,
            churn_rate,
        }
    }
}

/// A deterministic per-connection operation stream.
pub struct OpStream {
    config: WorkloadConfig,
    zipf: ZipfVertices,
    rng: Rng,
}

impl OpStream {
    /// Builds connection `conn`'s stream for `seed`. The same
    /// `(seed, conn, config)` triple always yields the same ops.
    pub fn new(seed: u64, conn: u64, config: WorkloadConfig) -> Self {
        // One master stream per run; each connection takes a fork keyed
        // by its index so streams are independent and order-insensitive.
        let mut master = Rng::seed_from_u64(seed);
        let mut rng = master.fork();
        for _ in 0..conn {
            rng = master.fork();
        }
        let zipf = ZipfVertices::new(config.n, config.theta, &mut rng);
        OpStream { config, zipf, rng }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        if self.config.churn_rate > 0.0 && self.rng.gen_bool(self.config.churn_rate) {
            return Op::Churn {
                v: self.zipf.sample(&mut self.rng),
            };
        }
        let s = self.zipf.sample(&mut self.rng);
        let mut t = self.zipf.sample(&mut self.rng);
        if t == s {
            t = (s + 1) % self.config.n;
        }
        let mut faults = WireFaults::default();
        if self.config.fault_rate > 0.0 && self.rng.gen_bool(self.config.fault_rate) {
            let count = self.rng.gen_range(1..=self.config.max_faults.max(1));
            for _ in 0..count {
                let v = self.zipf.sample(&mut self.rng);
                if v != s && v != t && !faults.vertices.contains(&v) {
                    faults.vertices.push(v);
                }
            }
        }
        Op::Query { s, t, faults }
    }
}

/// Expands a churn op into its wire updates (delete then restore).
pub fn churn_updates(v: u32) -> [UpdateOp; 2] {
    [UpdateOp::DeleteVertex(v), UpdateOp::RestoreVertex(v)]
}

/// Latency percentile over an unsorted sample set (µs in, µs out).
pub fn percentile_us(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let k = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[k.min(samples.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let mut rng = Rng::seed_from_u64(7);
        let zipf = ZipfVertices::new(100, 1.0, &mut rng);
        let mut a = Rng::seed_from_u64(9);
        let mut b = Rng::seed_from_u64(9);
        let draws_a: Vec<u32> = (0..50).map(|_| zipf.sample(&mut a)).collect();
        let draws_b: Vec<u32> = (0..50).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(draws_a, draws_b);
        // Skew: the hottest vertex dominates a long uniform-equivalent run.
        let mut counts = vec![0u32; 100];
        let mut r = Rng::seed_from_u64(11);
        for _ in 0..20_000 {
            counts[zipf.sample(&mut r) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 2_000, "theta=1 hot vertex got only {max}/20000 draws");
    }

    #[test]
    fn op_streams_are_reproducible_per_connection() {
        let config = WorkloadConfig::for_static(64, 0.8, 0.3, 3);
        let ops_a: Vec<Op> = {
            let mut s = OpStream::new(42, 2, config.clone());
            (0..40).map(|_| s.next_op()).collect()
        };
        let ops_b: Vec<Op> = {
            let mut s = OpStream::new(42, 2, config.clone());
            (0..40).map(|_| s.next_op()).collect()
        };
        assert_eq!(ops_a, ops_b);
        let ops_other: Vec<Op> = {
            let mut s = OpStream::new(42, 3, config);
            (0..40).map(|_| s.next_op()).collect()
        };
        assert_ne!(ops_a, ops_other, "different connections must diverge");
    }

    #[test]
    fn queries_never_fault_their_own_endpoints() {
        let mut s = OpStream::new(1, 0, WorkloadConfig::for_static(32, 1.2, 1.0, 4));
        for _ in 0..500 {
            if let Op::Query { s: a, t: b, faults } = s.next_op() {
                assert_ne!(a, b);
                assert!(!faults.vertices.contains(&a));
                assert!(!faults.vertices.contains(&b));
            }
        }
    }

    #[test]
    fn dynamic_config_emits_churn() {
        let mut s = OpStream::new(5, 0, WorkloadConfig::for_dynamic(32, 0.5, 0.2));
        let churn = (0..500)
            .filter(|_| matches!(s.next_op(), Op::Churn { .. }))
            .count();
        assert!(churn > 50, "churn rate 0.2 produced only {churn}/500");
    }
}
