//! Plain-text table rendering for the experiment binaries.
//!
//! Every `exp_*` binary prints through [`Table`], so the output format is
//! uniform: a title line, a header row, a rule, and right-padded cells.

use std::fmt::Write as _;

/// A simple text table accumulated row by row.
///
/// # Examples
///
/// ```
/// use fsdl_bench::tables::Table;
///
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(&["1", "2"]);
/// let s = t.render();
/// assert!(s.contains("demo"));
/// assert!(s.contains("| 1"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[impl AsRef<str>]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for k in 0..cols {
                let _ = write!(line, " {:<width$} |", cells[k], width = widths[k]);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let rule_len = widths.iter().sum::<usize>() + 3 * cols + 1;
        let _ = writeln!(out, "{}", "-".repeat(rule_len));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders and prints to stdout. When the `FSDL_CSV` environment
    /// variable is set, prints machine-readable CSV instead.
    pub fn print(&self) {
        if std::env::var_os("FSDL_CSV").is_some() {
            print!("{}", self.render_csv());
        } else {
            print!("{}", self.render());
        }
        println!();
    }

    /// Renders the table as CSV (title as a comment line; cells quoted when
    /// they contain commas or quotes).
    pub fn render_csv(&self) -> String {
        fn cell(c: &str) -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        }
        let mut out = format!("# {}\n", self.title);
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", &["name", "value"]);
        t.row(&["short", "1"]);
        t.row(&["a-much-longer-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("== t =="));
        // Header and data rows have equal width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("ti,tle", &["a", "b"]);
        t.row(&["1,5", "plain"]);
        let csv = t.render_csv();
        assert!(csv.starts_with("# ti,tle\n"));
        assert!(csv.contains("a,b\n"));
        assert!(csv.contains("\"1,5\",plain\n"));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(2.0), "2.0");
    }
}
