//! Named workloads for the evaluation.
//!
//! Each workload is a graph family instance with the doubling dimension its
//! generator advertises. The experiment binaries audit that claim with the
//! empirical estimator ([`audit`]) before attributing measurements to `α`.

use fsdl_graph::doubling::{estimate_dimension, DoublingConfig};
use fsdl_graph::{generators, Graph};

/// A named evaluation workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Human-readable family name (appears in every table).
    pub name: String,
    /// The graph instance.
    pub graph: Graph,
    /// The doubling dimension the generator advertises (approximate).
    pub advertised_alpha: u32,
}

impl Workload {
    /// Wraps a graph with its metadata.
    pub fn new(name: impl Into<String>, graph: Graph, advertised_alpha: u32) -> Self {
        Workload {
            name: name.into(),
            graph,
            advertised_alpha,
        }
    }

    /// `n` for this workload.
    pub fn n(&self) -> usize {
        self.graph.num_vertices()
    }
}

/// The standard small suite used by the stretch and routing experiments
/// (sizes chosen so exhaustive ground truth stays fast).
pub fn stretch_suite() -> Vec<Workload> {
    vec![
        Workload::new("path-64", generators::path(64), 1),
        Workload::new("cycle-64", generators::cycle(64), 1),
        Workload::new("tree-3x4", generators::balanced_tree(3, 4), 1),
        Workload::new("grid-9x9", generators::grid2d(9, 9), 2),
        Workload::new("king-8x8", generators::king_grid(8, 8), 2),
        Workload::new("udg-120", generators::random_geometric(120, 0.16, 2024), 2),
        Workload::new("road-10x10", generators::road_network(10, 10, 0.15, 7), 2),
    ]
}

/// The label-size `n`-sweep family (paths: `α = 1`, sizes grow geometrically).
pub fn size_sweep_paths() -> Vec<Workload> {
    [64usize, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
        .into_iter()
        .map(|n| Workload::new(format!("path-{n}"), generators::path(n), 1))
        .collect()
}

/// The dimension sweep at matched `n ≈ 1760`, for the label-size-vs-α
/// experiment: a path (`α = 1`), a 2-D mesh (`α ≈ 2`), and a 3-D mesh
/// (`α ≈ 3`).
pub fn dimension_sweep() -> Vec<Workload> {
    vec![
        Workload::new("path-1764", generators::path(1764), 1),
        Workload::new("grid2d-42x42", generators::grid2d(42, 42), 2),
        Workload::new("grid3d-12^3", generators::grid3d(12, 12, 12), 3),
    ]
}

/// Audits a workload's advertised doubling dimension with the empirical
/// estimator; returns the estimate.
pub fn audit(w: &Workload) -> u32 {
    estimate_dimension(&w.graph, &DoublingConfig::default()).alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_nonempty_and_named() {
        for w in stretch_suite() {
            assert!(!w.name.is_empty());
            assert!(w.n() > 0);
        }
        assert_eq!(size_sweep_paths().len(), 9);
        assert_eq!(dimension_sweep().len(), 3);
    }

    #[test]
    fn audits_are_sane() {
        // The advertised alphas should be within a small constant of the
        // estimate for the small suite (the greedy estimator overshoots by
        // up to ~2x in the exponent).
        for w in stretch_suite() {
            let est = audit(&w);
            assert!(
                est <= 2 * w.advertised_alpha + 2,
                "{}: estimated {est}, advertised {}",
                w.name,
                w.advertised_alpha
            );
        }
    }
}
