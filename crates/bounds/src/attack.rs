//! The adjacency-reconstruction "attack" at the heart of Theorem 3.1.
//!
//! The counting argument rests on one observation: querying a forbidden-set
//! connectivity oracle with the *everywhere failure* set
//! `F(i,j) = V ∖ {i,j}` answers exactly "are `i` and `j` adjacent?" — so
//! the oracle's state determines the entire graph, and oracles for a family
//! `F` need `log₂|F|` bits in the worst case. This module implements the
//! attack generically over any [`ConnectivityOracle`] and verifies (in tests
//! and in experiment `exp_t5`) that it reconstructs family members exactly
//! — including through our own labeling scheme, confirming the labels carry
//! the information the bound says they must.

use fsdl_graph::{FaultSet, Graph, GraphBuilder, NodeId};

/// Anything that answers forbidden-set connectivity queries on a fixed
/// `n`-vertex graph.
pub trait ConnectivityOracle {
    /// Number of vertices of the underlying graph.
    fn num_vertices(&self) -> usize;

    /// Are `u` and `v` connected in `G ∖ F`?
    fn connected(&self, u: NodeId, v: NodeId, faults: &FaultSet) -> bool;
}

impl ConnectivityOracle for fsdl_labels::ForbiddenSetOracle {
    fn num_vertices(&self) -> usize {
        self.labeling().graph().num_vertices()
    }

    fn connected(&self, u: NodeId, v: NodeId, faults: &FaultSet) -> bool {
        fsdl_labels::ForbiddenSetOracle::connected(self, u, v, faults)
    }
}

/// The everywhere-failure set `F(i, j) = V ∖ {i, j}`.
pub fn everywhere_failure(n: usize, i: NodeId, j: NodeId) -> FaultSet {
    FaultSet::from_vertices((0..n as u32).map(NodeId::new).filter(|&v| v != i && v != j))
}

/// Reconstructs the oracle's graph by issuing one everywhere-failure query
/// per vertex pair (`O(n²)` queries, each with `|F| = n − 2`).
pub fn reconstruct_graph<O: ConnectivityOracle>(oracle: &O) -> Graph {
    let n = oracle.num_vertices();
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            let (vi, vj) = (NodeId::new(i), NodeId::new(j));
            let f = everywhere_failure(n, vi, vj);
            if oracle.connected(vi, vj, &f) {
                b.add_edge(i, j).expect("valid edge");
            }
        }
    }
    b.build()
}

/// Verifies the paper's "at least `n − 2` distinct labels on `P_n`"
/// argument operationally: given a label assignment (as byte strings) for
/// the path `P_n`, finds two *non-adjacent* vertices with identical labels
/// such that one is internal — exactly the pair the proof uses to derive a
/// contradiction. A correct scheme therefore never lets this return `Some`.
pub fn find_path_label_collision(labels: &[Vec<u8>]) -> Option<(usize, usize)> {
    let n = labels.len();
    for x in 0..n {
        for y in (x + 2)..n {
            // Non-adjacent on the path (|x - y| >= 2); y < n-1 or x > 0
            // guarantees one of them is internal; with y >= x+2 >= 2, if
            // y == n-1 and x == 0 both are endpoints, which the proof
            // sidesteps by picking among >= 3 same-labelled vertices — for
            // the operational check we simply require an internal one.
            let internal = x > 0 || y < n - 1;
            if internal && labels[x] == labels[y] {
                return Some((x, y));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::LowerBoundFamily;
    use fsdl_graph::{bfs, generators};

    /// Ground-truth oracle: BFS on `G ∖ F`.
    struct ExactConnectivity {
        g: Graph,
    }

    impl ConnectivityOracle for ExactConnectivity {
        fn num_vertices(&self) -> usize {
            self.g.num_vertices()
        }

        fn connected(&self, u: NodeId, v: NodeId, faults: &FaultSet) -> bool {
            bfs::pair_distance_avoiding(&self.g, u, v, faults).is_finite()
        }
    }

    #[test]
    fn everywhere_failure_isolates_pair() {
        let f = everywhere_failure(5, NodeId::new(1), NodeId::new(3));
        assert_eq!(f.len(), 3);
        assert!(!f.is_vertex_faulty(NodeId::new(1)));
        assert!(!f.is_vertex_faulty(NodeId::new(3)));
        assert!(f.is_vertex_faulty(NodeId::new(0)));
    }

    #[test]
    fn attack_reconstructs_exact_oracle() {
        let fam = LowerBoundFamily::new(3, 2);
        let member = fam.random_member(7);
        let oracle = ExactConnectivity { g: member.clone() };
        let rebuilt = reconstruct_graph(&oracle);
        assert_eq!(rebuilt, member);
    }

    #[test]
    fn attack_reconstructs_label_oracle() {
        // The labeling scheme *is* a connectivity oracle; the attack must
        // recover the graph exactly from queries that only touch labels.
        let g = generators::cycle(8);
        let oracle = fsdl_labels::ForbiddenSetOracle::new(&g, 2.0);
        let rebuilt = reconstruct_graph(&oracle);
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn attack_reconstructs_label_oracle_on_family_member() {
        let fam = LowerBoundFamily::new(3, 2);
        let member = fam.random_member(3);
        let oracle = fsdl_labels::ForbiddenSetOracle::new(&member, 3.0);
        let rebuilt = reconstruct_graph(&oracle);
        assert_eq!(rebuilt, member);
    }

    #[test]
    fn label_collision_detector() {
        // Distinct labels: no collision.
        let labels: Vec<Vec<u8>> = (0..6u8).map(|k| vec![k]).collect();
        assert_eq!(find_path_label_collision(&labels), None);
        // Same label at positions 1 and 4 (non-adjacent, internal).
        let mut labels = labels;
        labels[4] = labels[1].clone();
        assert_eq!(find_path_label_collision(&labels), Some((1, 4)));
        // Adjacent duplicates don't count.
        let labels = vec![vec![1], vec![1], vec![2]];
        assert_eq!(find_path_label_collision(&labels), None);
    }

    #[test]
    fn our_scheme_has_distinct_path_labels() {
        let g = generators::path(12);
        let oracle = fsdl_labels::ForbiddenSetOracle::new(&g, 2.0);
        let n = g.num_vertices();
        let labels: Vec<Vec<u8>> = (0..n as u32)
            .map(|v| {
                let l = oracle.label(NodeId::new(v));
                let w = fsdl_labels::codec::try_encode(&l, n)
                    .expect("oracle-built labels have in-range owners");
                w.as_bytes().to_vec()
            })
            .collect();
        assert_eq!(find_path_label_collision(&labels), None);
    }
}
