//! The lower-bound graph family `F_{n,α}` of Theorem 3.1.
//!
//! For even `d ≥ 2` and `p ≥ 2`, the family consists of every graph `G'`
//! with `H_{p,d} ⊆ G' ⊆ G_{p,d}`, where `G_{p,d}` is the `d`-dimensional
//! `ℓ∞` grid and `H_{p,d}` keeps only the `ℓ∞`-edges with `ℓ₁`-offset
//! `≤ d/2`. Every member has `n = p^d` vertices and doubling dimension
//! `≤ α = 2d` (because `H` is a 2-spanner of `G`), and the family has
//! `2^{|E(G)|−|E(H)|} = 2^{Ω(2^{α/2} n)}` members — which forces
//! `Ω(2^{α/2})`-bit labels for forbidden-set connectivity.

use fsdl_graph::{generators, Graph, GraphBuilder, NodeId};
use fsdl_testkit::Rng;

/// The lower-bound family `F_{n,α}` with parameters `(p, d)`.
///
/// # Examples
///
/// ```
/// use fsdl_bounds::LowerBoundFamily;
///
/// let fam = LowerBoundFamily::new(3, 4);
/// assert_eq!(fam.num_vertices(), 81);
/// assert_eq!(fam.alpha(), 8); // alpha = 2d
/// assert!(fam.log2_size() > 0);
/// let member = fam.random_member(42);
/// assert!(fam.contains(&member));
/// ```
#[derive(Clone, Debug)]
pub struct LowerBoundFamily {
    p: usize,
    d: usize,
    full: Graph,
    spanner: Graph,
    /// Edges of `G ∖ H`, each independently present/absent in a member.
    free_edges: Vec<(NodeId, NodeId)>,
}

impl LowerBoundFamily {
    /// Creates the family for side `p` and (even) dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2`, `d < 2`, or `d` is odd (the paper's construction
    /// requires even `d`).
    pub fn new(p: usize, d: usize) -> Self {
        assert!(p >= 2, "grid side must be at least 2");
        assert!(
            d >= 2 && d.is_multiple_of(2),
            "dimension must be even and >= 2"
        );
        let full = generators::grid_linf(p, d);
        let spanner = generators::half_grid(p, d);
        let free_edges: Vec<(NodeId, NodeId)> = full
            .edges()
            .filter(|e| !spanner.has_edge(e.lo(), e.hi()))
            .map(|e| (e.lo(), e.hi()))
            .collect();
        LowerBoundFamily {
            p,
            d,
            full,
            spanner,
            free_edges,
        }
    }

    /// Grid side `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Grid dimension `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The doubling-dimension bound `α = 2d` the paper assigns to the
    /// family.
    pub fn alpha(&self) -> usize {
        2 * self.d
    }

    /// `n = p^d`.
    pub fn num_vertices(&self) -> usize {
        self.full.num_vertices()
    }

    /// The supergraph `G_{p,d}`.
    pub fn full_graph(&self) -> &Graph {
        &self.full
    }

    /// The spanner `H_{p,d}` contained in every member.
    pub fn spanner(&self) -> &Graph {
        &self.spanner
    }

    /// The free edges `E(G) ∖ E(H)` (each member independently keeps an
    /// arbitrary subset).
    pub fn free_edges(&self) -> &[(NodeId, NodeId)] {
        &self.free_edges
    }

    /// `log₂ |F_{n,α}| = |E(G)| − |E(H)|`: the information content of the
    /// family in bits.
    pub fn log2_size(&self) -> usize {
        self.free_edges.len()
    }

    /// The paper's per-label lower bound `⌈log₂|F|⌉ / n` in bits: at least
    /// one label of any forbidden-set connectivity scheme for the family
    /// must be this long.
    pub fn per_label_lower_bound_bits(&self) -> f64 {
        self.log2_size() as f64 / self.num_vertices() as f64
    }

    /// Samples a uniform member: `H` plus an independent coin per free edge.
    pub fn random_member(&self, seed: u64) -> Graph {
        let mut rng = Rng::seed_from_u64(seed);
        self.member_from_bits(|_| rng.gen_bool(0.5))
    }

    /// Builds the member selected by a predicate over free-edge indices
    /// (the "codeword → graph" map of the counting argument).
    pub fn member_from_bits<F: FnMut(usize) -> bool>(&self, mut keep: F) -> Graph {
        let mut b = GraphBuilder::new(self.num_vertices());
        for e in self.spanner.edges() {
            b.add_edge(e.lo().raw(), e.hi().raw()).expect("valid edge");
        }
        for (k, &(u, v)) in self.free_edges.iter().enumerate() {
            if keep(k) {
                b.add_edge(u.raw(), v.raw()).expect("valid edge");
            }
        }
        b.build()
    }

    /// Is `g` a member of the family (`H ⊆ g ⊆ G`)?
    pub fn contains(&self, g: &Graph) -> bool {
        if g.num_vertices() != self.num_vertices() {
            return false;
        }
        for e in self.spanner.edges() {
            if !g.has_edge(e.lo(), e.hi()) {
                return false;
            }
        }
        for e in g.edges() {
            if !self.full.has_edge(e.lo(), e.hi()) {
                return false;
            }
        }
        true
    }

    /// Evaluates the numeric lower bound `Ω(2^{α/2} + log n)` for this
    /// family's parameters: `max(2^{α/2}·cn, log₂(n−2))` where the paper's
    /// constant `cn` comes from `m_{p,d} ≥ 2^{d-1} p^d` edge counting. We
    /// report the exact computable form `(|E(G)|−|E(H)|)/n`.
    pub fn lower_bound_bits(&self) -> f64 {
        let counting = self.per_label_lower_bound_bits();
        let path_bound = ((self.num_vertices().saturating_sub(2)).max(2) as f64).log2();
        counting.max(path_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::connectivity;

    #[test]
    fn family_shape_d2() {
        let fam = LowerBoundFamily::new(4, 2);
        assert_eq!(fam.num_vertices(), 16);
        assert_eq!(fam.alpha(), 4);
        // In 2-D, H keeps only axis moves (l1 <= 1), so free edges are the
        // diagonals.
        let diagonals = fam.full_graph().num_edges() - fam.spanner().num_edges();
        assert_eq!(fam.log2_size(), diagonals);
        assert!(fam.log2_size() > 0);
    }

    #[test]
    fn members_contain_spanner_and_stay_in_full() {
        let fam = LowerBoundFamily::new(3, 2);
        for seed in 0..5 {
            let m = fam.random_member(seed);
            assert!(fam.contains(&m));
            assert!(
                connectivity::is_connected(&m),
                "H is connected, so members are"
            );
        }
    }

    #[test]
    fn extreme_members() {
        let fam = LowerBoundFamily::new(3, 2);
        let min = fam.member_from_bits(|_| false);
        assert_eq!(min.num_edges(), fam.spanner().num_edges());
        let max = fam.member_from_bits(|_| true);
        assert_eq!(max.num_edges(), fam.full_graph().num_edges());
    }

    #[test]
    fn member_bits_roundtrip() {
        let fam = LowerBoundFamily::new(3, 2);
        let pattern: Vec<bool> = (0..fam.log2_size()).map(|k| k % 3 == 0).collect();
        let m = fam.member_from_bits(|k| pattern[k]);
        // Recover the pattern from the member.
        for (k, &(u, v)) in fam.free_edges().iter().enumerate() {
            assert_eq!(m.has_edge(u, v), pattern[k]);
        }
    }

    #[test]
    fn counting_bound_grows_with_dimension() {
        let d2 = LowerBoundFamily::new(3, 2);
        let d4 = LowerBoundFamily::new(3, 4);
        assert!(
            d4.per_label_lower_bound_bits() > d2.per_label_lower_bound_bits(),
            "per-label bound must grow with alpha"
        );
    }

    #[test]
    fn lower_bound_includes_log_n() {
        // For a family with few free edges relative to n the log n term
        // dominates.
        let fam = LowerBoundFamily::new(8, 2);
        assert!(fam.lower_bound_bits() >= ((fam.num_vertices() - 2) as f64).log2() - 1.0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dimension_rejected() {
        let _ = LowerBoundFamily::new(3, 3);
    }

    #[test]
    fn non_members_rejected() {
        let fam = LowerBoundFamily::new(3, 2);
        // Missing a spanner edge.
        let bad = GraphBuilder::new(9).build();
        assert!(!fam.contains(&bad));
        // Extra edge outside G (long chord).
        let mut b = GraphBuilder::new(9);
        for e in fam.full_graph().edges() {
            b.add_edge(e.lo().raw(), e.hi().raw()).unwrap();
        }
        b.add_edge(0, 8).unwrap(); // corner to corner: not an l-inf-1 edge
        assert!(!fam.contains(&b.build()));
    }
}
