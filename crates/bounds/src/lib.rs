//! # fsdl-bounds — the Ω(2^{α/2} + log n) lower bound (Theorem 3.1)
//!
//! Machinery for the paper's lower bound on forbidden-set *connectivity*
//! labels (and hence on any approximate-distance labels):
//!
//! * [`LowerBoundFamily`] — the family `F_{n,α}` of all graphs between the
//!   spanner `H_{p,d}` and the `ℓ∞` grid `G_{p,d}`, with its exact counting
//!   bound `log₂|F| = |E(G)| − |E(H)|`;
//! * [`reconstruct_graph`] — the everywhere-failure adjacency attack showing
//!   any [`ConnectivityOracle`] encodes its whole graph;
//! * [`find_path_label_collision`] — the operational form of the paper's
//!   "`n − 2` distinct labels on `P_n`" argument.
//!
//! ## Example
//!
//! ```
//! use fsdl_bounds::{LowerBoundFamily, reconstruct_graph, ConnectivityOracle};
//! use fsdl_labels::ForbiddenSetOracle;
//!
//! let fam = LowerBoundFamily::new(3, 2);
//! let member = fam.random_member(1);
//! let oracle = ForbiddenSetOracle::new(&member, 3.0);
//! assert_eq!(reconstruct_graph(&oracle), member); // labels encode the graph
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod family;

pub use attack::{
    everywhere_failure, find_path_label_collision, reconstruct_graph, ConnectivityOracle,
};
pub use family::LowerBoundFamily;
