//! Property-based tests for the lower-bound machinery.

use fsdl_bounds::{everywhere_failure, find_path_label_collision, LowerBoundFamily};
use fsdl_graph::{bfs, FaultSet, NodeId};

#[test]
fn family_members_are_2_spanners() {
    fsdl_testkit::check("family_members_are_2_spanners", 16, |rng| {
        // Every member contains H_{p,d}, a 2-spanner of G_{p,d}; so member
        // distances are within 2x of G distances.
        let p = rng.gen_range(2usize..4);
        let seed = rng.gen_range(0u64..50);
        let fam = LowerBoundFamily::new(p, 2);
        let member = fam.random_member(seed);
        let g = fam.full_graph();
        for e in g.edges() {
            let d = bfs::pair_distance_avoiding(&member, e.lo(), e.hi(), &FaultSet::empty());
            assert!(d.finite().unwrap_or(u32::MAX) <= 2, "edge {e} stretched");
        }
    });
}

#[test]
fn member_bits_bijection() {
    fsdl_testkit::check("member_bits_bijection", 16, |rng| {
        // Distinct bit patterns give distinct members (the counting
        // argument's injection).
        let p = rng.gen_range(2usize..4);
        let mask = rng.gen_range(0u64..256);
        let fam = LowerBoundFamily::new(p, 2);
        let k = fam.log2_size().min(8);
        let m1 = fam.member_from_bits(|i| i < k && (mask >> i) & 1 == 1);
        let m2 = fam.member_from_bits(|i| i < k && (mask >> i) & 1 == 0);
        if k > 0 {
            assert_ne!(&m1, &m2);
        }
        assert!(fam.contains(&m1));
        assert!(fam.contains(&m2));
    });
}

#[test]
fn everywhere_failure_query_decides_adjacency() {
    fsdl_testkit::check("everywhere_failure_query_decides_adjacency", 16, |rng| {
        let p = rng.gen_range(2usize..4);
        let seed = rng.gen_range(0u64..20);
        let fam = LowerBoundFamily::new(p, 2);
        let n = fam.num_vertices() as u32;
        let i = rng.gen_range(0u32..9) % n;
        let j = rng.gen_range(0u32..9) % n;
        if i == j {
            return;
        }
        let member = fam.random_member(seed);
        let f = everywhere_failure(n as usize, NodeId::new(i), NodeId::new(j));
        let connected =
            bfs::pair_distance_avoiding(&member, NodeId::new(i), NodeId::new(j), &f).is_finite();
        assert_eq!(connected, member.has_edge(NodeId::new(i), NodeId::new(j)));
    });
}

#[test]
fn collision_detector_finds_planted_collisions() {
    fsdl_testkit::check("collision_detector_finds_planted_collisions", 16, |rng| {
        let n = rng.gen_range(4usize..20);
        let x = rng.gen_range(0usize..20) % n;
        let gap = rng.gen_range(2usize..6);
        let y = x + gap;
        if y >= n {
            return;
        }
        let mut labels: Vec<Vec<u8>> = (0..n).map(|k| vec![k as u8, 1]).collect();
        labels[y] = labels[x].clone();
        // The planted pair is non-adjacent; at least one is internal unless
        // (x, y) = (0, n-1).
        if x == 0 && y == n - 1 {
            return;
        }
        assert!(find_path_label_collision(&labels).is_some());
    });
}

#[test]
fn no_false_collisions() {
    fsdl_testkit::check("no_false_collisions", 16, |rng| {
        let n = rng.gen_range(2usize..30);
        let labels: Vec<Vec<u8>> = (0..n)
            .map(|k| vec![(k / 256) as u8, (k % 256) as u8])
            .collect();
        assert_eq!(find_path_label_collision(&labels), None);
    });
}
