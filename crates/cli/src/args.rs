//! Minimal dependency-free command-line argument parsing for the `fsdl`
//! tool.
//!
//! Grammar: `fsdl <command> [positionals...] [--flag value]...`. Flags may
//! appear anywhere after the command; `--flag=value` is also accepted.

use std::collections::HashMap;

/// A parsed command line: the command word, positional arguments, and
/// `--key value` options.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The command word (`gen`, `stats`, `label`, `query`, `route`).
    pub command: String,
    /// Positional arguments in order.
    pub positionals: Vec<String>,
    /// Options by key (without the leading `--`).
    pub options: HashMap<String, String>,
}

/// Errors from argument parsing or validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses raw arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] when no command is given or an option is
    /// missing its value.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut iter = args.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing command (try `fsdl help`)".into()))?;
        let mut parsed = ParsedArgs {
            command,
            ..ParsedArgs::default()
        };
        while let Some(arg) = iter.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                if let Some((key, value)) = stripped.split_once('=') {
                    parsed.options.insert(key.to_string(), value.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError(format!("option --{stripped} needs a value")))?;
                    parsed.options.insert(stripped.to_string(), value);
                }
            } else {
                parsed.positionals.push(arg);
            }
        }
        Ok(parsed)
    }

    /// The value of `--key`, if present.
    pub fn option(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required `--key` value.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] when the option is absent.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.option(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// Parses `--key` as `T`, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] when present but unparsable.
    pub fn parse_option<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.option(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("invalid value '{raw}' for --{key}"))),
        }
    }

    /// Parses a required `--key` as `T`.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] when absent or unparsable.
    pub fn parse_required<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let raw = self.required(key)?;
        raw.parse()
            .map_err(|_| ArgError(format!("invalid value '{raw}' for --{key}")))
    }

    /// The positional at `index`, or an error naming it.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] when absent.
    pub fn positional(&self, index: usize, name: &str) -> Result<&str, ArgError> {
        self.positionals
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing <{name}> argument")))
    }
}

/// Parses a comma-separated vertex list (`"3,17,42"`).
///
/// # Errors
///
/// Returns an [`ArgError`] on non-numeric entries.
pub fn parse_vertex_list(raw: &str) -> Result<Vec<u32>, ArgError> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| ArgError(format!("invalid vertex '{s}'")))
        })
        .collect()
}

/// Parses a comma-separated edge list (`"0-1,5-6"`).
///
/// # Errors
///
/// Returns an [`ArgError`] on malformed pairs.
pub fn parse_edge_list(raw: &str) -> Result<Vec<(u32, u32)>, ArgError> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            let (a, b) = s
                .trim()
                .split_once('-')
                .ok_or_else(|| ArgError(format!("invalid edge '{s}' (use a-b)")))?;
            let a = a
                .parse()
                .map_err(|_| ArgError(format!("invalid edge endpoint '{a}'")))?;
            let b = b
                .parse()
                .map_err(|_| ArgError(format!("invalid edge endpoint '{b}'")))?;
            Ok((a, b))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, ArgError> {
        ParsedArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn basic_command_and_positionals() {
        let p = parse(&["gen", "path", "64"]).unwrap();
        assert_eq!(p.command, "gen");
        assert_eq!(p.positionals, vec!["path", "64"]);
        assert_eq!(p.positional(0, "family").unwrap(), "path");
        assert!(p.positional(2, "missing").is_err());
    }

    #[test]
    fn options_with_space_and_equals() {
        let p = parse(&["query", "--eps", "0.5", "--seed=7", "g.txt"]).unwrap();
        assert_eq!(p.option("eps"), Some("0.5"));
        assert_eq!(p.option("seed"), Some("7"));
        assert_eq!(p.positionals, vec!["g.txt"]);
    }

    #[test]
    fn missing_command_and_values() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["gen", "--out"]).is_err());
    }

    #[test]
    fn typed_option_parsing() {
        let p = parse(&["x", "--eps", "1.5"]).unwrap();
        assert_eq!(p.parse_option("eps", 1.0f64).unwrap(), 1.5);
        assert_eq!(p.parse_option("missing", 9usize).unwrap(), 9);
        assert!(p.parse_option::<usize>("eps", 0).is_err());
        assert!(p.parse_required::<f64>("eps").is_ok());
        assert!(p.parse_required::<f64>("nope").is_err());
    }

    #[test]
    fn vertex_list_parsing() {
        assert_eq!(parse_vertex_list("1,2,3").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_vertex_list("7").unwrap(), vec![7]);
        assert_eq!(parse_vertex_list("").unwrap(), Vec::<u32>::new());
        assert!(parse_vertex_list("1,x").is_err());
    }

    #[test]
    fn edge_list_parsing() {
        assert_eq!(parse_edge_list("0-1,5-6").unwrap(), vec![(0, 1), (5, 6)]);
        assert!(parse_edge_list("0:1").is_err());
        assert!(parse_edge_list("a-1").is_err());
    }
}
