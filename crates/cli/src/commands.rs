//! Implementations of the `fsdl` CLI commands.
//!
//! Each command takes parsed arguments and a writer (so tests can capture
//! output), returning `Result<(), ArgError>` with user-facing messages.

use std::fs;
use std::io::Write;

use fsdl_baselines::ExactOracle;
use fsdl_graph::doubling::{estimate_dimension, DoublingConfig};
use fsdl_graph::{generators, io as gio, FaultSet, Graph, GraphStats, NodeId};
use fsdl_labels::partition::{shard_dir_name, PartitionPlan, ShardStore};
use fsdl_labels::{DynamicConfig, DynamicOracle, ForbiddenSetOracle, OpenMode, RebuildMode};
use fsdl_routing::Network;
use fsdl_server::{Endpoint, Router, RouterConfig, ServeEngine, Server, ServerConfig};

use crate::args::{parse_edge_list, parse_vertex_list, ArgError, ParsedArgs};

/// Top-level usage text.
pub const USAGE: &str = "\
fsdl — forbidden-set distance labels toolbox

USAGE:
  fsdl gen <family> <params...> [--out FILE] [--seed N]
      families: path N | cycle N | grid W H | king W H | grid3d X Y Z |
                linf P D | halfgrid P D | tree ARITY DEPTH | udg N RADIUS |
                er N PROB | hypercube D | road W H REMOVAL
  fsdl stats <graph-file> [--store DIR] [--open-mode eager|lazy]
      (--store also reports the dynamic oracle's rebuild/WAL health:
       generation, fault counts, rebuilds, log bytes, replay totals,
       plus resident vs. on-disk label bytes for the serving generation)
  fsdl update <graph-file> --store DIR [--eps E] [--threshold T]
              [--background yes] [--delete v1,v2,...] [--delete-edge a-b,...]
              [--restore v1,...] [--restore-edge a-b,...]
      (opens the dynamic store at DIR — creating it on first use — and
       applies the updates durably: each is written to the write-ahead
       log before taking effect, so a crash mid-batch loses nothing
       acknowledged; --background rebuilds off the serving path)
  fsdl label <graph-file> [--eps E] [--vertex V | --sample K | --threads P]
      (--threads P materializes every label with P parallel workers —
       0 = all cores — and reports exact totals instead of a sample)
  fsdl build <graph-file> --store DIR [--eps E] [--threads P]
      (materializes every label and persists them as an atomic store
       generation; later commands warm-start from it with --store)
  fsdl query <graph-file> --source S --target T [--eps E | --store DIR]
             [--open-mode eager|lazy]
             [--forbid v1,v2,...] [--forbid-edge a-b,c-d,...] [--exact yes]
             [--repeat N]  (re-runs the decode N times reusing one scratch
              and reports the per-query latency)
  fsdl route <graph-file> --source S --target T [--eps E | --store DIR]
             [--open-mode eager|lazy] [--forbid ...] [--forbid-edge ...]
  fsdl batch <graph-file> --source S --targets t1,t2,... [--eps E | --store DIR]
             [--open-mode eager|lazy] [--forbid ...] [--forbid-edge ...]
  fsdl spanner <graph-file> [--eps E]
  fsdl trace <graph-file> --source S --target T [--eps E]
             [--forbid ...] [--forbid-edge ...]
  fsdl audit <graph-file> [--eps E] [--sample K]
  fsdl serve <graph-file> --listen tcp:HOST:PORT|unix:PATH
             [--eps E | --store DIR] [--open-mode eager|lazy]
             [--dynamic yes] [--workers N] [--frame-deadline-ms MS]
             [--threshold T] [--background yes]
      (runs the oracle server until a shutdown frame arrives: query/
       batch/route/update/stats over a length-prefixed binary protocol;
       --dynamic serves the durable dynamic oracle at --store and
       accepts update frames; --workers 0 = all cores minus the event
       loop; --frame-deadline-ms closes connections that stall mid-frame
       [slow-loris protection, default 10000]; --open-mode lazy maps the
       store and decodes labels on first touch instead of up front;
       --shards S runs the simulated multi-shard plane instead: the
       label set is partitioned by net-hierarchy cell into S shard
       stores under --shard-dir [default: a temp dir], S in-process
       shard servers come up on unix sockets, and --listen serves the
       scatter-gather router — answers are bit-identical to the
       unsharded server)
  fsdl shard <shard-dir> --listen tcp:HOST:PORT|unix:PATH
             [--workers N] [--open-mode eager|lazy]
      (serves one shard store written by `fsdl serve --shards` or
       `fsdl_labels::partition::write_shard_stores`: label-fetch frames
       only, queries belong to the router)
  fsdl router --listen tcp:HOST:PORT|unix:PATH --plan FILE
              --shards ep1,ep2,...  [--workers N] [--frame-deadline-ms MS]
      (fronts a shard fleet: endpoints are comma-separated listen specs
       in shard order, e.g. unix:/run/s0.sock,tcp:10.0.0.2:7070; the
       router scatter-gathers labels and answers query/batch frames
       bit-identically to a single-process oracle)
  (query/route/batch/trace also accept --forbid-file FILE with
   \"v <id>\" / \"f <u> <v>\" lines)
  fsdl help
";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns an [`ArgError`] with a user-facing message on any failure.
pub fn run<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    match args.command.as_str() {
        "gen" => cmd_gen(args, out),
        "stats" => cmd_stats(args, out),
        "update" => cmd_update(args, out),
        "label" => cmd_label(args, out),
        "build" => cmd_build(args, out),
        "query" => cmd_query(args, out),
        "route" => cmd_route(args, out),
        "batch" => cmd_batch(args, out),
        "spanner" => cmd_spanner(args, out),
        "trace" => cmd_trace(args, out),
        "audit" => cmd_audit(args, out),
        "serve" => cmd_serve(args, out),
        "shard" => cmd_shard(args, out),
        "router" => cmd_router(args, out),
        "help" | "--help" | "-h" => {
            write_out(out, USAGE)?;
            Ok(())
        }
        other => Err(ArgError(format!(
            "unknown command '{other}' (try `fsdl help`)"
        ))),
    }
}

fn write_out<W: Write>(out: &mut W, text: &str) -> Result<(), ArgError> {
    out.write_all(text.as_bytes())
        .map_err(|e| ArgError(format!("write failed: {e}")))
}

/// Parses `--eps`, rejecting values the scheme constructors would
/// otherwise panic on (zero, negative, NaN, infinite).
fn parse_eps(args: &ParsedArgs) -> Result<f64, ArgError> {
    let eps: f64 = args.parse_option("eps", 1.0)?;
    if !(eps.is_finite() && eps > 0.0) {
        return Err(ArgError(format!(
            "--eps must be a positive finite number (got {eps})"
        )));
    }
    Ok(eps)
}

fn require(cond: bool, msg: impl Into<String>) -> Result<(), ArgError> {
    if cond {
        Ok(())
    } else {
        Err(ArgError(msg.into()))
    }
}

fn load_graph(path: &str) -> Result<Graph, ArgError> {
    let content =
        fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    gio::from_str(&content).map_err(|e| ArgError(format!("cannot parse {path}: {e}")))
}

fn faults_from(args: &ParsedArgs, g: &Graph) -> Result<FaultSet, ArgError> {
    let mut f = FaultSet::empty();
    if let Some(path) = args.option("forbid-file") {
        let content =
            fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let parsed = gio::faults_from_str(&content, g)
            .map_err(|e| ArgError(format!("cannot parse {path}: {e}")))?;
        for v in parsed.vertices() {
            f.forbid_vertex(v);
        }
        for e in parsed.edges() {
            f.forbid_edge_unchecked(e.lo(), e.hi());
        }
    }
    if let Some(raw) = args.option("forbid") {
        for v in parse_vertex_list(raw)? {
            if v as usize >= g.num_vertices() {
                return Err(ArgError(format!("forbidden vertex {v} out of range")));
            }
            f.forbid_vertex(NodeId::new(v));
        }
    }
    if let Some(raw) = args.option("forbid-edge") {
        for (a, b) in parse_edge_list(raw)? {
            let (na, nb) = (NodeId::new(a), NodeId::new(b));
            if !g.contains(na) || !g.contains(nb) || !g.has_edge(na, nb) {
                return Err(ArgError(format!(
                    "forbidden edge {a}-{b} is not in the graph"
                )));
            }
            f.forbid_edge_unchecked(na, nb);
        }
    }
    Ok(f)
}

/// Parses `--open-mode {eager,lazy}` (default eager). The flag only
/// makes sense alongside `--store`, so callers without one should use
/// [`reject_open_mode_without_store`] first.
fn open_mode_from(args: &ParsedArgs) -> Result<OpenMode, ArgError> {
    match args.option("open-mode") {
        None => Ok(OpenMode::default()),
        Some(raw) => OpenMode::parse(raw).ok_or_else(|| {
            ArgError(format!(
                "invalid value '{raw}' for --open-mode (expected 'eager' or 'lazy')"
            ))
        }),
    }
}

fn reject_open_mode_without_store(args: &ParsedArgs) -> Result<(), ArgError> {
    require(
        args.option("open-mode").is_none(),
        "--open-mode requires --store DIR (it selects how the persisted labels are opened)",
    )
}

/// The oracle for a serving command: opened from `--store DIR` (labels
/// come from the persisted generation, `--eps` is baked into the store)
/// or built fresh from the graph with `--eps`.
fn oracle_from(args: &ParsedArgs, g: &Graph) -> Result<ForbiddenSetOracle, ArgError> {
    match args.option("store") {
        Some(dir) => {
            if args.option("eps").is_some() {
                return Err(ArgError(
                    "--eps conflicts with --store (epsilon is recorded in the store)".into(),
                ));
            }
            let mode = open_mode_from(args)?;
            ForbiddenSetOracle::open_with(std::path::Path::new(dir), g, mode)
                .map_err(|e| ArgError(format!("cannot open store {dir}: {e}")))
        }
        None => {
            reject_open_mode_without_store(args)?;
            let eps: f64 = parse_eps(args)?;
            Ok(ForbiddenSetOracle::new(g, eps))
        }
    }
}

fn cmd_build<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let eps: f64 = parse_eps(args)?;
    let dir = args.required("store")?;
    let threads: usize = args.parse_option("threads", 0usize)?;
    let workers = fsdl_nets::parallel::resolve_workers(threads, g.num_vertices());
    let oracle = ForbiddenSetOracle::new(&g, eps);
    let start = std::time::Instant::now();
    oracle.prewarm_workers(workers);
    let build_s = start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    let report = oracle
        .save(std::path::Path::new(dir))
        .map_err(|e| ArgError(format!("cannot save store to {dir}: {e}")))?;
    let save_s = start.elapsed().as_secs_f64();
    write_out(
        out,
        &format!(
            "built {} labels (eps = {eps}, {workers} workers) in {build_s:.2}s\n\
             saved generation {} to {dir}: {} bytes in {save_s:.2}s\n",
            report.labels, report.generation, report.segment_bytes
        ),
    )
}

fn cmd_gen<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let family = args.positional(0, "family")?;
    let seed: u64 = args.parse_option("seed", 42u64)?;
    let num = |k: usize, name: &str| -> Result<usize, ArgError> {
        args.positional(k, name)?
            .parse()
            .map_err(|_| ArgError(format!("invalid <{name}>")))
    };
    // Every constraint a generator would assert on is checked here first,
    // so a bad parameter is a usage error (nonzero exit), never a panic.
    let g = match family {
        "path" => {
            let n = num(1, "N")?;
            require(n >= 1, "path needs at least one vertex")?;
            generators::path(n)
        }
        "cycle" => {
            let n = num(1, "N")?;
            require(n >= 3, "cycle needs at least three vertices")?;
            generators::cycle(n)
        }
        "grid" => {
            let (w, h) = (num(1, "W")?, num(2, "H")?);
            require(w >= 1 && h >= 1, "grid dimensions must be positive")?;
            generators::grid2d(w, h)
        }
        "king" => {
            let (w, h) = (num(1, "W")?, num(2, "H")?);
            require(w >= 1 && h >= 1, "grid dimensions must be positive")?;
            generators::king_grid(w, h)
        }
        "grid3d" => {
            let (x, y, z) = (num(1, "X")?, num(2, "Y")?, num(3, "Z")?);
            require(
                x >= 1 && y >= 1 && z >= 1,
                "grid dimensions must be positive",
            )?;
            generators::grid3d(x, y, z)
        }
        "linf" | "halfgrid" => {
            let (p, d) = (num(1, "P")?, num(2, "D")?);
            require(p >= 2, "grid side P must be at least 2")?;
            require(d >= 1, "grid dimension D must be at least 1")?;
            let n = u32::try_from(d)
                .ok()
                .and_then(|d| p.checked_pow(d))
                .ok_or_else(|| ArgError(format!("{p}^{d} vertices overflows")))?;
            require(
                n <= 100_000_000,
                format!("{p}^{d} = {n} vertices is too large"),
            )?;
            if family == "linf" {
                generators::grid_linf(p, d)
            } else {
                generators::half_grid(p, d)
            }
        }
        "tree" => {
            let (arity, depth) = (num(1, "ARITY")?, num(2, "DEPTH")?);
            require(arity >= 1, "tree arity must be positive")?;
            require(
                depth <= 32 && arity.saturating_pow(depth.min(32) as u32) <= 100_000_000,
                "tree is too large",
            )?;
            generators::balanced_tree(arity, depth)
        }
        "hypercube" => {
            let d = num(1, "D")?;
            require(
                (1..=20).contains(&d),
                "hypercube dimension must be in 1..=20",
            )?;
            generators::hypercube(d)
        }
        "udg" => {
            let n = num(1, "N")?;
            require(n >= 1, "graph needs at least one vertex")?;
            let r: f64 = args
                .positional(2, "RADIUS")?
                .parse()
                .map_err(|_| ArgError("invalid <RADIUS>".into()))?;
            require(
                r.is_finite() && r > 0.0 && r <= 0.5,
                "radius must be in (0, 0.5] on the unit torus",
            )?;
            generators::random_geometric(n, r, seed)
        }
        "road" => {
            let w = num(1, "W")?;
            let h = num(2, "H")?;
            require(
                w >= 2 && h >= 2,
                "road network needs a real grid (W, H >= 2)",
            )?;
            let r: f64 = args
                .positional(3, "REMOVAL")?
                .parse()
                .map_err(|_| ArgError("invalid <REMOVAL>".into()))?;
            require(
                r.is_finite() && (0.0..=0.5).contains(&r),
                "removal rate must be in [0, 0.5]",
            )?;
            generators::road_network(w, h, r, seed)
        }
        "er" => {
            let n = num(1, "N")?;
            require(n >= 1, "graph needs at least one vertex")?;
            let p: f64 = args
                .positional(2, "PROB")?
                .parse()
                .map_err(|_| ArgError("invalid <PROB>".into()))?;
            require(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "edge probability must be in [0, 1]",
            )?;
            generators::erdos_renyi(n, p, seed)
        }
        other => return Err(ArgError(format!("unknown family '{other}'"))),
    };
    let text = gio::to_string(&g);
    match args.option("out") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
            write_out(
                out,
                &format!(
                    "wrote {family} graph ({} vertices, {} edges) to {path}\n",
                    g.num_vertices(),
                    g.num_edges()
                ),
            )
        }
        None => write_out(out, &text),
    }
}

fn cmd_stats<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let mut text = GraphStats::compute(&g).to_string();
    if g.num_vertices() > 1 {
        let est = estimate_dimension(&g, &DoublingConfig::default());
        text.push_str(&format!(
            "doubling:    alpha ~ {} (worst cover {} at ({}, r={}))\n",
            est.alpha, est.worst_cover, est.worst_case.0, est.worst_case.1
        ));
    }
    match args.option("store") {
        Some(dir) => {
            let mode = open_mode_from(args)?;
            let oracle = DynamicOracle::open_with(std::path::Path::new(dir), &g, mode)
                .map_err(|e| ArgError(format!("cannot open store {dir}: {e}")))?;
            text.push_str(&render_dynamic_stats(&oracle));
        }
        None => reject_open_mode_without_store(args)?,
    }
    write_out(out, &text)
}

/// The service-health block shared by `stats --store` and `update`.
fn render_dynamic_stats(oracle: &DynamicOracle) -> String {
    let s = oracle.stats();
    format!(
        "dynamic:     generation {}, threshold {}, faults baked {} / buffered {}\n\
         labels:      {} resident ({} bytes) of {} on-disk bytes, open mode {}\n\
         rebuilds:    {} total ({} background, {} failed), last {:.2} ms, in-flight: {}\n\
         wal:         {} records / {} bytes since rotation; replayed {} records, \
         truncated {} torn bytes\n\
         health:      carry-over {}, blocked-on-rebuild {}, swap-contended {}\n",
        s.store_generation,
        s.threshold,
        s.baked,
        s.buffered,
        s.resident_labels,
        s.resident_label_bytes,
        s.on_disk_label_bytes,
        s.label_open_mode.map_or("in-memory", |m| m.name()),
        s.rebuilds,
        s.background_rebuilds,
        s.failed_rebuilds,
        s.last_rebuild_ms,
        if s.rebuild_in_flight { "yes" } else { "no" },
        s.wal_records_since_rotation,
        s.wal_bytes_since_rotation,
        s.replayed_records,
        s.replay_truncated_bytes,
        s.carry_over_depth,
        s.blocked_on_rebuild,
        s.serving_swaps_contended,
    )
}

/// Opens (or, on first use, creates from `--eps`/`--threshold`) the
/// dynamic oracle at `dir_raw`, honoring `--background`. Shared by
/// `update` and `serve --dynamic`.
fn dynamic_oracle_from(
    args: &ParsedArgs,
    g: &Graph,
    dir_raw: &str,
) -> Result<DynamicOracle, ArgError> {
    let dir = std::path::Path::new(dir_raw);
    let exists = dir.join(fsdl_labels::store::MANIFEST_NAME).exists();
    let mut oracle = if exists {
        if args.option("eps").is_some() || args.option("threshold").is_some() {
            return Err(ArgError(
                "--eps/--threshold conflict with an existing store (both are recorded in it)"
                    .into(),
            ));
        }
        DynamicOracle::open_with(dir, g, open_mode_from(args)?)
            .map_err(|e| ArgError(format!("cannot open store {dir_raw}: {e}")))?
    } else {
        require(
            args.option("open-mode").is_none(),
            "--open-mode applies to an existing store (this one is being created in memory)",
        )?;
        let eps: f64 = parse_eps(args)?;
        let threshold = match args.option("threshold") {
            None => None,
            Some(raw) => Some(
                raw.parse::<usize>()
                    .map_err(|_| ArgError(format!("invalid value '{raw}' for --threshold")))?,
            ),
        };
        let mut oracle = DynamicOracle::try_with_config(
            g,
            DynamicConfig {
                epsilon: eps,
                threshold,
                ..DynamicConfig::default()
            },
        )
        .map_err(|e| ArgError(e.to_string()))?;
        oracle
            .attach_store(dir)
            .map_err(|e| ArgError(format!("cannot create store {dir_raw}: {e}")))?;
        oracle
    };
    if args.option("background").is_some() {
        oracle.set_rebuild_mode(RebuildMode::Background);
    }
    Ok(oracle)
}

/// `fsdl update`: durable dynamic updates against a store directory. The
/// store is created on first use (from `--eps`/`--threshold`) and opened —
/// WAL replay included — afterwards, so killing this command at any point
/// (see `FSDL_CRASH_POINT`) never loses an acknowledged update.
fn cmd_update<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let dir_raw = args.required("store")?;
    let mut oracle = dynamic_oracle_from(args, &g, dir_raw)?;
    let bounds_check = |v: u32| -> Result<NodeId, ArgError> {
        if (v as usize) < g.num_vertices() {
            Ok(NodeId::new(v))
        } else {
            Err(ArgError(format!("vertex {v} out of range")))
        }
    };
    let mut applied = 0usize;
    let mut apply = |r: Result<(), fsdl_labels::DynamicError>| -> Result<(), ArgError> {
        r.map_err(|e| ArgError(format!("update failed: {e}")))?;
        applied += 1;
        Ok(())
    };
    for v in parse_vertex_list(args.option("delete").unwrap_or(""))? {
        apply(oracle.delete_vertex(bounds_check(v)?))?;
    }
    for (a, b) in parse_edge_list(args.option("delete-edge").unwrap_or(""))? {
        apply(oracle.delete_edge(bounds_check(a)?, bounds_check(b)?))?;
    }
    for v in parse_vertex_list(args.option("restore").unwrap_or(""))? {
        apply(oracle.restore_vertex(bounds_check(v)?))?;
    }
    for (a, b) in parse_edge_list(args.option("restore-edge").unwrap_or(""))? {
        apply(oracle.restore_edge(bounds_check(a)?, bounds_check(b)?))?;
    }
    // Drain any background rebuild before reporting: the process is about
    // to exit, and the install/persist must not be torn off mid-flight.
    oracle.wait_for_rebuild();
    let text = format!(
        "applied {applied} durable update(s) to {dir_raw} ({} fault(s) active)\n{}",
        oracle.current_faults().len(),
        render_dynamic_stats(&oracle)
    );
    write_out(out, &text)
}

fn cmd_label<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let eps: f64 = parse_eps(args)?;
    let oracle = ForbiddenSetOracle::new(&g, eps);
    let n = g.num_vertices();
    let mut text = format!(
        "scheme: eps = {eps}, c = {}, levels {}..={}\n",
        oracle.params().c(),
        oracle.params().c() + 1,
        oracle.params().top_level()
    );
    if let Some(v) = args.option("vertex") {
        let v: u32 = v
            .parse()
            .map_err(|_| ArgError(format!("invalid --vertex '{v}'")))?;
        if v as usize >= n {
            return Err(ArgError(format!("vertex {v} out of range")));
        }
        let label = oracle.label(NodeId::new(v));
        let stats = label.stats();
        let bits = fsdl_labels::codec::encoded_bits(&label, n);
        text.push_str(&format!(
            "label of v{v}: {} levels, {} points, {} virtual edges, {} real edges, {} bits\n",
            stats.levels, stats.points, stats.virtual_edges, stats.real_edges, bits
        ));
        for (i, level) in label.levels_iter() {
            text.push_str(&format!(
                "  level {i}: {} points, {} virtual, {} real\n",
                level.points.len(),
                level.virtual_edges.len(),
                level.real_edges.len()
            ));
        }
    } else if let Some(raw) = args.option("threads") {
        let threads: usize = raw
            .parse()
            .map_err(|_| ArgError(format!("invalid --threads '{raw}'")))?;
        let workers = fsdl_nets::parallel::resolve_workers(threads, n);
        let start = std::time::Instant::now();
        oracle.prewarm_workers(workers);
        let elapsed = start.elapsed().as_secs_f64();
        let total_bits = oracle.total_bits();
        text.push_str(&format!(
            "materialized all {n} labels with {workers} workers in {elapsed:.2}s: \
             {total_bits} bits total, mean {} bits, {} KiB oracle\n",
            total_bits / n as u64,
            total_bits / 8192
        ));
    } else {
        let sample: usize = args.parse_option("sample", 8usize)?;
        let sample = sample.clamp(1, n);
        let stride = (n / sample).max(1);
        let mut total = 0usize;
        let mut max = 0usize;
        let mut count = 0usize;
        let mut v = 0usize;
        while v < n {
            let bits = oracle.labeling().label_bits(NodeId::from_index(v));
            total += bits;
            max = max.max(bits);
            count += 1;
            v += stride;
        }
        text.push_str(&format!(
            "sampled {count} labels: mean {} bits, max {max} bits, est. oracle {} KiB\n",
            total / count,
            (total / count) * n / 8192
        ));
    }
    write_out(out, &text)
}

fn cmd_query<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let s: u32 = args.parse_required("source")?;
    let t: u32 = args.parse_required("target")?;
    for v in [s, t] {
        if v as usize >= g.num_vertices() {
            return Err(ArgError(format!("vertex {v} out of range")));
        }
    }
    let faults = faults_from(args, &g)?;
    let repeat: usize = args.parse_option("repeat", 1usize)?;
    if repeat == 0 {
        return Err(ArgError("--repeat must be at least 1".into()));
    }
    let oracle = oracle_from(args, &g)?;
    let mut scratch = fsdl_labels::DecodeScratch::new();
    let start = std::time::Instant::now();
    let answer = oracle.query_with(NodeId::new(s), NodeId::new(t), &faults, &mut scratch);
    for _ in 1..repeat {
        let again = oracle.query_with(NodeId::new(s), NodeId::new(t), &faults, &mut scratch);
        if again != answer {
            return Err(ArgError(
                "internal error: repeated decode diverged from first answer".into(),
            ));
        }
    }
    let elapsed = start.elapsed();
    let mut text = format!(
        "delta(v{s}, v{t}, |F|={}) = {} (sketch: {} vertices, {} edges)\n",
        faults.len(),
        answer.distance,
        answer.sketch_vertices,
        answer.sketch_edges
    );
    if repeat > 1 {
        text.push_str(&format!(
            "repeated {repeat}x (scratch reused, all answers identical): {} ns/query\n",
            elapsed.as_nanos() / repeat as u128
        ));
    }
    if !answer.path.is_empty() {
        text.push_str("witness: ");
        text.push_str(
            &answer
                .path
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" -> "),
        );
        text.push('\n');
    }
    if args.option("exact").is_some() {
        let exact = ExactOracle::new(&g).distance(NodeId::new(s), NodeId::new(t), &faults);
        text.push_str(&format!("exact:   {exact}\n"));
    }
    write_out(out, &text)
}

fn cmd_route<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let s: u32 = args.parse_required("source")?;
    let t: u32 = args.parse_required("target")?;
    for v in [s, t] {
        if v as usize >= g.num_vertices() {
            return Err(ArgError(format!("vertex {v} out of range")));
        }
    }
    let faults = faults_from(args, &g)?;
    let net = Network::from_oracle(oracle_from(args, &g)?);
    match net.route(NodeId::new(s), NodeId::new(t), &faults) {
        Ok(d) => {
            let text = format!(
                "delivered in {} hops ({} header waypoints, {} header bits)\npath: {}\n",
                d.hops,
                d.header.len(),
                d.header_bits,
                d.path
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" -> ")
            );
            write_out(out, &text)
        }
        Err(e) => write_out(out, &format!("not delivered: {e}\n")),
    }
}

fn cmd_batch<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let s: u32 = args.parse_required("source")?;
    if s as usize >= g.num_vertices() {
        return Err(ArgError(format!("vertex {s} out of range")));
    }
    let targets: Vec<NodeId> = parse_vertex_list(args.required("targets")?)?
        .into_iter()
        .map(NodeId::new)
        .collect();
    for t in &targets {
        if !g.contains(*t) {
            return Err(ArgError(format!("target {t} out of range")));
        }
    }
    let faults = faults_from(args, &g)?;
    let oracle = oracle_from(args, &g)?;
    let distances = oracle.distances_to(NodeId::new(s), &targets, &faults);
    let mut text = format!(
        "batch from v{s} (|F| = {}):
",
        faults.len()
    );
    for (k, t) in targets.iter().enumerate() {
        text.push_str(&format!(
            "  {t}: {}
",
            distances[k]
        ));
    }
    write_out(out, &text)
}

fn cmd_spanner<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let eps: f64 = parse_eps(args)?;
    let s = fsdl_nets::Spanner::build(&g, eps);
    let text = format!(
        "(1+{eps})-spanner: {} vertices, {} weighted edges ({}x the graph's {})
",
        s.num_vertices(),
        s.num_edges(),
        s.num_edges() / g.num_edges().max(1),
        g.num_edges()
    );
    write_out(out, &text)
}

fn cmd_trace<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let eps: f64 = parse_eps(args)?;
    let s: u32 = args.parse_required("source")?;
    let t: u32 = args.parse_required("target")?;
    for v in [s, t] {
        if v as usize >= g.num_vertices() {
            return Err(ArgError(format!("vertex {v} out of range")));
        }
    }
    let faults = faults_from(args, &g)?;
    let oracle = ForbiddenSetOracle::new(&g, eps);
    let source = oracle.label(NodeId::new(s));
    let target = oracle.label(NodeId::new(t));
    let fault_labels: Vec<_> = faults.vertices().map(|f| oracle.label(f)).collect();
    let edge_labels: Vec<_> = faults
        .edges()
        .map(|e| (oracle.label(e.lo()), oracle.label(e.hi())))
        .collect();
    let ql = fsdl_labels::QueryLabels {
        fault_vertices: fault_labels.iter().map(|l| l.as_ref()).collect(),
        fault_edges: edge_labels
            .iter()
            .map(|(a, b)| (a.as_ref(), b.as_ref()))
            .collect(),
    };
    let trace = fsdl_labels::trace_query(oracle.params(), &source, &target, &ql);
    let mut text = format!(
        "delta(v{s}, v{t}, |F|={}) = {} (sketch {}x{})\n",
        faults.len(),
        trace.distance,
        trace.sketch_size.0,
        trace.sketch_size.1
    );
    for h in &trace.hops {
        text.push_str(&format!(
            "  {} -> {}  level {}  weight {}  {}\n",
            h.from,
            h.to,
            h.level,
            h.weight,
            if h.real { "real" } else { "virtual" }
        ));
    }
    write_out(out, &text)
}

fn cmd_audit<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let eps: f64 = parse_eps(args)?;
    let sample: usize = args.parse_option("sample", 6usize)?;
    let labeling =
        fsdl_labels::Labeling::try_build(&g, fsdl_labels::SchemeParams::new(eps, g.num_vertices()))
            .map_err(|e| ArgError(format!("cannot build labeling: {e}")))?;
    let report = fsdl_labels::audit::audit(&labeling, sample);
    let mut text = format!(
        "audited {} labels: {} points, {} virtual edges\n",
        report.vertices_checked, report.points_checked, report.edges_checked
    );
    let sizes = labeling.nets().level_sizes();
    text.push_str(&format!("net sizes |N_0..N_top|: {sizes:?}\n"));
    if report.passed() {
        text.push_str("PASS: all scheme invariants hold\n");
    } else {
        text.push_str("FAIL:\n");
        for v in &report.violations {
            text.push_str(&format!("  {v}\n"));
        }
        write_out(out, &text)?;
        return Err(ArgError("audit found violations".into()));
    }
    write_out(out, &text)
}

/// Parses a `--listen` value: `tcp:HOST:PORT` or `unix:PATH`.
fn parse_listen(raw: &str) -> Result<Endpoint, ArgError> {
    if let Some(addr) = raw.strip_prefix("tcp:") {
        if addr.is_empty() {
            return Err(ArgError("empty TCP address in --listen".into()));
        }
        Ok(Endpoint::Tcp(addr.to_string()))
    } else if let Some(path) = raw.strip_prefix("unix:") {
        if path.is_empty() {
            return Err(ArgError("empty socket path in --listen".into()));
        }
        Ok(Endpoint::Unix(std::path::PathBuf::from(path)))
    } else {
        Err(ArgError(format!(
            "--listen must be tcp:HOST:PORT or unix:PATH (got '{raw}')"
        )))
    }
}

/// `fsdl serve`: the long-running oracle server. Blocks until a client
/// sends a shutdown frame, then drains in-flight work (and, in dynamic
/// mode, any background rebuild) and reports lifetime totals.
fn cmd_serve<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let g = load_graph(args.positional(0, "graph-file")?)?;
    let endpoint = parse_listen(args.required("listen")?)?;
    let workers: usize = args.parse_option("workers", 0usize)?;
    let frame_deadline_ms: u64 = args.parse_option("frame-deadline-ms", 10_000u64)?;
    if frame_deadline_ms == 0 {
        return Err(ArgError(
            "--frame-deadline-ms must be positive (it is the slow-loris cutoff)".into(),
        ));
    }
    let shards: u32 = args.parse_option("shards", 0u32)?;
    if shards > 0 {
        if args.option("dynamic").is_some() {
            return Err(ArgError(
                "--shards serves immutable shard stores; it cannot combine with --dynamic".into(),
            ));
        }
        return cmd_serve_sharded(args, out, &g, &endpoint, shards, workers, frame_deadline_ms);
    }
    let (engine, mode) = if args.option("dynamic").is_some() {
        let dir = args.option("store").ok_or_else(|| {
            ArgError("--dynamic requires --store DIR (the durable oracle lives there)".into())
        })?;
        let oracle = dynamic_oracle_from(args, &g, dir)?;
        (ServeEngine::from_dynamic(oracle), "dynamic")
    } else {
        let net = Network::from_oracle(oracle_from(args, &g)?);
        (ServeEngine::from_network(net), "static")
    };
    let server = Server::bind(
        &endpoint,
        engine,
        ServerConfig {
            workers,
            frame_deadline: std::time::Duration::from_millis(frame_deadline_ms),
            ..ServerConfig::default()
        },
    )
    .map_err(|e| ArgError(format!("cannot bind {endpoint}: {e}")))?;
    let bound = server
        .local_endpoint()
        .map_err(|e| ArgError(format!("cannot resolve bound endpoint: {e}")))?;
    write_out(
        out,
        &format!(
            "serving {bound} ({mode} oracle, {} workers); stop with a shutdown frame\n",
            server.resolved_workers()
        ),
    )?;
    out.flush()
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    let report = server.run();
    write_out(
        out,
        &format!(
            "server drained: {} connections, {} queries ({} batched), {} routes, \
             {} updates, {} protocol errors, {} deadline closes\n",
            report.connections,
            report.queries,
            report.batch_queries,
            report.routes,
            report.updates,
            report.protocol_errors,
            report.deadline_closes
        ),
    )
}

/// `fsdl serve --shards S`: the simulated multi-shard plane on one
/// machine. Partitions the label set by net-hierarchy cell, writes S
/// shard stores, brings up S in-process shard servers on unix sockets,
/// and serves the scatter-gather router at `--listen` until shutdown.
fn cmd_serve_sharded<W: Write>(
    args: &ParsedArgs,
    out: &mut W,
    g: &Graph,
    endpoint: &Endpoint,
    shards: u32,
    workers: usize,
    frame_deadline_ms: u64,
) -> Result<(), ArgError> {
    let oracle = oracle_from(args, g)?;
    let plan = PartitionPlan::for_oracle(&oracle, shards);
    let (dir, ephemeral) = match args.option("shard-dir") {
        Some(d) => (std::path::PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("fsdl-shards-{}", std::process::id())),
            true,
        ),
    };
    let reports = fsdl_labels::write_shard_stores(&oracle, &dir, &plan)
        .map_err(|e| ArgError(format!("cannot write shard stores under {}: {e}", dir.display())))?;
    drop(oracle); // the shards and router serve from disk, not this copy

    let mut shard_endpoints = Vec::with_capacity(shards as usize);
    let mut shard_handles = Vec::with_capacity(shards as usize);
    for report in &reports {
        let store = ShardStore::open(&dir.join(shard_dir_name(report.shard)))
            .map_err(|e| ArgError(format!("cannot reopen shard {}: {e}", report.shard)))?;
        let shard_ep = Endpoint::Unix(dir.join(format!("shard-{}.sock", report.shard)));
        let server = Server::bind(
            &shard_ep,
            ServeEngine::from_shard(store),
            ServerConfig {
                // Label-fetch is a memcpy; one worker per shard keeps the
                // simulated fleet from oversubscribing the host.
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .map_err(|e| ArgError(format!("cannot bind shard {}: {e}", report.shard)))?;
        let handle = server.shutdown_handle();
        shard_handles.push((std::thread::spawn(move || server.run()), handle));
        shard_endpoints.push(shard_ep);
    }

    let router = Router::bind(
        endpoint,
        shard_endpoints,
        plan,
        RouterConfig {
            workers,
            frame_deadline: std::time::Duration::from_millis(frame_deadline_ms),
            ..RouterConfig::default()
        },
    )
    .map_err(|e| ArgError(format!("cannot bind router at {endpoint}: {e}")))?;
    let bound = router
        .local_endpoint()
        .map_err(|e| ArgError(format!("cannot resolve bound endpoint: {e}")))?;
    write_out(
        out,
        &format!(
            "serving {bound} (router over {shards} shards under {}); \
             stop with a shutdown frame\n",
            dir.display()
        ),
    )?;
    out.flush()
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    let report = router.run();

    let mut fetches_served = 0u64;
    for (thread, handle) in shard_handles {
        handle.signal();
        if let Ok(shard_report) = thread.join() {
            fetches_served += shard_report.label_fetches;
        }
    }
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    write_out(
        out,
        &format!(
            "router drained: {} connections, {} queries ({} batched), \
             {} upstream fetches ({fetches_served} served), {} protocol errors, \
             {} shard failures, {} deadline closes\n",
            report.connections,
            report.queries,
            report.batch_queries,
            report.upstream_fetches,
            report.protocol_errors,
            report.shard_failures,
            report.deadline_closes
        ),
    )
}

/// `fsdl shard`: serves one shard store (label-fetch frames only).
fn cmd_shard<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let dir = std::path::PathBuf::from(args.positional(0, "shard-dir")?);
    let endpoint = parse_listen(args.required("listen")?)?;
    let workers: usize = args.parse_option("workers", 0usize)?;
    let mode = open_mode_from(args)?;
    let store = ShardStore::open_with(&dir, mode)
        .map_err(|e| ArgError(format!("cannot open shard store at {}: {e}", dir.display())))?;
    let identity = format!(
        "shard {}/{} ({} of {} labels, generation {})",
        store.shard(),
        store.num_shards(),
        store.num_labels(),
        store.total_vertices(),
        store.generation()
    );
    let server = Server::bind(
        &endpoint,
        ServeEngine::from_shard(store),
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| ArgError(format!("cannot bind {endpoint}: {e}")))?;
    let bound = server
        .local_endpoint()
        .map_err(|e| ArgError(format!("cannot resolve bound endpoint: {e}")))?;
    write_out(out, &format!("serving {bound} ({identity})\n"))?;
    out.flush()
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    let report = server.run();
    write_out(
        out,
        &format!(
            "shard drained: {} connections, {} label fetches, {} protocol errors\n",
            report.connections, report.label_fetches, report.protocol_errors
        ),
    )
}

/// Parses the router's `--shards` value: comma-separated listen specs in
/// shard order.
fn parse_shard_endpoints(raw: &str) -> Result<Vec<Endpoint>, ArgError> {
    let endpoints: Result<Vec<Endpoint>, ArgError> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(parse_listen)
        .collect();
    let endpoints = endpoints?;
    if endpoints.is_empty() {
        return Err(ArgError(
            "--shards needs at least one endpoint (comma-separated, in shard order)".into(),
        ));
    }
    Ok(endpoints)
}

/// `fsdl router`: fronts an already-running shard fleet.
fn cmd_router<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    let endpoint = parse_listen(args.required("listen")?)?;
    let plan_path = std::path::PathBuf::from(args.required("plan")?);
    let shard_endpoints = parse_shard_endpoints(args.required("shards")?)?;
    let workers: usize = args.parse_option("workers", 0usize)?;
    let frame_deadline_ms: u64 = args.parse_option("frame-deadline-ms", 10_000u64)?;
    if frame_deadline_ms == 0 {
        return Err(ArgError(
            "--frame-deadline-ms must be positive (it is the slow-loris cutoff)".into(),
        ));
    }
    let plan = PartitionPlan::load(&plan_path)
        .map_err(|e| ArgError(format!("cannot load plan {}: {e}", plan_path.display())))?;
    let router = Router::bind(
        &endpoint,
        shard_endpoints,
        plan,
        RouterConfig {
            workers,
            frame_deadline: std::time::Duration::from_millis(frame_deadline_ms),
            ..RouterConfig::default()
        },
    )
    .map_err(|e| ArgError(format!("cannot bind router at {endpoint}: {e}")))?;
    let bound = router
        .local_endpoint()
        .map_err(|e| ArgError(format!("cannot resolve bound endpoint: {e}")))?;
    write_out(out, &format!("routing {bound}; stop with a shutdown frame\n"))?;
    out.flush()
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    let report = router.run();
    write_out(
        out,
        &format!(
            "router drained: {} connections, {} queries ({} batched), \
             {} upstream fetches, {} protocol errors, {} shard failures, \
             {} deadline closes\n",
            report.connections,
            report.queries,
            report.batch_queries,
            report.upstream_fetches,
            report.protocol_errors,
            report.shard_failures,
            report.deadline_closes
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> Result<String, ArgError> {
        let parsed = ParsedArgs::parse(args.iter().map(|s| s.to_string()))?;
        let mut buf = Vec::new();
        run(&parsed, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    /// Writes a graph to a unique temp file; the file is removed on drop.
    struct TempGraph(std::path::PathBuf);

    impl TempGraph {
        fn new(g: &Graph) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "fsdl-cli-test-{}-{}.txt",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            fs::write(&path, gio::to_string(g)).expect("write temp graph");
            TempGraph(path)
        }

        fn path(&self) -> &str {
            self.0.to_str().expect("utf8 temp path")
        }
    }

    impl Drop for TempGraph {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
        }
    }

    fn temp_graph() -> TempGraph {
        TempGraph::new(&generators::cycle(12))
    }

    #[test]
    fn help_prints_usage() {
        let out = run_args(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_args(&["frobnicate"]).is_err());
    }

    #[test]
    fn gen_to_stdout_parses_back() {
        let out = run_args(&["gen", "grid", "3", "4"]).unwrap();
        let g = gio::from_str(&out).unwrap();
        assert_eq!(g.num_vertices(), 12);
    }

    #[test]
    fn gen_unknown_family() {
        assert!(run_args(&["gen", "klein-bottle", "4"]).is_err());
    }

    #[test]
    fn stats_on_cycle() {
        let path = temp_graph();
        let out = run_args(&["stats", path.path()]).unwrap();
        assert!(out.contains("vertices:    12"));
        assert!(out.contains("components:  1"));
        assert!(out.contains("doubling"));
    }

    #[test]
    fn label_summary_and_single_vertex() {
        let path = temp_graph();
        let p = path.path();
        let out = run_args(&["label", p, "--sample", "4"]).unwrap();
        assert!(out.contains("mean"));
        let out = run_args(&["label", p, "--vertex", "3"]).unwrap();
        assert!(out.contains("label of v3"));
        assert!(run_args(&["label", p, "--vertex", "99"]).is_err());
    }

    #[test]
    fn label_parallel_materialization() {
        let path = temp_graph();
        let p = path.path();
        let out = run_args(&["label", p, "--threads", "4"]).unwrap();
        assert!(
            out.contains("materialized all 12 labels with 4 workers"),
            "{out}"
        );
        let auto = run_args(&["label", p, "--threads", "0"]).unwrap();
        assert!(auto.contains("bits total"), "{auto}");
        assert!(run_args(&["label", p, "--threads", "nope"]).is_err());
    }

    #[test]
    fn query_with_fault_and_exact() {
        let path = temp_graph();
        let p = path.path();
        let out = run_args(&[
            "query", p, "--source", "0", "--target", "2", "--forbid", "1", "--exact", "yes",
        ])
        .unwrap();
        assert!(out.contains("delta(v0, v2, |F|=1)"), "{out}");
        assert!(out.contains("exact:   10"), "{out}");
    }

    #[test]
    fn query_repeat_reuses_scratch() {
        let path = temp_graph();
        let p = path.path();
        let out = run_args(&[
            "query", p, "--source", "0", "--target", "2", "--forbid", "1", "--repeat", "5",
        ])
        .unwrap();
        assert!(out.contains("delta(v0, v2, |F|=1)"), "{out}");
        assert!(out.contains("repeated 5x"), "{out}");
        assert!(out.contains("ns/query"), "{out}");
        assert!(
            run_args(&["query", p, "--source", "0", "--target", "2", "--repeat", "nope"]).is_err()
        );
        assert!(
            run_args(&["query", p, "--source", "0", "--target", "2", "--repeat", "0"]).is_err()
        );
    }

    #[test]
    fn query_rejects_bad_input() {
        let path = temp_graph();
        let p = path.path();
        assert!(run_args(&["query", p, "--source", "0"]).is_err());
        assert!(run_args(&["query", p, "--source", "0", "--target", "99"]).is_err());
        assert!(run_args(&[
            "query",
            p,
            "--source",
            "0",
            "--target",
            "2",
            "--forbid-edge",
            "0-5"
        ])
        .is_err());
    }

    #[test]
    fn batch_command() {
        let path = temp_graph();
        let out = run_args(&[
            "batch",
            path.path(),
            "--source",
            "0",
            "--targets",
            "2,6,11",
            "--forbid",
            "1",
        ])
        .unwrap();
        assert!(out.contains("v2: 10"), "{out}");
        assert!(out.contains("v6: 6"), "{out}");
        assert!(run_args(&["batch", path.path(), "--source", "0", "--targets", "99"]).is_err());
    }

    #[test]
    fn spanner_command() {
        let path = temp_graph();
        let out = run_args(&["spanner", path.path(), "--eps", "2"]).unwrap();
        assert!(out.contains("spanner"), "{out}");
    }

    #[test]
    fn gen_road_family() {
        let out = run_args(&["gen", "road", "6", "6", "0.1", "--seed", "3"]).unwrap();
        let g = gio::from_str(&out).unwrap();
        assert_eq!(g.num_vertices(), 36);
    }

    #[test]
    fn trace_command() {
        let path = temp_graph();
        let out = run_args(&[
            "trace",
            path.path(),
            "--source",
            "0",
            "--target",
            "4",
            "--forbid",
            "2",
        ])
        .unwrap();
        assert!(out.contains("delta(v0, v4, |F|=1)"), "{out}");
        assert!(out.contains("real"), "{out}");
    }

    #[test]
    fn forbid_file_support() {
        let path = temp_graph();
        let faults_path =
            std::env::temp_dir().join(format!("fsdl-cli-faults-{}.txt", std::process::id()));
        fs::write(&faults_path, "v 1\n").unwrap();
        let out = run_args(&[
            "query",
            path.path(),
            "--source",
            "0",
            "--target",
            "2",
            "--forbid-file",
            faults_path.to_str().unwrap(),
            "--exact",
            "yes",
        ])
        .unwrap();
        let _ = fs::remove_file(&faults_path);
        assert!(out.contains("|F|=1"), "{out}");
        assert!(out.contains("exact:   10"), "{out}");
    }

    #[test]
    fn audit_command_passes_on_healthy_graph() {
        let path = temp_graph();
        let out = run_args(&["audit", path.path(), "--sample", "3"]).unwrap();
        assert!(out.contains("PASS"), "{out}");
        assert!(out.contains("net sizes"), "{out}");
    }

    #[test]
    fn route_delivers() {
        let path = temp_graph();
        let p = path.path();
        let out = run_args(&[
            "route", p, "--source", "0", "--target", "6", "--forbid", "3",
        ])
        .unwrap();
        assert!(out.contains("delivered in 6 hops"), "{out}");
    }

    /// A unique temp directory for a label store, removed on drop.
    struct TempStore(std::path::PathBuf);

    impl TempStore {
        fn new() -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "fsdl-cli-store-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&path);
            TempStore(path)
        }

        fn path(&self) -> &str {
            self.0.to_str().expect("utf8 temp path")
        }
    }

    impl Drop for TempStore {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn build_then_query_route_batch_from_store() {
        let graph = temp_graph();
        let store = TempStore::new();
        let (p, d) = (graph.path(), store.path());
        let out = run_args(&["build", p, "--store", d, "--threads", "2"]).unwrap();
        assert!(out.contains("saved generation 1"), "{out}");
        assert!(out.contains("built 12 labels"), "{out}");

        // Warm-started answers must match the cold-built ones exactly.
        let cold = run_args(&[
            "query", p, "--source", "0", "--target", "2", "--forbid", "1",
        ])
        .unwrap();
        let warm = run_args(&[
            "query", p, "--source", "0", "--target", "2", "--forbid", "1", "--store", d,
        ])
        .unwrap();
        assert_eq!(cold, warm);

        let out = run_args(&[
            "batch",
            p,
            "--source",
            "0",
            "--targets",
            "2,6",
            "--store",
            d,
        ])
        .unwrap();
        assert!(out.contains("v6: 6"), "{out}");
        let out = run_args(&[
            "route", p, "--source", "0", "--target", "6", "--forbid", "3", "--store", d,
        ])
        .unwrap();
        assert!(out.contains("delivered in 6 hops"), "{out}");
    }

    /// `--open-mode lazy` must be output-identical to the default eager
    /// open on every store-serving command, and `--open-mode` misuse is
    /// a typed usage error.
    #[test]
    fn open_mode_lazy_round_trips_and_misuse_is_typed() {
        let graph = temp_graph();
        let store = TempStore::new();
        let (p, d) = (graph.path(), store.path());
        run_args(&["build", p, "--store", d]).unwrap();

        let commands: Vec<Vec<&str>> = vec![
            vec![
                "query", p, "--source", "0", "--target", "2", "--forbid", "1", "--store", d,
            ],
            vec![
                "batch",
                p,
                "--source",
                "0",
                "--targets",
                "2,6",
                "--store",
                d,
            ],
            vec![
                "route", p, "--source", "0", "--target", "6", "--forbid", "3", "--store", d,
            ],
        ];
        for cmd in commands {
            let eager = run_args(&cmd).unwrap();
            for mode in ["eager", "lazy"] {
                let mut with_mode = cmd.clone();
                with_mode.extend(["--open-mode", mode]);
                assert_eq!(
                    eager,
                    run_args(&with_mode).unwrap(),
                    "{mode} diverged on {cmd:?}"
                );
            }
        }

        let err = run_args(&[
            "query",
            p,
            "--source",
            "0",
            "--target",
            "2",
            "--store",
            d,
            "--open-mode",
            "mapped",
        ])
        .unwrap_err();
        assert!(
            err.0.contains("invalid value 'mapped' for --open-mode"),
            "{err}"
        );
        let err = run_args(&[
            "query",
            p,
            "--source",
            "0",
            "--target",
            "2",
            "--open-mode",
            "lazy",
        ])
        .unwrap_err();
        assert!(err.0.contains("--open-mode requires --store"), "{err}");
    }

    #[test]
    fn store_misuse_is_a_typed_error() {
        let graph = temp_graph();
        let store = TempStore::new();
        let (p, d) = (graph.path(), store.path());
        // No store yet.
        let err =
            run_args(&["query", p, "--source", "0", "--target", "2", "--store", d]).unwrap_err();
        assert!(err.0.contains("cannot open store"), "{err}");
        run_args(&["build", p, "--store", d]).unwrap();
        // --eps conflicts with --store.
        let err = run_args(&[
            "query", p, "--source", "0", "--target", "2", "--store", d, "--eps", "2.0",
        ])
        .unwrap_err();
        assert!(err.0.contains("conflicts"), "{err}");
        // Store built for a different graph.
        let other = TempGraph::new(&generators::path(12));
        let err = run_args(&[
            "query",
            other.path(),
            "--source",
            "0",
            "--target",
            "2",
            "--store",
            d,
        ])
        .unwrap_err();
        assert!(err.0.contains("different graph"), "{err}");
        // Corrupted segment surfaces as a typed message, not a panic.
        let manifest = fsdl_labels::store::read_manifest(&store.0).unwrap();
        let seg = store.0.join(&manifest.segment);
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        let err =
            run_args(&["query", p, "--source", "0", "--target", "2", "--store", d]).unwrap_err();
        assert!(err.0.contains("cannot open store"), "{err}");
    }

    #[test]
    fn update_creates_store_applies_durably_and_reports_health() {
        let graph = temp_graph();
        let store = TempStore::new();
        let (p, d) = (graph.path(), store.path());
        // First use creates the store and applies the batch.
        let out = run_args(&[
            "update",
            p,
            "--store",
            d,
            "--threshold",
            "2",
            "--delete",
            "1,5",
        ])
        .unwrap();
        assert!(out.contains("applied 2 durable update(s)"), "{out}");
        assert!(out.contains("2 fault(s) active"), "{out}");
        assert!(out.contains("wal:         2 records"), "{out}");
        // A second invocation reopens (replaying the WAL), crosses the
        // threshold, and rebuilds.
        let out = run_args(&["update", p, "--store", d, "--delete", "8"]).unwrap();
        assert!(out.contains("3 fault(s) active"), "{out}");
        assert!(out.contains("rebuilds:    1 total"), "{out}");
        // Restores round-trip too.
        let out = run_args(&["update", p, "--store", d, "--restore", "1,5,8"]).unwrap();
        assert!(out.contains("0 fault(s) active"), "{out}");
        // stats --store renders the same health block.
        let out = run_args(&["stats", p, "--store", d]).unwrap();
        assert!(out.contains("dynamic:     generation"), "{out}");
        assert!(out.contains("blocked-on-rebuild"), "{out}");
    }

    #[test]
    fn update_rejects_bad_input_typed() {
        let graph = temp_graph();
        let store = TempStore::new();
        let (p, d) = (graph.path(), store.path());
        // Invalid threshold is the typed InvalidConfig, not a panic.
        let err = run_args(&["update", p, "--store", d, "--threshold", "0"]).unwrap_err();
        assert!(err.0.contains("threshold"), "{err}");
        run_args(&["update", p, "--store", d, "--delete", "1"]).unwrap();
        // Reconfiguring an existing store is rejected.
        let err = run_args(&["update", p, "--store", d, "--eps", "0.5"]).unwrap_err();
        assert!(err.0.contains("conflict"), "{err}");
        // Out-of-range and not-an-edge surface the dynamic errors.
        let err = run_args(&["update", p, "--store", d, "--delete", "99"]).unwrap_err();
        assert!(err.0.contains("out of range"), "{err}");
        let err = run_args(&["update", p, "--store", d, "--delete-edge", "0-2"]).unwrap_err();
        assert!(err.0.contains("not an edge"), "{err}");
        let err = run_args(&["update", p, "--store", d, "--restore", "7"]).unwrap_err();
        assert!(err.0.contains("not currently deleted"), "{err}");
    }

    #[test]
    fn update_background_mode_drains_before_exit() {
        let graph = temp_graph();
        let store = TempStore::new();
        let (p, d) = (graph.path(), store.path());
        let out = run_args(&[
            "update",
            p,
            "--store",
            d,
            "--threshold",
            "1",
            "--background",
            "yes",
            "--delete",
            "2,6,9",
        ])
        .unwrap();
        assert!(out.contains("applied 3 durable update(s)"), "{out}");
        assert!(out.contains("in-flight: no"), "{out}");
        // The drained store reopens with all three faults intact.
        let out = run_args(&["stats", p, "--store", d]).unwrap();
        assert!(out.contains("dynamic:"), "{out}");
    }

    #[test]
    fn route_unreachable() {
        let path = TempGraph::new(&generators::path(5));
        let out = run_args(&[
            "route",
            path.path(),
            "--source",
            "0",
            "--target",
            "4",
            "--forbid",
            "2",
        ])
        .unwrap();
        assert!(out.contains("not delivered"));
    }

    /// The panic sweep: every malformed input that used to trip an
    /// assert deep in a constructor or generator must surface as a
    /// typed `ArgError` instead.
    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        let path = temp_graph();
        let p = path.path();
        // Epsilon values the scheme constructors assert on.
        for eps in ["0", "-1", "nan", "inf", "not-a-number"] {
            for cmd in ["label", "spanner", "audit"] {
                let err = run_args(&[cmd, p, "--eps", eps])
                    .expect_err(&format!("{cmd} --eps {eps} must be rejected"));
                assert!(
                    err.to_string().contains("eps") || err.to_string().contains("invalid"),
                    "{cmd} --eps {eps}: {err}"
                );
            }
            assert!(
                run_args(&["query", p, "--source", "0", "--target", "1", "--eps", eps]).is_err()
            );
        }
        // Generator parameters the generators assert on.
        for bad in [
            &["gen", "path", "0"][..],
            &["gen", "cycle", "2"],
            &["gen", "grid", "0", "4"],
            &["gen", "king", "3", "0"],
            &["gen", "grid3d", "0", "2", "2"],
            &["gen", "linf", "1", "2"],
            &["gen", "halfgrid", "2", "0"],
            &["gen", "tree", "0", "3"],
            &["gen", "hypercube", "21"],
            &["gen", "hypercube", "0"],
            &["gen", "udg", "0", "0.2"],
            &["gen", "udg", "16", "0.9"],
            &["gen", "udg", "16", "nan"],
            &["gen", "er", "16", "1.5"],
            &["gen", "er", "0", "0.5"],
            &["gen", "road", "1", "5", "0.1"],
            &["gen", "road", "5", "5", "0.9"],
        ] {
            assert!(run_args(bad).is_err(), "{bad:?} must be a typed error");
        }
        // Bad fault-file lines and a bad store dir.
        let fault_file =
            std::env::temp_dir().join(format!("fsdl-cli-badfaults-{}.txt", std::process::id()));
        fs::write(&fault_file, "v not-a-number\n").unwrap();
        let err = run_args(&[
            "query",
            p,
            "--source",
            "0",
            "--target",
            "1",
            "--forbid-file",
            fault_file.to_str().unwrap(),
        ])
        .expect_err("bad fault file must be rejected");
        assert!(err.to_string().contains("cannot parse"), "{err}");
        let _ = fs::remove_file(&fault_file);
        assert!(run_args(&[
            "query",
            p,
            "--source",
            "0",
            "--target",
            "1",
            "--store",
            "/nonexistent/fsdl-store"
        ])
        .is_err());
    }

    /// A freshly-created store (no WAL records, zero rebuilds) must
    /// still print the full health block, all zeros — not a panic or a
    /// truncated report.
    #[test]
    fn stats_on_fresh_store_prints_zeroed_health_block() {
        let path = temp_graph();
        let store = TempStore::new();
        // `update` with no update flags creates the store and applies 0 ops.
        let out = run_args(&["update", path.path(), "--store", store.path()]).unwrap();
        assert!(out.contains("applied 0 durable update(s)"), "{out}");
        let out = run_args(&["stats", path.path(), "--store", store.path()]).unwrap();
        assert!(
            out.contains("dynamic:     generation 1, threshold"),
            "{out}"
        );
        assert!(out.contains("faults baked 0 / buffered 0"), "{out}");
        assert!(
            out.contains("rebuilds:    0 total (0 background, 0 failed)"),
            "{out}"
        );
        assert!(out.contains("wal:         0 records / 0 bytes"), "{out}");
        assert!(
            out.contains("replayed 0 records, truncated 0 torn bytes"),
            "{out}"
        );
        assert!(
            out.contains("carry-over 0, blocked-on-rebuild 0, swap-contended 0"),
            "{out}"
        );
    }

    /// `stats --store` separates resident from on-disk label bytes and
    /// names the open mode; nothing is resident right after either open
    /// (labels decode on first touch in both modes).
    #[test]
    fn stats_reports_resident_vs_on_disk_label_bytes() {
        let path = temp_graph();
        let store = TempStore::new();
        run_args(&["update", path.path(), "--store", store.path()]).unwrap();
        let out = run_args(&["stats", path.path(), "--store", store.path()]).unwrap();
        assert!(
            out.contains("labels:      0 resident (0 bytes) of "),
            "{out}"
        );
        assert!(out.contains("open mode eager"), "{out}");
        let on_disk: u64 = out
            .lines()
            .find(|l| l.starts_with("labels:"))
            .and_then(|l| l.split_whitespace().nth(6))
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| panic!("no on-disk byte count in {out}"));
        assert!(on_disk > 0, "{out}");
        let out = run_args(&[
            "stats",
            path.path(),
            "--store",
            store.path(),
            "--open-mode",
            "lazy",
        ])
        .unwrap();
        assert!(out.contains("open mode lazy"), "{out}");
        let err = run_args(&["stats", path.path(), "--open-mode", "lazy"]).unwrap_err();
        assert!(err.0.contains("--open-mode requires --store"), "{err}");
    }

    #[test]
    fn serve_rejects_malformed_listen_and_missing_store() {
        let path = temp_graph();
        let p = path.path();
        for listen in ["", "http://x", "tcp:", "unix:"] {
            assert!(run_args(&["serve", p, "--listen", listen]).is_err());
        }
        let err = run_args(&[
            "serve",
            p,
            "--listen",
            "unix:/tmp/x.sock",
            "--dynamic",
            "yes",
        ])
        .expect_err("--dynamic without --store must be rejected");
        assert!(err.to_string().contains("--store"), "{err}");
        let err = run_args(&[
            "serve",
            p,
            "--listen",
            "unix:/tmp/x.sock",
            "--frame-deadline-ms",
            "0",
        ])
        .expect_err("a zero frame deadline must be rejected");
        assert!(err.to_string().contains("frame-deadline"), "{err}");
    }

    /// End-to-end over the real binary protocol: serve on a unix socket
    /// from this process, query it with the typed client, shut it down.
    #[test]
    fn serve_answers_queries_and_drains_on_shutdown() {
        let graph = TempGraph::new(&generators::grid2d(5, 4));
        let sock = std::env::temp_dir().join(format!("fsdl-cli-serve-{}.sock", std::process::id()));
        let listen = format!("unix:{}", sock.display());
        let gpath = graph.path().to_string();
        let server = std::thread::spawn(move || {
            run_args(&[
                "serve",
                &gpath,
                "--listen",
                &listen,
                "--workers",
                "2",
                "--frame-deadline-ms",
                "5000",
            ])
        });
        let endpoint = Endpoint::Unix(sock.clone());
        let mut client =
            fsdl_server::Client::connect_with_retry(&endpoint, std::time::Duration::from_secs(10))
                .expect("connect");
        let reply = client
            .query(0, 19, fsdl_server::WireFaults::default())
            .expect("query");
        assert!(
            reply.distance >= 7,
            "grid corner distance, got {}",
            reply.distance
        );
        client.shutdown().expect("shutdown");
        let out = server.join().expect("serve thread").expect("serve run");
        assert!(out.contains("serving unix://"), "{out}");
        assert!(out.contains("1 queries"), "{out}");
        assert!(out.contains("0 protocol errors"), "{out}");
        assert!(out.contains("0 deadline closes"), "{out}");
        assert!(!sock.exists(), "socket removed after drain");
    }

    #[test]
    fn router_rejects_malformed_arguments() {
        let err = run_args(&["router", "--plan", "/nope", "--shards", "unix:/tmp/a.sock"])
            .expect_err("missing --listen");
        assert!(err.to_string().contains("--listen"), "{err}");
        let err = run_args(&[
            "router",
            "--listen",
            "unix:/tmp/r.sock",
            "--plan",
            "/nope",
            "--shards",
            "",
        ])
        .expect_err("empty shard list");
        assert!(err.to_string().contains("at least one endpoint"), "{err}");
        let err = run_args(&[
            "router",
            "--listen",
            "unix:/tmp/r.sock",
            "--plan",
            "/definitely/not/a/plan",
            "--shards",
            "unix:/tmp/a.sock",
        ])
        .expect_err("unreadable plan");
        assert!(err.to_string().contains("cannot load plan"), "{err}");
    }

    #[test]
    fn serve_rejects_shards_with_dynamic() {
        let path = temp_graph();
        let err = run_args(&[
            "serve",
            path.path(),
            "--listen",
            "unix:/tmp/x.sock",
            "--shards",
            "2",
            "--dynamic",
            "yes",
            "--store",
            "/tmp/nope",
        ])
        .expect_err("--shards with --dynamic must be rejected");
        assert!(err.to_string().contains("--dynamic"), "{err}");
    }

    /// The whole simulated multi-shard plane, end to end: `serve
    /// --shards 2` partitions and persists the labels, spawns the shard
    /// fleet, and routes queries bit-identically to the local oracle.
    #[test]
    fn serve_sharded_answers_bit_identically() {
        let g = generators::grid2d(5, 4);
        let graph = TempGraph::new(&g);
        let sock = std::env::temp_dir().join(format!(
            "fsdl-cli-shard-serve-{}.sock",
            std::process::id()
        ));
        let listen = format!("unix:{}", sock.display());
        let gpath = graph.path().to_string();
        let server = std::thread::spawn(move || {
            run_args(&[
                "serve", &gpath, "--listen", &listen, "--shards", "2", "--eps", "0.5",
            ])
        });
        let endpoint = Endpoint::Unix(sock.clone());
        let mut client =
            fsdl_server::Client::connect_with_retry(&endpoint, std::time::Duration::from_secs(10))
                .expect("connect");
        let oracle = ForbiddenSetOracle::new(&g, 0.5);
        let mut scratch = fsdl_labels::DecodeScratch::new();
        for (s, t, forbid) in [(0u32, 19u32, vec![]), (0, 19, vec![9u32]), (3, 16, vec![8])] {
            let faults = FaultSet::from_vertices(forbid.iter().copied().map(NodeId::new));
            let expected =
                oracle.query_with(NodeId::new(s), NodeId::new(t), &faults, &mut scratch);
            let wire = fsdl_server::WireFaults {
                vertices: forbid.clone(),
                edges: vec![],
            };
            let reply = client.query(s, t, wire).expect("routed query");
            assert_eq!(reply.distance, expected.distance.raw(), "distance {s}->{t}");
            assert_eq!(
                reply.path,
                expected.path.iter().map(|v| v.raw()).collect::<Vec<_>>(),
                "path {s}->{t}"
            );
        }
        client.shutdown().expect("shutdown");
        let out = server.join().expect("serve thread").expect("serve run");
        assert!(out.contains("router over 2 shards"), "{out}");
        assert!(out.contains("3 queries"), "{out}");
        assert!(out.contains("0 protocol errors"), "{out}");
        assert!(out.contains("0 shard failures"), "{out}");
    }
}
