//! `fsdl` — command-line toolbox for forbidden-set distance labels.
//!
//! See `fsdl help` (or [`commands::USAGE`]) for the command reference.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::ParsedArgs::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout().lock();
    match commands::run(&parsed, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
