//! `fsdl` — command-line toolbox for forbidden-set distance labels.
//!
//! See `fsdl help` (or [`commands::USAGE`]) for the command reference.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    // `std::env::args()` panics on non-UTF-8 argv entries; collect them
    // as OS strings and reject bad ones with a typed error instead.
    let mut raw = Vec::new();
    for os in std::env::args_os().skip(1) {
        match os.into_string() {
            Ok(s) => raw.push(s),
            Err(bad) => {
                eprintln!(
                    "error: argument {:?} is not valid UTF-8",
                    bad.to_string_lossy()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let parsed = match args::ParsedArgs::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout().lock();
    match commands::run(&parsed, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
