//! Breadth-first search primitives.
//!
//! Everything the paper needs from the substrate reduces to BFS on an
//! unweighted graph: exact distances (ground truth `d_G`), truncated balls
//! `B(v, r)` (net hierarchies and label construction), and searches that
//! avoid a forbidden set (the exact oracle for `d_{G∖F}`).

use std::collections::VecDeque;

use crate::csr::Graph;
use crate::faults::FaultSet;
use crate::ids::{Dist, NodeId};

/// Full single-source BFS; returns the distance from `src` to every vertex
/// ([`Dist::INFINITE`] for unreachable vertices).
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, bfs, NodeId, Dist};
///
/// let g = generators::path(5);
/// let d = bfs::distances(&g, NodeId::new(0));
/// assert_eq!(d[4], Dist::new(4));
/// ```
///
/// # Panics
///
/// Panics if `src` is not a vertex of `g`.
pub fn distances(g: &Graph, src: NodeId) -> Vec<Dist> {
    assert!(g.contains(src), "source vertex out of range");
    let mut dist = vec![Dist::INFINITE; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[src.index()] = Dist::ZERO;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for w in g.neighbor_ids(u) {
            if dist[w.index()].is_infinite() {
                dist[w.index()] = du.saturating_add_raw(1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Single-source BFS in `G ∖ F`: forbidden vertices are never visited,
/// forbidden edges are never crossed.
///
/// Returns [`Dist::INFINITE`] for every vertex unreachable in the surviving
/// graph. If `src` itself is forbidden, every entry is infinite.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, bfs, FaultSet, NodeId, Dist};
///
/// let g = generators::cycle(6);
/// let f = FaultSet::from_vertices([NodeId::new(1)]);
/// let d = bfs::distances_avoiding(&g, NodeId::new(0), &f);
/// assert_eq!(d[2], Dist::new(4)); // around the other side
/// assert!(d[1].is_infinite());
/// ```
///
/// # Panics
///
/// Panics if `src` is not a vertex of `g`.
pub fn distances_avoiding(g: &Graph, src: NodeId, faults: &FaultSet) -> Vec<Dist> {
    assert!(g.contains(src), "source vertex out of range");
    let mut dist = vec![Dist::INFINITE; g.num_vertices()];
    if faults.is_vertex_faulty(src) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[src.index()] = Dist::ZERO;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for w in g.neighbor_ids(u) {
            if dist[w.index()].is_infinite()
                && !faults.is_vertex_faulty(w)
                && !faults.is_edge_faulty(u, w)
            {
                dist[w.index()] = du.saturating_add_raw(1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Exact distance between a single pair in `G ∖ F` (early-exit BFS).
///
/// This is the ground-truth comparator for every stretch measurement:
/// `d_{G∖F}(s, t)`.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, bfs, FaultSet, NodeId};
///
/// let g = generators::path(5);
/// let f = FaultSet::from_vertices([NodeId::new(2)]);
/// assert!(bfs::pair_distance_avoiding(&g, NodeId::new(0), NodeId::new(4), &f).is_infinite());
/// ```
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn pair_distance_avoiding(g: &Graph, s: NodeId, t: NodeId, faults: &FaultSet) -> Dist {
    assert!(g.contains(s) && g.contains(t), "query vertex out of range");
    if faults.is_vertex_faulty(s) || faults.is_vertex_faulty(t) {
        return Dist::INFINITE;
    }
    if s == t {
        return Dist::ZERO;
    }
    let mut dist = vec![Dist::INFINITE; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[s.index()] = Dist::ZERO;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for w in g.neighbor_ids(u) {
            if dist[w.index()].is_infinite()
                && !faults.is_vertex_faulty(w)
                && !faults.is_edge_faulty(u, w)
            {
                if w == t {
                    return du.saturating_add_raw(1);
                }
                dist[w.index()] = du.saturating_add_raw(1);
                queue.push_back(w);
            }
        }
    }
    Dist::INFINITE
}

/// A vertex visited by a truncated BFS, with its exact distance from the
/// source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BallMember {
    /// The visited vertex.
    pub vertex: NodeId,
    /// Exact hop distance from the BFS source.
    pub dist: u32,
}

/// Reusable scratch space for [`ball`] so that running many truncated
/// searches (one per net-point per level during preprocessing) does not
/// re-allocate or re-clear an `O(n)` buffer each time.
///
/// Uses version stamps: a vertex is "visited in this run" iff its stamp
/// equals the current epoch.
#[derive(Clone, Debug)]
pub struct BfsScratch {
    stamp: Vec<u32>,
    dist: Vec<u32>,
    epoch: u32,
    queue: VecDeque<NodeId>,
}

impl BfsScratch {
    /// Creates scratch space for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            stamp: vec![0; n],
            dist: vec![0; n],
            epoch: 0,
            queue: VecDeque::new(),
        }
    }

    fn begin(&mut self, n: usize) {
        assert!(self.stamp.len() >= n, "scratch too small for graph");
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: clear stamps so stale epochs cannot collide.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Distance of `v` recorded by the most recent [`ball`] call using this
    /// scratch, or `None` if `v` was not reached within the radius.
    pub fn last_dist(&self, v: NodeId) -> Option<u32> {
        if self.stamp[v.index()] == self.epoch {
            Some(self.dist[v.index()])
        } else {
            None
        }
    }
}

/// Truncated BFS: returns every vertex of `B(src, radius)` (distance
/// `<= radius`) with its exact distance, in nondecreasing distance order.
///
/// The visited set is also queryable through `scratch` (see
/// [`BfsScratch::last_dist`]) until the scratch is reused.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, NodeId};
/// use fsdl_graph::bfs::{ball, BfsScratch};
///
/// let g = generators::path(10);
/// let mut scratch = BfsScratch::new(10);
/// let members = ball(&g, NodeId::new(5), 2, &mut scratch);
/// assert_eq!(members.len(), 5); // v3..=v7
/// ```
///
/// # Panics
///
/// Panics if `src` is out of range or `scratch` is smaller than the graph.
pub fn ball(g: &Graph, src: NodeId, radius: u32, scratch: &mut BfsScratch) -> Vec<BallMember> {
    assert!(g.contains(src), "source vertex out of range");
    scratch.begin(g.num_vertices());
    let epoch = scratch.epoch;
    let mut out = Vec::new();
    scratch.stamp[src.index()] = epoch;
    scratch.dist[src.index()] = 0;
    scratch.queue.push_back(src);
    out.push(BallMember {
        vertex: src,
        dist: 0,
    });
    while let Some(u) = scratch.queue.pop_front() {
        let du = scratch.dist[u.index()];
        if du == radius {
            continue;
        }
        for w in g.neighbor_ids(u) {
            if scratch.stamp[w.index()] != epoch {
                scratch.stamp[w.index()] = epoch;
                scratch.dist[w.index()] = du + 1;
                scratch.queue.push_back(w);
                out.push(BallMember {
                    vertex: w,
                    dist: du + 1,
                });
            }
        }
    }
    out
}

/// Multi-source BFS: distance from every vertex to the nearest source.
///
/// Used to compute `M_i(v)` (nearest net-point maps): pass the net `N_i` as
/// `sources` and read off both the distance and (via `owner`) which source is
/// nearest. Ties are broken toward the smallest source id (deterministic).
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, bfs, NodeId};
///
/// let g = generators::path(10);
/// let (dist, owner) = bfs::multi_source(&g, &[NodeId::new(0), NodeId::new(9)]);
/// assert_eq!(dist[6].finite(), Some(3));
/// assert_eq!(owner[6], Some(NodeId::new(9)));
/// ```
///
/// Returns `(dist, owner)` where `owner[v]` is the nearest source to `v`
/// (`None` if unreachable).
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn multi_source(g: &Graph, sources: &[NodeId]) -> (Vec<Dist>, Vec<Option<NodeId>>) {
    let n = g.num_vertices();
    let mut dist = vec![Dist::INFINITE; n];
    let mut owner: Vec<Option<NodeId>> = vec![None; n];
    let mut queue = VecDeque::new();
    // Seed in sorted order so the smallest-id source wins ties at distance 0
    // and, because BFS explores in FIFO order, at every distance.
    let mut seeds: Vec<NodeId> = sources.to_vec();
    seeds.sort_unstable();
    seeds.dedup();
    for &s in &seeds {
        assert!(g.contains(s), "source vertex out of range");
        dist[s.index()] = Dist::ZERO;
        owner[s.index()] = Some(s);
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for w in g.neighbor_ids(u) {
            if dist[w.index()].is_infinite() {
                dist[w.index()] = du.saturating_add_raw(1);
                owner[w.index()] = owner[u.index()];
                queue.push_back(w);
            }
        }
    }
    (dist, owner)
}

/// Reconstructs one shortest path from `s` to `t` in `G ∖ F`, inclusive of
/// both endpoints. Returns `None` when `t` is unreachable.
///
/// Deterministic: among equally short parents the smallest id is chosen.
pub fn shortest_path_avoiding(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    faults: &FaultSet,
) -> Option<Vec<NodeId>> {
    let dist = distances_avoiding(g, s, faults);
    if dist[t.index()].is_infinite() {
        return None;
    }
    let mut path = vec![t];
    let mut cur = t;
    while cur != s {
        let dc = dist[cur.index()].raw();
        let prev = g
            .neighbor_ids(cur)
            .filter(|&w| {
                dist[w.index()].is_finite()
                    && dist[w.index()].raw() + 1 == dc
                    && !faults.is_edge_faulty(cur, w)
            })
            .min()
            .expect("finite BFS distance must have a parent");
        path.push(prev);
        cur = prev;
    }
    path.reverse();
    Some(path)
}

/// Eccentricity of `src`: the maximum finite BFS distance from it, or `None`
/// if the graph rooted at `src` is empty. Unreachable vertices are ignored.
pub fn eccentricity(g: &Graph, src: NodeId) -> Option<u32> {
    distances(g, src).into_iter().filter_map(Dist::finite).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_distances() {
        let g = generators::path(6);
        let d = distances(&g, NodeId::new(2));
        assert_eq!(d[0], Dist::new(2));
        assert_eq!(d[5], Dist::new(3));
    }

    #[test]
    fn disconnected_is_infinite() {
        let g = crate::GraphBuilder::new(4).build();
        let d = distances(&g, NodeId::new(0));
        assert_eq!(d[0], Dist::ZERO);
        assert!(d[1].is_infinite());
    }

    #[test]
    fn avoiding_vertex_fault_detours() {
        // Cycle of 6: removing one vertex forces the long way round.
        let g = generators::cycle(6);
        let faults = FaultSet::from_vertices([NodeId::new(1)]);
        let d = distances_avoiding(&g, NodeId::new(0), &faults);
        assert_eq!(d[2], Dist::new(4)); // 0-5-4-3-2 instead of 0-1-2
        assert!(d[1].is_infinite());
    }

    #[test]
    fn avoiding_edge_fault_detours() {
        let g = generators::cycle(5);
        let faults = FaultSet::from_edges(&g, [(NodeId::new(0), NodeId::new(1))]);
        let d = distances_avoiding(&g, NodeId::new(0), &faults);
        assert_eq!(d[1], Dist::new(4));
    }

    #[test]
    fn avoiding_with_faulty_source() {
        let g = generators::path(3);
        let faults = FaultSet::from_vertices([NodeId::new(0)]);
        let d = distances_avoiding(&g, NodeId::new(0), &faults);
        assert!(d.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn pair_distance_matches_full_bfs() {
        let g = generators::grid2d(5, 5);
        let faults = FaultSet::from_vertices([NodeId::new(12)]);
        let full = distances_avoiding(&g, NodeId::new(0), &faults);
        for t in g.vertices() {
            assert_eq!(
                pair_distance_avoiding(&g, NodeId::new(0), t, &faults),
                full[t.index()],
                "mismatch at {t}"
            );
        }
    }

    #[test]
    fn pair_distance_same_vertex() {
        let g = generators::path(3);
        let d = pair_distance_avoiding(&g, NodeId::new(1), NodeId::new(1), &FaultSet::empty());
        assert_eq!(d, Dist::ZERO);
    }

    #[test]
    fn ball_contents_and_order() {
        let g = generators::path(10);
        let mut scratch = BfsScratch::new(10);
        let members = ball(&g, NodeId::new(5), 2, &mut scratch);
        let verts: Vec<u32> = members.iter().map(|m| m.vertex.raw()).collect();
        assert_eq!(members.len(), 5);
        assert!(verts.contains(&3) && verts.contains(&7));
        // Nondecreasing distances.
        assert!(members.windows(2).all(|w| w[0].dist <= w[1].dist));
        // Scratch queries agree.
        assert_eq!(scratch.last_dist(NodeId::new(7)), Some(2));
        assert_eq!(scratch.last_dist(NodeId::new(8)), None);
    }

    #[test]
    fn ball_radius_zero() {
        let g = generators::cycle(4);
        let mut scratch = BfsScratch::new(4);
        let members = ball(&g, NodeId::new(0), 0, &mut scratch);
        assert_eq!(members.len(), 1);
        assert_eq!(members[0].vertex, NodeId::new(0));
    }

    #[test]
    fn scratch_is_reusable() {
        let g = generators::path(8);
        let mut scratch = BfsScratch::new(8);
        let _ = ball(&g, NodeId::new(0), 3, &mut scratch);
        let m2 = ball(&g, NodeId::new(7), 1, &mut scratch);
        assert_eq!(m2.len(), 2);
        assert_eq!(scratch.last_dist(NodeId::new(0)), None);
    }

    #[test]
    fn ball_matches_full_bfs() {
        let g = generators::grid2d(6, 6);
        let mut scratch = BfsScratch::new(36);
        let src = NodeId::new(14);
        let d = distances(&g, src);
        let members = ball(&g, src, 3, &mut scratch);
        let expected: usize = d.iter().filter(|x| x.is_finite() && x.raw() <= 3).count();
        assert_eq!(members.len(), expected);
        for m in members {
            assert_eq!(Dist::new(m.dist), d[m.vertex.index()]);
        }
    }

    #[test]
    fn multi_source_nearest() {
        let g = generators::path(10);
        let (d, owner) = multi_source(&g, &[NodeId::new(0), NodeId::new(9)]);
        assert_eq!(d[4], Dist::new(4));
        assert_eq!(owner[4], Some(NodeId::new(0)));
        assert_eq!(owner[6], Some(NodeId::new(9)));
        // Tie at 4.5 -> vertex 4 is closer to 0, vertex 5 to 9; no exact tie here.
        let (_, owner2) = multi_source(&g, &[NodeId::new(2), NodeId::new(6)]);
        // vertex 4 is at distance 2 from both; smallest id wins.
        assert_eq!(owner2[4], Some(NodeId::new(2)));
    }

    #[test]
    fn multi_source_empty_sources() {
        let g = generators::path(3);
        let (d, owner) = multi_source(&g, &[]);
        assert!(d.iter().all(|x| x.is_infinite()));
        assert!(owner.iter().all(|o| o.is_none()));
    }

    #[test]
    fn shortest_path_reconstruction() {
        let g = generators::cycle(8);
        let faults = FaultSet::from_vertices([NodeId::new(1)]);
        let p = shortest_path_avoiding(&g, NodeId::new(0), NodeId::new(3), &faults).unwrap();
        assert_eq!(p.first(), Some(&NodeId::new(0)));
        assert_eq!(p.last(), Some(&NodeId::new(3)));
        assert_eq!(p.len(), 6); // 0-7-6-5-4-3
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
            assert!(!faults.is_vertex_faulty(w[0]));
        }
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = generators::path(4);
        let faults = FaultSet::from_vertices([NodeId::new(2)]);
        assert!(shortest_path_avoiding(&g, NodeId::new(0), NodeId::new(3), &faults).is_none());
    }

    #[test]
    fn eccentricity_of_path_end() {
        let g = generators::path(7);
        assert_eq!(eccentricity(&g, NodeId::new(0)), Some(6));
        assert_eq!(eccentricity(&g, NodeId::new(3)), Some(3));
    }
}
