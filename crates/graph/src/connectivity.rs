//! Connectivity utilities: union–find, connected components, and
//! connectivity queries under forbidden sets.

use crate::bfs;
use crate::csr::Graph;
use crate::faults::FaultSet;
use crate::ids::NodeId;

/// A classic union–find (disjoint set union) structure with path halving and
/// union by size.
///
/// # Examples
///
/// ```
/// use fsdl_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.num_sets(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Returns the representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

/// Returns `true` if `g` is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    num_components(g) <= 1
}

/// Number of connected components of `g`.
pub fn num_components(g: &Graph) -> usize {
    let mut uf = UnionFind::new(g.num_vertices());
    for e in g.edges() {
        uf.union(e.lo().index(), e.hi().index());
    }
    uf.num_sets()
}

/// Component label of every vertex (labels are arbitrary but consistent).
pub fn component_labels(g: &Graph) -> Vec<usize> {
    let mut uf = UnionFind::new(g.num_vertices());
    for e in g.edges() {
        uf.union(e.lo().index(), e.hi().index());
    }
    (0..g.num_vertices()).map(|v| uf.find(v)).collect()
}

/// Ground-truth forbidden-set connectivity: are `s` and `t` connected in
/// `G ∖ F`? Returns `false` if either endpoint is itself forbidden.
pub fn connected_avoiding(g: &Graph, s: NodeId, t: NodeId, faults: &FaultSet) -> bool {
    bfs::pair_distance_avoiding(g, s, t, faults).is_finite()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert!(uf.same(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.set_size(2), 3);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn connected_families() {
        assert!(is_connected(&generators::path(10)));
        assert!(is_connected(&generators::grid2d(4, 4)));
        assert!(!is_connected(&crate::GraphBuilder::new(3).build()));
        assert!(is_connected(&crate::GraphBuilder::new(0).build()));
        assert!(is_connected(&crate::GraphBuilder::new(1).build()));
    }

    #[test]
    fn component_counts() {
        let mut b = crate::GraphBuilder::new(6);
        b.add_edges([(0, 1), (2, 3)]).unwrap();
        let g = b.build();
        assert_eq!(num_components(&g), 4); // {0,1}, {2,3}, {4}, {5}
        let labels = component_labels(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[5]);
    }

    #[test]
    fn connectivity_under_faults() {
        let g = generators::path(5);
        let f = FaultSet::from_vertices([NodeId::new(2)]);
        assert!(!connected_avoiding(&g, NodeId::new(0), NodeId::new(4), &f));
        assert!(connected_avoiding(&g, NodeId::new(0), NodeId::new(1), &f));
        assert!(!connected_avoiding(&g, NodeId::new(0), NodeId::new(2), &f));
    }
}
