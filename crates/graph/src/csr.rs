//! Immutable compressed-sparse-row (CSR) representation of an undirected,
//! unweighted graph, plus its builder.
//!
//! The paper's algorithms only ever traverse a fixed input graph, so the
//! representation is frozen after construction: adjacency is two flat arrays
//! (`offsets`, `targets`), neighbors are sorted, and the position of a
//! neighbor within a vertex's sorted adjacency list doubles as the *port
//! number* used by the routing scheme (Theorem 2.7).

use crate::error::GraphError;
use crate::ids::{Edge, NodeId};

/// An immutable undirected, unweighted graph in CSR form.
///
/// Build one with [`GraphBuilder`] or a generator from
/// [`generators`](crate::generators).
///
/// # Examples
///
/// ```
/// use fsdl_graph::{GraphBuilder, NodeId};
///
/// # fn main() -> Result<(), fsdl_graph::GraphError> {
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(2, 3)?;
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists.
    targets: Vec<u32>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Returns `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_vertices() == 0
    }

    /// Iterates over all vertices in increasing id order.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_vertices() as u32).map(NodeId::new)
    }

    /// The sorted neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Iterates over the neighbors of `v` as [`NodeId`]s.
    pub fn neighbor_ids(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(v).iter().copied().map(NodeId::new)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Tests adjacency by binary search on the sorted neighbor list.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v.raw()).is_ok()
    }

    /// The *port* of neighbor `w` at vertex `v`: the index of `w` in `v`'s
    /// sorted adjacency list, or `None` if `w` is not adjacent to `v`.
    ///
    /// Ports are how the routing scheme names outgoing links; they are stable
    /// because the graph is immutable.
    pub fn port_of(&self, v: NodeId, w: NodeId) -> Option<usize> {
        self.neighbors(v).binary_search(&w.raw()).ok()
    }

    /// The neighbor of `v` reached through `port`, or `None` if the port is
    /// out of range.
    pub fn neighbor_at_port(&self, v: NodeId, port: usize) -> Option<NodeId> {
        self.neighbors(v).get(port).copied().map(NodeId::new)
    }

    /// Iterates over every undirected edge exactly once (as `lo < hi` pairs).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&w| w > u.raw())
                .map(move |w| Edge::new(u, NodeId::new(w)))
        })
    }

    /// Returns `true` if `v` is a valid vertex of this graph.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        v.index() < self.num_vertices()
    }
}

/// Incremental builder for [`Graph`].
///
/// Duplicate edges are deduplicated; self-loops and out-of-range endpoints are
/// rejected eagerly ([C-VALIDATE]).
///
/// # Examples
///
/// ```
/// use fsdl_graph::GraphBuilder;
///
/// # fn main() -> Result<(), fsdl_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 0)?; // duplicate, ignored
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts building a graph with `n` isolated vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n >= u32::MAX` (indices must fit in `u32`).
    pub fn new(n: usize) -> Self {
        let n = u32::try_from(n).expect("vertex count exceeds u32 indexing");
        assert!(n != u32::MAX, "vertex count exceeds u32 indexing");
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices the graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n as usize
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `a == b` and
    /// [`GraphError::VertexOutOfRange`] if either endpoint is `>= n`.
    pub fn add_edge(&mut self, a: u32, b: u32) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop { vertex: a });
        }
        for v in [a, b] {
            if v >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    n: self.n,
                });
            }
        }
        self.edges.push((a.min(b), a.max(b)));
        Ok(())
    }

    /// Adds every edge from an iterator of `(u, v)` pairs.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first invalid edge.
    pub fn add_edges<I: IntoIterator<Item = (u32, u32)>>(
        &mut self,
        iter: I,
    ) -> Result<(), GraphError> {
        for (a, b) in iter {
            self.add_edge(a, b)?;
        }
        Ok(())
    }

    /// Finalizes the CSR representation: deduplicates edges, sorts adjacency
    /// lists, and freezes the graph.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n as usize;
        let mut degrees = vec![0u32; n];
        for &(a, b) in &self.edges {
            degrees[a as usize] += 1;
            degrees[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; acc as usize];
        for &(a, b) in &self.edges {
            targets[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        // Each list was filled in increasing order of the *other* endpoint for
        // the `a` side, but the `b` side interleaves; sort each list to make
        // ports canonical.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            targets[lo..hi].sort_unstable();
        }
        Graph { offsets, targets }
    }
}

impl FromIterator<(u32, u32)> for GraphBuilder {
    /// Collects edges into a builder sized to the largest endpoint + 1.
    ///
    /// # Panics
    ///
    /// Panics on self-loops (use [`GraphBuilder::add_edge`] for fallible
    /// insertion).
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        let edges: Vec<(u32, u32)> = iter.into_iter().collect();
        let n = edges
            .iter()
            .map(|&(a, b)| a.max(b) as u64 + 1)
            .max()
            .unwrap_or(0);
        let mut b = GraphBuilder::new(n as usize);
        for (x, y) in edges {
            b.add_edge(x, y).expect("invalid edge in FromIterator");
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edges([(0, 1), (1, 2), (2, 0)]).unwrap();
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.vertices().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.num_edges(), 3);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edges([(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(NodeId::new(2)), &[0, 1, 3, 4]);
    }

    #[test]
    fn duplicate_edges_removed() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(0, 2),
            Err(GraphError::VertexOutOfRange { vertex: 2, n: 2 })
        );
    }

    #[test]
    fn ports_roundtrip() {
        let g = triangle();
        let v = NodeId::new(1);
        for (port, &w) in g.neighbors(v).iter().enumerate() {
            assert_eq!(g.port_of(v, NodeId::new(w)), Some(port));
            assert_eq!(g.neighbor_at_port(v, port), Some(NodeId::new(w)));
        }
        assert_eq!(g.neighbor_at_port(v, 99), None);
        assert_eq!(g.port_of(v, v), None);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .unwrap();
        let g = b.build();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        let mut sorted = edges.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn from_iterator_sizes_graph() {
        let b: GraphBuilder = [(0u32, 5u32), (5, 2)].into_iter().collect();
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn contains_checks_range() {
        let g = triangle();
        assert!(g.contains(NodeId::new(2)));
        assert!(!g.contains(NodeId::new(3)));
    }

    #[test]
    fn max_degree_star() {
        let mut b = GraphBuilder::new(6);
        for i in 1..6 {
            b.add_edge(0, i).unwrap();
        }
        let g = b.build();
        assert_eq!(g.max_degree(), 5);
    }
}
