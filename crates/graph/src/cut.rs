//! Articulation points and bridges (Tarjan's low-link algorithm,
//! iterative).
//!
//! The evaluation uses these as *adversarial fault generators*: failing an
//! articulation point disconnects the graph, and failing vertices next to
//! one forces maximal detours — the hardest inputs for a forbidden-set
//! scheme, complementing the random fault sets.

use crate::csr::Graph;
use crate::ids::{Edge, NodeId};

/// The cut structure of a graph: articulation points and bridges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CutStructure {
    /// Vertices whose removal increases the number of components.
    pub articulation_points: Vec<NodeId>,
    /// Edges whose removal increases the number of components.
    pub bridges: Vec<Edge>,
}

/// Computes articulation points and bridges with an iterative DFS
/// (no recursion, so deep paths do not overflow the stack).
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, NodeId};
/// use fsdl_graph::cut::cut_structure;
///
/// // A path: every internal vertex is an articulation point.
/// let cs = cut_structure(&generators::path(5));
/// assert_eq!(cs.articulation_points, vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
/// assert_eq!(cs.bridges.len(), 4);
/// ```
pub fn cut_structure(g: &Graph) -> CutStructure {
    let n = g.num_vertices();
    let mut disc = vec![u32::MAX; n]; // discovery times
    let mut low = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut is_articulation = vec![false; n];
    let mut bridges = Vec::new();
    let mut timer = 0u32;

    // Iterative DFS frame: (vertex, index into its neighbor list).
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for root in g.vertices() {
        if disc[root.index()] != u32::MAX {
            continue;
        }
        let mut root_children = 0usize;
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;
        stack.push((root, 0));
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *idx < nbrs.len() {
                let w = NodeId::new(nbrs[*idx]);
                *idx += 1;
                if disc[w.index()] == u32::MAX {
                    parent[w.index()] = v.raw();
                    if v == root {
                        root_children += 1;
                    }
                    disc[w.index()] = timer;
                    low[w.index()] = timer;
                    timer += 1;
                    stack.push((w, 0));
                } else if w.raw() != parent[v.index()] {
                    // Back edge.
                    low[v.index()] = low[v.index()].min(disc[w.index()]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p.index()] = low[p.index()].min(low[v.index()]);
                    if low[v.index()] > disc[p.index()] {
                        bridges.push(Edge::new(p, v));
                    }
                    if p != root && low[v.index()] >= disc[p.index()] {
                        is_articulation[p.index()] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_articulation[root.index()] = true;
        }
    }

    let articulation_points = (0..n)
        .filter(|&v| is_articulation[v])
        .map(NodeId::from_index)
        .collect();
    bridges.sort();
    CutStructure {
        articulation_points,
        bridges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::connectivity;
    use crate::faults::FaultSet;
    use crate::generators;

    /// Brute-force articulation check: removal increases component count
    /// among the surviving vertices.
    fn is_articulation_brute(g: &Graph, v: NodeId) -> bool {
        let before = connectivity::num_components(g);
        let sub = crate::subgraph::remove_faults(g, &FaultSet::from_vertices([v]));
        let after = connectivity::num_components(&sub.graph);
        // Removing v removes one vertex; if components grew beyond the
        // trivial accounting, v is an articulation point.
        after > before.saturating_sub(if g.degree(v) == 0 { 1 } else { 0 })
    }

    fn check_against_bruteforce(g: &Graph) {
        let cs = cut_structure(g);
        for v in g.vertices() {
            let expected = is_articulation_brute(g, v);
            let got = cs.articulation_points.contains(&v);
            assert_eq!(got, expected, "articulation mismatch at {v}");
        }
        for e in g.edges() {
            let f = FaultSet::from_edges(g, [(e.lo(), e.hi())]);
            let disconnects = !bfs::pair_distance_avoiding(g, e.lo(), e.hi(), &f).is_finite();
            assert_eq!(
                cs.bridges.contains(&e),
                disconnects,
                "bridge mismatch at {e}"
            );
        }
    }

    #[test]
    fn path_all_internal_are_articulation() {
        let g = generators::path(8);
        let cs = cut_structure(&g);
        assert_eq!(cs.articulation_points.len(), 6); // all but the ends
        assert_eq!(cs.bridges.len(), 7); // every edge
        check_against_bruteforce(&g);
    }

    #[test]
    fn cycle_has_no_cuts() {
        let g = generators::cycle(9);
        let cs = cut_structure(&g);
        assert!(cs.articulation_points.is_empty());
        assert!(cs.bridges.is_empty());
    }

    #[test]
    fn trees_are_all_bridges() {
        let g = generators::balanced_tree(2, 3);
        let cs = cut_structure(&g);
        assert_eq!(cs.bridges.len(), g.num_edges());
        check_against_bruteforce(&g);
    }

    #[test]
    fn barbell_bridge_detected() {
        let g = generators::barbell(4, 1);
        let cs = cut_structure(&g);
        assert!(!cs.bridges.is_empty());
        assert!(!cs.articulation_points.is_empty());
        check_against_bruteforce(&g);
    }

    #[test]
    fn lollipop_and_caterpillar() {
        check_against_bruteforce(&generators::lollipop(4, 3));
        check_against_bruteforce(&generators::caterpillar(5, 2));
    }

    #[test]
    fn grid_interior_is_biconnected() {
        let g = generators::grid2d(5, 5);
        let cs = cut_structure(&g);
        assert!(cs.articulation_points.is_empty());
        assert!(cs.bridges.is_empty());
    }

    #[test]
    fn disconnected_graphs_handled() {
        let mut b = crate::GraphBuilder::new(7);
        b.add_edges([(0, 1), (1, 2), (4, 5), (5, 6)]).unwrap();
        let g = b.build();
        let cs = cut_structure(&g);
        let mut pts = cs.articulation_points.clone();
        pts.sort();
        assert_eq!(pts, vec![NodeId::new(1), NodeId::new(5)]);
        check_against_bruteforce(&g);
    }

    #[test]
    fn random_graphs_match_bruteforce() {
        for seed in 0..6 {
            let g = generators::random_tree(25, seed);
            check_against_bruteforce(&g);
            let g = generators::random_geometric(40, 0.2, seed);
            check_against_bruteforce(&g);
        }
    }
}
