//! Empirical doubling-dimension estimation.
//!
//! The doubling dimension of `G` is the smallest `α` such that every ball
//! `B(v, 2r)` can be covered by `2^α` balls of radius `r`. Computing it
//! exactly is intractable, but a greedy `r`-net of `B(v, 2r)` is a valid
//! cover whose size upper-bounds the minimum cover within a constant factor
//! in doubling metrics. The estimator samples `(v, r)` pairs, computes the
//! greedy cover size `k`, and reports `max ⌈log₂ k⌉`.
//!
//! The evaluation harness uses this to *verify* that each synthetic workload
//! really has the doubling dimension its generator advertises before
//! attributing measured label sizes to `α`.

use fsdl_testkit::Rng;

use crate::bfs::{self, BfsScratch};
use crate::csr::Graph;
use crate::ids::NodeId;

/// Configuration for [`estimate_dimension`].
#[derive(Clone, Copy, Debug)]
pub struct DoublingConfig {
    /// Number of sampled ball centers per radius scale.
    pub centers_per_scale: usize,
    /// RNG seed for center sampling.
    pub seed: u64,
}

impl Default for DoublingConfig {
    fn default() -> Self {
        DoublingConfig {
            centers_per_scale: 12,
            seed: 0x5eed,
        }
    }
}

/// Result of a doubling-dimension estimation run.
#[derive(Clone, Debug, PartialEq)]
pub struct DoublingEstimate {
    /// `max ⌈log₂(cover size)⌉` over all sampled `(v, r)` — the estimated
    /// doubling dimension (an upper-bound-flavoured estimate).
    pub alpha: u32,
    /// The largest greedy cover size observed.
    pub worst_cover: usize,
    /// The `(center, radius)` achieving `worst_cover`.
    pub worst_case: (NodeId, u32),
    /// Number of `(v, r)` samples evaluated.
    pub samples: usize,
}

/// Greedily covers `B(center, 2r)` by balls of radius `r` and returns the
/// number of balls used.
///
/// The cover centers are chosen farthest-first inside the ball, which is the
/// standard greedy net construction: its size is at most the `r/2`-packing
/// number of `B(center, 2r)`, hence at most `2^{2α}` in a doubling-`α` graph
/// — a constant-factor (in the exponent) overestimate, which is fine for
/// distinguishing dimension 1 from 2 from 4 from `log n`.
///
/// # Panics
///
/// Panics if `center` is out of range or `r == 0`.
pub fn greedy_cover_size(g: &Graph, center: NodeId, r: u32, scratch: &mut BfsScratch) -> usize {
    assert!(r > 0, "radius must be positive");
    let members = bfs::ball(g, center, 2 * r, scratch);
    // Greedy: repeatedly pick an uncovered vertex (farthest-first by using
    // the BFS order from the center, reversed, which prefers the boundary),
    // and cover everything within distance r of it *in G* (not just within
    // the ball; a cover ball may leak outside, which only helps).
    let mut covered: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    let mut cover_count = 0usize;
    // farthest-first order
    let order: Vec<NodeId> = members.iter().rev().map(|m| m.vertex).collect();
    let mut inner_scratch = BfsScratch::new(g.num_vertices());
    for v in order {
        if covered.contains(&v) {
            continue;
        }
        cover_count += 1;
        for m in bfs::ball(g, v, r, &mut inner_scratch) {
            covered.insert(m.vertex);
        }
    }
    cover_count
}

/// Estimates the doubling dimension of `g` by sampling.
///
/// Radii sweep powers of two from 1 up to half the eccentricity of a sampled
/// vertex. Returns `alpha = 0` for graphs with fewer than 2 vertices.
///
/// # Examples
///
/// ```
/// use fsdl_graph::generators;
/// use fsdl_graph::doubling::{estimate_dimension, DoublingConfig};
///
/// let g = generators::grid2d(16, 16);
/// let est = estimate_dimension(&g, &DoublingConfig::default());
/// assert!(est.alpha <= 4); // a mesh is ~2-dimensional
/// ```
pub fn estimate_dimension(g: &Graph, config: &DoublingConfig) -> DoublingEstimate {
    let n = g.num_vertices();
    if n < 2 {
        return DoublingEstimate {
            alpha: 0,
            worst_cover: 1,
            worst_case: (NodeId::new(0), 1),
            samples: 0,
        };
    }
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut scratch = BfsScratch::new(n);
    let ecc = bfs::eccentricity(g, NodeId::new(0)).unwrap_or(0).max(1);
    let mut worst_cover = 1usize;
    let mut worst_case = (NodeId::new(0), 1u32);
    let mut samples = 0usize;
    let mut r = 1u32;
    while r <= ecc {
        for _ in 0..config.centers_per_scale {
            let v = NodeId::from_index(rng.gen_range(0..n));
            let k = greedy_cover_size(g, v, r, &mut scratch);
            samples += 1;
            if k > worst_cover {
                worst_cover = k;
                worst_case = (v, r);
            }
        }
        r = r.saturating_mul(2);
    }
    let alpha = (usize::BITS - worst_cover.leading_zeros())
        .saturating_sub(u32::from(worst_cover.is_power_of_two()));
    DoublingEstimate {
        alpha,
        worst_cover,
        worst_case,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn estimate(g: &Graph) -> u32 {
        estimate_dimension(g, &DoublingConfig::default()).alpha
    }

    #[test]
    fn path_has_low_dimension() {
        let g = generators::path(256);
        let a = estimate(&g);
        assert!(a <= 2, "path estimated alpha {a}");
    }

    #[test]
    fn grid_has_moderate_dimension() {
        let g = generators::grid2d(20, 20);
        let a = estimate(&g);
        assert!((1..=4).contains(&a), "grid estimated alpha {a}");
    }

    #[test]
    fn star_dimension_grows() {
        // A big star is not doubling-bounded: B(center, 2) needs ~n balls of
        // radius 1.
        let small = estimate(&generators::star(16));
        let large = estimate(&generators::star(256));
        assert!(large > small, "star alpha should grow: {small} -> {large}");
        assert!(large >= 6);
    }

    #[test]
    fn king_grid_at_most_grid_like() {
        let g = generators::king_grid(16, 16);
        let a = estimate(&g);
        assert!(a <= 4, "king grid estimated alpha {a}");
    }

    #[test]
    fn tiny_graphs() {
        let g = crate::GraphBuilder::new(1).build();
        assert_eq!(estimate(&g), 0);
        let g = crate::GraphBuilder::new(0).build();
        assert_eq!(estimate(&g), 0);
    }

    #[test]
    fn greedy_cover_single_ball_when_radius_large() {
        let g = generators::path(10);
        let mut scratch = BfsScratch::new(10);
        // Radius 9 covers the whole path from anywhere: one ball suffices...
        // greedy picks the first uncovered vertex and covers B(x, 9) ⊇ P_10?
        // Only if x reaches everything within 9 hops, which holds for any x.
        let k = greedy_cover_size(&g, NodeId::new(5), 9, &mut scratch);
        assert_eq!(k, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::random_geometric(300, 0.09, 3);
        let c = DoublingConfig::default();
        assert_eq!(estimate_dimension(&g, &c), estimate_dimension(&g, &c));
    }
}
