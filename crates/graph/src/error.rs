//! Error types for graph construction and I/O.

use std::error::Error;
use std::fmt;

/// Errors produced while building or parsing a [`Graph`](crate::Graph).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge referenced a vertex index `>= n`.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: u32,
        /// Number of vertices in the graph under construction.
        n: u32,
    },
    /// An edge joined a vertex to itself.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: u32,
    },
    /// The requested graph would exceed `u32` vertex indexing.
    TooManyVertices {
        /// The requested vertex count.
        requested: u64,
    },
    /// A parse error in the text graph format.
    Parse {
        /// 1-based line number of the malformed input.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex index {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} is not allowed")
            }
            GraphError::TooManyVertices { requested } => {
                write!(
                    f,
                    "requested {requested} vertices, which exceeds u32 indexing"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 5 };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::TooManyVertices { requested: 1 << 40 };
        assert!(e.to_string().contains("exceeds"));
        let e = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
