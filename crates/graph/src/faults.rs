//! Forbidden (faulty) sets of vertices and edges.
//!
//! A forbidden set `F ⊂ V(G) ∪ E(G)` is the query-time input shared by every
//! component of the system: the exact baseline computes `d_{G∖F}` by BFS, the
//! labeling scheme's decoder receives the labels of the elements of `F`, and
//! the routing simulator refuses to traverse anything in `F`.

use std::collections::HashSet;

use crate::csr::Graph;
use crate::ids::{Edge, NodeId};

/// A set of forbidden vertices and edges.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, FaultSet, NodeId};
///
/// let g = generators::cycle(5);
/// let mut f = FaultSet::empty();
/// f.forbid_vertex(NodeId::new(2));
/// f.forbid_edge_unchecked(NodeId::new(0), NodeId::new(1));
/// assert!(f.is_vertex_faulty(NodeId::new(2)));
/// assert!(f.is_edge_faulty(NodeId::new(1), NodeId::new(0)));
/// assert_eq!(f.len(), 2);
/// # let _ = g;
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSet {
    vertices: HashSet<NodeId>,
    edges: HashSet<Edge>,
}

impl FaultSet {
    /// The empty forbidden set (failure-free queries).
    pub fn empty() -> Self {
        FaultSet::default()
    }

    /// Builds a vertex-only forbidden set.
    pub fn from_vertices<I: IntoIterator<Item = NodeId>>(vertices: I) -> Self {
        FaultSet {
            vertices: vertices.into_iter().collect(),
            edges: HashSet::new(),
        }
    }

    /// Builds an edge-only forbidden set, validating each edge against `g`.
    ///
    /// # Panics
    ///
    /// Panics if some pair is not an edge of `g`; use
    /// [`FaultSet::forbid_edge_unchecked`] to skip validation.
    pub fn from_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(g: &Graph, edges: I) -> Self {
        let mut f = FaultSet::empty();
        for (a, b) in edges {
            assert!(g.has_edge(a, b), "({a}, {b}) is not an edge of the graph");
            f.forbid_edge_unchecked(a, b);
        }
        f
    }

    /// Marks a vertex as forbidden. Returns `true` if it was newly inserted.
    pub fn forbid_vertex(&mut self, v: NodeId) -> bool {
        self.vertices.insert(v)
    }

    /// Marks an edge as forbidden without checking it exists in any graph.
    /// Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn forbid_edge_unchecked(&mut self, a: NodeId, b: NodeId) -> bool {
        self.edges.insert(Edge::new(a, b))
    }

    /// Un-forbids a vertex (e.g., a recovered router). Returns `true` if it
    /// was present.
    pub fn permit_vertex(&mut self, v: NodeId) -> bool {
        self.vertices.remove(&v)
    }

    /// Un-forbids an edge. Returns `true` if it was present.
    pub fn permit_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.edges.remove(&Edge::new(a, b))
    }

    /// Is `v` forbidden?
    #[inline]
    pub fn is_vertex_faulty(&self, v: NodeId) -> bool {
        self.vertices.contains(&v)
    }

    /// Is the edge `{a, b}` forbidden (as an *edge* fault; faulty endpoints
    /// are reported by [`FaultSet::is_vertex_faulty`])?
    #[inline]
    pub fn is_edge_faulty(&self, a: NodeId, b: NodeId) -> bool {
        !self.edges.is_empty() && self.edges.contains(&Edge::new(a, b))
    }

    /// Returns `true` if traversing edge `{a, b}` is blocked for any reason:
    /// the edge itself, or either endpoint, is forbidden.
    pub fn blocks_traversal(&self, a: NodeId, b: NodeId) -> bool {
        self.is_vertex_faulty(a) || self.is_vertex_faulty(b) || self.is_edge_faulty(a, b)
    }

    /// Number of forbidden elements `|F|` (vertices plus edges).
    pub fn len(&self) -> usize {
        self.vertices.len() + self.edges.len()
    }

    /// `true` when nothing is forbidden.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges.is_empty()
    }

    /// Iterates over the forbidden vertices (arbitrary order).
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.vertices.iter().copied()
    }

    /// Iterates over the forbidden edges (arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }
}

impl Extend<NodeId> for FaultSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        self.vertices.extend(iter);
    }
}

impl FromIterator<NodeId> for FaultSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        FaultSet::from_vertices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn empty_set() {
        let f = FaultSet::empty();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert!(!f.is_vertex_faulty(NodeId::new(0)));
        assert!(!f.is_edge_faulty(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn vertex_faults() {
        let mut f = FaultSet::from_vertices([NodeId::new(1), NodeId::new(2)]);
        assert_eq!(f.len(), 2);
        assert!(f.is_vertex_faulty(NodeId::new(1)));
        assert!(f.permit_vertex(NodeId::new(1)));
        assert!(!f.is_vertex_faulty(NodeId::new(1)));
        assert!(!f.permit_vertex(NodeId::new(1)));
    }

    #[test]
    fn edge_faults_canonical() {
        let g = generators::path(3);
        let f = FaultSet::from_edges(&g, [(NodeId::new(1), NodeId::new(0))]);
        assert!(f.is_edge_faulty(NodeId::new(0), NodeId::new(1)));
        assert!(f.is_edge_faulty(NodeId::new(1), NodeId::new(0)));
        assert!(!f.is_edge_faulty(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn from_edges_validates() {
        let g = generators::path(3);
        let _ = FaultSet::from_edges(&g, [(NodeId::new(0), NodeId::new(2))]);
    }

    #[test]
    fn blocks_traversal_combines() {
        let mut f = FaultSet::empty();
        f.forbid_vertex(NodeId::new(5));
        f.forbid_edge_unchecked(NodeId::new(1), NodeId::new(2));
        assert!(f.blocks_traversal(NodeId::new(5), NodeId::new(6)));
        assert!(f.blocks_traversal(NodeId::new(2), NodeId::new(1)));
        assert!(!f.blocks_traversal(NodeId::new(3), NodeId::new(4)));
    }

    #[test]
    fn duplicate_inserts() {
        let mut f = FaultSet::empty();
        assert!(f.forbid_vertex(NodeId::new(1)));
        assert!(!f.forbid_vertex(NodeId::new(1)));
        assert!(f.forbid_edge_unchecked(NodeId::new(1), NodeId::new(2)));
        assert!(!f.forbid_edge_unchecked(NodeId::new(2), NodeId::new(1)));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn iterators_and_collect() {
        let f: FaultSet = [NodeId::new(3), NodeId::new(7)].into_iter().collect();
        let mut vs: Vec<u32> = f.vertices().map(NodeId::raw).collect();
        vs.sort_unstable();
        assert_eq!(vs, vec![3, 7]);
        assert_eq!(f.edges().count(), 0);
        let mut f2 = FaultSet::empty();
        f2.extend([NodeId::new(1)]);
        assert!(f2.is_vertex_faulty(NodeId::new(1)));
    }
}
