//! Graph family generators.
//!
//! Every evaluation workload in the repository is synthesized here. The
//! families cover the spectrum of doubling dimensions the paper cares about:
//! paths and trees (`α ≈ 1`), planar-like meshes and unit-disk graphs
//! (`α ≈ 2`), higher-dimensional grids `G_{p,d}` (`α ≈ d` under `ℓ∞`
//! adjacency — exactly the lower-bound family of Theorem 3.1), and
//! deliberately *non*-doubling graphs (hypercubes, Erdős–Rényi) used as
//! contrast cases.
//!
//! All randomized generators take an explicit seed and are fully
//! deterministic.

use fsdl_testkit::Rng;

use crate::csr::{Graph, GraphBuilder};

/// The path `P_n`: vertices `0..n`, edges `(i, i+1)`.
///
/// Doubling dimension 1. `P_n = G_{n,1}` in the paper's lower-bound family.
///
/// # Panics
///
/// Panics if `n == 0`.
/// # Examples
///
/// ```
/// use fsdl_graph::generators;
/// let g = generators::path(5);
/// assert_eq!((g.num_vertices(), g.num_edges()), (5, 4));
/// ```
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as u32, i as u32).expect("valid edge");
    }
    b.build()
}

/// The cycle `C_n`.
///
/// # Panics
///
/// Panics if `n < 3`.
/// # Examples
///
/// ```
/// use fsdl_graph::generators;
/// let g = generators::cycle(6);
/// assert!(g.vertices().all(|v| g.degree(v) == 2));
/// ```
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least three vertices");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as u32, ((i + 1) % n) as u32)
            .expect("valid edge");
    }
    b.build()
}

/// The star `K_{1,n-1}`: vertex 0 joined to all others.
///
/// Not doubling-bounded as `n` grows (a radius-2 ball needs ~`n` radius-1
/// balls); used as a contrast case.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n > 0, "star needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i as u32).expect("valid edge");
    }
    b.build()
}

/// The complete graph `K_n` (small `n` only; used in tests).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete graph needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i as u32, j as u32).expect("valid edge");
        }
    }
    b.build()
}

/// A complete `arity`-ary tree of the given `depth` (depth 0 = single root).
///
/// # Panics
///
/// Panics if `arity == 0`.
/// # Examples
///
/// ```
/// use fsdl_graph::generators;
/// let g = generators::balanced_tree(2, 3); // 1 + 2 + 4 + 8 vertices
/// assert_eq!(g.num_vertices(), 15);
/// ```
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    assert!(arity > 0, "arity must be positive");
    // Count vertices: 1 + arity + arity^2 + ... + arity^depth.
    let mut count: u64 = 1;
    let mut level: u64 = 1;
    for _ in 0..depth {
        level *= arity as u64;
        count += level;
    }
    let n = usize::try_from(count).expect("tree too large");
    let mut b = GraphBuilder::new(n);
    // Vertices are numbered in BFS order; children of v are
    // v*arity+1 ..= v*arity+arity while in range.
    for v in 0..n {
        for k in 1..=arity {
            let child = v * arity + k;
            if child < n {
                b.add_edge(v as u32, child as u32).expect("valid edge");
            }
        }
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` vertices, each with `legs` pendant
/// leaves.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar needs a spine");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for i in 1..spine {
        b.add_edge((i - 1) as u32, i as u32).expect("valid edge");
    }
    for i in 0..spine {
        for l in 0..legs {
            let leaf = spine + i * legs + l;
            b.add_edge(i as u32, leaf as u32).expect("valid edge");
        }
    }
    b.build()
}

/// A uniformly random labelled tree on `n` vertices (via a random Prüfer-like
/// attachment: vertex `i` attaches to a uniform earlier vertex).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "tree needs at least one vertex");
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.add_edge(parent as u32, i as u32).expect("valid edge");
    }
    b.build()
}

/// The `w × h` axis-aligned mesh (4-neighbor adjacency).
///
/// Doubling dimension ≈ 2.
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, bfs, NodeId};
/// let g = generators::grid2d(4, 4);
/// // Manhattan distance across the diagonal.
/// let d = bfs::distances(&g, NodeId::new(0));
/// assert_eq!(d[15].finite(), Some(6));
/// ```
pub fn grid2d(w: usize, h: usize) -> Graph {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let n = w * h;
    let mut b = GraphBuilder::new(n);
    let at = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(at(x, y), at(x + 1, y)).expect("valid edge");
            }
            if y + 1 < h {
                b.add_edge(at(x, y), at(x, y + 1)).expect("valid edge");
            }
        }
    }
    b.build()
}

/// The `w × h` torus (4-neighbor adjacency with wraparound).
///
/// # Panics
///
/// Panics if `w < 3 || h < 3` (smaller tori create multi-edges).
pub fn torus2d(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus dimensions must be at least 3");
    let n = w * h;
    let mut b = GraphBuilder::new(n);
    let at = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            b.add_edge(at(x, y), at((x + 1) % w, y))
                .expect("valid edge");
            b.add_edge(at(x, y), at(x, (y + 1) % h))
                .expect("valid edge");
        }
    }
    b.build()
}

/// The `x × y × z` 3-D mesh (6-neighbor adjacency).
///
/// Doubling dimension ≈ 3.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn grid3d(x: usize, y: usize, z: usize) -> Graph {
    assert!(x > 0 && y > 0 && z > 0, "grid dimensions must be positive");
    let n = x * y * z;
    let mut b = GraphBuilder::new(n);
    let at = |i: usize, j: usize, k: usize| (k * x * y + j * x + i) as u32;
    for k in 0..z {
        for j in 0..y {
            for i in 0..x {
                if i + 1 < x {
                    b.add_edge(at(i, j, k), at(i + 1, j, k))
                        .expect("valid edge");
                }
                if j + 1 < y {
                    b.add_edge(at(i, j, k), at(i, j + 1, k))
                        .expect("valid edge");
                }
                if k + 1 < z {
                    b.add_edge(at(i, j, k), at(i, j, k + 1))
                        .expect("valid edge");
                }
            }
        }
    }
    b.build()
}

/// Enumerates the coordinates of vertex `v` in the `d`-dimensional `p`-ary
/// grid (row-major: coordinate 0 varies fastest).
pub fn grid_coords(v: usize, p: usize, d: usize) -> Vec<usize> {
    let mut coords = Vec::with_capacity(d);
    let mut rest = v;
    for _ in 0..d {
        coords.push(rest % p);
        rest /= p;
    }
    coords
}

/// Inverse of [`grid_coords`].
pub fn grid_index(coords: &[usize], p: usize) -> usize {
    coords.iter().rev().fold(0, |acc, &c| acc * p + c)
}

/// `G_{p,d}` from the paper's Section 3: the `d`-dimensional `p × ⋯ × p`
/// grid where `x` and `y` are adjacent iff `max_i |x_i − y_i| = 1`
/// (ℓ∞ / king-move adjacency).
///
/// Doubling dimension `≤ d`; minimum degree `2^d − 1`. This is one half of
/// the lower-bound family of Theorem 3.1.
///
/// # Panics
///
/// Panics if `p < 2 || d == 0`, or if `p^d` overflows `usize`.
/// # Examples
///
/// ```
/// use fsdl_graph::generators;
/// let g = generators::grid_linf(3, 2); // 3x3 king graph
/// assert_eq!(g.num_vertices(), 9);
/// assert_eq!(g.degree(fsdl_graph::NodeId::new(4)), 8); // center
/// ```
pub fn grid_linf(p: usize, d: usize) -> Graph {
    linf_grid_with_filter(p, d, |_| true)
}

/// `H_{p,d}` from the paper's Section 3: adjacency requires
/// `max_i |x_i − y_i| = 1` **and** `Σ_i |x_i − y_i| ≤ d/2`.
///
/// `H_{p,d}` is a 2-spanner of `G_{p,d}` with at most half its edges. The
/// lower-bound family `F_{n,α}` consists of all graphs `H ⊆ G' ⊆ G`.
///
/// # Panics
///
/// Panics if `p < 2 || d == 0`.
/// # Examples
///
/// ```
/// use fsdl_graph::generators;
/// let h = generators::half_grid(3, 4);
/// let g = generators::grid_linf(3, 4);
/// assert!(h.num_edges() < g.num_edges()); // a strict 2-spanner subgraph
/// ```
pub fn half_grid(p: usize, d: usize) -> Graph {
    let limit = d / 2;
    linf_grid_with_filter(p, d, move |offsets: &[i64]| {
        offsets
            .iter()
            .map(|&o| o.unsigned_abs() as usize)
            .sum::<usize>()
            <= limit
    })
}

/// Shared implementation for the ℓ∞ grid family: keeps the ℓ∞ = 1 edges
/// accepted by `filter` (which receives the coordinate offset vector).
fn linf_grid_with_filter<F: Fn(&[i64]) -> bool>(p: usize, d: usize, filter: F) -> Graph {
    assert!(p >= 2, "grid side must be at least 2");
    assert!(d >= 1, "grid dimension must be at least 1");
    let n = p
        .checked_pow(u32::try_from(d).expect("dimension too large"))
        .expect("p^d overflows usize");
    let mut b = GraphBuilder::new(n);
    // Enumerate all nonzero offset vectors in {-1,0,1}^d once.
    let num_offsets = 3usize.pow(d as u32);
    let mut offsets: Vec<Vec<i64>> = Vec::new();
    for code in 0..num_offsets {
        let mut rest = code;
        let mut off = Vec::with_capacity(d);
        for _ in 0..d {
            off.push((rest % 3) as i64 - 1);
            rest /= 3;
        }
        if off.iter().any(|&o| o != 0) && filter(&off) {
            offsets.push(off);
        }
    }
    let mut coords = vec![0usize; d];
    for v in 0..n {
        // Incrementally maintained coordinates (row-major).
        for off in &offsets {
            let mut ok = true;
            let mut w_coords = Vec::with_capacity(d);
            for (c, o) in coords.iter().zip(off.iter()) {
                let nc = *c as i64 + o;
                if nc < 0 || nc >= p as i64 {
                    ok = false;
                    break;
                }
                w_coords.push(nc as usize);
            }
            if !ok {
                continue;
            }
            let w = grid_index(&w_coords, p);
            if w > v {
                b.add_edge(v as u32, w as u32).expect("valid edge");
            }
        }
        // Increment coordinates.
        for c in coords.iter_mut() {
            *c += 1;
            if *c < p {
                break;
            }
            *c = 0;
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` (`2^d` vertices).
///
/// Doubling dimension `Θ(d)` but with only `n = 2^d` vertices, i.e. `α ≈
/// log n`: the worst case for the scheme. Contrast family.
///
/// # Panics
///
/// Panics if `d == 0 || d > 20`.
pub fn hypercube(d: usize) -> Graph {
    assert!(
        (1..=20).contains(&d),
        "hypercube dimension out of supported range"
    );
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if w > v {
                b.add_edge(v as u32, w as u32).expect("valid edge");
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, prob)` with a deterministic seed.
///
/// Sparse ER graphs are expanders and **not** doubling-bounded; contrast
/// family.
///
/// # Panics
///
/// Panics if `prob` is not within `[0, 1]` or `n == 0`.
pub fn erdos_renyi(n: usize, prob: f64, seed: u64) -> Graph {
    assert!(n > 0, "graph needs at least one vertex");
    assert!((0.0..=1.0).contains(&prob), "probability out of range");
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(prob) {
                b.add_edge(i as u32, j as u32).expect("valid edge");
            }
        }
    }
    b.build()
}

/// A random geometric (unit-disk) graph: `n` points uniform on the unit
/// torus, joined when their toroidal Euclidean distance is `≤ radius`.
///
/// With `radius ≈ sqrt(c/n)` these are connected, doubling-dimension-≈2
/// graphs — the standard "wireless network" workload motivating compact
/// routing in doubling metrics.
///
/// # Panics
///
/// Panics if `n == 0` or `radius` is not in `(0, 0.5]`.
/// # Examples
///
/// ```
/// use fsdl_graph::generators;
/// let a = generators::random_geometric(100, 0.15, 7);
/// let b = generators::random_geometric(100, 0.15, 7);
/// assert_eq!(a, b); // deterministic per seed
/// ```
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(n > 0, "graph needs at least one vertex");
    assert!(
        radius > 0.0 && radius <= 0.5,
        "radius must be in (0, 0.5] on the unit torus"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen_f64(), rng.gen_f64())).collect();
    // Cell list: cells of side >= radius so neighbors are within one ring.
    let cells_per_side = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((y * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        buckets[cy * cells_per_side + cx].push(i as u32);
    }
    let torus_d2 = |a: (f64, f64), b: (f64, f64)| -> f64 {
        let dx = (a.0 - b.0).abs();
        let dy = (a.1 - b.1).abs();
        let dx = dx.min(1.0 - dx);
        let dy = dy.min(1.0 - dy);
        dx * dx + dy * dy
    };
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let (cx, cy) = cell_of(pts[i].0, pts[i].1);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = (cx as i64 + dx).rem_euclid(cells_per_side as i64) as usize;
                let ny = (cy as i64 + dy).rem_euclid(cells_per_side as i64) as usize;
                for &j in &buckets[ny * cells_per_side + nx] {
                    if (j as usize) > i && torus_d2(pts[i], pts[j as usize]) <= r2 {
                        b.add_edge(i as u32, j).expect("valid edge");
                    }
                }
            }
        }
    }
    b.build()
}

/// A spider: `legs` paths of length `leg_len` joined at a center (vertex
/// 0). Doubling dimension grows like `log(legs)` near the center — a
/// borderline family.
///
/// # Panics
///
/// Panics if `legs == 0 || leg_len == 0`.
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    assert!(legs > 0 && leg_len > 0, "spider needs legs");
    let n = 1 + legs * leg_len;
    let mut b = GraphBuilder::new(n);
    for l in 0..legs {
        let mut prev = 0u32;
        for k in 0..leg_len {
            let v = (1 + l * leg_len + k) as u32;
            b.add_edge(prev, v).expect("valid edge");
            prev = v;
        }
    }
    b.build()
}

/// A ladder: two parallel paths of `rungs` vertices joined by rungs.
///
/// # Panics
///
/// Panics if `rungs == 0`.
pub fn ladder(rungs: usize) -> Graph {
    assert!(rungs > 0, "ladder needs rungs");
    grid2d(rungs, 2)
}

/// A lollipop: a clique of `clique` vertices with a path of `tail` vertices
/// attached. The clique end is non-doubling for large `clique`; contrast
/// family.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    assert!(clique >= 2, "lollipop needs a clique");
    let n = clique + tail;
    let mut b = GraphBuilder::new(n);
    for i in 0..clique {
        for j in (i + 1)..clique {
            b.add_edge(i as u32, j as u32).expect("valid edge");
        }
    }
    let mut prev = (clique - 1) as u32;
    for k in 0..tail {
        let v = (clique + k) as u32;
        b.add_edge(prev, v).expect("valid edge");
        prev = v;
    }
    b.build()
}

/// A barbell: two cliques of size `clique` joined by a path of `bridge`
/// vertices.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn barbell(clique: usize, bridge: usize) -> Graph {
    assert!(clique >= 2, "barbell needs cliques");
    let n = 2 * clique + bridge;
    let mut b = GraphBuilder::new(n);
    for base in [0, clique + bridge] {
        for i in 0..clique {
            for j in (i + 1)..clique {
                b.add_edge((base + i) as u32, (base + j) as u32)
                    .expect("valid edge");
            }
        }
    }
    // Bridge path from last vertex of clique 1 to first vertex of clique 2.
    let mut prev = (clique - 1) as u32;
    for k in 0..bridge {
        let v = (clique + k) as u32;
        b.add_edge(prev, v).expect("valid edge");
        prev = v;
    }
    b.add_edge(prev, (clique + bridge) as u32)
        .expect("valid edge");
    b.build()
}

/// A `w × h` mesh with rectangular holes (obstacles) removed: a city map
/// with blocks. Holes are carved on a regular pattern: every cell whose
/// coordinates satisfy `x % 4 ∈ {1, 2}` and `y % 4 ∈ {1, 2}` is removed
/// when `holes` is true... simplified: pass a predicate.
///
/// Removed cells become isolated vertices (degree 0) so ids stay dense;
/// callers should query between surviving vertices.
pub fn grid2d_with_holes<F: Fn(usize, usize) -> bool>(w: usize, h: usize, is_hole: F) -> Graph {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let n = w * h;
    let mut b = GraphBuilder::new(n);
    let at = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            if is_hole(x, y) {
                continue;
            }
            if x + 1 < w && !is_hole(x + 1, y) {
                b.add_edge(at(x, y), at(x + 1, y)).expect("valid edge");
            }
            if y + 1 < h && !is_hole(x, y + 1) {
                b.add_edge(at(x, y), at(x, y + 1)).expect("valid edge");
            }
        }
    }
    b.build()
}

/// A synthetic road network: a `w × h` street grid where a fraction of
/// segments is randomly removed (dead ends, rivers) and a sparse set of
/// diagonal shortcuts is added (avenues), while connectivity is preserved
/// (removals that would disconnect are skipped). Road networks have low
/// highway dimension, hence low doubling dimension — the paper's motivating
/// workload.
///
/// # Panics
///
/// Panics if `w < 2 || h < 2`, or if `removal_rate` is not in `[0, 0.5]`.
/// # Examples
///
/// ```
/// use fsdl_graph::{connectivity, generators};
/// let g = generators::road_network(10, 10, 0.2, 1);
/// assert!(connectivity::is_connected(&g)); // removals never disconnect
/// ```
pub fn road_network(w: usize, h: usize, removal_rate: f64, seed: u64) -> Graph {
    assert!(w >= 2 && h >= 2, "road network needs a real grid");
    assert!(
        (0.0..=0.5).contains(&removal_rate),
        "removal rate out of range"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let base = grid2d(w, h);
    // Tentatively drop each edge with the given probability, keeping the
    // graph connected by checking each removal against a union-find over
    // the surviving edges (process removals last).
    let all_edges: Vec<(u32, u32)> = base.edges().map(|e| (e.lo().raw(), e.hi().raw())).collect();
    let mut keep: Vec<bool> = all_edges
        .iter()
        .map(|_| !rng.gen_bool(removal_rate))
        .collect();
    // Re-add removed edges while the kept subgraph is disconnected.
    loop {
        let mut uf = crate::connectivity::UnionFind::new(w * h);
        for (k, &(a, b)) in all_edges.iter().enumerate() {
            if keep[k] {
                uf.union(a as usize, b as usize);
            }
        }
        if uf.num_sets() == 1 {
            break;
        }
        // Restore the first removed edge that joins two components.
        let mut restored = false;
        for (k, &(a, b)) in all_edges.iter().enumerate() {
            if !keep[k] && !uf.same(a as usize, b as usize) {
                keep[k] = true;
                restored = true;
                break;
            }
        }
        assert!(restored, "grid removals must be repairable");
    }
    let mut b = GraphBuilder::new(w * h);
    for (k, &(x, y)) in all_edges.iter().enumerate() {
        if keep[k] {
            b.add_edge(x, y).expect("valid edge");
        }
    }
    // Diagonal avenues: ~5% of interior cells gain one diagonal.
    let at = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h - 1 {
        for x in 0..w - 1 {
            if rng.gen_bool(0.05) {
                if rng.gen_bool(0.5) {
                    b.add_edge(at(x, y), at(x + 1, y + 1)).expect("valid edge");
                } else {
                    b.add_edge(at(x + 1, y), at(x, y + 1)).expect("valid edge");
                }
            }
        }
    }
    b.build()
}

/// The 3-D torus `x × y × z` (6-neighbor with wraparound).
///
/// # Panics
///
/// Panics if any dimension is `< 3`.
pub fn torus3d(x: usize, y: usize, z: usize) -> Graph {
    assert!(
        x >= 3 && y >= 3 && z >= 3,
        "torus dimensions must be at least 3"
    );
    let n = x * y * z;
    let mut b = GraphBuilder::new(n);
    let at = |i: usize, j: usize, k: usize| (k * x * y + j * x + i) as u32;
    for k in 0..z {
        for j in 0..y {
            for i in 0..x {
                b.add_edge(at(i, j, k), at((i + 1) % x, j, k))
                    .expect("valid edge");
                b.add_edge(at(i, j, k), at(i, (j + 1) % y, k))
                    .expect("valid edge");
                b.add_edge(at(i, j, k), at(i, j, (k + 1) % z))
                    .expect("valid edge");
            }
        }
    }
    b.build()
}

/// A 2-D king graph: `w × h` grid with 8-neighbor (ℓ∞) adjacency. Identical
/// to `G_{p,2}` when `w == h == p` but allows rectangles.
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
pub fn king_grid(w: usize, h: usize) -> Graph {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let n = w * h;
    let mut b = GraphBuilder::new(n);
    let at = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            for (dx, dy) in [(1i64, 0i64), (0, 1), (1, 1), (1, -1)] {
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx >= 0 && (nx as usize) < w && ny >= 0 && (ny as usize) < h {
                    b.add_edge(at(x, y), at(nx as usize, ny as usize))
                        .expect("valid edge");
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::connectivity;
    use crate::ids::NodeId;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(2)), 2);
    }

    #[test]
    fn single_vertex_path() {
        let g = path(1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 7);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(NodeId::new(0)), 5);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn balanced_tree_counts() {
        // Binary tree of depth 3: 1 + 2 + 4 + 8 = 15 vertices, 14 edges.
        let g = balanced_tree(2, 3);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn balanced_tree_depth_zero() {
        let g = balanced_tree(3, 0);
        assert_eq!(g.num_vertices(), 1);
    }

    #[test]
    fn caterpillar_counts() {
        let g = caterpillar(4, 2);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 + 8);
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn random_tree_is_tree() {
        let g = random_tree(50, 42);
        assert_eq!(g.num_edges(), 49);
        assert!(connectivity::is_connected(&g));
        // Determinism.
        assert_eq!(random_tree(50, 42), g);
        assert_ne!(random_tree(50, 43), g);
    }

    #[test]
    fn grid2d_distances() {
        let g = grid2d(4, 3);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2); // horizontal + vertical
        let d = bfs::distances(&g, NodeId::new(0));
        // Manhattan distance to opposite corner (3, 2).
        assert_eq!(d[11].finite(), Some(5));
    }

    #[test]
    fn torus_is_regular() {
        let g = torus2d(4, 5);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(g.num_edges(), 2 * 20);
    }

    #[test]
    fn grid3d_counts() {
        let g = grid3d(3, 3, 3);
        assert_eq!(g.num_vertices(), 27);
        assert_eq!(g.num_edges(), 3 * (2 * 3 * 3)); // 2*9 per axis, 3 axes
    }

    #[test]
    fn grid_coords_roundtrip() {
        for v in 0..125 {
            let c = grid_coords(v, 5, 3);
            assert_eq!(grid_index(&c, 5), v);
        }
    }

    #[test]
    fn linf_grid_is_king_grid_in_2d() {
        let a = grid_linf(4, 2);
        let b = king_grid(4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn linf_grid_1d_is_path() {
        assert_eq!(grid_linf(6, 1), path(6));
    }

    #[test]
    fn linf_grid_degree_interior() {
        let g = grid_linf(5, 2);
        // Interior vertex (2,2) has 8 king neighbors.
        let v = grid_index(&[2, 2], 5);
        assert_eq!(g.degree(NodeId::from_index(v)), 8);
    }

    #[test]
    fn linf_adjacency_rule() {
        let g = grid_linf(3, 3);
        let u = grid_index(&[1, 1, 1], 3);
        let w = grid_index(&[2, 2, 2], 3); // linf distance 1 (diagonal)
        assert!(g.has_edge(NodeId::from_index(u), NodeId::from_index(w)));
        let far = grid_index(&[1, 1, 0], 3);
        assert!(g.has_edge(NodeId::from_index(u), NodeId::from_index(far)));
    }

    #[test]
    fn half_grid_is_subgraph_and_spanner() {
        let p = 4;
        let d = 4; // even, as the paper requires
        let g = grid_linf(p, d);
        let h = half_grid(p, d);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert!(h.num_edges() * 2 <= g.num_edges() * 2); // |E(H)| <= |E(G)|
                                                         // Every H edge is a G edge.
        for e in h.edges() {
            assert!(g.has_edge(e.lo(), e.hi()));
        }
        // 2-spanner property: endpoints of each G edge are within 2 in H.
        for e in g.edges().take(2000) {
            let d_h = bfs::pair_distance_avoiding(&h, e.lo(), e.hi(), &crate::FaultSet::empty());
            assert!(d_h.finite().unwrap_or(u32::MAX) <= 2, "edge {e} stretched");
        }
    }

    #[test]
    fn half_grid_paper_bound_on_edges() {
        // |E(H_{p,d})| <= m_{p,d}/2 for even d (paper Section 3).
        let g = grid_linf(3, 4);
        let h = half_grid(3, 4);
        assert!(h.num_edges() <= g.num_edges() / 2 + g.num_edges() / 10);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.num_vertices(), 16);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        let d = bfs::distances(&g, NodeId::new(0));
        assert_eq!(d[0b1111].finite(), Some(4));
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let a = erdos_renyi(60, 0.1, 7);
        let b = erdos_renyi(60, 0.1, 7);
        assert_eq!(a, b);
        let c = erdos_renyi(60, 0.1, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn random_geometric_matches_bruteforce() {
        let n = 200;
        let r = 0.12;
        let g = random_geometric(n, r, 99);
        // Rebuild by brute force with the same point sequence.
        let mut rng = Rng::seed_from_u64(99);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen_f64(), rng.gen_f64())).collect();
        let torus_d2 = |a: (f64, f64), b: (f64, f64)| -> f64 {
            let dx = (a.0 - b.0).abs();
            let dy = (a.1 - b.1).abs();
            let dx = dx.min(1.0 - dx);
            let dy = dy.min(1.0 - dy);
            dx * dx + dy * dy
        };
        let mut expected = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                if torus_d2(pts[i], pts[j]) <= r * r {
                    expected += 1;
                    assert!(
                        g.has_edge(NodeId::from_index(i), NodeId::from_index(j)),
                        "missing edge {i}-{j}"
                    );
                }
            }
        }
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn spider_shape() {
        let g = spider(4, 3);
        assert_eq!(g.num_vertices(), 13);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.degree(NodeId::new(0)), 4);
        assert!(connectivity::is_connected(&g));
        let d = bfs::distances(&g, NodeId::new(3)); // tip of leg 0
        assert_eq!(d[13 - 1].finite(), Some(6)); // tip of leg 3
    }

    #[test]
    fn ladder_shape() {
        let g = ladder(5);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 4 * 2 + 5);
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 6 + 3);
        assert!(connectivity::is_connected(&g));
        let d = bfs::distances(&g, NodeId::new(0));
        assert_eq!(d[6].finite(), Some(4)); // through the clique + tail
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(3, 2);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 3 + 3 + 3); // two triangles + bridge(2)+joins
        assert!(connectivity::is_connected(&g));
        let d = bfs::distances(&g, NodeId::new(0));
        // 0 -> 2 (clique) -> 3 -> 4 -> 5 (first of clique 2): 4 hops.
        assert_eq!(d[5].finite(), Some(4));
    }

    #[test]
    fn grid_with_holes() {
        // 5x5 with the center removed.
        let g = grid2d_with_holes(5, 5, |x, y| x == 2 && y == 2);
        assert_eq!(g.num_vertices(), 25);
        assert_eq!(g.degree(NodeId::new(12)), 0);
        let d = bfs::distances(&g, NodeId::new(10)); // (0,2)
        assert_eq!(d[14].finite(), Some(6)); // (4,2): around the hole
                                             // No-hole variant equals the plain grid.
        let g2 = grid2d_with_holes(4, 3, |_, _| false);
        assert_eq!(g2, grid2d(4, 3));
    }

    #[test]
    fn road_network_connected_and_deterministic() {
        let g = road_network(12, 12, 0.15, 42);
        assert!(connectivity::is_connected(&g));
        assert_eq!(g, road_network(12, 12, 0.15, 42));
        assert_ne!(g, road_network(12, 12, 0.15, 43));
        // Fewer straight edges than the full grid (some removed), possibly
        // plus a few diagonals.
        let full = grid2d(12, 12).num_edges();
        assert!(g.num_edges() < full + full / 5);
    }

    #[test]
    fn road_network_zero_removal_contains_grid() {
        let g = road_network(6, 6, 0.0, 7);
        let base = grid2d(6, 6);
        for e in base.edges() {
            assert!(g.has_edge(e.lo(), e.hi()));
        }
    }

    #[test]
    fn torus3d_regular() {
        let g = torus3d(3, 3, 3);
        assert!(g.vertices().all(|v| g.degree(v) == 6));
        assert_eq!(g.num_edges(), 27 * 3);
    }

    #[test]
    fn king_grid_rectangular() {
        let g = king_grid(3, 2);
        assert_eq!(g.num_vertices(), 6);
        // Edges: horizontal 2*2=4? w=3,h=2: horizontal (2 per row * 2 rows)=4,
        // vertical (3)=3, diagonals (2 per row-pair * 2 kinds)=4. Total 11.
        assert_eq!(g.num_edges(), 11);
    }
}
