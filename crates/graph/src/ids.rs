//! Strongly-typed identifiers and distances.
//!
//! The whole workspace manipulates vertices through [`NodeId`] and unweighted
//! shortest-path distances through [`Dist`]. Both are thin `u32` newtypes
//! (C-NEWTYPE): they cost nothing at runtime but prevent mixing up vertex
//! indices, distances, and level numbers in the label machinery.

use std::fmt;

/// Identifier of a vertex in a [`Graph`](crate::Graph).
///
/// Vertices of an `n`-vertex graph are numbered `0..n`. A `NodeId` is only
/// meaningful relative to the graph it was taken from.
///
/// # Examples
///
/// ```
/// use fsdl_graph::NodeId;
///
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "v7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a `NodeId` from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Creates a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }

    /// Returns the vertex index as a `usize`, suitable for slice indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An unweighted shortest-path distance (hop count), possibly infinite.
///
/// `Dist` is a saturating distance type: [`Dist::INFINITE`] represents
/// "unreachable" and is absorbing under [`Dist::saturating_add`]. All finite
/// distances in an `n`-vertex unweighted graph are `< n`, far below the
/// sentinel.
///
/// # Examples
///
/// ```
/// use fsdl_graph::Dist;
///
/// let d = Dist::new(3).saturating_add(Dist::new(4));
/// assert_eq!(d, Dist::new(7));
/// assert!(Dist::INFINITE.saturating_add(Dist::new(1)).is_infinite());
/// assert!(Dist::new(2) < Dist::INFINITE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Dist(u32);

impl Dist {
    /// The zero distance.
    pub const ZERO: Dist = Dist(0);

    /// The "unreachable" sentinel; larger than every finite distance.
    pub const INFINITE: Dist = Dist(u32::MAX);

    /// Creates a finite distance.
    ///
    /// # Panics
    ///
    /// Panics if `value == u32::MAX` (reserved for [`Dist::INFINITE`]).
    #[inline]
    pub const fn new(value: u32) -> Self {
        assert!(value != u32::MAX, "u32::MAX is reserved for Dist::INFINITE");
        Dist(value)
    }

    /// Checked construction from a (possibly wide) `u64` distance.
    ///
    /// Returns `None` when `value` cannot be represented as a finite
    /// distance (`value >= u32::MAX`). This is the sound way to narrow a
    /// 64-bit sketch-graph distance: an unrepresentable finite distance must
    /// widen to [`Dist::INFINITE`] (an overestimate is still an upper
    /// bound), never shrink to a finite underestimate.
    ///
    /// # Examples
    ///
    /// ```
    /// use fsdl_graph::Dist;
    ///
    /// assert_eq!(Dist::try_new(7), Some(Dist::new(7)));
    /// assert_eq!(Dist::try_new(u64::from(u32::MAX)), None);
    /// assert_eq!(Dist::try_new(u64::MAX), None);
    /// assert_eq!(Dist::try_new(9).unwrap_or(Dist::INFINITE), Dist::new(9));
    /// ```
    #[inline]
    pub const fn try_new(value: u64) -> Option<Self> {
        if value >= u32::MAX as u64 {
            None
        } else {
            Some(Dist(value as u32))
        }
    }

    /// Returns the raw value; `u32::MAX` encodes infinity.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns `true` for the infinite (unreachable) distance.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 == u32::MAX
    }

    /// Returns `true` for any finite distance.
    #[inline]
    pub const fn is_finite(self) -> bool {
        self.0 != u32::MAX
    }

    /// Returns the finite value, or `None` when infinite.
    #[inline]
    pub const fn finite(self) -> Option<u32> {
        if self.is_infinite() {
            None
        } else {
            Some(self.0)
        }
    }

    /// Adds two distances, saturating at [`Dist::INFINITE`].
    #[inline]
    pub const fn saturating_add(self, other: Dist) -> Dist {
        if self.is_infinite() || other.is_infinite() {
            Dist::INFINITE
        } else {
            match self.0.checked_add(other.0) {
                Some(v) if v != u32::MAX => Dist(v),
                _ => Dist::INFINITE,
            }
        }
    }

    /// Adds a raw hop count, saturating at [`Dist::INFINITE`].
    #[inline]
    pub const fn saturating_add_raw(self, hops: u32) -> Dist {
        if self.is_infinite() {
            Dist::INFINITE
        } else {
            match self.0.checked_add(hops) {
                Some(v) if v != u32::MAX => Dist(v),
                _ => Dist::INFINITE,
            }
        }
    }
}

impl Default for Dist {
    /// The default distance is [`Dist::INFINITE`] ("not yet reached"), which
    /// is the natural fill value for distance arrays.
    fn default() -> Self {
        Dist::INFINITE
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// An undirected edge, stored with endpoints in canonical (sorted) order.
///
/// Two `Edge` values compare equal iff they join the same pair of vertices,
/// regardless of the order the endpoints were given in.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{Edge, NodeId};
///
/// let e1 = Edge::new(NodeId::new(3), NodeId::new(1));
/// let e2 = Edge::new(NodeId::new(1), NodeId::new(3));
/// assert_eq!(e1, e2);
/// assert_eq!(e1.endpoints(), (NodeId::new(1), NodeId::new(3)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    lo: NodeId,
    hi: NodeId,
}

impl Edge {
    /// Creates an edge between `a` and `b`, canonicalizing endpoint order.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are not representable).
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert!(a != b, "self-loops are not allowed");
        if a < b {
            Edge { lo: a, hi: b }
        } else {
            Edge { lo: b, hi: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub const fn lo(self) -> NodeId {
        self.lo
    }

    /// The larger endpoint.
    #[inline]
    pub const fn hi(self) -> NodeId {
        self.hi
    }

    /// Both endpoints, smaller first.
    #[inline]
    pub const fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// Returns the endpoint different from `v`, or `None` if `v` is not an
    /// endpoint.
    #[inline]
    pub fn other(self, v: NodeId) -> Option<NodeId> {
        if v == self.lo {
            Some(self.hi)
        } else if v == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(NodeId::from(42u32), v);
        assert_eq!(u32::from(v), 42);
        assert_eq!(NodeId::from_index(42), v);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
        assert_eq!(NodeId::new(12).to_string(), "v12");
    }

    #[test]
    fn node_id_ordering_matches_raw() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn dist_finite_and_infinite() {
        assert!(Dist::new(0).is_finite());
        assert!(Dist::INFINITE.is_infinite());
        assert_eq!(Dist::new(5).finite(), Some(5));
        assert_eq!(Dist::INFINITE.finite(), None);
    }

    #[test]
    fn dist_saturating_add() {
        assert_eq!(Dist::new(2).saturating_add(Dist::new(3)), Dist::new(5));
        assert!(Dist::INFINITE.saturating_add(Dist::new(1)).is_infinite());
        assert!(Dist::new(1).saturating_add(Dist::INFINITE).is_infinite());
        assert!(Dist::new(u32::MAX - 1)
            .saturating_add(Dist::new(u32::MAX - 1))
            .is_infinite());
        assert_eq!(Dist::new(7).saturating_add_raw(4), Dist::new(11));
        assert!(Dist::INFINITE.saturating_add_raw(0).is_infinite());
    }

    #[test]
    fn dist_try_new_boundaries() {
        assert_eq!(Dist::try_new(0), Some(Dist::ZERO));
        assert_eq!(
            Dist::try_new(u64::from(u32::MAX - 1)),
            Some(Dist::new(u32::MAX - 1))
        );
        assert_eq!(Dist::try_new(u64::from(u32::MAX)), None);
        assert_eq!(Dist::try_new(u64::from(u32::MAX) + 1), None);
        assert_eq!(Dist::try_new(u64::MAX), None);
    }

    #[test]
    fn dist_ordering() {
        assert!(Dist::ZERO < Dist::new(1));
        assert!(Dist::new(1_000_000) < Dist::INFINITE);
    }

    #[test]
    fn dist_default_is_infinite() {
        assert!(Dist::default().is_infinite());
    }

    #[test]
    fn dist_display() {
        assert_eq!(Dist::new(9).to_string(), "9");
        assert_eq!(Dist::INFINITE.to_string(), "inf");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn dist_new_rejects_sentinel() {
        let _ = Dist::new(u32::MAX);
    }

    #[test]
    fn edge_canonicalizes() {
        let e = Edge::new(NodeId::new(9), NodeId::new(2));
        assert_eq!(e.lo(), NodeId::new(2));
        assert_eq!(e.hi(), NodeId::new(9));
        assert_eq!(e, Edge::new(NodeId::new(2), NodeId::new(9)));
    }

    #[test]
    fn edge_other() {
        let e = Edge::new(NodeId::new(1), NodeId::new(4));
        assert_eq!(e.other(NodeId::new(1)), Some(NodeId::new(4)));
        assert_eq!(e.other(NodeId::new(4)), Some(NodeId::new(1)));
        assert_eq!(e.other(NodeId::new(2)), None);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(NodeId::new(3), NodeId::new(3));
    }

    #[test]
    fn edge_display() {
        let e = Edge::new(NodeId::new(5), NodeId::new(1));
        assert_eq!(e.to_string(), "(v1, v5)");
    }
}
