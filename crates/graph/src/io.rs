//! Plain-text graph serialization.
//!
//! Format (DIMACS-flavoured, whitespace-separated):
//!
//! ```text
//! # comment lines start with '#'
//! p <num_vertices> <num_edges>
//! e <u> <v>
//! e <u> <v>
//! ...
//! ```
//!
//! Used by the benchmark harness to snapshot workloads and by the examples
//! to load user-provided networks.

use std::io::{BufRead, Write};

use crate::csr::{Graph, GraphBuilder};
use crate::error::GraphError;

/// Writes `g` in the text format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_graph<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "p {} {}", g.num_vertices(), g.num_edges())?;
    for e in g.edges() {
        writeln!(w, "e {} {}", e.lo().raw(), e.hi().raw())?;
    }
    Ok(())
}

/// Serializes `g` to a `String` in the text format.
pub fn to_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_graph(g, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Parses a graph from the text format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input, and the usual builder
/// errors for invalid edges.
pub fn read_graph<R: BufRead>(r: R) -> Result<Graph, GraphError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_edges: Option<usize> = None;
    let mut seen_edges = 0usize;
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| GraphError::Parse {
            line: lineno,
            message: format!("I/O error: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: "duplicate problem line".into(),
                    });
                }
                let n: usize = parse_token(tokens.next(), lineno, "vertex count")?;
                let m: usize = parse_token(tokens.next(), lineno, "edge count")?;
                builder = Some(GraphBuilder::new(n));
                declared_edges = Some(m);
            }
            Some("e") => {
                let b = builder.as_mut().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    message: "edge before problem line".into(),
                })?;
                let u: u32 = parse_token(tokens.next(), lineno, "edge endpoint")?;
                let v: u32 = parse_token(tokens.next(), lineno, "edge endpoint")?;
                b.add_edge(u, v)?;
                seen_edges += 1;
            }
            Some(other) => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unknown record type '{other}'"),
                });
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    let builder = builder.ok_or(GraphError::Parse {
        line: 0,
        message: "missing problem line".into(),
    })?;
    if let Some(m) = declared_edges {
        if m != seen_edges {
            return Err(GraphError::Parse {
                line: 0,
                message: format!("declared {m} edges but found {seen_edges}"),
            });
        }
    }
    Ok(builder.build())
}

/// Parses a graph from a string in the text format.
///
/// # Errors
///
/// Same as [`read_graph`].
pub fn from_str(s: &str) -> Result<Graph, GraphError> {
    read_graph(s.as_bytes())
}

/// Writes a fault set in the text format:
///
/// ```text
/// # comments allowed
/// v <vertex>
/// f <u> <v>
/// ```
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_faults<W: Write>(faults: &crate::FaultSet, mut w: W) -> std::io::Result<()> {
    let mut vs: Vec<u32> = faults.vertices().map(crate::NodeId::raw).collect();
    vs.sort_unstable();
    for v in vs {
        writeln!(w, "v {v}")?;
    }
    let mut es: Vec<(u32, u32)> = faults
        .edges()
        .map(|e| (e.lo().raw(), e.hi().raw()))
        .collect();
    es.sort_unstable();
    for (a, b) in es {
        writeln!(w, "f {a} {b}")?;
    }
    Ok(())
}

/// Serializes a fault set to a `String`.
pub fn faults_to_string(faults: &crate::FaultSet) -> String {
    let mut buf = Vec::new();
    write_faults(faults, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Parses a fault set, validating endpoints and edges against `g`.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input, out-of-range vertices,
/// or edges not present in `g`.
pub fn faults_from_str(s: &str, g: &Graph) -> Result<crate::FaultSet, GraphError> {
    let mut faults = crate::FaultSet::empty();
    for (idx, line) in s.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("v") => {
                let v: u32 = parse_token(tokens.next(), lineno, "fault vertex")?;
                if v as usize >= g.num_vertices() {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!("fault vertex {v} out of range"),
                    });
                }
                faults.forbid_vertex(crate::NodeId::new(v));
            }
            Some("f") => {
                let a: u32 = parse_token(tokens.next(), lineno, "fault edge endpoint")?;
                let b: u32 = parse_token(tokens.next(), lineno, "fault edge endpoint")?;
                let (na, nb) = (crate::NodeId::new(a), crate::NodeId::new(b));
                if !g.contains(na) || !g.contains(nb) || !g.has_edge(na, nb) {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!("fault edge {a}-{b} is not in the graph"),
                    });
                }
                faults.forbid_edge_unchecked(na, nb);
            }
            Some(other) => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unknown fault record '{other}'"),
                });
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    Ok(faults)
}

fn parse_token<T: std::str::FromStr>(
    token: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    let tok = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} '{tok}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::grid2d(4, 3);
        let s = to_string(&g);
        let g2 = from_str(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = GraphBuilder::new(3).build();
        let g2 = from_str(&to_string(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines() {
        let s = "# hello\n\np 3 1\n# middle\ne 0 2\n";
        let g = from_str(s).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edge_count_mismatch() {
        let s = "p 3 2\ne 0 1\n";
        assert!(matches!(from_str(s), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn missing_problem_line() {
        assert!(matches!(from_str("e 0 1\n"), Err(GraphError::Parse { .. })));
        assert!(matches!(from_str(""), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn duplicate_problem_line() {
        let s = "p 2 0\np 2 0\n";
        assert!(matches!(from_str(s), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn bad_tokens() {
        assert!(matches!(from_str("p x 0\n"), Err(GraphError::Parse { .. })));
        assert!(matches!(
            from_str("p 2 0\nq 1 2\n"),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            from_str("p 2 1\ne 0\n"),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn fault_roundtrip() {
        let g = generators::cycle(6);
        let mut f = crate::FaultSet::from_vertices([crate::NodeId::new(2), crate::NodeId::new(5)]);
        f.forbid_edge_unchecked(crate::NodeId::new(0), crate::NodeId::new(1));
        let s = faults_to_string(&f);
        let back = faults_from_str(&s, &g).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn fault_parse_errors() {
        let g = generators::path(4);
        assert!(faults_from_str(
            "v 9
", &g
        )
        .is_err());
        assert!(faults_from_str(
            "f 0 2
", &g
        )
        .is_err()); // not an edge
        assert!(faults_from_str(
            "q 1
", &g
        )
        .is_err());
        assert!(faults_from_str(
            "v x
", &g
        )
        .is_err());
        let ok = faults_from_str(
            "# note

v 1
f 2 3
",
            &g,
        )
        .unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn invalid_edges_reported() {
        let s = "p 2 1\ne 0 5\n";
        assert!(matches!(
            from_str(s),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 2 })
        ));
        let s = "p 2 1\ne 1 1\n";
        assert!(matches!(
            from_str(s),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
    }
}
