//! # fsdl-graph — graph substrate for forbidden-set distance labeling
//!
//! This crate is the shared substrate of the `fsdl` workspace, which
//! reproduces *Forbidden-set distance labels for graphs of bounded doubling
//! dimension* (Abraham, Chechik, Gavoille, Peleg; PODC 2010 / TALG 2016).
//!
//! It provides:
//!
//! * an immutable CSR [`Graph`] for undirected unweighted graphs, with
//!   stable *ports* for the routing scheme ([`Graph::port_of`]);
//! * BFS primitives in [`bfs`]: exact distances, truncated balls `B(v, r)`
//!   with reusable scratch, multi-source searches, and ground-truth
//!   `d_{G∖F}` queries avoiding a [`FaultSet`];
//! * the weighted [`SketchGraph`] with Dijkstra, used by the label decoder;
//! * workload [`generators`] for every family in the evaluation (grids
//!   `G_{p,d}` and `H_{p,d}` from the paper's lower bound, unit-disk graphs,
//!   trees, contrast families);
//! * an empirical [doubling-dimension estimator](doubling) used to audit the
//!   workloads;
//! * text [`io`] for workload snapshots.
//!
//! ## Example
//!
//! ```
//! use fsdl_graph::{generators, bfs, FaultSet, NodeId};
//!
//! let g = generators::grid2d(8, 8);
//! let faults = FaultSet::from_vertices([NodeId::new(9)]);
//! let d = bfs::pair_distance_avoiding(&g, NodeId::new(0), NodeId::new(63), &faults);
//! assert_eq!(d.finite(), Some(14));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod connectivity;
mod csr;
pub mod cut;
pub mod doubling;
mod error;
mod faults;
pub mod generators;
mod ids;
pub mod io;
pub mod render;
mod sketch;
mod stats;
pub mod subgraph;

pub use connectivity::UnionFind;
pub use csr::{Graph, GraphBuilder};
pub use error::GraphError;
pub use faults::FaultSet;
pub use ids::{Dist, Edge, NodeId};
pub use sketch::{DijkstraScratch, SketchGraph};
pub use stats::GraphStats;
