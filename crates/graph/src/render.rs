//! ASCII rendering of grid-shaped graphs — used by examples and the figure
//! experiments to make fault sets and witness paths visible in a terminal.

use crate::faults::FaultSet;
use crate::ids::NodeId;

/// Renders a `w × h` grid of cells via a character-chooser callback
/// (row-major ids, `id = y * w + x`, row 0 printed first).
///
/// # Examples
///
/// ```
/// use fsdl_graph::render::render_grid;
///
/// let art = render_grid(3, 2, |x, y| if x == y { '#' } else { '.' });
/// assert_eq!(art, "# . .\n. # .\n");
/// ```
pub fn render_grid<F: Fn(usize, usize) -> char>(w: usize, h: usize, cell: F) -> String {
    let mut out = String::with_capacity(h * (2 * w));
    for y in 0..h {
        for x in 0..w {
            if x > 0 {
                out.push(' ');
            }
            out.push(cell(x, y));
        }
        out.push('\n');
    }
    out
}

/// Renders a grid-graph scenario: `S`/`T` endpoints, `X` faults, `*` path
/// vertices, `.` everything else. Ids are row-major over `w × h`.
///
/// # Examples
///
/// ```
/// use fsdl_graph::render::render_scenario;
/// use fsdl_graph::{FaultSet, NodeId};
///
/// let f = FaultSet::from_vertices([NodeId::new(4)]);
/// let art = render_scenario(
///     3,
///     3,
///     NodeId::new(0),
///     NodeId::new(8),
///     &f,
///     &[NodeId::new(0), NodeId::new(1), NodeId::new(2), NodeId::new(5), NodeId::new(8)],
/// );
/// assert!(art.starts_with("S * *\n"));
/// assert!(art.contains("X"));
/// ```
///
/// # Panics
///
/// Panics if `s` or `t` is outside the grid.
pub fn render_scenario(
    w: usize,
    h: usize,
    s: NodeId,
    t: NodeId,
    faults: &FaultSet,
    path: &[NodeId],
) -> String {
    assert!(
        s.index() < w * h && t.index() < w * h,
        "endpoint outside grid"
    );
    render_grid(w, h, |x, y| {
        let id = NodeId::from_index(y * w + x);
        if id == s {
            'S'
        } else if id == t {
            'T'
        } else if faults.is_vertex_faulty(id) {
            'X'
        } else if path.contains(&id) {
            '*'
        } else {
            '.'
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_grid_shapes() {
        let art = render_grid(4, 1, |x, _| char::from_digit(x as u32, 10).unwrap());
        assert_eq!(art, "0 1 2 3\n");
        assert_eq!(render_grid(2, 2, |_, _| '.').lines().count(), 2);
    }

    #[test]
    fn scenario_markers() {
        let f = FaultSet::from_vertices([NodeId::new(1)]);
        let art = render_scenario(2, 2, NodeId::new(0), NodeId::new(3), &f, &[]);
        assert_eq!(art, "S X\n. T\n");
    }

    #[test]
    fn path_overrides_dots_not_endpoints() {
        let art = render_scenario(
            3,
            1,
            NodeId::new(0),
            NodeId::new(2),
            &FaultSet::empty(),
            &[NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        );
        assert_eq!(art, "S * T\n");
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn endpoint_bounds_checked() {
        let _ = render_scenario(
            2,
            2,
            NodeId::new(0),
            NodeId::new(9),
            &FaultSet::empty(),
            &[],
        );
    }
}
