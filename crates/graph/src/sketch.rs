//! A small mutable weighted graph with Dijkstra — the "sketch graph" `H`
//! that the decoder assembles from labels at query time.
//!
//! The sketch graph's vertex universe is tiny (`O((1+1/ε)^{2α}·|F| log n)`
//! vertices), so it uses an adjacency list keyed by dense interned indices,
//! with the interning map from [`NodeId`]s maintained by the caller-facing
//! API.

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use crate::ids::NodeId;

/// A mutable, weighted, undirected multigraph over interned [`NodeId`]s.
///
/// Parallel edges are collapsed to the minimum weight. Weights are `u64`
/// (virtual-edge weights are `d_G` distances, far below `u64::MAX`).
///
/// # Examples
///
/// ```
/// use fsdl_graph::{SketchGraph, NodeId};
///
/// let mut h = SketchGraph::new();
/// h.add_edge(NodeId::new(0), NodeId::new(5), 3);
/// h.add_edge(NodeId::new(5), NodeId::new(9), 4);
/// h.add_edge(NodeId::new(0), NodeId::new(5), 10); // worse parallel edge
/// assert_eq!(h.shortest_distance(NodeId::new(0), NodeId::new(9)), Some(7));
/// assert_eq!(h.shortest_distance(NodeId::new(0), NodeId::new(77)), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SketchGraph {
    intern: HashMap<NodeId, u32>,
    names: Vec<NodeId>,
    adj: Vec<Vec<(u32, u64)>>,
}

/// Reusable buffers for [`SketchGraph`] Dijkstra runs, so a worker serving
/// many queries allocates nothing per query once the buffers have grown to
/// the working-set size.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{DijkstraScratch, NodeId, SketchGraph};
///
/// let mut h = SketchGraph::new();
/// h.add_edge(NodeId::new(0), NodeId::new(1), 2);
/// let mut scratch = DijkstraScratch::new();
/// let (d, _) = h.shortest_path_with(NodeId::new(0), NodeId::new(1), &mut scratch).unwrap();
/// assert_eq!(d, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<u64>,
    prev: Vec<u32>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl DijkstraScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DijkstraScratch::default()
    }

    /// The distance computed by the last
    /// [`SketchGraph::distances_from_with`] run for dense intern index
    /// `idx`, or `None` when unreachable (or `idx` out of range).
    pub fn distance_at(&self, idx: usize) -> Option<u64> {
        match self.dist.get(idx) {
            Some(&d) if d != u64::MAX => Some(d),
            _ => None,
        }
    }

    /// Resets the buffers for a graph of `n` interned vertices.
    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, u64::MAX);
        self.prev.clear();
        self.prev.resize(n, u32::MAX);
        self.heap.clear();
    }
}

impl SketchGraph {
    /// Creates an empty sketch graph.
    pub fn new() -> Self {
        SketchGraph::default()
    }

    /// Interns `v`, returning its dense index; inserts it if new.
    pub fn intern(&mut self, v: NodeId) -> u32 {
        match self.intern.entry(v) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let idx = self.names.len() as u32;
                e.insert(idx);
                self.names.push(v);
                self.adj.push(Vec::new());
                idx
            }
        }
    }

    /// Returns the dense index of `v` if it has been interned.
    pub fn index_of(&self, v: NodeId) -> Option<u32> {
        self.intern.get(&v).copied()
    }

    /// Number of interned vertices.
    pub fn num_vertices(&self) -> usize {
        self.names.len()
    }

    /// Number of (deduplicated) undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Returns `true` if `v` has been interned.
    pub fn contains(&self, v: NodeId) -> bool {
        self.intern.contains_key(&v)
    }

    /// Adds the undirected edge `{a, b}` with the given weight. Parallel
    /// edges keep the smaller weight. Self-loops are ignored.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: u64) {
        if a == b {
            return;
        }
        let ia = self.intern(a);
        let ib = self.intern(b);
        // Collapse parallel edges to the min weight.
        if let Some(slot) = self.adj[ia as usize].iter_mut().find(|(t, _)| *t == ib) {
            if slot.1 <= weight {
                return;
            }
            slot.1 = weight;
            let back = self.adj[ib as usize]
                .iter_mut()
                .find(|(t, _)| *t == ia)
                .expect("sketch adjacency must be symmetric");
            back.1 = weight;
            return;
        }
        self.adj[ia as usize].push((ib, weight));
        self.adj[ib as usize].push((ia, weight));
    }

    /// Single-pair Dijkstra; returns the shortest-path weight or `None` when
    /// `t` is unreachable or either endpoint was never interned.
    pub fn shortest_distance(&self, s: NodeId, t: NodeId) -> Option<u64> {
        self.shortest_path(s, t).map(|(d, _)| d)
    }

    /// Single-pair Dijkstra returning `(distance, path)` where `path` is the
    /// sequence of original [`NodeId`]s from `s` to `t` inclusive.
    ///
    /// Deterministic: ties are broken by smaller dense index, which follows
    /// insertion order.
    pub fn shortest_path(&self, s: NodeId, t: NodeId) -> Option<(u64, Vec<NodeId>)> {
        self.shortest_path_with(s, t, &mut DijkstraScratch::new())
    }

    /// [`SketchGraph::shortest_path`] with caller-provided scratch buffers,
    /// for hot paths that answer many queries (same result, no per-call
    /// `dist`/`prev`/heap allocation after warm-up).
    pub fn shortest_path_with(
        &self,
        s: NodeId,
        t: NodeId,
        scratch: &mut DijkstraScratch,
    ) -> Option<(u64, Vec<NodeId>)> {
        let is = self.index_of(s)?;
        let it = self.index_of(t)?;
        scratch.reset(self.names.len());
        let DijkstraScratch { dist, prev, heap } = scratch;
        dist[is as usize] = 0;
        heap.push(Reverse((0, is)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            if u == it {
                break;
            }
            for &(w, weight) in &self.adj[u as usize] {
                let nd = d.saturating_add(weight);
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    prev[w as usize] = u;
                    heap.push(Reverse((nd, w)));
                }
            }
        }
        if dist[it as usize] == u64::MAX {
            return None;
        }
        let mut path = vec![self.names[it as usize]];
        let mut cur = it;
        while cur != is {
            cur = prev[cur as usize];
            path.push(self.names[cur as usize]);
        }
        path.reverse();
        Some((dist[it as usize], path))
    }

    /// Single-source Dijkstra: the distance from `s` to every interned
    /// vertex (`u64::MAX` for unreachable), indexed by dense intern index,
    /// or `None` if `s` was never interned. Use [`SketchGraph::index_of`]
    /// to address the result.
    pub fn distances_from(&self, s: NodeId) -> Option<Vec<u64>> {
        let is = self.index_of(s)?;
        let n = self.names.len();
        let mut dist = vec![u64::MAX; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[is as usize] = 0;
        heap.push(Reverse((0, is)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(w, weight) in &self.adj[u as usize] {
                let nd = d.saturating_add(weight);
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    heap.push(Reverse((nd, w)));
                }
            }
        }
        Some(dist)
    }

    /// [`SketchGraph::distances_from`] into caller-provided scratch: fills
    /// `scratch.dist` (indexed by dense intern index) and returns `true`, or
    /// returns `false` when `s` was never interned. The caller reads
    /// distances via [`DijkstraScratch::distance_at`].
    pub fn distances_from_with(&self, s: NodeId, scratch: &mut DijkstraScratch) -> bool {
        let Some(is) = self.index_of(s) else {
            return false;
        };
        scratch.reset(self.names.len());
        let DijkstraScratch { dist, heap, .. } = scratch;
        dist[is as usize] = 0;
        heap.push(Reverse((0, is)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(w, weight) in &self.adj[u as usize] {
                let nd = d.saturating_add(weight);
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    heap.push(Reverse((nd, w)));
                }
            }
        }
        true
    }

    /// Iterates over all edges as `(a, b, weight)` with each undirected edge
    /// reported once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.adj.iter().enumerate().flat_map(move |(i, nbrs)| {
            nbrs.iter()
                .filter(move |&&(j, _)| j as usize > i)
                .map(move |&(j, w)| (self.names[i], self.names[j as usize], w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph_queries() {
        let h = SketchGraph::new();
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.shortest_distance(v(0), v(1)), None);
    }

    #[test]
    fn single_vertex() {
        let mut h = SketchGraph::new();
        h.intern(v(3));
        assert_eq!(h.shortest_distance(v(3), v(3)), Some(0));
    }

    #[test]
    fn parallel_edges_keep_min() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 9);
        h.add_edge(v(1), v(0), 4);
        h.add_edge(v(0), v(1), 7);
        assert_eq!(h.num_edges(), 1);
        assert_eq!(h.shortest_distance(v(0), v(1)), Some(4));
    }

    #[test]
    fn self_loops_ignored() {
        let mut h = SketchGraph::new();
        h.add_edge(v(2), v(2), 1);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn dijkstra_picks_light_path() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 1);
        h.add_edge(v(1), v(2), 1);
        h.add_edge(v(0), v(2), 5);
        let (d, path) = h.shortest_path(v(0), v(2)).unwrap();
        assert_eq!(d, 2);
        assert_eq!(path, vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 1);
        h.add_edge(v(5), v(6), 1);
        assert_eq!(h.shortest_distance(v(0), v(6)), None);
    }

    #[test]
    fn path_endpoints_inclusive() {
        let mut h = SketchGraph::new();
        h.add_edge(v(10), v(20), 3);
        let (d, path) = h.shortest_path(v(10), v(20)).unwrap();
        assert_eq!(d, 3);
        assert_eq!(path.first(), Some(&v(10)));
        assert_eq!(path.last(), Some(&v(20)));
    }

    #[test]
    fn edges_iterator() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 2);
        h.add_edge(v(1), v(2), 3);
        let mut edges: Vec<_> = h.edges().collect();
        edges.sort();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], (v(0), v(1), 2));
    }

    #[test]
    fn distances_from_matches_pairwise() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 2);
        h.add_edge(v(1), v(2), 3);
        h.add_edge(v(0), v(2), 10);
        h.intern(v(9)); // isolated
        let d = h.distances_from(v(0)).unwrap();
        for target in [v(0), v(1), v(2), v(9)] {
            let idx = h.index_of(target).unwrap() as usize;
            let pair = h.shortest_distance(v(0), target);
            match pair {
                Some(p) => assert_eq!(d[idx], p),
                None => assert_eq!(d[idx], u64::MAX),
            }
        }
        assert!(h.distances_from(v(42)).is_none());
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 2);
        h.add_edge(v(1), v(2), 3);
        h.add_edge(v(0), v(2), 10);
        h.intern(v(9)); // isolated
        let mut scratch = DijkstraScratch::new();
        // Reuse across pairs: every run must match the allocating API.
        for (s, t) in [(0u32, 2u32), (2, 0), (0, 9), (1, 2), (0, 0)] {
            assert_eq!(
                h.shortest_path_with(v(s), v(t), &mut scratch),
                h.shortest_path(v(s), v(t)),
                "{s}->{t}"
            );
        }
        // Single-source variant agrees too.
        assert!(h.distances_from_with(v(0), &mut scratch));
        let table = h.distances_from(v(0)).unwrap();
        for (idx, &d) in table.iter().enumerate() {
            let expected = if d == u64::MAX { None } else { Some(d) };
            assert_eq!(scratch.distance_at(idx), expected);
        }
        assert_eq!(scratch.distance_at(99), None);
        assert!(!h.distances_from_with(v(42), &mut scratch));
    }

    #[test]
    fn large_random_dijkstra_matches_bfs_on_unit_weights() {
        // With all weights 1, Dijkstra must agree with BFS hop counts.
        use crate::{bfs, generators};
        let g = generators::grid2d(7, 7);
        let mut h = SketchGraph::new();
        for e in g.edges() {
            h.add_edge(e.lo(), e.hi(), 1);
        }
        let d = bfs::distances(&g, v(0));
        for t in g.vertices() {
            assert_eq!(
                h.shortest_distance(v(0), t),
                Some(d[t.index()].raw() as u64)
            );
        }
    }
}
