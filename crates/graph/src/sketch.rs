//! A small mutable weighted graph with Dijkstra — the "sketch graph" `H`
//! that the decoder assembles from labels at query time.
//!
//! The sketch graph's vertex universe is tiny (`O((1+1/ε)^{2α}·|F| log n)`
//! vertices), so it uses an adjacency list keyed by dense interned indices,
//! with the interning map from [`NodeId`]s maintained by the caller-facing
//! API.

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use crate::ids::NodeId;

/// Largest edge weight the Dial (bucket) queue accepts. Sketch-graph
/// weights are level distances bounded by `λ(top)`, far below this for the
/// parameter ranges the scheme targets; anything heavier (or a zero
/// weight) falls back to the binary heap.
const DIAL_MAX_WEIGHT: u64 = 1 << 14;

/// Vertex ids below this bound are interned through a direct-indexed,
/// epoch-stamped slot array (one array read, no hashing); larger ids —
/// possible only from hand-built labels, since real graphs index vertices
/// densely from zero — fall back to a spill map so a hostile id cannot
/// force a multi-gigabyte allocation.
const DENSE_INTERN_LIMIT: usize = 1 << 21;

/// Multiply-xor hasher for the `u64` edge keys of the dedup index: the
/// keys are already well-mixed pairs of dense indices, so a single
/// multiply beats SipHash on the per-edge hot path. Not
/// collision-resistant against adversaries — fine for a dedup cache whose
/// collisions only cost probes, never correctness.
#[derive(Default)]
struct EdgeKeyHasher(u64);

impl Hasher for EdgeKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type EdgeIndex = HashMap<u64, (u32, u32), BuildHasherDefault<EdgeKeyHasher>>;

/// A mutable, weighted, undirected multigraph over interned [`NodeId`]s.
///
/// Parallel edges are collapsed to the minimum weight. Weights are `u64`
/// (virtual-edge weights are `d_G` distances, far below `u64::MAX`).
///
/// # Examples
///
/// ```
/// use fsdl_graph::{SketchGraph, NodeId};
///
/// let mut h = SketchGraph::new();
/// h.add_edge(NodeId::new(0), NodeId::new(5), 3);
/// h.add_edge(NodeId::new(5), NodeId::new(9), 4);
/// h.add_edge(NodeId::new(0), NodeId::new(5), 10); // worse parallel edge
/// assert_eq!(h.shortest_distance(NodeId::new(0), NodeId::new(9)), Some(7));
/// assert_eq!(h.shortest_distance(NodeId::new(0), NodeId::new(77)), None);
/// ```
#[derive(Clone, Debug)]
pub struct SketchGraph {
    /// Direct-indexed intern table: `slots[id] = (stamp, idx)` is live only
    /// when `stamp == epoch`, so [`SketchGraph::reset`] is O(1) — it bumps
    /// the epoch instead of clearing the array.
    slots: Vec<(u32, u32)>,
    epoch: u32,
    /// Intern spill for ids at or above [`DENSE_INTERN_LIMIT`].
    spill: HashMap<NodeId, u32>,
    /// Dedup index: canonical edge key → positions of the two directed
    /// copies in `adj`, replacing a linear adjacency scan per insertion.
    edge_slots: EdgeIndex,
    names: Vec<NodeId>,
    adj: Vec<Vec<(u32, u64)>>,
}

impl Default for SketchGraph {
    fn default() -> Self {
        SketchGraph {
            slots: Vec::new(),
            // Epoch 0 is reserved so zero-initialized slots are never live.
            epoch: 1,
            spill: HashMap::new(),
            edge_slots: EdgeIndex::default(),
            names: Vec::new(),
            adj: Vec::new(),
        }
    }
}

/// Reusable buffers for [`SketchGraph`] Dijkstra runs, so a worker serving
/// many queries allocates nothing per query once the buffers have grown to
/// the working-set size.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{DijkstraScratch, NodeId, SketchGraph};
///
/// let mut h = SketchGraph::new();
/// h.add_edge(NodeId::new(0), NodeId::new(1), 2);
/// let mut scratch = DijkstraScratch::new();
/// let (d, _) = h.shortest_path_with(NodeId::new(0), NodeId::new(1), &mut scratch).unwrap();
/// assert_eq!(d, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<u64>,
    prev: Vec<u32>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Circular Dial buckets, indexed by `distance % width`; sound because
    /// every tentative distance in flight lies within one `width` window of
    /// the sweep distance.
    buckets: Vec<Vec<u32>>,
    /// Bucket slots touched by the current Dial run, cleared afterwards so
    /// the next run starts from empty buckets without a full sweep.
    touched: Vec<u32>,
}

impl DijkstraScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DijkstraScratch::default()
    }

    /// The distance computed by the last
    /// [`SketchGraph::distances_from_with`] run for dense intern index
    /// `idx`, or `None` when unreachable (or `idx` out of range).
    pub fn distance_at(&self, idx: usize) -> Option<u64> {
        match self.dist.get(idx) {
            Some(&d) if d != u64::MAX => Some(d),
            _ => None,
        }
    }

    /// Resets the buffers for a graph of `n` interned vertices.
    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, u64::MAX);
        self.prev.clear();
        self.prev.resize(n, u32::MAX);
        self.heap.clear();
        // Dial runs clean their buckets on exit; drain defensively so a
        // scratch poisoned mid-run (e.g. by a panic) cannot leak entries
        // into the next query.
        for &slot in &self.touched {
            self.buckets[slot as usize].clear();
        }
        self.touched.clear();
    }
}

impl SketchGraph {
    /// Creates an empty sketch graph.
    pub fn new() -> Self {
        SketchGraph::default()
    }

    /// Clears the graph for reuse, retaining every allocation: the intern
    /// slot array (invalidated in O(1) by the epoch bump), the dedup
    /// index's capacity, and the per-vertex adjacency vectors (which
    /// [`SketchGraph::intern`] hands back out as vertices reappear).
    pub fn reset(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap: old stamps could alias, so pay one full clear.
                self.slots.fill((0, 0));
                1
            }
        };
        self.spill.clear();
        self.edge_slots.clear();
        self.names.clear();
        for nbrs in &mut self.adj {
            nbrs.clear();
        }
    }

    /// Interns `v`, returning its dense index; inserts it if new.
    pub fn intern(&mut self, v: NodeId) -> u32 {
        let i = v.index();
        if i >= DENSE_INTERN_LIMIT {
            return match self.spill.entry(v) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let idx = Self::push_name(&mut self.names, &mut self.adj, v);
                    e.insert(idx);
                    idx
                }
            };
        }
        if i >= self.slots.len() {
            self.slots.resize(i + 1, (0, 0));
        }
        let (stamp, idx) = self.slots[i];
        if stamp == self.epoch {
            return idx;
        }
        let idx = Self::push_name(&mut self.names, &mut self.adj, v);
        self.slots[i] = (self.epoch, idx);
        idx
    }

    fn push_name(names: &mut Vec<NodeId>, adj: &mut Vec<Vec<(u32, u64)>>, v: NodeId) -> u32 {
        let idx = names.len() as u32;
        names.push(v);
        // After `reset` the pool may already hold a cleared row for this
        // index; only grow when the pool is exhausted.
        if adj.len() < names.len() {
            adj.push(Vec::new());
        }
        idx
    }

    /// Returns the dense index of `v` if it has been interned.
    pub fn index_of(&self, v: NodeId) -> Option<u32> {
        let i = v.index();
        if i >= DENSE_INTERN_LIMIT {
            return self.spill.get(&v).copied();
        }
        match self.slots.get(i) {
            Some(&(stamp, idx)) if stamp == self.epoch => Some(idx),
            _ => None,
        }
    }

    /// Number of interned vertices.
    pub fn num_vertices(&self) -> usize {
        self.names.len()
    }

    /// Number of (deduplicated) undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj[..self.names.len()]
            .iter()
            .map(Vec::len)
            .sum::<usize>()
            / 2
    }

    /// Returns `true` if `v` has been interned.
    pub fn contains(&self, v: NodeId) -> bool {
        self.index_of(v).is_some()
    }

    /// Adds the undirected edge `{a, b}` with the given weight. Parallel
    /// edges keep the smaller weight. Self-loops are ignored.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: u64) {
        if a == b {
            return;
        }
        let ia = self.intern(a);
        let ib = self.intern(b);
        let (lo, hi) = if ia <= ib { (ia, ib) } else { (ib, ia) };
        let key = (u64::from(lo) << 32) | u64::from(hi);
        match self.edge_slots.entry(key) {
            // Collapse parallel edges to the min weight, updating both
            // directed copies in place so adjacency order is unchanged.
            Entry::Occupied(e) => {
                let (pos_lo, pos_hi) = *e.get();
                let slot = &mut self.adj[lo as usize][pos_lo as usize].1;
                if *slot <= weight {
                    return;
                }
                *slot = weight;
                self.adj[hi as usize][pos_hi as usize].1 = weight;
            }
            Entry::Vacant(e) => {
                e.insert((
                    self.adj[lo as usize].len() as u32,
                    self.adj[hi as usize].len() as u32,
                ));
                self.adj[ia as usize].push((ib, weight));
                self.adj[ib as usize].push((ia, weight));
            }
        }
    }

    /// Single-pair Dijkstra; returns the shortest-path weight or `None` when
    /// `t` is unreachable or either endpoint was never interned.
    pub fn shortest_distance(&self, s: NodeId, t: NodeId) -> Option<u64> {
        self.shortest_path(s, t).map(|(d, _)| d)
    }

    /// Single-pair Dijkstra returning `(distance, path)` where `path` is the
    /// sequence of original [`NodeId`]s from `s` to `t` inclusive.
    ///
    /// Deterministic: ties are broken by smaller dense index, which follows
    /// insertion order.
    pub fn shortest_path(&self, s: NodeId, t: NodeId) -> Option<(u64, Vec<NodeId>)> {
        self.shortest_path_with(s, t, &mut DijkstraScratch::new())
    }

    /// [`SketchGraph::shortest_path`] with caller-provided scratch buffers,
    /// for hot paths that answer many queries (same result, no per-call
    /// `dist`/`prev`/heap allocation after warm-up).
    pub fn shortest_path_with(
        &self,
        s: NodeId,
        t: NodeId,
        scratch: &mut DijkstraScratch,
    ) -> Option<(u64, Vec<NodeId>)> {
        let is = self.index_of(s)?;
        let it = self.index_of(t)?;
        scratch.reset(self.names.len());
        self.run_dijkstra(is, Some(it), scratch);
        if scratch.dist[it as usize] == u64::MAX {
            return None;
        }
        let mut path = vec![self.names[it as usize]];
        let mut cur = it;
        while cur != is {
            cur = scratch.prev[cur as usize];
            path.push(self.names[cur as usize]);
        }
        path.reverse();
        Some((scratch.dist[it as usize], path))
    }

    /// Dispatches between the Dial bucket queue and the binary heap. Both
    /// settle vertices in identical `(distance, dense index)` order, so
    /// `dist`/`prev` — and therefore paths and answers — are bit-identical
    /// whichever runs.
    fn run_dijkstra(&self, is: u32, target: Option<u32>, scratch: &mut DijkstraScratch) {
        match self.dial_width() {
            Some(width) => self.run_dial(is, target, width, scratch),
            None => self.run_heap(is, target, scratch),
        }
    }

    /// Bucket count for a Dial run — `max_weight + 1`, so every tentative
    /// distance in flight maps to a distinct circular slot — or `None`
    /// (heap fallback) when any weight is zero or above
    /// [`DIAL_MAX_WEIGHT`].
    fn dial_width(&self) -> Option<u64> {
        let mut max_w = 0u64;
        for nbrs in &self.adj[..self.names.len()] {
            for &(_, w) in nbrs {
                if w == 0 || w > DIAL_MAX_WEIGHT {
                    return None;
                }
                max_w = max_w.max(w);
            }
        }
        Some(max_w + 1)
    }

    fn run_heap(&self, is: u32, target: Option<u32>, scratch: &mut DijkstraScratch) {
        let DijkstraScratch {
            dist, prev, heap, ..
        } = scratch;
        dist[is as usize] = 0;
        heap.push(Reverse((0, is)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            if Some(u) == target {
                break;
            }
            for &(w, weight) in &self.adj[u as usize] {
                let nd = d.saturating_add(weight);
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    prev[w as usize] = u;
                    heap.push(Reverse((nd, w)));
                }
            }
        }
    }

    /// Dial's algorithm with `width` circular buckets. With every weight
    /// `>= 1`, a relaxation out of the current bucket lands strictly later,
    /// so each bucket can be drained in full; sorting the drained batch by
    /// dense index reproduces the heap's lexicographic `(d, u)` pop order
    /// exactly, including the early exit at `target`.
    fn run_dial(&self, is: u32, target: Option<u32>, width: u64, scratch: &mut DijkstraScratch) {
        let DijkstraScratch {
            dist,
            prev,
            buckets,
            touched,
            ..
        } = scratch;
        if (buckets.len() as u64) < width {
            buckets.resize_with(width as usize, Vec::new);
        }
        dist[is as usize] = 0;
        buckets[0].push(is);
        touched.push(0);
        let mut pending = 1usize;
        let mut d = 0u64;
        while pending > 0 {
            let slot = (d % width) as usize;
            if buckets[slot].is_empty() {
                d += 1;
                continue;
            }
            let mut batch = std::mem::take(&mut buckets[slot]);
            pending -= batch.len();
            batch.sort_unstable();
            let mut done = false;
            for &u in &batch {
                if d > dist[u as usize] {
                    continue; // superseded by a shorter route
                }
                if Some(u) == target {
                    done = true;
                    break;
                }
                for &(v, weight) in &self.adj[u as usize] {
                    let nd = d + weight;
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        prev[v as usize] = u;
                        let ns = (nd % width) as usize;
                        if buckets[ns].is_empty() {
                            touched.push(ns as u32);
                        }
                        buckets[ns].push(v);
                        pending += 1;
                    }
                }
            }
            // Hand the drained vector back so its capacity is reused.
            batch.clear();
            buckets[slot] = batch;
            if done {
                break;
            }
            d += 1;
        }
        for &slot in touched.iter() {
            buckets[slot as usize].clear();
        }
        touched.clear();
    }

    /// Single-source Dijkstra: the distance from `s` to every interned
    /// vertex (`u64::MAX` for unreachable), indexed by dense intern index,
    /// or `None` if `s` was never interned. Use [`SketchGraph::index_of`]
    /// to address the result.
    pub fn distances_from(&self, s: NodeId) -> Option<Vec<u64>> {
        let mut scratch = DijkstraScratch::new();
        self.distances_from_with(s, &mut scratch)
            .then_some(scratch.dist)
    }

    /// [`SketchGraph::distances_from`] into caller-provided scratch: fills
    /// `scratch.dist` (indexed by dense intern index) and returns `true`, or
    /// returns `false` when `s` was never interned. The caller reads
    /// distances via [`DijkstraScratch::distance_at`].
    pub fn distances_from_with(&self, s: NodeId, scratch: &mut DijkstraScratch) -> bool {
        let Some(is) = self.index_of(s) else {
            return false;
        };
        scratch.reset(self.names.len());
        self.run_dijkstra(is, None, scratch);
        true
    }

    /// Iterates over all edges as `(a, b, weight)` with each undirected edge
    /// reported once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.adj[..self.names.len()]
            .iter()
            .enumerate()
            .flat_map(move |(i, nbrs)| {
                nbrs.iter()
                    .filter(move |&&(j, _)| j as usize > i)
                    .map(move |&(j, w)| (self.names[i], self.names[j as usize], w))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph_queries() {
        let h = SketchGraph::new();
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.shortest_distance(v(0), v(1)), None);
    }

    #[test]
    fn single_vertex() {
        let mut h = SketchGraph::new();
        h.intern(v(3));
        assert_eq!(h.shortest_distance(v(3), v(3)), Some(0));
    }

    #[test]
    fn parallel_edges_keep_min() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 9);
        h.add_edge(v(1), v(0), 4);
        h.add_edge(v(0), v(1), 7);
        assert_eq!(h.num_edges(), 1);
        assert_eq!(h.shortest_distance(v(0), v(1)), Some(4));
    }

    #[test]
    fn self_loops_ignored() {
        let mut h = SketchGraph::new();
        h.add_edge(v(2), v(2), 1);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn dijkstra_picks_light_path() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 1);
        h.add_edge(v(1), v(2), 1);
        h.add_edge(v(0), v(2), 5);
        let (d, path) = h.shortest_path(v(0), v(2)).unwrap();
        assert_eq!(d, 2);
        assert_eq!(path, vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 1);
        h.add_edge(v(5), v(6), 1);
        assert_eq!(h.shortest_distance(v(0), v(6)), None);
    }

    #[test]
    fn path_endpoints_inclusive() {
        let mut h = SketchGraph::new();
        h.add_edge(v(10), v(20), 3);
        let (d, path) = h.shortest_path(v(10), v(20)).unwrap();
        assert_eq!(d, 3);
        assert_eq!(path.first(), Some(&v(10)));
        assert_eq!(path.last(), Some(&v(20)));
    }

    #[test]
    fn edges_iterator() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 2);
        h.add_edge(v(1), v(2), 3);
        let mut edges: Vec<_> = h.edges().collect();
        edges.sort();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], (v(0), v(1), 2));
    }

    #[test]
    fn distances_from_matches_pairwise() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 2);
        h.add_edge(v(1), v(2), 3);
        h.add_edge(v(0), v(2), 10);
        h.intern(v(9)); // isolated
        let d = h.distances_from(v(0)).unwrap();
        for target in [v(0), v(1), v(2), v(9)] {
            let idx = h.index_of(target).unwrap() as usize;
            let pair = h.shortest_distance(v(0), target);
            match pair {
                Some(p) => assert_eq!(d[idx], p),
                None => assert_eq!(d[idx], u64::MAX),
            }
        }
        assert!(h.distances_from(v(42)).is_none());
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 2);
        h.add_edge(v(1), v(2), 3);
        h.add_edge(v(0), v(2), 10);
        h.intern(v(9)); // isolated
        let mut scratch = DijkstraScratch::new();
        // Reuse across pairs: every run must match the allocating API.
        for (s, t) in [(0u32, 2u32), (2, 0), (0, 9), (1, 2), (0, 0)] {
            assert_eq!(
                h.shortest_path_with(v(s), v(t), &mut scratch),
                h.shortest_path(v(s), v(t)),
                "{s}->{t}"
            );
        }
        // Single-source variant agrees too.
        assert!(h.distances_from_with(v(0), &mut scratch));
        let table = h.distances_from(v(0)).unwrap();
        for (idx, &d) in table.iter().enumerate() {
            let expected = if d == u64::MAX { None } else { Some(d) };
            assert_eq!(scratch.distance_at(idx), expected);
        }
        assert_eq!(scratch.distance_at(99), None);
        assert!(!h.distances_from_with(v(42), &mut scratch));
    }

    #[test]
    fn dial_and_heap_settle_identically() {
        // Mixed small weights: the public API picks Dial; calling the heap
        // directly on the same graph must reproduce dist and prev exactly,
        // including tie-breaks by dense index.
        let mut h = SketchGraph::new();
        let edges = [
            (0u32, 1u32, 2u64),
            (0, 2, 2),
            (1, 3, 1),
            (2, 3, 1),
            (3, 4, 5),
            (0, 4, 9),
            (2, 5, 7),
            (5, 4, 1),
        ];
        for &(a, b, w) in &edges {
            h.add_edge(v(a), v(b), w);
        }
        assert!(h.dial_width().is_some());
        for target in [None, Some(h.index_of(v(4)).unwrap())] {
            let mut dial = DijkstraScratch::new();
            dial.reset(h.num_vertices());
            h.run_dial(0, target, h.dial_width().unwrap(), &mut dial);
            let mut heap = DijkstraScratch::new();
            heap.reset(h.num_vertices());
            h.run_heap(0, target, &mut heap);
            assert_eq!(dial.dist, heap.dist, "target {target:?}");
            // prev must agree wherever the vertex was settled before the
            // early exit; both runs stop at the same point, so the whole
            // array matches.
            assert_eq!(dial.prev, heap.prev, "target {target:?}");
        }
    }

    #[test]
    fn heavy_weights_fall_back_to_heap() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), DIAL_MAX_WEIGHT + 1);
        h.add_edge(v(1), v(2), 3);
        assert!(h.dial_width().is_none());
        assert_eq!(h.shortest_distance(v(0), v(2)), Some(DIAL_MAX_WEIGHT + 4));
    }

    #[test]
    fn reset_reuses_capacity_and_clears_state() {
        let mut h = SketchGraph::new();
        h.add_edge(v(0), v(1), 2);
        h.add_edge(v(1), v(2), 3);
        h.reset();
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.num_edges(), 0);
        assert_eq!(h.edges().count(), 0);
        assert!(!h.contains(v(0)));
        // Rebuild with different vertices: pooled rows must start empty.
        h.add_edge(v(7), v(8), 5);
        assert_eq!(h.num_vertices(), 2);
        assert_eq!(h.num_edges(), 1);
        assert_eq!(h.shortest_distance(v(7), v(8)), Some(5));
        assert_eq!(h.shortest_distance(v(7), v(0)), None);
        // Fewer vertices than before the reset: stale pool rows beyond
        // names.len() stay invisible to num_edges/edges.
        assert_eq!(h.edges().collect::<Vec<_>>(), vec![(v(7), v(8), 5)]);
    }

    #[test]
    fn large_random_dijkstra_matches_bfs_on_unit_weights() {
        // With all weights 1, Dijkstra must agree with BFS hop counts.
        use crate::{bfs, generators};
        let g = generators::grid2d(7, 7);
        let mut h = SketchGraph::new();
        for e in g.edges() {
            h.add_edge(e.lo(), e.hi(), 1);
        }
        let d = bfs::distances(&g, v(0));
        for t in g.vertices() {
            assert_eq!(
                h.shortest_distance(v(0), t),
                Some(d[t.index()].raw() as u64)
            );
        }
    }
}
