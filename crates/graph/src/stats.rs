//! Summary statistics of a graph, for workload reporting and the CLI.

use crate::bfs;
use crate::connectivity;
use crate::csr::Graph;
use crate::ids::NodeId;

/// A structural summary of a graph.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, GraphStats};
///
/// let g = generators::grid2d(4, 4);
/// let s = GraphStats::compute(&g);
/// assert_eq!(s.num_vertices, 16);
/// assert_eq!(s.num_components, 1);
/// assert_eq!(s.diameter_lower_bound, Some(6));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `n`.
    pub num_vertices: usize,
    /// `m`.
    pub num_edges: usize,
    /// Minimum degree (0 for the empty graph).
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree (`2m / n`; 0 for the empty graph).
    pub mean_degree: f64,
    /// Number of connected components.
    pub num_components: usize,
    /// Number of isolated vertices.
    pub isolated: usize,
    /// A diameter lower bound from a double BFS sweep (`None` for empty or
    /// disconnected graphs; exact on trees, usually exact or near-exact on
    /// the workloads here).
    pub diameter_lower_bound: Option<u32>,
}

impl GraphStats {
    /// Computes the summary. Cost: `O(n + m)` plus two BFS sweeps.
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_vertices();
        let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let num_components = connectivity::num_components(g);
        let diameter_lower_bound = if n > 0 && num_components == 1 {
            // Double sweep: BFS from 0, then BFS from the farthest vertex.
            let d0 = bfs::distances(g, NodeId::new(0));
            let far = d0
                .iter()
                .enumerate()
                .max_by_key(|(_, d)| d.finite().unwrap_or(0))
                .map(|(v, _)| NodeId::from_index(v))
                .unwrap_or(NodeId::new(0));
            bfs::eccentricity(g, far)
        } else {
            None
        };
        GraphStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * g.num_edges() as f64 / n as f64
            },
            num_components,
            isolated: degrees.iter().filter(|&&d| d == 0).count(),
            diameter_lower_bound,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "vertices:    {}", self.num_vertices)?;
        writeln!(f, "edges:       {}", self.num_edges)?;
        writeln!(
            f,
            "degree:      min {} / mean {:.2} / max {}",
            self.min_degree, self.mean_degree, self.max_degree
        )?;
        writeln!(f, "components:  {}", self.num_components)?;
        if self.isolated > 0 {
            writeln!(f, "isolated:    {}", self.isolated)?;
        }
        if let Some(d) = self.diameter_lower_bound {
            writeln!(f, "diameter:    >= {d} (double-sweep)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_stats() {
        let s = GraphStats::compute(&generators::path(10));
        assert_eq!(s.num_edges, 9);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.diameter_lower_bound, Some(9)); // exact on trees
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn disconnected_stats() {
        let mut b = crate::GraphBuilder::new(5);
        b.add_edge(0, 1).unwrap();
        let s = GraphStats::compute(&b.build());
        assert_eq!(s.num_components, 4);
        assert_eq!(s.isolated, 3);
        assert_eq!(s.diameter_lower_bound, None);
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::compute(&crate::GraphBuilder::new(0).build());
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.diameter_lower_bound, None);
    }

    #[test]
    fn cycle_diameter() {
        let s = GraphStats::compute(&generators::cycle(10));
        assert_eq!(s.diameter_lower_bound, Some(5));
        assert_eq!(s.mean_degree, 2.0);
    }

    #[test]
    fn display_renders() {
        let s = GraphStats::compute(&generators::grid2d(3, 3));
        let text = s.to_string();
        assert!(text.contains("vertices:    9"));
        assert!(text.contains("diameter:    >= 4"));
    }
}
