//! Surviving-subgraph extraction `G ∖ F` with vertex re-indexing.
//!
//! Used by the fully-dynamic oracle byproduct (Abraham–Chechik–Gavoille,
//! STOC 2012): when the buffered fault set grows past the rebuild threshold,
//! the labeling is recomputed on the surviving graph, which requires
//! materializing `G ∖ F` as a standalone [`Graph`] plus the id mappings.

use crate::csr::{Graph, GraphBuilder};
use crate::faults::FaultSet;
use crate::ids::NodeId;

/// The surviving graph `G ∖ F` together with vertex id mappings.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The surviving graph, with vertices renumbered `0..n'`.
    pub graph: Graph,
    /// `to_original[new] = old`: maps surviving ids back to `G`'s ids.
    pub to_original: Vec<NodeId>,
    /// `to_new[old] = Some(new)` for surviving vertices, `None` for removed.
    pub to_new: Vec<Option<NodeId>>,
}

impl Subgraph {
    /// Maps an original vertex to its surviving id, or `None` if removed.
    pub fn map(&self, v: NodeId) -> Option<NodeId> {
        self.to_new.get(v.index()).copied().flatten()
    }

    /// Maps a surviving vertex back to its original id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the surviving graph.
    pub fn unmap(&self, v: NodeId) -> NodeId {
        self.to_original[v.index()]
    }
}

/// Builds `G ∖ F`: removes forbidden vertices (with their incident edges)
/// and forbidden edges, renumbering the survivors densely.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, subgraph, FaultSet, NodeId};
///
/// let g = generators::path(5);
/// let f = FaultSet::from_vertices([NodeId::new(2)]);
/// let s = subgraph::remove_faults(&g, &f);
/// assert_eq!(s.graph.num_vertices(), 4);
/// assert_eq!(s.map(NodeId::new(4)), Some(NodeId::new(3)));
/// assert_eq!(s.map(NodeId::new(2)), None);
/// ```
pub fn remove_faults(g: &Graph, faults: &FaultSet) -> Subgraph {
    let n = g.num_vertices();
    let mut to_new: Vec<Option<NodeId>> = vec![None; n];
    let mut to_original = Vec::new();
    for v in g.vertices() {
        if !faults.is_vertex_faulty(v) {
            to_new[v.index()] = Some(NodeId::from_index(to_original.len()));
            to_original.push(v);
        }
    }
    let mut b = GraphBuilder::new(to_original.len());
    for e in g.edges() {
        if faults.blocks_traversal(e.lo(), e.hi()) {
            continue;
        }
        let (Some(a), Some(bb)) = (to_new[e.lo().index()], to_new[e.hi().index()]) else {
            continue;
        };
        b.add_edge(a.raw(), bb.raw()).expect("mapped edge is valid");
    }
    Subgraph {
        graph: b.build(),
        to_original,
        to_new,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::generators;

    #[test]
    fn empty_fault_set_is_identity_shape() {
        let g = generators::grid2d(4, 4);
        let s = remove_faults(&g, &FaultSet::empty());
        assert_eq!(s.graph.num_vertices(), 16);
        assert_eq!(s.graph.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(s.map(v), Some(v));
            assert_eq!(s.unmap(v), v);
        }
    }

    #[test]
    fn vertex_removal() {
        let g = generators::path(5);
        let f = FaultSet::from_vertices([NodeId::new(2)]);
        let s = remove_faults(&g, &f);
        assert_eq!(s.graph.num_vertices(), 4);
        assert_eq!(s.graph.num_edges(), 2); // 0-1 and 3-4 survive
        assert_eq!(s.map(NodeId::new(2)), None);
        assert_eq!(s.map(NodeId::new(3)), Some(NodeId::new(2)));
        assert_eq!(s.unmap(NodeId::new(2)), NodeId::new(3));
    }

    #[test]
    fn edge_removal() {
        let g = generators::cycle(5);
        let f = FaultSet::from_edges(&g, [(NodeId::new(0), NodeId::new(1))]);
        let s = remove_faults(&g, &f);
        assert_eq!(s.graph.num_vertices(), 5);
        assert_eq!(s.graph.num_edges(), 4);
        assert!(!s.graph.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn distances_agree_with_bfs_avoiding() {
        let g = generators::grid2d(6, 6);
        let mut f = FaultSet::from_vertices([NodeId::new(7), NodeId::new(14)]);
        f.forbid_edge_unchecked(NodeId::new(0), NodeId::new(1));
        let s = remove_faults(&g, &f);
        let direct = bfs::distances_avoiding(&g, NodeId::new(0), &f);
        let mapped = bfs::distances(&s.graph, s.map(NodeId::new(0)).unwrap());
        for v in g.vertices() {
            match s.map(v) {
                Some(nv) => assert_eq!(direct[v.index()], mapped[nv.index()], "at {v}"),
                None => assert!(f.is_vertex_faulty(v)),
            }
        }
    }

    #[test]
    fn all_vertices_removed() {
        let g = generators::path(3);
        let f = FaultSet::from_vertices(g.vertices());
        let s = remove_faults(&g, &f);
        assert_eq!(s.graph.num_vertices(), 0);
    }
}
