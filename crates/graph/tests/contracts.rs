//! Panic-contract tests: every documented `# Panics` section of the public
//! API is exercised, so the contracts stay honest as the code evolves.

use fsdl_graph::bfs::{self, BfsScratch};
use fsdl_graph::{generators, FaultSet, GraphBuilder, NodeId};

#[test]
#[should_panic(expected = "at least one vertex")]
fn path_zero() {
    let _ = generators::path(0);
}

#[test]
#[should_panic(expected = "at least three")]
fn cycle_too_small() {
    let _ = generators::cycle(2);
}

#[test]
#[should_panic(expected = "positive")]
fn grid_zero_dimension() {
    let _ = generators::grid2d(0, 5);
}

#[test]
#[should_panic(expected = "at least 3")]
fn torus_too_small() {
    let _ = generators::torus2d(2, 5);
}

#[test]
#[should_panic(expected = "side must be at least 2")]
fn linf_grid_side_one() {
    let _ = generators::grid_linf(1, 2);
}

#[test]
#[should_panic(expected = "radius must be in")]
fn geometric_bad_radius() {
    let _ = generators::random_geometric(10, 0.7, 1);
}

#[test]
#[should_panic(expected = "probability out of range")]
fn er_bad_probability() {
    let _ = generators::erdos_renyi(10, 1.5, 1);
}

#[test]
#[should_panic(expected = "removal rate out of range")]
fn road_bad_removal() {
    let _ = generators::road_network(4, 4, 0.9, 1);
}

#[test]
#[should_panic(expected = "dimension out of supported range")]
fn hypercube_too_big() {
    let _ = generators::hypercube(25);
}

#[test]
#[should_panic(expected = "spider needs legs")]
fn spider_no_legs() {
    let _ = generators::spider(0, 3);
}

#[test]
#[should_panic(expected = "lollipop needs a clique")]
fn lollipop_tiny_clique() {
    let _ = generators::lollipop(1, 3);
}

#[test]
#[should_panic(expected = "source vertex out of range")]
fn bfs_source_out_of_range() {
    let g = generators::path(3);
    let _ = bfs::distances(&g, NodeId::new(9));
}

#[test]
#[should_panic(expected = "query vertex out of range")]
fn pair_distance_out_of_range() {
    let g = generators::path(3);
    let _ = bfs::pair_distance_avoiding(&g, NodeId::new(0), NodeId::new(9), &FaultSet::empty());
}

#[test]
#[should_panic(expected = "scratch too small")]
fn ball_scratch_too_small() {
    let g = generators::path(10);
    let mut scratch = BfsScratch::new(3);
    let _ = bfs::ball(&g, NodeId::new(0), 2, &mut scratch);
}

#[test]
#[should_panic(expected = "VertexOutOfRange")]
fn builder_vertex_count_overflow_guard() {
    // Adding an edge beyond n must fail eagerly (Result), and unwrapping it
    // panics — the documented contract of the example code paths.
    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 5).unwrap();
}
