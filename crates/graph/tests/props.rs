//! Property-based tests for the graph substrate.

use std::collections::HashSet;

use fsdl_graph::bfs::{self, BfsScratch};
use fsdl_graph::{connectivity, generators, io, Dist, FaultSet, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// Strategy: a random graph as (n, edge list) with n in [1, 40].
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..40).prop_flat_map(|n| {
        let max_edges = n * (n.saturating_sub(1)) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(80)).prop_map(
            move |pairs| {
                let mut b = GraphBuilder::new(n);
                for (a, c) in pairs {
                    if a != c {
                        b.add_edge(a, c).expect("in range");
                    }
                }
                b.build()
            },
        )
    })
}

proptest! {
    #[test]
    fn csr_adjacency_is_symmetric(g in arb_graph()) {
        for v in g.vertices() {
            for w in g.neighbor_ids(v) {
                prop_assert!(g.has_edge(w, v), "asymmetric edge {v}-{w}");
            }
        }
    }

    #[test]
    fn csr_degree_sums_to_twice_edges(g in arb_graph()) {
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }

    #[test]
    fn neighbors_sorted_and_unique(g in arb_graph()) {
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn ports_bijective(g in arb_graph()) {
        for v in g.vertices() {
            for (port, w) in g.neighbor_ids(v).enumerate() {
                prop_assert_eq!(g.port_of(v, w), Some(port));
                prop_assert_eq!(g.neighbor_at_port(v, port), Some(w));
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_edge_lipschitz(g in arb_graph()) {
        // |d(s,u) - d(s,w)| <= 1 for every edge (u, w).
        let s = NodeId::new(0);
        let d = bfs::distances(&g, s);
        for e in g.edges() {
            match (d[e.lo().index()].finite(), d[e.hi().index()].finite()) {
                (Some(a), Some(b)) => prop_assert!(a.abs_diff(b) <= 1),
                (None, None) => {}
                _ => prop_assert!(false, "edge spans reachable/unreachable"),
            }
        }
    }

    #[test]
    fn bfs_symmetry(g in arb_graph()) {
        // d(u, v) == d(v, u) on undirected graphs.
        let n = g.num_vertices();
        let u = NodeId::new(0);
        let v = NodeId::from_index(n - 1);
        let duv = bfs::pair_distance_avoiding(&g, u, v, &FaultSet::empty());
        let dvu = bfs::pair_distance_avoiding(&g, v, u, &FaultSet::empty());
        prop_assert_eq!(duv, dvu);
    }

    #[test]
    fn bfs_triangle_inequality(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_vertices() as u64;
        let a = NodeId::from_index((seed % n) as usize);
        let b = NodeId::from_index(((seed / 7) % n) as usize);
        let c = NodeId::from_index(((seed / 49) % n) as usize);
        let dab = bfs::pair_distance_avoiding(&g, a, b, &FaultSet::empty());
        let dbc = bfs::pair_distance_avoiding(&g, b, c, &FaultSet::empty());
        let dac = bfs::pair_distance_avoiding(&g, a, c, &FaultSet::empty());
        prop_assert!(dac <= dab.saturating_add(dbc));
    }

    #[test]
    fn ball_equals_filtered_distances(g in arb_graph(), radius in 0u32..10) {
        let src = NodeId::new(0);
        let d = bfs::distances(&g, src);
        let mut scratch = BfsScratch::new(g.num_vertices());
        let members = bfs::ball(&g, src, radius, &mut scratch);
        let got: HashSet<(u32, u32)> =
            members.iter().map(|m| (m.vertex.raw(), m.dist)).collect();
        let expected: HashSet<(u32, u32)> = g
            .vertices()
            .filter_map(|v| d[v.index()].finite().map(|dd| (v.raw(), dd)))
            .filter(|&(_, dd)| dd <= radius)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn distances_avoiding_dominate_plain(g in arb_graph(), fault in 0u32..40) {
        // Removing things never shortens distances.
        let n = g.num_vertices() as u32;
        let f = NodeId::new(fault % n);
        let s = NodeId::new(0);
        if f == s {
            return Ok(());
        }
        let faults = FaultSet::from_vertices([f]);
        let plain = bfs::distances(&g, s);
        let avoiding = bfs::distances_avoiding(&g, s, &faults);
        for v in g.vertices() {
            prop_assert!(avoiding[v.index()] >= plain[v.index()]);
        }
    }

    #[test]
    fn shortest_path_has_correct_length(g in arb_graph(), t in 0u32..40) {
        let n = g.num_vertices() as u32;
        let s = NodeId::new(0);
        let t = NodeId::new(t % n);
        let empty = FaultSet::empty();
        let d = bfs::pair_distance_avoiding(&g, s, t, &empty);
        match bfs::shortest_path_avoiding(&g, s, t, &empty) {
            Some(p) => {
                prop_assert_eq!(Dist::new((p.len() - 1) as u32), d);
                for w in p.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
            }
            None => prop_assert!(d.is_infinite()),
        }
    }

    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let s = io::to_string(&g);
        let g2 = io::from_str(&s).expect("roundtrip parse");
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn union_find_matches_bfs_components(g in arb_graph()) {
        let labels = connectivity::component_labels(&g);
        let s = NodeId::new(0);
        let d = bfs::distances(&g, s);
        for v in g.vertices() {
            prop_assert_eq!(
                labels[v.index()] == labels[0],
                d[v.index()].is_finite(),
                "component disagreement at {}", v
            );
        }
    }

    #[test]
    fn subgraph_preserves_surviving_distances(g in arb_graph(), fault in 0u32..40) {
        let n = g.num_vertices() as u32;
        let f = NodeId::new(fault % n);
        let faults = FaultSet::from_vertices([f]);
        let sub = fsdl_graph::subgraph::remove_faults(&g, &faults);
        let s = NodeId::new(if f.raw() == 0 { n - 1 } else { 0 });
        if sub.map(s).is_none() {
            return Ok(());
        }
        let direct = bfs::distances_avoiding(&g, s, &faults);
        let mapped = bfs::distances(&sub.graph, sub.map(s).expect("survives"));
        for v in g.vertices() {
            if let Some(nv) = sub.map(v) {
                prop_assert_eq!(direct[v.index()], mapped[nv.index()]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generators_are_connected(
        n in 3usize..40,
        seed in 0u64..100,
    ) {
        prop_assert!(connectivity::is_connected(&generators::path(n)));
        prop_assert!(connectivity::is_connected(&generators::cycle(n)));
        prop_assert!(connectivity::is_connected(&generators::random_tree(n, seed)));
        prop_assert!(connectivity::is_connected(&generators::star(n)));
    }

    #[test]
    fn grid_distance_is_manhattan(w in 2usize..8, h in 2usize..8) {
        let g = generators::grid2d(w, h);
        let d = bfs::distances(&g, NodeId::new(0));
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(
                    d[y * w + x].finite(),
                    Some((x + y) as u32)
                );
            }
        }
    }

    #[test]
    fn king_grid_distance_is_chebyshev(w in 2usize..8, h in 2usize..8) {
        let g = generators::king_grid(w, h);
        let d = bfs::distances(&g, NodeId::new(0));
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(
                    d[y * w + x].finite(),
                    Some(x.max(y) as u32)
                );
            }
        }
    }

    #[test]
    fn linf_grid_distance_is_chebyshev_3d(p in 2usize..5) {
        let g = generators::grid_linf(p, 3);
        let d = bfs::distances(&g, NodeId::new(0));
        for (v, dv) in d.iter().enumerate() {
            let coords = generators::grid_coords(v, p, 3);
            let cheb = coords.iter().copied().max().unwrap() as u32;
            prop_assert_eq!(dv.finite(), Some(cheb));
        }
    }
}
