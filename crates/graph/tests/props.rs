//! Property-based tests for the graph substrate.

use std::collections::HashSet;

use fsdl_graph::bfs::{self, BfsScratch};
use fsdl_graph::{connectivity, generators, io, Dist, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_testkit::Rng;

/// A random graph as (n, edge list) with n in [1, 40].
fn random_graph(rng: &mut Rng) -> Graph {
    let n = rng.gen_range(1usize..40);
    let max_edges = (n * n.saturating_sub(1) / 2).min(80);
    let mut b = GraphBuilder::new(n);
    for _ in 0..rng.gen_range(0..=max_edges) {
        let a = rng.gen_range(0..n as u32);
        let c = rng.gen_range(0..n as u32);
        if a != c {
            b.add_edge(a, c).expect("in range");
        }
    }
    b.build()
}

#[test]
fn csr_adjacency_is_symmetric() {
    fsdl_testkit::check("csr_adjacency_is_symmetric", 256, |rng| {
        let g = random_graph(rng);
        for v in g.vertices() {
            for w in g.neighbor_ids(v) {
                assert!(g.has_edge(w, v), "asymmetric edge {v}-{w}");
            }
        }
    });
}

#[test]
fn csr_degree_sums_to_twice_edges() {
    fsdl_testkit::check("csr_degree_sums_to_twice_edges", 256, |rng| {
        let g = random_graph(rng);
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(sum, 2 * g.num_edges());
    });
}

#[test]
fn neighbors_sorted_and_unique() {
    fsdl_testkit::check("neighbors_sorted_and_unique", 256, |rng| {
        let g = random_graph(rng);
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
        }
    });
}

#[test]
fn ports_bijective() {
    fsdl_testkit::check("ports_bijective", 256, |rng| {
        let g = random_graph(rng);
        for v in g.vertices() {
            for (port, w) in g.neighbor_ids(v).enumerate() {
                assert_eq!(g.port_of(v, w), Some(port));
                assert_eq!(g.neighbor_at_port(v, port), Some(w));
            }
        }
    });
}

#[test]
fn bfs_distances_satisfy_edge_lipschitz() {
    fsdl_testkit::check("bfs_distances_satisfy_edge_lipschitz", 256, |rng| {
        // |d(s,u) - d(s,w)| <= 1 for every edge (u, w).
        let g = random_graph(rng);
        let s = NodeId::new(0);
        let d = bfs::distances(&g, s);
        for e in g.edges() {
            match (d[e.lo().index()].finite(), d[e.hi().index()].finite()) {
                (Some(a), Some(b)) => assert!(a.abs_diff(b) <= 1),
                (None, None) => {}
                _ => panic!("edge spans reachable/unreachable"),
            }
        }
    });
}

#[test]
fn bfs_symmetry() {
    fsdl_testkit::check("bfs_symmetry", 256, |rng| {
        // d(u, v) == d(v, u) on undirected graphs.
        let g = random_graph(rng);
        let n = g.num_vertices();
        let u = NodeId::new(0);
        let v = NodeId::from_index(n - 1);
        let duv = bfs::pair_distance_avoiding(&g, u, v, &FaultSet::empty());
        let dvu = bfs::pair_distance_avoiding(&g, v, u, &FaultSet::empty());
        assert_eq!(duv, dvu);
    });
}

#[test]
fn bfs_triangle_inequality() {
    fsdl_testkit::check("bfs_triangle_inequality", 256, |rng| {
        let g = random_graph(rng);
        let n = g.num_vertices();
        let a = NodeId::from_index(rng.gen_range(0..n));
        let b = NodeId::from_index(rng.gen_range(0..n));
        let c = NodeId::from_index(rng.gen_range(0..n));
        let dab = bfs::pair_distance_avoiding(&g, a, b, &FaultSet::empty());
        let dbc = bfs::pair_distance_avoiding(&g, b, c, &FaultSet::empty());
        let dac = bfs::pair_distance_avoiding(&g, a, c, &FaultSet::empty());
        assert!(dac <= dab.saturating_add(dbc));
    });
}

#[test]
fn ball_equals_filtered_distances() {
    fsdl_testkit::check("ball_equals_filtered_distances", 256, |rng| {
        let g = random_graph(rng);
        let radius = rng.gen_range(0u32..10);
        let src = NodeId::new(0);
        let d = bfs::distances(&g, src);
        let mut scratch = BfsScratch::new(g.num_vertices());
        let members = bfs::ball(&g, src, radius, &mut scratch);
        let got: HashSet<(u32, u32)> = members.iter().map(|m| (m.vertex.raw(), m.dist)).collect();
        let expected: HashSet<(u32, u32)> = g
            .vertices()
            .filter_map(|v| d[v.index()].finite().map(|dd| (v.raw(), dd)))
            .filter(|&(_, dd)| dd <= radius)
            .collect();
        assert_eq!(got, expected);
    });
}

#[test]
fn distances_avoiding_dominate_plain() {
    fsdl_testkit::check("distances_avoiding_dominate_plain", 256, |rng| {
        // Removing things never shortens distances.
        let g = random_graph(rng);
        let n = g.num_vertices() as u32;
        let f = NodeId::new(rng.gen_range(0..n));
        let s = NodeId::new(0);
        if f == s {
            return;
        }
        let faults = FaultSet::from_vertices([f]);
        let plain = bfs::distances(&g, s);
        let avoiding = bfs::distances_avoiding(&g, s, &faults);
        for v in g.vertices() {
            assert!(avoiding[v.index()] >= plain[v.index()]);
        }
    });
}

#[test]
fn shortest_path_has_correct_length() {
    fsdl_testkit::check("shortest_path_has_correct_length", 256, |rng| {
        let g = random_graph(rng);
        let n = g.num_vertices() as u32;
        let s = NodeId::new(0);
        let t = NodeId::new(rng.gen_range(0..n));
        let empty = FaultSet::empty();
        let d = bfs::pair_distance_avoiding(&g, s, t, &empty);
        match bfs::shortest_path_avoiding(&g, s, t, &empty) {
            Some(p) => {
                assert_eq!(Dist::new((p.len() - 1) as u32), d);
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
            }
            None => assert!(d.is_infinite()),
        }
    });
}

#[test]
fn io_roundtrip() {
    fsdl_testkit::check("io_roundtrip", 256, |rng| {
        let g = random_graph(rng);
        let s = io::to_string(&g);
        let g2 = io::from_str(&s).expect("roundtrip parse");
        assert_eq!(g, g2);
    });
}

#[test]
fn union_find_matches_bfs_components() {
    fsdl_testkit::check("union_find_matches_bfs_components", 256, |rng| {
        let g = random_graph(rng);
        let labels = connectivity::component_labels(&g);
        let s = NodeId::new(0);
        let d = bfs::distances(&g, s);
        for v in g.vertices() {
            assert_eq!(
                labels[v.index()] == labels[0],
                d[v.index()].is_finite(),
                "component disagreement at {v}"
            );
        }
    });
}

#[test]
fn subgraph_preserves_surviving_distances() {
    fsdl_testkit::check("subgraph_preserves_surviving_distances", 256, |rng| {
        let g = random_graph(rng);
        let n = g.num_vertices() as u32;
        let f = NodeId::new(rng.gen_range(0..n));
        let faults = FaultSet::from_vertices([f]);
        let sub = fsdl_graph::subgraph::remove_faults(&g, &faults);
        let s = NodeId::new(if f.raw() == 0 { n - 1 } else { 0 });
        if sub.map(s).is_none() {
            return;
        }
        let direct = bfs::distances_avoiding(&g, s, &faults);
        let mapped = bfs::distances(&sub.graph, sub.map(s).expect("survives"));
        for v in g.vertices() {
            if let Some(nv) = sub.map(v) {
                assert_eq!(direct[v.index()], mapped[nv.index()]);
            }
        }
    });
}

#[test]
fn generators_are_connected() {
    fsdl_testkit::check("generators_are_connected", 16, |rng| {
        let n = rng.gen_range(3usize..40);
        let seed = rng.gen_range(0u64..100);
        assert!(connectivity::is_connected(&generators::path(n)));
        assert!(connectivity::is_connected(&generators::cycle(n)));
        assert!(connectivity::is_connected(&generators::random_tree(
            n, seed
        )));
        assert!(connectivity::is_connected(&generators::star(n)));
    });
}

#[test]
fn grid_distance_is_manhattan() {
    fsdl_testkit::check("grid_distance_is_manhattan", 16, |rng| {
        let w = rng.gen_range(2usize..8);
        let h = rng.gen_range(2usize..8);
        let g = generators::grid2d(w, h);
        let d = bfs::distances(&g, NodeId::new(0));
        for y in 0..h {
            for x in 0..w {
                assert_eq!(d[y * w + x].finite(), Some((x + y) as u32));
            }
        }
    });
}

#[test]
fn king_grid_distance_is_chebyshev() {
    fsdl_testkit::check("king_grid_distance_is_chebyshev", 16, |rng| {
        let w = rng.gen_range(2usize..8);
        let h = rng.gen_range(2usize..8);
        let g = generators::king_grid(w, h);
        let d = bfs::distances(&g, NodeId::new(0));
        for y in 0..h {
            for x in 0..w {
                assert_eq!(d[y * w + x].finite(), Some(x.max(y) as u32));
            }
        }
    });
}

#[test]
fn linf_grid_distance_is_chebyshev_3d() {
    fsdl_testkit::check("linf_grid_distance_is_chebyshev_3d", 16, |rng| {
        let p = rng.gen_range(2usize..5);
        let g = generators::grid_linf(p, 3);
        let d = bfs::distances(&g, NodeId::new(0));
        for (v, dv) in d.iter().enumerate() {
            let coords = generators::grid_coords(v, p, 3);
            let cheb = coords.iter().copied().max().unwrap() as u32;
            assert_eq!(dv.finite(), Some(cheb));
        }
    });
}
