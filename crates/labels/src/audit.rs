//! Labeling invariant auditor.
//!
//! The scheme's guarantees rest on a chain of structural invariants
//! (schedule inequalities, net domination, ball membership, exact virtual
//! edge weights, waypoint presence). The test-suite checks them all; this
//! module packages the same checks as a public API so *users* can audit a
//! labeling on their own graphs — e.g. before deploying labels built on an
//! unfamiliar topology, or after modifying construction options.

use fsdl_graph::bfs::{self, BfsScratch};
use fsdl_graph::{FaultSet, NodeId};

use crate::builder::Labeling;

/// Outcome of [`audit`]: per-check pass/fail with the first violation's
/// description.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Violations found (empty = all checks passed).
    pub violations: Vec<String>,
    /// Number of vertices whose labels were materialized and checked.
    pub vertices_checked: usize,
    /// Total stored points inspected.
    pub points_checked: usize,
    /// Total virtual edges inspected.
    pub edges_checked: usize,
}

impl AuditReport {
    /// `true` when every check passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits `labeling` by materializing the labels of `samples` evenly-spaced
/// vertices and checking, against the graph:
///
/// 1. the parameter schedule invariants ([`crate::SchemeParams::verify_invariants`]);
/// 2. every stored point lies in the level's ball (`d ≤ rᵢ`) at the
///    level's net (`∈ N_{i−c−1}`) with its **exact** distance;
/// 3. every virtual edge is `≤ λᵢ` with its **exact** weight and a
///    waypoint-level endpoint (unless built with `all_pairs`);
/// 4. the owner's nearest waypoint `M_{i−c}` is stored at every level (the
///    certificate anchor);
/// 5. labels structurally validate ([`crate::Label::validate`]).
///
/// Stops collecting after 16 violations.
pub fn audit(labeling: &Labeling, samples: usize) -> AuditReport {
    let mut report = AuditReport::default();
    let g = labeling.graph();
    let params = labeling.params();
    let n = g.num_vertices();
    if let Err(e) = params.verify_invariants() {
        report.violations.push(format!("schedule: {e}"));
    }
    let mut scratch = BfsScratch::new(n);
    let samples = samples.clamp(1, n);
    let stride = (n / samples).max(1);
    let mut v = 0usize;
    let mut count = 0usize;
    'outer: while v < n && count < samples {
        let owner = NodeId::from_index(v);
        let label = labeling.label_of(owner);
        count += 1;
        if let Err(e) = label.validate() {
            report.violations.push(format!("{owner}: {e}"));
        }
        // Exact distances from the owner (one BFS covers all levels).
        let radius = u32::try_from(params.r(params.top_level()).min(n as u64)).expect("fits");
        let _ = bfs::ball(g, owner, radius, &mut scratch);
        for (i, level) in label.levels_iter() {
            let r_i = params.r(i).min(n as u64);
            let lambda_i = params.lambda(i);
            let stored_net = params.stored_net_level(i).min(labeling.nets().top_level());
            let waypoint_net = params
                .waypoint_net_level(i)
                .min(labeling.nets().top_level());
            for p in &level.points {
                report.points_checked += 1;
                match scratch.last_dist(p.vertex) {
                    Some(d) if d == p.dist => {}
                    other => {
                        report.violations.push(format!(
                            "{owner} level {i}: point {} distance {} vs true {:?}",
                            p.vertex, p.dist, other
                        ));
                    }
                }
                if u64::from(p.dist) > r_i {
                    report.violations.push(format!(
                        "{owner} level {i}: point {} outside ball",
                        p.vertex
                    ));
                }
                if !labeling.nets().is_in_net(p.vertex, stored_net) {
                    report.violations.push(format!(
                        "{owner} level {i}: point {} below stored net",
                        p.vertex
                    ));
                }
                if report.violations.len() >= 16 {
                    break 'outer;
                }
            }
            // Certificate anchor: nearest waypoint present.
            if !level.points.is_empty() && !level.points.iter().any(|p| p.net_level >= waypoint_net)
            {
                report
                    .violations
                    .push(format!("{owner} level {i}: no waypoint-level point stored"));
            }
            for e in &level.virtual_edges {
                report.edges_checked += 1;
                let x = level.points[e.a as usize].vertex;
                let y = level.points[e.b as usize].vertex;
                if u64::from(e.dist) > lambda_i {
                    report.violations.push(format!(
                        "{owner} level {i}: edge {x}-{y} longer than lambda"
                    ));
                }
                let true_d = bfs::pair_distance_avoiding(g, x, y, &FaultSet::empty());
                if true_d.finite() != Some(e.dist) {
                    report.violations.push(format!(
                        "{owner} level {i}: edge {x}-{y} weight {} vs true {true_d}",
                        e.dist
                    ));
                }
                if report.violations.len() >= 16 {
                    break 'outer;
                }
            }
        }
        v += stride;
    }
    report.vertices_checked = count;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SchemeParams;
    use fsdl_graph::generators;

    #[test]
    fn healthy_labelings_pass() {
        for (g, eps) in [
            (generators::grid2d(7, 7), 1.0),
            (generators::cycle(40), 0.5),
            (generators::balanced_tree(2, 4), 2.0),
        ] {
            let labeling = Labeling::build(&g, SchemeParams::new(eps, g.num_vertices()));
            let report = audit(&labeling, 6);
            assert!(report.passed(), "violations: {:?}", report.violations);
            assert!(report.points_checked > 0);
            assert!(report.vertices_checked > 0);
        }
    }

    #[test]
    fn all_pairs_labelings_pass_too() {
        let g = generators::grid2d(6, 6);
        let labeling = Labeling::build_with_options(
            &g,
            SchemeParams::new(1.0, 36),
            crate::builder::LabelingOptions { all_pairs: true },
        );
        assert!(audit(&labeling, 4).passed());
    }

    #[test]
    fn report_counts_accumulate() {
        let g = generators::path(32);
        let labeling = Labeling::build(&g, SchemeParams::new(1.0, 32));
        let small = audit(&labeling, 2);
        let large = audit(&labeling, 8);
        assert!(large.points_checked > small.points_checked);
        assert!(large.vertices_checked >= small.vertices_checked);
    }
}
