//! Label construction (the scheme's *marker* algorithm).
//!
//! [`Labeling::build`] preprocesses the graph once: it constructs the net
//! hierarchy and verifies the parameter schedule. Individual labels are then
//! *materialized on demand* by [`Labeling::label_of`] — semantically the
//! label is a fixed per-vertex artifact (encode it with [`crate::codec`] to
//! get its canonical bit string), but holding all `n` labels in memory
//! simultaneously is pointless for a *distributed* data structure in which
//! each node stores only its own label. Materialization is deterministic,
//! so repeated calls yield identical labels.
//!
//! Per level `i`, `L_i(v)` is built from truncated BFS only:
//!
//! 1. `B(v, rᵢ)` from `v` gives the stored points
//!    `N_{i−c−1} ∩ B(v, rᵢ)` with exact distances — the paper's vertex set
//!    of `H_i(v)` (plus the implicit owner edges);
//! 2. for every stored point `x` at waypoint net level (`x ∈ N_{i−c}`), a
//!    BFS truncated at `λᵢ` enumerates its virtual-edge partners;
//! 3. at the lowest level, the real edges of `G` inside the ball are read
//!    off the adjacency lists.
//!
//! Total preprocessing per materialized label is `O(Σ_i |B(v, rᵢ)| +
//! Σ_{x high} |B(x, λᵢ)|)` BFS work — polynomial, and measured by the
//! `preprocessing` bench.

use fsdl_graph::bfs::{self, BfsScratch};
use fsdl_graph::{Graph, NodeId};
use fsdl_nets::{parallel, NetHierarchy};

use crate::label::{Label, LabelPoint, LevelLabel, RealEdge, VirtualEdge};
use crate::params::SchemeParams;

/// Errors from [`Labeling::try_build`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The graph has no vertices.
    EmptyGraph,
    /// `params.n()` does not match the graph's vertex count.
    VertexCountMismatch {
        /// Vertex count the schedule was derived for.
        params_n: usize,
        /// The graph's actual vertex count.
        graph_n: usize,
    },
    /// The parameter schedule violates its invariants (only possible with
    /// hand-built schedules).
    InvalidSchedule(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptyGraph => write!(f, "labeling needs a nonempty graph"),
            BuildError::VertexCountMismatch { params_n, graph_n } => write!(
                f,
                "params were derived for {params_n} vertices but the graph has {graph_n}"
            ),
            BuildError::InvalidSchedule(e) => write!(f, "parameter schedule invalid: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Reusable BFS buffers for label materialization: one ball scan plus one
/// partner scan per level. A build worker creates one [`LabelScratch`] and
/// amortizes it across every label it materializes
/// ([`Labeling::label_of_with`], [`Labeling::materialize_all`]).
#[derive(Clone, Debug)]
pub struct LabelScratch {
    ball: BfsScratch,
    partner: BfsScratch,
}

impl LabelScratch {
    /// Scratch sized for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        LabelScratch {
            ball: BfsScratch::new(n),
            partner: BfsScratch::new(n),
        }
    }
}

/// Mean per-level label contents over sampled vertices (see
/// [`Labeling::level_report`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelReport {
    /// The label level `i`.
    pub level: u32,
    /// Mean stored points at this level.
    pub mean_points: f64,
    /// Mean virtual edges at this level.
    pub mean_virtual_edges: f64,
    /// Mean real edges at this level (lowest level only).
    pub mean_real_edges: f64,
}

/// The preprocessed labeling of a graph: parameters + net hierarchy, from
/// which any vertex's label can be materialized.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, NodeId};
/// use fsdl_labels::{Labeling, SchemeParams};
///
/// let g = generators::path(64);
/// let labeling = Labeling::build(&g, SchemeParams::new(1.0, 64));
/// let label = labeling.label_of(NodeId::new(10));
/// assert_eq!(label.owner, NodeId::new(10));
/// assert!(label.stats().points > 0);
/// ```
#[derive(Clone, Debug)]
pub struct Labeling {
    graph: Graph,
    params: SchemeParams,
    nets: NetHierarchy,
    all_pairs: bool,
}

/// Construction options for [`Labeling::build_with_options`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LabelingOptions {
    /// Store *every* virtual-edge pair of stored points (the paper's
    /// literal `E(H_i(v))`), instead of only pairs with at least one
    /// endpoint at waypoint net level `N_{i−c}`. The pruned default keeps
    /// every edge the existence proof uses (see the module docs) and is
    /// roughly a `2^α` factor smaller; this flag exists for the ablation
    /// experiment that measures the difference.
    pub all_pairs: bool,
}

impl Labeling {
    /// Preprocesses `g`: builds the net hierarchy and validates the
    /// schedule.
    ///
    /// # Panics
    ///
    /// Panics if `g` is empty, if `params.n()` does not match the graph, or
    /// if the schedule violates its invariants (cannot happen for schedules
    /// from [`SchemeParams::new`]).
    pub fn build(g: &Graph, params: SchemeParams) -> Self {
        Self::build_with_options(g, params, LabelingOptions::default())
    }

    /// Like [`Labeling::build`] with explicit [`LabelingOptions`].
    ///
    /// # Panics
    ///
    /// Same as [`Labeling::build`].
    pub fn build_with_options(g: &Graph, params: SchemeParams, options: LabelingOptions) -> Self {
        match Self::try_build_with_options(g, params, options) {
            Ok(labeling) => labeling,
            Err(BuildError::EmptyGraph) => panic!("labeling needs a nonempty graph"),
            Err(BuildError::VertexCountMismatch { .. }) => {
                panic!("params were derived for a different vertex count")
            }
            Err(BuildError::InvalidSchedule(e)) => {
                panic!("parameter schedule violates its invariants: {e}")
            }
        }
    }

    /// Fallible variant of [`Labeling::build`] for callers that prefer
    /// `Result` over panics (e.g. when parameters come from user input).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for an empty graph, a vertex-count
    /// mismatch, or an invalid hand-built schedule.
    pub fn try_build(g: &Graph, params: SchemeParams) -> Result<Self, BuildError> {
        Self::try_build_with_options(g, params, LabelingOptions::default())
    }

    /// Fallible variant of [`Labeling::build_with_options`].
    ///
    /// # Errors
    ///
    /// Same as [`Labeling::try_build`].
    pub fn try_build_with_options(
        g: &Graph,
        params: SchemeParams,
        options: LabelingOptions,
    ) -> Result<Self, BuildError> {
        if g.num_vertices() == 0 {
            return Err(BuildError::EmptyGraph);
        }
        if params.n() != g.num_vertices() {
            return Err(BuildError::VertexCountMismatch {
                params_n: params.n(),
                graph_n: g.num_vertices(),
            });
        }
        params
            .verify_invariants()
            .map_err(BuildError::InvalidSchedule)?;
        let nets = NetHierarchy::build(g);
        Ok(Labeling {
            graph: g.clone(),
            params,
            nets,
            all_pairs: options.all_pairs,
        })
    }

    /// The parameter schedule in force.
    pub fn params(&self) -> &SchemeParams {
        &self.params
    }

    /// The underlying net hierarchy.
    pub fn nets(&self) -> &NetHierarchy {
        &self.nets
    }

    /// The graph this labeling was built for (an owned copy of the input;
    /// the CSR representation is cheap to clone relative to preprocessing).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Net level whose points are stored at label level `i`, clamped to the
    /// hierarchy's top (relevant only for graphs smaller than `2^{c+1}`).
    fn stored_net(&self, i: u32) -> u32 {
        self.params.stored_net_level(i).min(self.nets.top_level())
    }

    /// Waypoint net level at label level `i`, clamped likewise.
    fn waypoint_net(&self, i: u32) -> u32 {
        self.params.waypoint_net_level(i).min(self.nets.top_level())
    }

    /// Materializes the label `L(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    pub fn label_of(&self, v: NodeId) -> Label {
        let mut scratch = LabelScratch::new(self.graph.num_vertices());
        self.label_of_with(v, &mut scratch)
    }

    /// [`Labeling::label_of`] with caller-provided BFS scratch, so build
    /// loops materializing many labels allocate the buffers once. The label
    /// is identical to the one `label_of` returns.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    pub fn label_of_with(&self, v: NodeId, scratch: &mut LabelScratch) -> Label {
        assert!(self.graph.contains(v), "vertex out of range");
        let first_level = self.params.c() + 1;
        let mut levels = Vec::with_capacity(self.params.num_levels());
        for i in self.params.levels() {
            levels.push(self.build_level(v, i, &mut scratch.ball, &mut scratch.partner));
        }
        Label {
            owner: v,
            owner_net_level: self.nets.level_of(v),
            first_level,
            levels,
        }
    }

    /// Materializes the labels of *all* vertices, fanned out over
    /// `available_parallelism` scoped threads with per-worker BFS scratch.
    /// Labels are returned in vertex-index order and are bit-identical to
    /// `n` sequential [`Labeling::label_of`] calls (materialization is
    /// deterministic and per-vertex independent).
    pub fn materialize_all(&self) -> Vec<Label> {
        self.materialize_all_workers(parallel::default_workers(self.graph.num_vertices()))
    }

    /// [`Labeling::materialize_all`] with an explicit worker count
    /// (`workers == 0` means available parallelism, `1` builds sequentially
    /// on the calling thread; see [`parallel::resolve_workers`]) — the knob
    /// the throughput experiment sweeps.
    pub fn materialize_all_workers(&self, workers: usize) -> Vec<Label> {
        let n = self.graph.num_vertices();
        parallel::run_indexed_with(
            n,
            parallel::resolve_workers(workers, n),
            || LabelScratch::new(n),
            |scratch, v| self.label_of_with(NodeId::from_index(v), scratch),
        )
    }

    fn build_level(
        &self,
        v: NodeId,
        i: u32,
        scratch: &mut BfsScratch,
        partner_scratch: &mut BfsScratch,
    ) -> LevelLabel {
        let r_i = clamp_radius(self.params.r(i), self.graph.num_vertices());
        let lambda_i = clamp_radius(self.params.lambda(i), self.graph.num_vertices());
        let stored_net = self.stored_net(i);
        let waypoint_net = self.waypoint_net(i);

        // 1. Stored points: N_{i-c-1} ∩ B(v, r_i), sorted by vertex id.
        let ball = bfs::ball(&self.graph, v, r_i, scratch);
        let mut points: Vec<LabelPoint> = ball
            .iter()
            .filter(|m| self.nets.is_in_net(m.vertex, stored_net))
            .map(|m| LabelPoint {
                vertex: m.vertex,
                dist: m.dist,
                net_level: self.nets.level_of(m.vertex),
            })
            .collect();
        points.sort_unstable_by_key(|p| p.vertex);
        let index_of = |w: NodeId| -> Option<u32> {
            points
                .binary_search_by_key(&w, |p| p.vertex)
                .ok()
                .map(|k| k as u32)
        };

        // 2. Virtual edges: pairs (x, y) of stored points with
        //    d_G(x, y) <= lambda_i and at least one endpoint at waypoint net
        //    level. Enumerated by a lambda-truncated BFS from each high
        //    endpoint.
        let is_high = |net_level: u32| self.all_pairs || net_level >= waypoint_net;
        let mut virtual_edges: Vec<VirtualEdge> = Vec::new();
        for (ax, p) in points.iter().enumerate() {
            if !is_high(p.net_level) {
                continue;
            }
            for m in bfs::ball(&self.graph, p.vertex, lambda_i, partner_scratch) {
                if m.vertex == p.vertex {
                    continue;
                }
                let Some(ay) = index_of(m.vertex) else {
                    continue;
                };
                let q = &points[ay as usize];
                // Canonical orientation: when both endpoints are high the
                // pair would be found twice; keep the (low index -> high
                // index) copy discovered from the lower-indexed endpoint.
                if is_high(q.net_level) && ay < ax as u32 {
                    continue;
                }
                let (a, b) = if (ax as u32) < ay {
                    (ax as u32, ay)
                } else {
                    (ay, ax as u32)
                };
                virtual_edges.push(VirtualEdge { a, b, dist: m.dist });
            }
        }
        virtual_edges.sort_unstable_by_key(|e| (e.a, e.b));
        virtual_edges.dedup_by_key(|e| (e.a, e.b));

        // 3. Real edges, lowest level only: edges of G inside B(v, r_i).
        let mut real_edges = Vec::new();
        if i == self.params.c() + 1 {
            for (au, p) in points.iter().enumerate() {
                for w in self.graph.neighbor_ids(p.vertex) {
                    if w <= p.vertex {
                        continue;
                    }
                    if let Some(aw) = index_of(w) {
                        real_edges.push(RealEdge {
                            a: au as u32,
                            b: aw,
                        });
                    }
                }
            }
        }

        LevelLabel {
            points,
            virtual_edges,
            real_edges,
        }
    }

    /// Convenience: materializes and bit-encodes `L(v)`, returning its
    /// length in bits under the canonical codec.
    pub fn label_bits(&self, v: NodeId) -> usize {
        crate::codec::encoded_bits(&self.label_of(v), self.graph.num_vertices())
    }

    /// Per-level size breakdown averaged over `samples` evenly-spaced
    /// vertices: for each label level `i`, the mean number of stored
    /// points, virtual edges, and real edges. Shows *where* the label
    /// bits live (the low levels dominate — the `(O(1)/ε)^{2α}` constant).
    pub fn level_report(&self, samples: usize) -> Vec<LevelReport> {
        let n = self.graph.num_vertices();
        let samples = samples.clamp(1, n);
        let stride = (n / samples).max(1);
        let mut reports: Vec<LevelReport> = self
            .params
            .levels()
            .map(|level| LevelReport {
                level,
                mean_points: 0.0,
                mean_virtual_edges: 0.0,
                mean_real_edges: 0.0,
            })
            .collect();
        let mut count = 0usize;
        let mut v = 0usize;
        while v < n && count < samples {
            let label = self.label_of(NodeId::from_index(v));
            for (k, (_, level)) in label.levels_iter().enumerate() {
                reports[k].mean_points += level.points.len() as f64;
                reports[k].mean_virtual_edges += level.virtual_edges.len() as f64;
                reports[k].mean_real_edges += level.real_edges.len() as f64;
            }
            count += 1;
            v += stride;
        }
        for r in &mut reports {
            r.mean_points /= count as f64;
            r.mean_virtual_edges /= count as f64;
            r.mean_real_edges /= count as f64;
        }
        reports
    }
}

/// Radii from the schedule are `u64` and can exceed any graph distance;
/// clamp to `n` (distances are `< n`).
fn clamp_radius(r: u64, n: usize) -> u32 {
    u32::try_from(r.min(n as u64)).expect("n fits in u32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;

    fn build_path() -> (fsdl_graph::Graph, SchemeParams) {
        let g = generators::path(40);
        let p = SchemeParams::new(1.0, 40);
        (g, p)
    }

    #[test]
    fn owner_and_levels() {
        let (g, p) = build_path();
        let labeling = Labeling::build(&g, p.clone());
        let l = labeling.label_of(NodeId::new(7));
        assert_eq!(l.owner, NodeId::new(7));
        assert_eq!(l.first_level, p.c() + 1);
        assert_eq!(l.levels.len(), p.num_levels());
    }

    #[test]
    fn points_are_sorted_with_exact_distances() {
        let (g, p) = build_path();
        let labeling = Labeling::build(&g, p);
        let v = NodeId::new(20);
        let l = labeling.label_of(v);
        for (_, level) in l.levels_iter() {
            for w in level.points.windows(2) {
                assert!(w[0].vertex < w[1].vertex);
            }
            for pt in &level.points {
                // On a path the distance is |id difference|.
                assert_eq!(pt.dist, v.raw().abs_diff(pt.vertex.raw()));
            }
        }
    }

    #[test]
    fn stored_points_respect_net_and_radius() {
        let g = generators::grid2d(8, 8);
        let p = SchemeParams::new(2.0, 64);
        let labeling = Labeling::build(&g, p.clone());
        let v = NodeId::new(27);
        let l = labeling.label_of(v);
        for (i, level) in l.levels_iter() {
            let r_i = p.r(i).min(64);
            let stored = p.stored_net_level(i).min(labeling.nets().top_level());
            for pt in &level.points {
                assert!(u64::from(pt.dist) <= r_i, "point outside ball at level {i}");
                assert!(
                    labeling.nets().is_in_net(pt.vertex, stored),
                    "point below stored net at level {i}"
                );
                assert_eq!(pt.net_level, labeling.nets().level_of(pt.vertex));
            }
        }
    }

    #[test]
    fn virtual_edges_are_short_exact_and_have_high_endpoint() {
        let g = generators::grid2d(8, 8);
        let p = SchemeParams::new(2.0, 64);
        let labeling = Labeling::build(&g, p.clone());
        let l = labeling.label_of(NodeId::new(0));
        for (i, level) in l.levels_iter() {
            let wp = p.waypoint_net_level(i).min(labeling.nets().top_level());
            for e in &level.virtual_edges {
                let x = &level.points[e.a as usize];
                let y = &level.points[e.b as usize];
                assert!(e.a < e.b, "canonical orientation");
                assert!(u64::from(e.dist) <= p.lambda(i));
                assert!(
                    x.net_level >= wp || y.net_level >= wp,
                    "no waypoint endpoint at level {i}"
                );
                // Exact weight.
                let d = fsdl_graph::bfs::pair_distance_avoiding(
                    &g,
                    x.vertex,
                    y.vertex,
                    &fsdl_graph::FaultSet::empty(),
                );
                assert_eq!(d.finite(), Some(e.dist));
            }
        }
    }

    #[test]
    fn virtual_edges_deduplicated() {
        let g = generators::grid2d(6, 6);
        let labeling = Labeling::build(&g, SchemeParams::new(2.0, 36));
        let l = labeling.label_of(NodeId::new(14));
        for (_, level) in l.levels_iter() {
            let mut keys: Vec<(u32, u32)> =
                level.virtual_edges.iter().map(|e| (e.a, e.b)).collect();
            let before = keys.len();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), before, "duplicate virtual edges");
        }
    }

    #[test]
    fn real_edges_only_at_lowest_level_and_match_graph() {
        let g = generators::grid2d(8, 8);
        let p = SchemeParams::new(2.0, 64);
        let labeling = Labeling::build(&g, p.clone());
        let l = labeling.label_of(NodeId::new(9));
        for (i, level) in l.levels_iter() {
            if i == p.c() + 1 {
                assert!(!level.real_edges.is_empty());
                for e in &level.real_edges {
                    let u = level.points[e.a as usize].vertex;
                    let w = level.points[e.b as usize].vertex;
                    assert!(g.has_edge(u, w), "stored non-edge at lowest level");
                }
            } else {
                assert!(level.real_edges.is_empty(), "real edges at level {i}");
            }
        }
    }

    #[test]
    fn lowest_level_contains_whole_ball_with_all_edges() {
        // At level c+1 the stored net is N_0 = V, so all edges of G inside
        // the ball must be present.
        let g = generators::cycle(20);
        let p = SchemeParams::new(2.0, 20);
        let labeling = Labeling::build(&g, p.clone());
        let v = NodeId::new(5);
        let l = labeling.label_of(v);
        let low = l.level(p.c() + 1).unwrap();
        let ids: std::collections::HashSet<NodeId> =
            low.points.iter().map(|pt| pt.vertex).collect();
        let mut expected = 0usize;
        for e in g.edges() {
            if ids.contains(&e.lo()) && ids.contains(&e.hi()) {
                expected += 1;
            }
        }
        assert_eq!(low.real_edges.len(), expected);
    }

    #[test]
    fn materialization_is_deterministic() {
        let g = generators::random_geometric(120, 0.12, 17);
        let labeling = Labeling::build(&g, SchemeParams::new(2.0, 120));
        let a = labeling.label_of(NodeId::new(60));
        let b = labeling.label_of(NodeId::new(60));
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_matches_fresh_materialization() {
        let g = generators::grid2d(7, 7);
        let labeling = Labeling::build(&g, SchemeParams::new(1.0, 49));
        let mut scratch = LabelScratch::new(49);
        for v in [0u32, 13, 24, 48] {
            assert_eq!(
                labeling.label_of_with(NodeId::new(v), &mut scratch),
                labeling.label_of(NodeId::new(v)),
                "v{v}"
            );
        }
    }

    #[test]
    fn materialize_all_is_bit_identical_across_worker_counts() {
        let g = generators::random_geometric(90, 0.14, 5);
        let labeling = Labeling::build(&g, SchemeParams::new(2.0, 90));
        let seq = labeling.materialize_all_workers(1);
        assert_eq!(seq.len(), 90);
        for workers in [2, 4, 8] {
            assert_eq!(
                labeling.materialize_all_workers(workers),
                seq,
                "workers = {workers}"
            );
        }
        // Index order: labels[v] belongs to vertex v.
        for (v, l) in seq.iter().enumerate() {
            assert_eq!(l.owner, NodeId::from_index(v));
        }
        assert_eq!(seq[31], labeling.label_of(NodeId::new(31)));
    }

    #[test]
    fn nearest_waypoint_is_stored() {
        // The certificate needs M_{i-c}(v) present among v's stored points
        // at every level.
        let g = generators::grid2d(10, 10);
        let p = SchemeParams::new(1.0, 100);
        let labeling = Labeling::build(&g, p.clone());
        for vr in [0u32, 33, 99] {
            let v = NodeId::new(vr);
            let l = labeling.label_of(v);
            for (i, level) in l.levels_iter() {
                let wp = p.waypoint_net_level(i).min(labeling.nets().top_level());
                let best = level
                    .points
                    .iter()
                    .filter(|pt| pt.net_level >= wp)
                    .map(|pt| pt.dist)
                    .min();
                let (_, d) = labeling.nets().nearest(v, wp).expect("connected");
                assert_eq!(best, Some(d), "waypoint missing at level {i} for v{vr}");
            }
        }
    }

    #[test]
    fn try_build_errors() {
        let g = generators::path(10);
        assert!(matches!(
            Labeling::try_build(&g, SchemeParams::new(1.0, 11)),
            Err(BuildError::VertexCountMismatch {
                params_n: 11,
                graph_n: 10
            })
        ));
        assert!(Labeling::try_build(&g, SchemeParams::new(1.0, 10)).is_ok());
        let empty = fsdl_graph::GraphBuilder::new(0).build();
        assert!(matches!(
            Labeling::try_build(&empty, SchemeParams::new(1.0, 10)),
            Err(BuildError::EmptyGraph)
        ));
        let err = BuildError::InvalidSchedule("x".into());
        assert!(err.to_string().contains("invalid"));
    }

    #[test]
    fn level_report_shape() {
        let g = generators::grid2d(8, 8);
        let p = SchemeParams::new(1.0, 64);
        let labeling = Labeling::build(&g, p.clone());
        let report = labeling.level_report(4);
        assert_eq!(report.len(), p.num_levels());
        assert_eq!(report[0].level, p.c() + 1);
        // Only the lowest level has real edges.
        assert!(report[0].mean_real_edges > 0.0);
        for r in &report[1..] {
            assert_eq!(r.mean_real_edges, 0.0);
        }
        // The low levels dominate point counts on a small graph.
        assert!(report[0].mean_points >= report.last().unwrap().mean_points);
    }

    #[test]
    #[should_panic(expected = "different vertex count")]
    fn mismatched_params_rejected() {
        let g = generators::path(10);
        let _ = Labeling::build(&g, SchemeParams::new(1.0, 11));
    }

    #[test]
    fn single_vertex_graph_labels() {
        let g = fsdl_graph::GraphBuilder::new(1).build();
        let labeling = Labeling::build(&g, SchemeParams::new(1.0, 1));
        let l = labeling.label_of(NodeId::new(0));
        assert_eq!(l.owner, NodeId::new(0));
        for (_, level) in l.levels_iter() {
            assert_eq!(level.points.len(), 1);
            assert!(level.virtual_edges.is_empty());
        }
    }
}
