//! Canonical bit encoding of labels.
//!
//! The paper's headline result is a bound on *label length in bits*
//! (`O(1+ε⁻¹)^{2α} log² n`), so the evaluation must measure actual bit
//! strings, not struct sizes. This module provides a [`BitWriter`] /
//! [`BitReader`] pair and a canonical label codec:
//!
//! * vertex ids are fixed-width `⌈log₂ n⌉`-bit integers, except point lists,
//!   which are sorted by id and therefore delta-encoded with a variable
//!   length code;
//! * distances, net levels, counts, and edge endpoint indices use the same
//!   variable-length code (4-bit groups with a continuation bit, LEB128
//!   style at bit granularity);
//! * the payload is followed by a 32-bit FNV-1a checksum over the payload
//!   bits, and decoding requires the input to end exactly after it.
//!
//! `encode → decode` is the identity (property-tested), so reported sizes
//! are honest: every bit needed to reconstruct the label is counted.
//!
//! # Robustness contract
//!
//! Labels are a *wire format*: the decoder treats its input as untrusted
//! bytes. [`decode`] never panics, never loops unboundedly, and never
//! returns a label that refers to vertices outside the declared graph —
//! corrupt, truncated, or trailing-garbage inputs yield a typed
//! [`CodecError`]. The checksum makes silent single-field corruption
//! (e.g. a flipped distance bit that still parses) vanishingly unlikely;
//! the structural checks make it impossible for a decoded label to index
//! out of bounds downstream. This contract is enforced by the corruption
//! chaos harness (`labels/tests/chaos.rs` and [`crate::corrupt`]).

use fsdl_graph::NodeId;

use crate::label::{Label, LabelPoint, LevelLabel, RealEdge, VirtualEdge};

/// Errors produced when encoding to or decoding from a bit string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Bit offset at which the operation failed.
    pub bit_offset: usize,
    /// Description of the failure.
    pub message: String,
}

impl CodecError {
    pub(crate) fn new(bit_offset: usize, message: impl Into<String>) -> Self {
        CodecError {
            bit_offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "label codec error at bit {}: {}",
            self.bit_offset, self.message
        )
    }
}

impl std::error::Error for CodecError {}

/// An append-only bit string writer.
///
/// # Examples
///
/// ```
/// use fsdl_labels::codec::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3).unwrap();
/// w.write_varint(300);
/// let bits = w.len_bits();
/// let mut r = BitReader::new(w.as_bytes(), bits);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_varint().unwrap(), 300);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.bit_len
    }

    /// The backing bytes (final partial byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Appends the low `width` bits of `value`, LSB first.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] (and writes nothing) when `width > 64`
    /// or `value` has set bits at or above position `width`. This is a
    /// fallible contract rather than an assertion so encoders handling
    /// externally supplied field values can surface the problem as a
    /// typed error instead of a panic.
    pub fn write_bits(&mut self, value: u64, width: u32) -> Result<(), CodecError> {
        if width > 64 {
            return Err(CodecError::new(
                self.bit_len,
                format!("write width {width} out of range (max 64)"),
            ));
        }
        if width < 64 && value >= (1u64 << width) {
            return Err(CodecError::new(
                self.bit_len,
                format!("value {value} does not fit in {width} bits"),
            ));
        }
        self.push_bits(value, width);
        Ok(())
    }

    /// Appends the low `width` bits of `value` (callers guarantee
    /// `width <= 64` and that `value` fits), filling up to a byte per
    /// iteration rather than a bit.
    fn push_bits(&mut self, mut value: u64, width: u32) {
        debug_assert!(width <= 64);
        let mut remaining = width;
        while remaining > 0 {
            let off = (self.bit_len % 8) as u32;
            if off == 0 {
                self.bytes.push(0);
            }
            let take = (8 - off).min(remaining);
            let chunk = (value & ((1u64 << take) - 1)) as u8;
            *self.bytes.last_mut().expect("byte pushed above") |= chunk << off;
            value >>= take;
            self.bit_len += take as usize;
            remaining -= take;
        }
    }

    /// Appends a variable-length unsigned integer: groups of 4 value bits
    /// preceded by a continuation bit (5 bits per group). Infallible —
    /// every `u64` has a valid encoding.
    pub fn write_varint(&mut self, mut value: u64) {
        loop {
            let group = value & 0xF;
            value >>= 4;
            let cont = u64::from(value != 0);
            // Continuation bit then the group, fused into one 5-bit
            // append — the same bit layout as writing them separately.
            self.push_bits(cont | (group << 1), 5);
            if value == 0 {
                break;
            }
        }
    }
}

/// A bit string reader over a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bit_len` bits of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `bit_len` bits. Decoders
    /// handling untrusted lengths should validate first (as [`decode`]
    /// does) or use [`BitReader::try_new`].
    pub fn new(bytes: &'a [u8], bit_len: usize) -> Self {
        BitReader::try_new(bytes, bit_len).expect("byte slice shorter than bit length")
    }

    /// Fallible constructor: errors (instead of panicking) when `bytes`
    /// holds fewer than `bit_len` bits.
    pub fn try_new(bytes: &'a [u8], bit_len: usize) -> Result<Self, CodecError> {
        if bytes.len().saturating_mul(8) < bit_len {
            return Err(CodecError::new(
                0,
                format!(
                    "byte slice holds {} bits but {bit_len} were declared",
                    bytes.len().saturating_mul(8)
                ),
            ));
        }
        Ok(BitReader {
            bytes,
            bit_len,
            pos: 0,
        })
    }

    /// Current read position in bits.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bit_len - self.pos
    }

    /// Reads `width` bits (LSB first). `read_bits(0)` succeeds, reads
    /// nothing, and returns 0.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when `width > 64` or fewer than `width`
    /// bits remain.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, CodecError> {
        if width > 64 {
            return Err(CodecError::new(
                self.pos,
                format!("read width {width} out of range (max 64)"),
            ));
        }
        if (self.remaining() as u64) < u64::from(width) {
            return Err(CodecError::new(
                self.pos,
                format!("need {width} bits, {} remain", self.remaining()),
            ));
        }
        // Bits `off..off + width` of the little-endian word starting at
        // the current byte are exactly the next `width` bits (LSB-first
        // within each byte); `off <= 7` and `width <= 64` always fit in
        // a 16-byte window, gathered byte-wise only near the slice end.
        let byte = self.pos / 8;
        let off = (self.pos % 8) as u32;
        let word = match self.bytes.get(byte..byte + 16) {
            Some(window) => u128::from_le_bytes(window.try_into().expect("16-byte window")),
            None => {
                let mut word = 0u128;
                for (k, &b) in self.bytes[byte..].iter().take(16).enumerate() {
                    word |= u128::from(b) << (8 * k);
                }
                word
            }
        };
        let wide = (word >> off) as u64;
        let value = if width == 64 {
            wide
        } else {
            wide & ((1u64 << width) - 1)
        };
        self.pos += width as usize;
        Ok(value)
    }

    /// Reads a variable-length integer written by [`BitWriter::write_varint`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation or on encodings longer than
    /// [`MAX_VARINT_GROUPS`] groups (10 bytes).
    pub fn read_varint(&mut self) -> Result<u64, CodecError> {
        // Fast path: one unaligned 16-byte load yields 64 usable bits
        // after the sub-byte shift — enough for 12 five-bit groups,
        // which covers every varint below 2^48. Longer varints and
        // reads near the end of the slice take the per-group loop.
        let byte = self.pos / 8;
        let off = (self.pos % 8) as u32;
        if let Some(window) = self.bytes.get(byte..byte + 16) {
            let word = u128::from_le_bytes(window.try_into().expect("16-byte window"));
            let mut wide = (word >> off) as u64;
            let mut value = 0u64;
            let mut shift = 0u32;
            let mut used = 0usize;
            let avail = self.bit_len - self.pos;
            while used + 5 <= 60 {
                if used + 5 > avail {
                    return Err(CodecError::new(
                        self.pos + used,
                        format!("need 5 bits, {} remain", avail - used),
                    ));
                }
                let chunk = wide & 0x1F;
                wide >>= 5;
                used += 5;
                value |= (chunk >> 1) << shift;
                shift += 4;
                if chunk & 1 == 0 {
                    self.pos += used;
                    return Ok(value);
                }
            }
            // Still continuing after 12 groups: rare — decode from the
            // original position with the general loop instead.
        }
        let mut value = 0u64;
        let mut shift = 0u32;
        let mut groups = 0u32;
        loop {
            // One 5-bit read per group: continuation bit, then 4 value
            // bits — identical bit layout to the two-read formulation.
            let chunk = self.read_bits(5)?;
            groups += 1;
            if groups > MAX_VARINT_GROUPS {
                // 16 groups carry 64 value bits — the whole u64 range —
                // so a 17th group is corruption, not a longer value.
                return Err(CodecError::new(
                    self.pos,
                    format!("varint exceeds {MAX_VARINT_GROUPS} groups (10 bytes)"),
                ));
            }
            let cont = chunk & 1;
            let group = chunk >> 1;
            value |= group << shift;
            shift = (shift + 4).min(60);
            if cont == 0 {
                return Ok(value);
            }
        }
    }

    /// Reads `count` varints into `out` (cleared first), decoding as many
    /// as possible per 16-byte window load instead of reloading the
    /// window for every varint. Bit-identical to `count` successive
    /// [`BitReader::read_varint`] calls: same values, same final
    /// position, and an error exactly when the sequential reads would
    /// error (long varints and slice tails fall back to the per-varint
    /// reader, so every edge case shares one implementation).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation or overlong varints; `out`
    /// then holds the values decoded before the failure.
    pub fn read_varint_batch(
        &mut self,
        count: usize,
        out: &mut Vec<u64>,
    ) -> Result<(), CodecError> {
        out.clear();
        out.resize(count, 0);
        let mut filled = 0usize;
        while filled < count {
            let byte = self.pos / 8;
            let off = (self.pos % 8) as u32;
            let Some(window) = self.bytes.get(byte..byte + 16) else {
                // Too close to the end of the slice for a full window.
                out.truncate(filled);
                let v = self.read_varint()?;
                out.push(v);
                out.resize(count, 0);
                filled += 1;
                continue;
            };
            let word = u128::from_le_bytes(window.try_into().expect("16-byte window"));
            let wide = (word >> off) as u64;
            // 12 five-bit groups fit the 60-bit budget; `budget` caps it
            // at the declared bit length so truncation is never read past.
            let budget = (self.bit_len - self.pos).min(60);
            // Bit 0 of every 5-bit group — the continuation bits. One
            // `!wide & MASK` exposes every group that *ends* a varint up
            // front, so the per-varint loop is just a shift and a
            // `trailing_zeros` — no per-group branch, no window reload.
            const CONT_MASK: u64 = 0x1084_2108_4210_8421;
            // Set bits of `e` are the positions of every varint-ending
            // group in the window; the loop walks them with `e &= e - 1`,
            // so the only loop-carried dependency is one and+sub —
            // everything else runs ahead out of order.
            let mut e = !wide & CONT_MASK;
            let dst = &mut out[..count];
            let start = filled;
            let mut begin = 0usize;
            while filled < count && e != 0 {
                // `tz` is the end group's bit position; the varint
                // occupies [begin, tz + 5).
                let tz = e.trailing_zeros() as usize;
                if tz + 5 > budget {
                    break;
                }
                let w = wide >> begin;
                // Gather the 4 value bits of each group; the common one-,
                // two-, and three-group cases are straight-line.
                let value = match tz - begin {
                    0 => (w >> 1) & 0xF,
                    5 => ((w >> 1) & 0xF) | (((w >> 6) & 0xF) << 4),
                    10 => ((w >> 1) & 0xF) | (((w >> 6) & 0xF) << 4) | (((w >> 11) & 0xF) << 8),
                    span => {
                        let mut v = 0u64;
                        for k in 0..=span / 5 {
                            v |= ((w >> (5 * k + 1)) & 0xF) << (4 * k);
                        }
                        v
                    }
                };
                dst[filled] = value;
                filled += 1;
                begin = tz + 5;
                e &= e - 1;
            }
            self.pos += begin;
            if filled < count && filled == start {
                // This varint cannot complete inside a fresh window: it
                // is longer than 12 groups, truncated, or past the
                // window — the per-varint reader resolves all three with
                // its exact typed errors.
                out.truncate(filled);
                let v = self.read_varint()?;
                out.push(v);
                out.resize(count, 0);
                filled += 1;
            }
        }
        Ok(())
    }
}

/// Hard cap on varint length: 16 five-bit groups = 64 value bits = 10
/// encoded bytes. Every `u64` fits in 16 groups, so anything longer is
/// rejected as corruption with a typed [`CodecError`] instead of being
/// caught only by downstream plausibility checks.
pub const MAX_VARINT_GROUPS: u32 = 16;

/// Reusable buffer for [`BitReader::read_varint_batch`], owned by the
/// caller (threaded through `DecodeScratch` on the serving path) so the
/// batched decode allocates nothing per label once warmed up.
#[derive(Debug, Default)]
pub struct VarintScratch {
    buf: Vec<u64>,
}

impl VarintScratch {
    /// An empty scratch; the buffer grows to the largest batch seen.
    pub fn new() -> Self {
        VarintScratch::default()
    }
}

/// Bits needed for a fixed-width vertex id in an `n`-vertex graph.
fn id_width(n: usize) -> u32 {
    fsdl_nets::ceil_log2(n).max(1)
}

/// Width of the checksum trailer appended by [`encode`].
pub const CHECKSUM_BITS: u32 = 32;

/// FNV-1a over the first `bit_len` bits of `bytes` (read in 8-bit
/// chunks so the value is independent of byte alignment), folded to 32
/// bits. The payload length is mixed in, so truncations that happen to
/// end on a self-consistent prefix still fail verification.
fn prefix_checksum(bytes: &[u8], bit_len: usize) -> u32 {
    // Eight bits LSB-first are exactly the byte value, so the 8-bit
    // chunked FNV is a plain byte-wise FNV over the whole bytes plus a
    // masked final partial byte — no bit reader needed.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let full = bit_len / 8;
    for &b in &bytes[..full] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let rem = (bit_len % 8) as u32;
    if rem > 0 {
        h ^= u64::from(bytes[full]) & ((1u64 << rem) - 1);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= bit_len as u64;
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    ((h >> 32) ^ h) as u32
}

/// Encodes a label into its canonical bit string; returns the writer.
///
/// # Errors
///
/// Returns a [`CodecError`] when a label field cannot be represented —
/// in practice only when `label.owner` is not a vertex id of an
/// `n`-vertex graph (it does not fit the `⌈log₂ n⌉`-bit id field).
pub fn try_encode(label: &Label, n: usize) -> Result<BitWriter, CodecError> {
    let w_id = id_width(n);
    let mut w = BitWriter::new();
    w.write_bits(u64::from(label.owner.raw()), w_id)?;
    w.write_varint(u64::from(label.owner_net_level));
    w.write_varint(u64::from(label.first_level));
    w.write_varint(label.levels.len() as u64);
    for level in &label.levels {
        encode_level(level, &mut w);
    }
    let checksum = prefix_checksum(w.as_bytes(), w.len_bits());
    w.write_bits(u64::from(checksum), CHECKSUM_BITS)?;
    Ok(w)
}

/// Encodes a label into its canonical bit string; returns the writer.
///
/// # Panics
///
/// Panics when the label's owner id does not fit the id field for an
/// `n`-vertex graph; use [`try_encode`] to handle that as an error.
pub fn encode(label: &Label, n: usize) -> BitWriter {
    try_encode(label, n).expect("label fields fit the codec for this n")
}

fn encode_level(level: &LevelLabel, w: &mut BitWriter) {
    w.write_varint(level.points.len() as u64);
    let mut prev = 0u64;
    for (k, p) in level.points.iter().enumerate() {
        let id = u64::from(p.vertex.raw());
        // Points are sorted by id: delta-encode.
        let delta = if k == 0 { id } else { id - prev };
        prev = id;
        w.write_varint(delta);
        w.write_varint(u64::from(p.dist));
        w.write_varint(u64::from(p.net_level));
    }
    w.write_varint(level.virtual_edges.len() as u64);
    for e in &level.virtual_edges {
        w.write_varint(u64::from(e.a));
        w.write_varint(u64::from(e.b));
        w.write_varint(u64::from(e.dist));
    }
    w.write_varint(level.real_edges.len() as u64);
    for e in &level.real_edges {
        w.write_varint(u64::from(e.a));
        w.write_varint(u64::from(e.b));
    }
}

/// Length in bits of the canonical encoding of `label` (checksum
/// trailer included).
pub fn encoded_bits(label: &Label, n: usize) -> usize {
    encode(label, n).len_bits()
}

/// Length in bits under the *fixed-width* encoding the paper's Lemma 2.5
/// accounting assumes: every vertex id and distance costs `⌈log₂ n⌉` bits,
/// every edge-endpoint index costs `⌈log₂(points)⌉` bits, and counts cost
/// `⌈log₂ n⌉` bits. Reported alongside the varint size in `exp_t2` so the
/// measured `log² n` law is codec-independent.
pub fn encoded_bits_fixed(label: &Label, n: usize) -> usize {
    let w = id_width(n) as usize;
    let mut bits = w; // owner
    bits += 6; // owner_net_level (log log n scale)
    bits += 6 + 6; // first_level + level count
    for level in &label.levels {
        bits += w; // point count
        let k = level.points.len().max(2);
        let idx_w = fsdl_nets::ceil_log2(k).max(1) as usize;
        // Each point: delta-free id + distance + net level.
        bits += level.points.len() * (w + w + 6);
        bits += w; // virtual edge count
        bits += level.virtual_edges.len() * (idx_w + idx_w + w);
        bits += w; // real edge count
        bits += level.real_edges.len() * (idx_w + idx_w);
    }
    bits
}

/// Upper bound on plausible net levels; mirrors the 64-level cap
/// enforced on encode paths (level indices are `O(log n)` and `n` fits
/// in 32 bits, so anything past 64 is corruption).
const MAX_PLAUSIBLE_LEVEL: u64 = 64;

/// Decodes a label from its canonical bit string.
///
/// The input is treated as untrusted: this function never panics.
/// Beyond structural parsing, it verifies that
///
/// * every vertex id (owner and points) is `< n`,
/// * distances fit `u32` and net levels are plausible (`<= 64`),
/// * declared element counts fit in the remaining input,
/// * the checksum trailer matches and no bits trail it.
///
/// # Errors
///
/// Returns a [`CodecError`] on truncated, malformed, corrupt, or
/// oversized input.
pub fn decode(bytes: &[u8], bit_len: usize, n: usize) -> Result<Label, CodecError> {
    let w_id = id_width(n);
    let mut r = BitReader::try_new(bytes, bit_len)?;
    let owner_raw = r.read_bits(w_id)?;
    if owner_raw >= n as u64 {
        return Err(CodecError::new(
            r.position(),
            format!("owner id {owner_raw} out of range for n={n}"),
        ));
    }
    let owner = NodeId::new(owner_raw as u32);
    let owner_net_level = read_level(&mut r, "owner net level")?;
    let first_level = read_level(&mut r, "first level")?;
    let num_levels = r.read_varint()? as usize;
    if num_levels as u64 > MAX_PLAUSIBLE_LEVEL {
        return Err(CodecError::new(
            r.position(),
            format!("implausible level count {num_levels}"),
        ));
    }
    let mut levels = Vec::with_capacity(num_levels);
    for _ in 0..num_levels {
        levels.push(decode_level(&mut r, n)?);
    }
    let payload_bits = r.position();
    let expected = prefix_checksum(bytes, payload_bits);
    let stored = r.read_bits(CHECKSUM_BITS)? as u32;
    if stored != expected {
        return Err(CodecError::new(
            payload_bits,
            format!("checksum mismatch (stored {stored:#010x}, computed {expected:#010x})"),
        ));
    }
    if r.remaining() != 0 {
        return Err(CodecError::new(
            r.position(),
            format!("{} trailing bits after checksum", r.remaining()),
        ));
    }
    Ok(Label {
        owner,
        owner_net_level,
        first_level,
        levels,
    })
}

/// [`decode`] rebuilt on batched word-parallel varint reads: each level's
/// point and edge streams are pulled with [`BitReader::read_varint_batch`]
/// into the caller-owned [`VarintScratch`], then validated. Accepts
/// exactly the inputs [`decode`] accepts and returns bit-identical
/// labels (differentially asserted in the test suite); only the bit
/// offset recorded in a [`CodecError`] may differ, because validation
/// runs after the batch read instead of interleaved with it.
///
/// # Errors
///
/// Returns a [`CodecError`] on truncated, malformed, corrupt, or
/// oversized input — the same accept/reject set as [`decode`].
pub fn decode_with(
    bytes: &[u8],
    bit_len: usize,
    n: usize,
    scratch: &mut VarintScratch,
) -> Result<Label, CodecError> {
    let w_id = id_width(n);
    let mut r = BitReader::try_new(bytes, bit_len)?;
    let owner_raw = r.read_bits(w_id)?;
    if owner_raw >= n as u64 {
        return Err(CodecError::new(
            r.position(),
            format!("owner id {owner_raw} out of range for n={n}"),
        ));
    }
    let owner = NodeId::new(owner_raw as u32);
    let owner_net_level = read_level(&mut r, "owner net level")?;
    let first_level = read_level(&mut r, "first level")?;
    let num_levels = r.read_varint()? as usize;
    if num_levels as u64 > MAX_PLAUSIBLE_LEVEL {
        return Err(CodecError::new(
            r.position(),
            format!("implausible level count {num_levels}"),
        ));
    }
    let mut levels = Vec::with_capacity(num_levels);
    for _ in 0..num_levels {
        levels.push(decode_level_batched(&mut r, n, &mut scratch.buf)?);
    }
    let payload_bits = r.position();
    let expected = prefix_checksum(bytes, payload_bits);
    let stored = r.read_bits(CHECKSUM_BITS)? as u32;
    if stored != expected {
        return Err(CodecError::new(
            payload_bits,
            format!("checksum mismatch (stored {stored:#010x}, computed {expected:#010x})"),
        ));
    }
    if r.remaining() != 0 {
        return Err(CodecError::new(
            r.position(),
            format!("{} trailing bits after checksum", r.remaining()),
        ));
    }
    Ok(Label {
        owner,
        owner_net_level,
        first_level,
        levels,
    })
}

/// Reads a varint that must be a plausible net/scale level (`<= 64`).
fn read_level(r: &mut BitReader<'_>, what: &str) -> Result<u32, CodecError> {
    let v = r.read_varint()?;
    if v > MAX_PLAUSIBLE_LEVEL {
        return Err(CodecError::new(
            r.position(),
            format!("implausible {what} {v}"),
        ));
    }
    Ok(v as u32)
}

/// Reads a varint count and rejects values that could not possibly fit
/// in the remaining input (each element consumes at least
/// `min_bits_per_elem` bits), bounding both decode time and allocation.
fn read_count(
    r: &mut BitReader<'_>,
    min_bits_per_elem: usize,
    what: &str,
) -> Result<usize, CodecError> {
    let v = r.read_varint()?;
    let cap = (r.remaining() / min_bits_per_elem.max(1)) as u64;
    if v > cap {
        return Err(CodecError::new(
            r.position(),
            format!("{what} count {v} exceeds what the remaining input can hold ({cap})"),
        ));
    }
    Ok(v as usize)
}

fn decode_level(r: &mut BitReader<'_>, n: usize) -> Result<LevelLabel, CodecError> {
    // A point is three varints (>= 15 bits), a virtual edge three
    // (>= 15), a real edge two (>= 10).
    let num_points = read_count(r, 15, "point")?;
    let mut points = Vec::with_capacity(num_points);
    let mut prev = 0u64;
    for k in 0..num_points {
        let delta = r.read_varint()?;
        let id = if k == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .ok_or_else(|| CodecError::new(r.position(), "point id delta overflows"))?
        };
        prev = id;
        if id >= n as u64 {
            return Err(CodecError::new(
                r.position(),
                format!("point id {id} out of range for n={n}"),
            ));
        }
        let dist = read_u32(r, "point distance")?;
        let net_level = read_level(r, "point net level")?;
        points.push(LabelPoint {
            vertex: NodeId::new(id as u32),
            dist,
            net_level,
        });
    }
    let num_virtual = read_count(r, 15, "virtual edge")?;
    let mut virtual_edges = Vec::with_capacity(num_virtual);
    for _ in 0..num_virtual {
        let a = read_u32(r, "virtual edge endpoint")?;
        let b = read_u32(r, "virtual edge endpoint")?;
        let dist = read_u32(r, "virtual edge distance")?;
        if a as usize >= points.len() || b as usize >= points.len() {
            return Err(CodecError::new(
                r.position(),
                "virtual edge index out of range",
            ));
        }
        virtual_edges.push(VirtualEdge { a, b, dist });
    }
    let num_real = read_count(r, 10, "real edge")?;
    let mut real_edges = Vec::with_capacity(num_real);
    for _ in 0..num_real {
        let a = read_u32(r, "real edge endpoint")?;
        let b = read_u32(r, "real edge endpoint")?;
        if a as usize >= points.len() || b as usize >= points.len() {
            return Err(CodecError::new(
                r.position(),
                "real edge index out of range",
            ));
        }
        real_edges.push(RealEdge { a, b });
    }
    Ok(LevelLabel {
        points,
        virtual_edges,
        real_edges,
    })
}

/// Reads a varint that must fit in `u32` (ids, distances, indices).
fn read_u32(r: &mut BitReader<'_>, what: &str) -> Result<u32, CodecError> {
    let v = r.read_varint()?;
    u32::try_from(v)
        .map_err(|_| CodecError::new(r.position(), format!("{what} {v} exceeds u32 range")))
}

/// [`decode_level`] on batched reads: each stream (points, virtual edges,
/// real edges) is one `read_varint_batch` call into `buf`, validated
/// afterwards with exactly the checks the sequential path applies —
/// same accept set, same decoded values, possibly different error
/// offsets on reject.
fn decode_level_batched(
    r: &mut BitReader<'_>,
    n: usize,
    buf: &mut Vec<u64>,
) -> Result<LevelLabel, CodecError> {
    const U32_MAX: u64 = u32::MAX as u64;
    let num_points = read_count(r, 15, "point")?;
    r.read_varint_batch(num_points * 3, buf)?;
    // Delta-decode and build in one pass, folding every validity
    // condition into flags checked after the scan — branch-light, and
    // the buffer is walked once. Same accept/reject set as the
    // sequential path; only the reported offset and message wording
    // differ. (`prev` starting at 0 makes the first id `0 + delta`,
    // which can never overflow, so no first-element special case.)
    let mut prev = 0u64;
    let mut overflow = false;
    let mut bad_id = false;
    let mut bad_dist = false;
    let mut bad_level = false;
    let points: Vec<LabelPoint> = buf
        .chunks_exact(3)
        .map(|c| {
            let (id, o) = prev.overflowing_add(c[0]);
            overflow |= o;
            prev = id;
            bad_id |= id >= n as u64;
            bad_dist |= c[1] > U32_MAX;
            bad_level |= c[2] > MAX_PLAUSIBLE_LEVEL;
            LabelPoint {
                vertex: NodeId::new(id as u32),
                dist: c[1] as u32,
                net_level: c[2] as u32,
            }
        })
        .collect();
    if overflow {
        return Err(CodecError::new(r.position(), "point id delta overflows"));
    }
    if bad_id {
        return Err(CodecError::new(
            r.position(),
            format!("point id out of range for n={n}"),
        ));
    }
    if bad_dist {
        return Err(CodecError::new(
            r.position(),
            "point distance exceeds u32 range",
        ));
    }
    if bad_level {
        return Err(CodecError::new(r.position(), "implausible point net level"));
    }

    // An endpoint must fit u32 *and* index into `points`; `>= bound`
    // folds both checks into one compare.
    let bound = (points.len() as u64).min(U32_MAX + 1);
    let num_virtual = read_count(r, 15, "virtual edge")?;
    r.read_varint_batch(num_virtual * 3, buf)?;
    let mut bad = false;
    let virtual_edges: Vec<VirtualEdge> = buf
        .chunks_exact(3)
        .map(|c| {
            bad |= c[0] >= bound;
            bad |= c[1] >= bound;
            bad |= c[2] > U32_MAX;
            VirtualEdge {
                a: c[0] as u32,
                b: c[1] as u32,
                dist: c[2] as u32,
            }
        })
        .collect();
    if bad {
        return Err(CodecError::new(
            r.position(),
            "virtual edge endpoint or distance out of range",
        ));
    }

    let num_real = read_count(r, 10, "real edge")?;
    r.read_varint_batch(num_real * 2, buf)?;
    let mut bad = false;
    let real_edges: Vec<RealEdge> = buf
        .chunks_exact(2)
        .map(|c| {
            bad |= c[0] >= bound;
            bad |= c[1] >= bound;
            RealEdge {
                a: c[0] as u32,
                b: c[1] as u32,
            }
        })
        .collect();
    if bad {
        return Err(CodecError::new(
            r.position(),
            "real edge index out of range",
        ));
    }
    Ok(LevelLabel {
        points,
        virtual_edges,
        real_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip_fixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0, 1).unwrap();
        w.write_bits(1, 1).unwrap();
        w.write_bits(0b1011, 4).unwrap();
        w.write_bits(u64::MAX, 64).unwrap();
        w.write_bits(12345, 17).unwrap();
        let mut r = BitReader::new(w.as_bytes(), w.len_bits());
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(17).unwrap(), 12345);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_roundtrip() {
        let values = [
            0u64,
            1,
            15,
            16,
            255,
            256,
            1 << 20,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_varint(v);
        }
        let mut r = BitReader::new(w.as_bytes(), w.len_bits());
        for &v in &values {
            assert_eq!(r.read_varint().unwrap(), v);
        }
    }

    #[test]
    fn varint_small_values_are_five_bits() {
        let mut w = BitWriter::new();
        w.write_varint(7);
        assert_eq!(w.len_bits(), 5);
        let mut w = BitWriter::new();
        w.write_varint(16);
        assert_eq!(w.len_bits(), 10);
    }

    #[test]
    fn truncated_read_errors() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2).unwrap();
        let mut r = BitReader::new(w.as_bytes(), w.len_bits());
        assert!(r.read_bits(3).is_err());
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        assert!(r.read_varint().is_err());
    }

    #[test]
    fn write_bits_rejects_oversized_value() {
        let mut w = BitWriter::new();
        let err = w.write_bits(8, 3).unwrap_err();
        assert!(err.message.contains("does not fit"), "{err}");
        // Nothing was written.
        assert_eq!(w.len_bits(), 0);
    }

    #[test]
    fn write_bits_rejects_width_above_64() {
        let mut w = BitWriter::new();
        let err = w.write_bits(0, 65).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        assert_eq!(w.len_bits(), 0);
        // Width 64 is the documented maximum and works for any value.
        w.write_bits(u64::MAX, 64).unwrap();
        assert_eq!(w.len_bits(), 64);
    }

    #[test]
    fn write_bits_zero_width_is_a_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0).unwrap();
        assert_eq!(w.len_bits(), 0);
        // Nonzero value cannot fit in zero bits.
        assert!(w.write_bits(1, 0).is_err());
    }

    #[test]
    fn read_bits_zero_width_reads_nothing() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1).unwrap();
        let mut r = BitReader::new(w.as_bytes(), w.len_bits());
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.position(), 0);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        // read_bits(0) also succeeds on an exhausted reader.
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn read_bits_rejects_width_above_64() {
        let bytes = [0xFFu8; 16];
        let mut r = BitReader::new(&bytes, 128);
        let err = r.read_bits(65).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        // Position unchanged; valid reads still work.
        assert_eq!(r.position(), 0);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn reader_try_new_rejects_short_slice() {
        assert!(BitReader::try_new(&[0u8; 2], 17).is_err());
        assert!(BitReader::try_new(&[0u8; 2], 16).is_ok());
        assert!(BitReader::try_new(&[], usize::MAX).is_err());
    }

    fn sample_label() -> Label {
        Label {
            owner: NodeId::new(12),
            owner_net_level: 2,
            first_level: 3,
            levels: vec![
                LevelLabel {
                    points: vec![
                        LabelPoint {
                            vertex: NodeId::new(3),
                            dist: 9,
                            net_level: 0,
                        },
                        LabelPoint {
                            vertex: NodeId::new(12),
                            dist: 0,
                            net_level: 2,
                        },
                        LabelPoint {
                            vertex: NodeId::new(40),
                            dist: 28,
                            net_level: 5,
                        },
                    ],
                    virtual_edges: vec![VirtualEdge {
                        a: 0,
                        b: 2,
                        dist: 30,
                    }],
                    real_edges: vec![RealEdge { a: 0, b: 1 }],
                },
                LevelLabel::default(),
            ],
        }
    }

    #[test]
    fn label_roundtrip() {
        let label = sample_label();
        let w = encode(&label, 50);
        let decoded = decode(w.as_bytes(), w.len_bits(), 50).unwrap();
        assert_eq!(decoded, label);
    }

    #[test]
    fn encoded_bits_matches_encode() {
        let label = sample_label();
        assert_eq!(encoded_bits(&label, 50), encode(&label, 50).len_bits());
    }

    #[test]
    fn try_encode_rejects_owner_out_of_field() {
        // Owner 40 does not fit the 3-bit id field of an 8-vertex graph.
        let label = sample_label();
        assert!(try_encode(&label, 8).is_err());
    }

    #[test]
    fn fixed_width_bits_upper_bound_varint_on_dense_labels() {
        // Fixed-width is codec-independent accounting; for realistic labels
        // (small deltas, small distances) the varint form is smaller.
        let label = sample_label();
        let fixed = encoded_bits_fixed(&label, 50);
        assert!(fixed > 0);
        // Both scale with the same entry counts.
        let empty = Label {
            owner: NodeId::new(0),
            owner_net_level: 0,
            first_level: 3,
            levels: vec![LevelLabel::default()],
        };
        assert!(encoded_bits_fixed(&label, 50) > encoded_bits_fixed(&empty, 50));
    }

    #[test]
    fn decode_rejects_bad_edge_indices() {
        let mut bad = sample_label();
        bad.levels[0].virtual_edges[0].b = 99;
        let w = encode(&bad, 50);
        assert!(decode(w.as_bytes(), w.len_bits(), 50).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let label = sample_label();
        let w = encode(&label, 50);
        assert!(decode(w.as_bytes(), w.len_bits() - 8, 50).is_err());
    }

    #[test]
    fn decode_rejects_declared_length_beyond_buffer() {
        let label = sample_label();
        let w = encode(&label, 50);
        // Claiming more bits than the buffer holds must be a typed error,
        // not a panic.
        assert!(decode(w.as_bytes(), w.as_bytes().len() * 8 + 1, 50).is_err());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let label = sample_label();
        let mut w = encode(&label, 50);
        w.write_bits(0b1, 1).unwrap();
        assert!(decode(w.as_bytes(), w.len_bits(), 50).is_err());
    }

    #[test]
    fn decode_rejects_single_bit_flips() {
        let label = sample_label();
        let w = encode(&label, 50);
        let bits = w.len_bits();
        for flip in 0..bits {
            let mut bytes = w.as_bytes().to_vec();
            bytes[flip / 8] ^= 1 << (flip % 8);
            match decode(&bytes, bits, 50) {
                Err(_) => {}
                Ok(decoded) => panic!(
                    "flip of bit {flip} decoded to a label (owner {:?}) despite checksum",
                    decoded.owner
                ),
            }
        }
    }

    #[test]
    fn decode_rejects_out_of_range_owner() {
        // Encode for a large graph, decode claiming a smaller one: the
        // owner and point ids no longer fit and must be rejected (never
        // returned as out-of-range NodeIds).
        let label = sample_label();
        let w = encode(&label, 50);
        assert!(decode(w.as_bytes(), w.len_bits(), 50).is_ok());
        assert!(decode(w.as_bytes(), w.len_bits(), 5).is_err());
    }

    #[test]
    fn checksum_depends_on_length() {
        // Two payloads that are bit-identical prefixes must not share a
        // checksum (length is mixed in).
        let a = prefix_checksum(&[0u8; 4], 9);
        let b = prefix_checksum(&[0u8; 4], 10);
        assert_ne!(a, b);
    }

    #[test]
    fn varint_batch_matches_sequential_reads() {
        fsdl_testkit::check("varint batch differential", 400, |rng| {
            let count = rng.gen_range(0..40usize);
            let mut w = BitWriter::new();
            // Random leading misalignment so windows start mid-byte.
            let lead = rng.gen_range(0..7u32);
            w.write_bits(0, lead).unwrap();
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                // Mix tiny values (1 group) with full-range ones (up to
                // 16 groups) so batches straddle window boundaries.
                let v = match rng.gen_range(0..4u32) {
                    0 => rng.gen_range(0..16u64),
                    1 => rng.gen_range(0..4096u64),
                    2 => rng.next_u64() & 0xFFFF_FFFF,
                    _ => rng.next_u64(),
                };
                values.push(v);
                w.write_varint(v);
            }
            let mut seq = BitReader::new(w.as_bytes(), w.len_bits());
            seq.read_bits(lead).unwrap();
            let mut batch = seq.clone();
            let mut seq_vals = Vec::new();
            for _ in 0..count {
                seq_vals.push(seq.read_varint().unwrap());
            }
            let mut out = Vec::new();
            batch.read_varint_batch(count, &mut out).unwrap();
            assert_eq!(out, seq_vals);
            assert_eq!(out, values);
            assert_eq!(batch.position(), seq.position());
        });
    }

    #[test]
    fn varint_batch_truncation_matches_sequential() {
        fsdl_testkit::check("varint batch truncation differential", 300, |rng| {
            let count = rng.gen_range(1..20usize);
            let mut w = BitWriter::new();
            for _ in 0..count {
                w.write_varint(rng.next_u64() >> rng.gen_range(0..64u32));
            }
            let cut = rng.gen_range(0..w.len_bits());
            let mut seq = BitReader::new(w.as_bytes(), cut);
            let mut batch = seq.clone();
            let seq_result: Result<Vec<u64>, CodecError> =
                (0..count).map(|_| seq.read_varint()).collect();
            let mut out = Vec::new();
            let batch_result = batch.read_varint_batch(count, &mut out);
            match (seq_result, batch_result) {
                (Ok(vals), Ok(())) => {
                    assert_eq!(out, vals);
                    assert_eq!(batch.position(), seq.position());
                }
                (Err(_), Err(_)) => {}
                (s, b) => panic!("sequential {s:?} but batch {b:?} at cut {cut}"),
            }
        });
    }

    #[test]
    fn varint_rejects_more_than_16_groups() {
        // 17 all-continuation groups: a >10-byte varint must be a typed
        // error, in the slow loop and through the batch reader alike.
        let mut w = BitWriter::new();
        for _ in 0..17 {
            w.write_bits(0b00001, 5).unwrap(); // cont=1, group=0
        }
        w.write_bits(0, 5).unwrap(); // terminator, never reached
        let mut r = BitReader::new(w.as_bytes(), w.len_bits());
        let err = r.read_varint().unwrap_err();
        assert!(err.message.contains("exceeds 16 groups"), "{err}");
        let mut r = BitReader::new(w.as_bytes(), w.len_bits());
        let mut out = Vec::new();
        assert!(r.read_varint_batch(1, &mut out).is_err());
        // 16 groups exactly (u64::MAX) is the legal maximum.
        let mut w = BitWriter::new();
        w.write_varint(u64::MAX);
        assert_eq!(w.len_bits(), 16 * 5);
        let mut r = BitReader::new(w.as_bytes(), w.len_bits());
        assert_eq!(r.read_varint().unwrap(), u64::MAX);
    }

    #[test]
    fn decode_with_matches_decode_on_valid_labels() {
        let label = sample_label();
        let w = encode(&label, 50);
        let mut scratch = VarintScratch::new();
        let batched = decode_with(w.as_bytes(), w.len_bits(), 50, &mut scratch).unwrap();
        let sequential = decode(w.as_bytes(), w.len_bits(), 50).unwrap();
        assert_eq!(batched, sequential);
        assert_eq!(batched, label);
    }

    #[test]
    fn decode_with_matches_decode_under_mutation() {
        // Differential chaos: on every single-bit flip the batched and
        // sequential decoders must agree on accept vs. reject (both are
        // checksum-guarded, so in practice both reject).
        let label = sample_label();
        let w = encode(&label, 50);
        let bits = w.len_bits();
        let mut scratch = VarintScratch::new();
        for flip in 0..bits {
            let mut bytes = w.as_bytes().to_vec();
            bytes[flip / 8] ^= 1 << (flip % 8);
            let sequential = decode(&bytes, bits, 50);
            let batched = decode_with(&bytes, bits, 50, &mut scratch);
            match (&sequential, &batched) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "flip {flip}"),
                (Err(_), Err(_)) => {}
                _ => panic!("flip {flip}: sequential {sequential:?} vs batched {batched:?}"),
            }
        }
        // Truncation sweep: same agreement at every declared length.
        for cut in 0..bits {
            let sequential = decode(w.as_bytes(), cut, 50);
            let batched = decode_with(w.as_bytes(), cut, 50, &mut scratch);
            assert_eq!(
                sequential.is_ok(),
                batched.is_ok(),
                "cut {cut}: sequential {sequential:?} vs batched {batched:?}"
            );
        }
    }
}
