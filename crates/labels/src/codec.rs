//! Canonical bit encoding of labels.
//!
//! The paper's headline result is a bound on *label length in bits*
//! (`O(1+ε⁻¹)^{2α} log² n`), so the evaluation must measure actual bit
//! strings, not struct sizes. This module provides a [`BitWriter`] /
//! [`BitReader`] pair and a canonical label codec:
//!
//! * vertex ids are fixed-width `⌈log₂ n⌉`-bit integers, except point lists,
//!   which are sorted by id and therefore delta-encoded with a variable
//!   length code;
//! * distances, net levels, counts, and edge endpoint indices use the same
//!   variable-length code (4-bit groups with a continuation bit, LEB128
//!   style at bit granularity).
//!
//! `encode → decode` is the identity (property-tested), so reported sizes
//! are honest: every bit needed to reconstruct the label is counted.

use fsdl_graph::NodeId;

use crate::label::{Label, LabelPoint, LevelLabel, RealEdge, VirtualEdge};

/// Errors produced when decoding a corrupt or truncated bit string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Bit offset at which decoding failed.
    pub bit_offset: usize,
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "label decode error at bit {}: {}",
            self.bit_offset, self.message
        )
    }
}

impl std::error::Error for CodecError {}

/// An append-only bit string writer.
///
/// # Examples
///
/// ```
/// use fsdl_labels::codec::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_varint(300);
/// let bits = w.len_bits();
/// let mut r = BitReader::new(w.as_bytes(), bits);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_varint().unwrap(), 300);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.bit_len
    }

    /// The backing bytes (final partial byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Appends the low `width` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` has bits above `width`.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width out of range");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for k in 0..width {
            let bit = (value >> k) & 1;
            let pos = self.bit_len;
            if pos.is_multiple_of(8) {
                self.bytes.push(0);
            }
            if bit == 1 {
                self.bytes[pos / 8] |= 1 << (pos % 8);
            }
            self.bit_len += 1;
        }
    }

    /// Appends a variable-length unsigned integer: groups of 4 value bits
    /// preceded by a continuation bit (5 bits per group).
    pub fn write_varint(&mut self, mut value: u64) {
        loop {
            let group = value & 0xF;
            value >>= 4;
            let cont = u64::from(value != 0);
            self.write_bits(cont, 1);
            self.write_bits(group, 4);
            if value == 0 {
                break;
            }
        }
    }
}

/// A bit string reader over a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bit_len` bits of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `bit_len` bits.
    pub fn new(bytes: &'a [u8], bit_len: usize) -> Self {
        assert!(
            bytes.len() * 8 >= bit_len,
            "byte slice shorter than bit length"
        );
        BitReader {
            bytes,
            bit_len,
            pos: 0,
        }
    }

    /// Current read position in bits.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bit_len - self.pos
    }

    /// Reads `width` bits (LSB first).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when fewer than `width` bits remain.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, CodecError> {
        if (self.remaining() as u64) < u64::from(width) {
            return Err(CodecError {
                bit_offset: self.pos,
                message: format!("need {width} bits, {} remain", self.remaining()),
            });
        }
        let mut value = 0u64;
        for k in 0..width {
            let pos = self.pos;
            let bit = (self.bytes[pos / 8] >> (pos % 8)) & 1;
            value |= u64::from(bit) << k;
            self.pos += 1;
        }
        Ok(value)
    }

    /// Reads a variable-length integer written by [`BitWriter::write_varint`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation or overlong encodings.
    pub fn read_varint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let cont = self.read_bits(1)?;
            let group = self.read_bits(4)?;
            if shift >= 64 {
                return Err(CodecError {
                    bit_offset: self.pos,
                    message: "varint overflow".into(),
                });
            }
            value |= group << shift;
            shift += 4;
            if cont == 0 {
                return Ok(value);
            }
        }
    }
}

/// Bits needed for a fixed-width vertex id in an `n`-vertex graph.
fn id_width(n: usize) -> u32 {
    fsdl_nets::ceil_log2(n).max(1)
}

/// Encodes a label into its canonical bit string; returns the writer.
pub fn encode(label: &Label, n: usize) -> BitWriter {
    let w_id = id_width(n);
    let mut w = BitWriter::new();
    w.write_bits(u64::from(label.owner.raw()), w_id);
    w.write_varint(u64::from(label.owner_net_level));
    w.write_varint(u64::from(label.first_level));
    w.write_varint(label.levels.len() as u64);
    for level in &label.levels {
        encode_level(level, &mut w);
    }
    w
}

fn encode_level(level: &LevelLabel, w: &mut BitWriter) {
    w.write_varint(level.points.len() as u64);
    let mut prev = 0u64;
    for (k, p) in level.points.iter().enumerate() {
        let id = u64::from(p.vertex.raw());
        // Points are sorted by id: delta-encode.
        let delta = if k == 0 { id } else { id - prev };
        prev = id;
        w.write_varint(delta);
        w.write_varint(u64::from(p.dist));
        w.write_varint(u64::from(p.net_level));
    }
    w.write_varint(level.virtual_edges.len() as u64);
    for e in &level.virtual_edges {
        w.write_varint(u64::from(e.a));
        w.write_varint(u64::from(e.b));
        w.write_varint(u64::from(e.dist));
    }
    w.write_varint(level.real_edges.len() as u64);
    for e in &level.real_edges {
        w.write_varint(u64::from(e.a));
        w.write_varint(u64::from(e.b));
    }
}

/// Length in bits of the canonical encoding of `label`.
pub fn encoded_bits(label: &Label, n: usize) -> usize {
    encode(label, n).len_bits()
}

/// Length in bits under the *fixed-width* encoding the paper's Lemma 2.5
/// accounting assumes: every vertex id and distance costs `⌈log₂ n⌉` bits,
/// every edge-endpoint index costs `⌈log₂(points)⌉` bits, and counts cost
/// `⌈log₂ n⌉` bits. Reported alongside the varint size in `exp_t2` so the
/// measured `log² n` law is codec-independent.
pub fn encoded_bits_fixed(label: &Label, n: usize) -> usize {
    let w = id_width(n) as usize;
    let mut bits = w; // owner
    bits += 6; // owner_net_level (log log n scale)
    bits += 6 + 6; // first_level + level count
    for level in &label.levels {
        bits += w; // point count
        let k = level.points.len().max(2);
        let idx_w = fsdl_nets::ceil_log2(k).max(1) as usize;
        // Each point: delta-free id + distance + net level.
        bits += level.points.len() * (w + w + 6);
        bits += w; // virtual edge count
        bits += level.virtual_edges.len() * (idx_w + idx_w + w);
        bits += w; // real edge count
        bits += level.real_edges.len() * (idx_w + idx_w);
    }
    bits
}

/// Decodes a label from its canonical bit string.
///
/// # Errors
///
/// Returns a [`CodecError`] on truncated or malformed input.
pub fn decode(bytes: &[u8], bit_len: usize, n: usize) -> Result<Label, CodecError> {
    let w_id = id_width(n);
    let mut r = BitReader::new(bytes, bit_len);
    let owner = NodeId::new(r.read_bits(w_id)? as u32);
    let owner_net_level = r.read_varint()? as u32;
    let first_level = r.read_varint()? as u32;
    let num_levels = r.read_varint()? as usize;
    if num_levels > 64 {
        return Err(CodecError {
            bit_offset: r.position(),
            message: format!("implausible level count {num_levels}"),
        });
    }
    let mut levels = Vec::with_capacity(num_levels);
    for _ in 0..num_levels {
        levels.push(decode_level(&mut r)?);
    }
    Ok(Label {
        owner,
        owner_net_level,
        first_level,
        levels,
    })
}

fn decode_level(r: &mut BitReader<'_>) -> Result<LevelLabel, CodecError> {
    let num_points = r.read_varint()? as usize;
    let mut points = Vec::with_capacity(num_points.min(1 << 20));
    let mut prev = 0u64;
    for k in 0..num_points {
        let delta = r.read_varint()?;
        let id = if k == 0 { delta } else { prev + delta };
        prev = id;
        let dist = r.read_varint()? as u32;
        let net_level = r.read_varint()? as u32;
        points.push(LabelPoint {
            vertex: NodeId::new(id as u32),
            dist,
            net_level,
        });
    }
    let num_virtual = r.read_varint()? as usize;
    let mut virtual_edges = Vec::with_capacity(num_virtual.min(1 << 20));
    for _ in 0..num_virtual {
        let a = r.read_varint()? as u32;
        let b = r.read_varint()? as u32;
        let dist = r.read_varint()? as u32;
        if a as usize >= points.len() || b as usize >= points.len() {
            return Err(CodecError {
                bit_offset: r.position(),
                message: "virtual edge index out of range".into(),
            });
        }
        virtual_edges.push(VirtualEdge { a, b, dist });
    }
    let num_real = r.read_varint()? as usize;
    let mut real_edges = Vec::with_capacity(num_real.min(1 << 20));
    for _ in 0..num_real {
        let a = r.read_varint()? as u32;
        let b = r.read_varint()? as u32;
        if a as usize >= points.len() || b as usize >= points.len() {
            return Err(CodecError {
                bit_offset: r.position(),
                message: "real edge index out of range".into(),
            });
        }
        real_edges.push(RealEdge { a, b });
    }
    Ok(LevelLabel {
        points,
        virtual_edges,
        real_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip_fixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0, 1);
        w.write_bits(1, 1);
        w.write_bits(0b1011, 4);
        w.write_bits(u64::MAX, 64);
        w.write_bits(12345, 17);
        let mut r = BitReader::new(w.as_bytes(), w.len_bits());
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(17).unwrap(), 12345);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_roundtrip() {
        let values = [
            0u64,
            1,
            15,
            16,
            255,
            256,
            1 << 20,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_varint(v);
        }
        let mut r = BitReader::new(w.as_bytes(), w.len_bits());
        for &v in &values {
            assert_eq!(r.read_varint().unwrap(), v);
        }
    }

    #[test]
    fn varint_small_values_are_five_bits() {
        let mut w = BitWriter::new();
        w.write_varint(7);
        assert_eq!(w.len_bits(), 5);
        let mut w = BitWriter::new();
        w.write_varint(16);
        assert_eq!(w.len_bits(), 10);
    }

    #[test]
    fn truncated_read_errors() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let mut r = BitReader::new(w.as_bytes(), w.len_bits());
        assert!(r.read_bits(3).is_err());
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        assert!(r.read_varint().is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_bits_validates_value() {
        let mut w = BitWriter::new();
        w.write_bits(8, 3);
    }

    fn sample_label() -> Label {
        Label {
            owner: NodeId::new(12),
            owner_net_level: 2,
            first_level: 3,
            levels: vec![
                LevelLabel {
                    points: vec![
                        LabelPoint {
                            vertex: NodeId::new(3),
                            dist: 9,
                            net_level: 0,
                        },
                        LabelPoint {
                            vertex: NodeId::new(12),
                            dist: 0,
                            net_level: 2,
                        },
                        LabelPoint {
                            vertex: NodeId::new(40),
                            dist: 28,
                            net_level: 5,
                        },
                    ],
                    virtual_edges: vec![VirtualEdge {
                        a: 0,
                        b: 2,
                        dist: 30,
                    }],
                    real_edges: vec![RealEdge { a: 0, b: 1 }],
                },
                LevelLabel::default(),
            ],
        }
    }

    #[test]
    fn label_roundtrip() {
        let label = sample_label();
        let w = encode(&label, 50);
        let decoded = decode(w.as_bytes(), w.len_bits(), 50).unwrap();
        assert_eq!(decoded, label);
    }

    #[test]
    fn encoded_bits_matches_encode() {
        let label = sample_label();
        assert_eq!(encoded_bits(&label, 50), encode(&label, 50).len_bits());
    }

    #[test]
    fn fixed_width_bits_upper_bound_varint_on_dense_labels() {
        // Fixed-width is codec-independent accounting; for realistic labels
        // (small deltas, small distances) the varint form is smaller.
        let label = sample_label();
        let fixed = encoded_bits_fixed(&label, 50);
        assert!(fixed > 0);
        // Both scale with the same entry counts.
        let empty = Label {
            owner: NodeId::new(0),
            owner_net_level: 0,
            first_level: 3,
            levels: vec![LevelLabel::default()],
        };
        assert!(encoded_bits_fixed(&label, 50) > encoded_bits_fixed(&empty, 50));
    }

    #[test]
    fn decode_rejects_bad_edge_indices() {
        let mut bad = sample_label();
        bad.levels[0].virtual_edges[0].b = 99;
        let w = encode(&bad, 50);
        assert!(decode(w.as_bytes(), w.len_bits(), 50).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let label = sample_label();
        let w = encode(&label, 50);
        assert!(decode(w.as_bytes(), w.len_bits() - 8, 50).is_err());
    }
}
