//! Label-corruption chaos harness: systematic mutation of encoded label
//! bit strings, plus a sweep that drives every mutation through the
//! decoder and checks the robustness contract end to end.
//!
//! Labels are a wire format (`O(1+ε⁻¹)^{2α} log² n` bits exchanged
//! between parties, per the paper), so a production decoder must treat
//! them as untrusted bytes. The contract enforced here, for *any*
//! mutation of an encoded label:
//!
//! 1. [`crate::codec::decode`] returns `Err(CodecError)` or `Ok(label)`
//!    — it never panics and never loops;
//! 2. if it decodes, running the query with the decoded label in the
//!    fault set never *underestimates* `d_{G∖F'}(s,t)`, where `F'` is
//!    the fault set actually decoded (safety is relative to the labels
//!    received: a corruption that survives the checksum is
//!    indistinguishable from an honestly different query).
//!
//! [`Mutation`] enumerates the corruption classes (bit flips,
//! truncations, extensions, splices between two encodings, and
//! varint-boundary flips); [`mutation_schedule`] derives a deterministic
//! mix of all classes from a seed; [`corruption_sweep`] runs the whole
//! check against ground truth and panics with the reproducing seed and
//! mutation on any violation.

use fsdl_graph::{bfs, FaultSet, NodeId};
use fsdl_testkit::rng::splitmix64;
use fsdl_testkit::Rng;

use crate::codec;
use crate::decode::{query, QueryLabels};
use crate::oracle::ForbiddenSetOracle;
use crate::store::OpenMode;

/// One corruption applied to an encoded label bit string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Flip the bit at this position.
    FlipBit(usize),
    /// Keep only the first `new_bits` bits.
    Truncate(usize),
    /// Append `extra_bits` pseudo-random bits derived from `seed`.
    Extend {
        /// Number of bits appended.
        extra_bits: usize,
        /// Seed for the appended bits.
        seed: u64,
    },
    /// Replace everything from `prefix_bits` on with the donor encoding's
    /// bits starting at `donor_skip` (cross-breeding two valid labels).
    Splice {
        /// Bits of the victim kept.
        prefix_bits: usize,
        /// Bits of the donor skipped before copying the rest.
        donor_skip: usize,
    },
    /// Flip the bit at `field_offset + 5 * group` — with `field_offset`
    /// at the first varint, this targets the continuation/value boundary
    /// structure of the leading varint groups directly.
    VarintBoundary {
        /// Bit offset where varint groups begin (after the fixed-width
        /// owner id).
        field_offset: usize,
        /// Which 5-bit group to hit.
        group: usize,
    },
}

/// Extracts bit `i` (LSB-first within bytes) from a bit string.
fn get_bit(bytes: &[u8], i: usize) -> bool {
    bytes[i / 8] & (1 << (i % 8)) != 0
}

/// Sets bit `i`, growing the byte vector as needed.
fn set_bit(bytes: &mut Vec<u8>, i: usize, value: bool) {
    while bytes.len() <= i / 8 {
        bytes.push(0);
    }
    if value {
        bytes[i / 8] |= 1 << (i % 8);
    } else {
        bytes[i / 8] &= !(1 << (i % 8));
    }
}

impl Mutation {
    /// Applies the mutation to `(bytes, bit_len)`, returning the mutated
    /// bit string. `donor` supplies the bits for [`Mutation::Splice`]
    /// (ignored otherwise); mutations out of range for the input are
    /// clamped rather than skipped, so every call mutates *something*
    /// whenever the input is non-empty.
    pub fn apply(
        &self,
        bytes: &[u8],
        bit_len: usize,
        donor: Option<(&[u8], usize)>,
    ) -> (Vec<u8>, usize) {
        match *self {
            Mutation::FlipBit(i) => {
                let mut out = bytes.to_vec();
                if bit_len > 0 {
                    let i = i.min(bit_len - 1);
                    out[i / 8] ^= 1 << (i % 8);
                }
                (out, bit_len)
            }
            Mutation::Truncate(new_bits) => {
                let new_bits = new_bits.min(bit_len.saturating_sub(1));
                let mut out = bytes[..new_bits.div_ceil(8)].to_vec();
                // Zero the dead bits of the final partial byte so equal
                // prefixes compare equal.
                if !new_bits.is_multiple_of(8) {
                    if let Some(last) = out.last_mut() {
                        *last &= (1u16 << (new_bits % 8)) as u8 - 1;
                    }
                }
                (out, new_bits)
            }
            Mutation::Extend { extra_bits, seed } => {
                let mut out = bytes.to_vec();
                let mut rng = Rng::seed_from_u64(seed);
                for k in 0..extra_bits {
                    set_bit(&mut out, bit_len + k, rng.gen_bool(0.5));
                }
                (out, bit_len + extra_bits)
            }
            Mutation::Splice {
                prefix_bits,
                donor_skip,
            } => {
                let (dbytes, dbits) = donor.unwrap_or((bytes, bit_len));
                let prefix_bits = prefix_bits.min(bit_len);
                let donor_skip = donor_skip.min(dbits);
                let total = prefix_bits + (dbits - donor_skip);
                let mut out = Vec::with_capacity(total.div_ceil(8));
                for k in 0..prefix_bits {
                    set_bit(&mut out, k, get_bit(bytes, k));
                }
                for k in donor_skip..dbits {
                    set_bit(&mut out, prefix_bits + k - donor_skip, get_bit(dbytes, k));
                }
                (out, total)
            }
            Mutation::VarintBoundary {
                field_offset,
                group,
            } => Mutation::FlipBit(field_offset + 5 * group).apply(bytes, bit_len, donor),
        }
    }
}

/// A deterministic schedule of `count` mutations covering every class:
/// all single-bit flips first (exhaustive when `count` allows), then
/// truncations at every varint-group stride, then varint-boundary flips,
/// then seeded random splices/extensions/flips for the remainder.
/// `field_offset` should be the width of the fixed owner-id field.
pub fn mutation_schedule(
    bit_len: usize,
    field_offset: usize,
    count: usize,
    seed: u64,
) -> Vec<Mutation> {
    let mut out = Vec::with_capacity(count);
    for i in 0..bit_len.min(count) {
        out.push(Mutation::FlipBit(i));
    }
    let mut cut = 0;
    while out.len() < count && cut < bit_len {
        out.push(Mutation::Truncate(cut));
        cut += 5;
    }
    let mut group = 0;
    while out.len() < count && field_offset + 5 * group + 1 < bit_len {
        out.push(Mutation::VarintBoundary {
            field_offset,
            group,
        });
        group += 1;
    }
    let mut state = seed;
    while out.len() < count {
        let r = splitmix64(&mut state);
        let len = bit_len.max(1);
        out.push(match r % 4 {
            0 => Mutation::Splice {
                prefix_bits: (r >> 8) as usize % len,
                donor_skip: (r >> 40) as usize % len,
            },
            1 => Mutation::Extend {
                extra_bits: 1 + (r >> 8) as usize % 64,
                seed: r,
            },
            2 => Mutation::Truncate((r >> 8) as usize % len),
            _ => Mutation::FlipBit((r >> 8) as usize % len),
        });
    }
    out
}

/// Outcome counts of one [`corruption_sweep`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Mutations applied.
    pub attempted: usize,
    /// Mutations rejected by the decoder with a typed `CodecError`.
    pub rejected: usize,
    /// Mutations that decoded to a (necessarily valid) label and whose
    /// query answer was verified sound against ground truth.
    pub decoded_sound: usize,
}

/// Runs a corruption sweep on the encoded label of `fault`: applies
/// `count` scheduled mutations (donor bits come from `donor`'s label)
/// and checks the decode-or-sound contract for the query `(s, t, ·)`.
///
/// # Panics
///
/// Panics — with the seed and the exact mutation in the message — when a
/// mutated label decodes and the resulting query answer underestimates
/// the true `d_{G∖F'}(s,t)` for the decoded fault set `F'`. Decoder
/// panics propagate as-is (the chaos tests treat any panic as failure).
pub fn corruption_sweep(
    oracle: &ForbiddenSetOracle,
    s: NodeId,
    t: NodeId,
    fault: NodeId,
    donor: NodeId,
    count: usize,
    seed: u64,
) -> SweepStats {
    let g = oracle.labeling().graph();
    let n = g.num_vertices();
    let params = oracle.params();
    let ls = oracle.label(s);
    let lt = oracle.label(t);
    let lf = oracle.label(fault);
    // Infallible here: both labels were built by the oracle for this n,
    // so their owners fit the id field by construction.
    let enc = codec::try_encode(&lf, n).expect("oracle-built label encodes");
    let donor_enc = codec::try_encode(&oracle.label(donor), n).expect("oracle-built label encodes");
    let field_offset = fsdl_nets::ceil_log2(n).max(1) as usize;

    let mut stats = SweepStats::default();
    for (idx, m) in mutation_schedule(enc.len_bits(), field_offset, count, seed)
        .into_iter()
        .enumerate()
    {
        let (bytes, bits) = m.apply(
            enc.as_bytes(),
            enc.len_bits(),
            Some((donor_enc.as_bytes(), donor_enc.len_bits())),
        );
        if bytes == enc.as_bytes() && bits == enc.len_bits() {
            continue; // identity (e.g. a splice that reassembled the input)
        }
        stats.attempted += 1;
        match codec::decode(&bytes, bits, n) {
            Err(_) => stats.rejected += 1,
            Ok(decoded) => {
                // The mutation survived the checksum: by construction this
                // means it reassembled a valid encoding (e.g. a whole-label
                // splice). The decoder must still be *sound relative to
                // what it decoded*: no underestimate of d_{G∖F'}.
                let fprime = decoded.owner;
                let faults = QueryLabels {
                    fault_vertices: vec![&decoded],
                    fault_edges: vec![],
                };
                let answer = query(params, &ls, &lt, &faults);
                let truth =
                    bfs::pair_distance_avoiding(g, s, t, &FaultSet::from_vertices([fprime]));
                let sound = match (answer.distance.finite(), truth.finite()) {
                    // INFINITE never underestimates; disconnected truth
                    // cannot be underestimated.
                    (None, _) | (_, None) => true,
                    (Some(a), Some(td)) => a >= td || s == fprime || t == fprime || s == t,
                };
                assert!(
                    sound,
                    "corruption sweep seed {seed:#x} mutation #{idx} {m:?}: decoded label \
                     (owner {fprime}) led to answer {} below truth {} for {s}->{t}",
                    answer.distance, truth
                );
                stats.decoded_sound += 1;
            }
        }
    }
    stats
}

/// One corruption applied to an on-disk segment file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreMutation {
    /// Flip one bit of one byte of the segment file.
    FlipByteBit {
        /// Byte offset into the file.
        byte: usize,
        /// Bit within the byte (0–7).
        bit: u8,
    },
    /// Keep only the first `keep` bytes of the segment file.
    Truncate {
        /// Bytes kept.
        keep: usize,
    },
    /// Append `extra` pseudo-random bytes derived from `seed`.
    Extend {
        /// Bytes appended.
        extra: usize,
        /// Seed for the appended bytes.
        seed: u64,
    },
}

impl StoreMutation {
    /// Applies the mutation to a copy of `bytes`.
    pub fn apply(&self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        match *self {
            StoreMutation::FlipByteBit { byte, bit } => {
                if let Some(b) = out.get_mut(byte) {
                    *b ^= 1 << (bit % 8);
                }
            }
            StoreMutation::Truncate { keep } => out.truncate(keep),
            StoreMutation::Extend { extra, seed } => {
                let mut state = seed;
                for _ in 0..extra {
                    out.push(splitmix64(&mut state) as u8);
                }
            }
        }
        out
    }
}

/// Derives a deterministic schedule of `count` segment-file mutations
/// (bit flips across the whole file, truncations at every region —
/// header, index, payload, checksum — and extensions) for a file of
/// `len` bytes.
pub fn store_mutation_schedule(len: usize, count: usize, seed: u64) -> Vec<StoreMutation> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5e6_3417);
    let mut out = Vec::with_capacity(count);
    for k in 0..count {
        let m = match k % 3 {
            0 => StoreMutation::FlipByteBit {
                byte: rng.gen_range(0..len.max(1)),
                bit: (rng.next_u64() % 8) as u8,
            },
            1 => StoreMutation::Truncate {
                keep: rng.gen_range(0..len.max(1)),
            },
            _ => StoreMutation::Extend {
                extra: rng.gen_range(1..64usize),
                seed: rng.next_u64(),
            },
        };
        out.push(m);
    }
    out
}

/// Outcome counts of one [`store_corruption_sweep`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreSweepStats {
    /// Mutations applied (identity mutations are skipped).
    pub attempted: usize,
    /// Mutations rejected at open time with a typed [`crate::StoreError`].
    pub rejected: usize,
    /// Mutations that still opened (e.g. a flip inside an ignored region
    /// that survived the checksum — astronomically rare) whose probe
    /// answers were verified bit-identical to the pristine store's.
    pub opened_sound: usize,
}

/// Chaos sweep over an on-disk label store: applies `count` scheduled
/// corruptions of the current segment file, each in a fresh copy of the
/// store under `scratch`, and asserts the robustness contract:
/// [`ForbiddenSetOracle::open`] either fails with a typed
/// [`crate::StoreError`] — never a panic — or serves answers
/// bit-identical to the pristine store's for every probe pair.
///
/// # Panics
///
/// Panics — naming the seed and the exact mutation — when a corrupted
/// store opens and serves a different answer, and propagates any decoder
/// panic (the chaos tests treat either as failure). Also panics when the
/// pristine store at `dir` cannot be opened or scratch I/O fails, since
/// the sweep cannot run at all then.
pub fn store_corruption_sweep(
    dir: &std::path::Path,
    scratch: &std::path::Path,
    g: &fsdl_graph::Graph,
    probes: &[(NodeId, NodeId)],
    count: usize,
    seed: u64,
) -> StoreSweepStats {
    store_corruption_sweep_with(dir, scratch, g, probes, count, seed, OpenMode::Eager)
}

/// [`store_corruption_sweep`] with an explicit [`OpenMode`] for the
/// corrupted copies.
///
/// Under [`OpenMode::Lazy`] the whole-file checksum is *not* verified at
/// open, so payload corruptions routinely survive to first touch — the
/// contract then leans on the per-label checksum and the oracle's
/// recompute fallback: every probe must still answer bit-identically to
/// the pristine (eagerly opened) store, and nothing may panic. The
/// reference answers are always taken eagerly so the two modes are held
/// to the same ground truth.
///
/// # Panics
///
/// Same contract as [`store_corruption_sweep`].
#[allow(clippy::too_many_arguments)]
pub fn store_corruption_sweep_with(
    dir: &std::path::Path,
    scratch: &std::path::Path,
    g: &fsdl_graph::Graph,
    probes: &[(NodeId, NodeId)],
    count: usize,
    seed: u64,
    mode: OpenMode,
) -> StoreSweepStats {
    use crate::store;

    let manifest = store::read_manifest(dir).expect("pristine store must have a manifest");
    let segment_path = dir.join(&manifest.segment);
    let segment_bytes = std::fs::read(&segment_path).expect("pristine segment must be readable");
    let manifest_bytes =
        std::fs::read(dir.join(store::MANIFEST_NAME)).expect("manifest must be readable");
    let pristine = ForbiddenSetOracle::open(dir, g).expect("pristine store must open");
    let empty = FaultSet::empty();
    let reference: Vec<_> = probes
        .iter()
        .map(|&(s, t)| pristine.query(s, t, &empty))
        .collect();

    let mut stats = StoreSweepStats::default();
    for (idx, m) in store_mutation_schedule(segment_bytes.len(), count, seed)
        .into_iter()
        .enumerate()
    {
        let mutated = m.apply(&segment_bytes);
        if mutated == segment_bytes {
            continue;
        }
        stats.attempted += 1;
        let case_dir = scratch.join(format!("case-{idx}"));
        std::fs::create_dir_all(&case_dir).expect("scratch dir");
        std::fs::write(case_dir.join(store::MANIFEST_NAME), &manifest_bytes).expect("scratch io");
        std::fs::write(case_dir.join(&manifest.segment), &mutated).expect("scratch io");
        match ForbiddenSetOracle::open_with(&case_dir, g, mode) {
            Err(_) => stats.rejected += 1,
            Ok(oracle) => {
                for (&(s, t), expected) in probes.iter().zip(&reference) {
                    let got = oracle.query(s, t, &empty);
                    assert_eq!(
                        got,
                        *expected,
                        "store sweep seed {seed:#x} mutation #{idx} {m:?} ({}): corrupted \
                         store opened and answered {s}->{t} differently",
                        mode.name()
                    );
                }
                stats.opened_sound += 1;
            }
        }
        let _ = std::fs::remove_dir_all(&case_dir);
    }
    stats
}

/// Chaos sweep over the write-ahead log of a dynamic-oracle store: applies
/// `count` scheduled corruptions of the current WAL file, each in a fresh
/// copy of the store under `scratch`, and asserts the recovery contract:
/// [`crate::DynamicOracle::open`] either fails with a typed error — never
/// a panic — or recovers exactly a *prefix of the true update history*
/// (the records surviving the scan must equal a prefix of the pristine
/// log) and then answers every probe bit-identically to a reference
/// oracle recovered from that same pristine prefix. Zero silent
/// divergence: no corruption may smuggle in an update that never
/// happened.
///
/// In [`StoreSweepStats`] terms, `rejected` counts typed open failures
/// and `opened_sound` counts prefix recoveries that passed the
/// bit-identity probes.
///
/// # Panics
///
/// Panics — naming the seed and the exact mutation — on any contract
/// violation, and propagates recovery panics (the chaos tests treat
/// either as failure). Also panics when the pristine store or WAL at
/// `dir` is unreadable, since the sweep cannot run at all then.
pub fn wal_corruption_sweep(
    dir: &std::path::Path,
    scratch: &std::path::Path,
    g: &fsdl_graph::Graph,
    probes: &[(NodeId, NodeId)],
    count: usize,
    seed: u64,
) -> StoreSweepStats {
    use crate::dynamic::DynamicOracle;
    use crate::store;
    use crate::wal;

    let manifest = store::read_manifest(dir).expect("pristine store must have a manifest");
    let segment_bytes =
        std::fs::read(dir.join(&manifest.segment)).expect("pristine segment must be readable");
    let manifest_bytes =
        std::fs::read(dir.join(store::MANIFEST_NAME)).expect("manifest must be readable");
    let wal_name = wal::wal_file_name(manifest.generation);
    let wal_bytes = std::fs::read(dir.join(&wal_name)).expect("pristine WAL must be readable");
    let pristine = wal::scan(&dir.join(&wal_name)).expect("pristine WAL must scan clean");
    assert_eq!(pristine.truncated_bytes, 0, "pristine WAL has a torn tail");

    // Lays a store copy down in `case` with the given WAL bytes.
    let write_case = |case: &std::path::Path, wal: &[u8]| {
        std::fs::create_dir_all(case).expect("scratch dir");
        std::fs::write(case.join(store::MANIFEST_NAME), &manifest_bytes).expect("scratch io");
        std::fs::write(case.join(&manifest.segment), &segment_bytes).expect("scratch io");
        std::fs::write(case.join(&wal_name), wal).expect("scratch io");
    };

    let mut stats = StoreSweepStats::default();
    for (idx, m) in store_mutation_schedule(wal_bytes.len(), count, seed)
        .into_iter()
        .enumerate()
    {
        let mutated = m.apply(&wal_bytes);
        if mutated == wal_bytes {
            continue;
        }
        stats.attempted += 1;
        let case_dir = scratch.join(format!("wal-case-{idx}"));
        write_case(&case_dir, &mutated);
        // Scan before opening: open repairs the file in place (torn-tail
        // truncation, possibly a recovery generation), so the forensic
        // view of what survived the corruption must be taken first.
        let scan = wal::scan(&case_dir.join(&wal_name));
        match DynamicOracle::open(&case_dir, g) {
            Err(_) => {
                stats.rejected += 1;
            }
            Ok(oracle) => {
                let scan = scan.unwrap_or_else(|e| {
                    panic!(
                        "wal sweep seed {seed:#x} mutation #{idx} {m:?}: open accepted a \
                         WAL the scan rejects ({e})"
                    )
                });
                let k = scan.records.len();
                assert!(
                    k <= pristine.records.len() && scan.records[..] == pristine.records[..k],
                    "wal sweep seed {seed:#x} mutation #{idx} {m:?}: recovered records are \
                     not a prefix of the true history"
                );
                // Reference: recover from the true history cut at the same
                // prefix — answers must agree bit for bit.
                let cut = k
                    .checked_sub(1)
                    .map_or(wal::WAL_HEADER_BYTES, |i| pristine.ends[i])
                    as usize;
                let ref_dir = scratch.join(format!("wal-ref-{idx}"));
                write_case(&ref_dir, &wal_bytes[..cut]);
                let reference = DynamicOracle::open(&ref_dir, g).unwrap_or_else(|e| {
                    panic!(
                        "wal sweep seed {seed:#x} mutation #{idx} {m:?}: the pristine \
                         {k}-record prefix failed to open ({e})"
                    )
                });
                for &(s, t) in probes {
                    let got = oracle.try_distance(s, t);
                    let expected = reference.try_distance(s, t);
                    assert_eq!(
                        got, expected,
                        "wal sweep seed {seed:#x} mutation #{idx} {m:?}: recovered oracle \
                         answered {s}->{t} differently from the {k}-record reference"
                    );
                }
                let _ = std::fs::remove_dir_all(&ref_dir);
                stats.opened_sound += 1;
            }
        }
        let _ = std::fs::remove_dir_all(&case_dir);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;

    #[test]
    fn flips_truncations_and_extensions_change_the_string() {
        let bytes = [0b1010_1010u8, 0b0101_0101];
        for m in [
            Mutation::FlipBit(0),
            Mutation::FlipBit(15),
            Mutation::Truncate(7),
            Mutation::Extend {
                extra_bits: 3,
                seed: 1,
            },
        ] {
            let (out, bits) = m.apply(&bytes, 16, None);
            assert!(
                out != bytes.as_slice() || bits != 16,
                "{m:?} left the input unchanged"
            );
        }
    }

    #[test]
    fn splice_of_whole_donor_reproduces_donor() {
        let victim = [0xFFu8];
        let donor = [0x0Fu8, 0x01];
        let m = Mutation::Splice {
            prefix_bits: 0,
            donor_skip: 0,
        };
        let (out, bits) = m.apply(&victim, 8, Some((&donor, 9)));
        assert_eq!(bits, 9);
        assert_eq!(out, vec![0x0F, 0x01]);
    }

    #[test]
    fn schedule_is_deterministic_and_covers_classes() {
        let a = mutation_schedule(200, 6, 500, 42);
        let b = mutation_schedule(200, 6, 500, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().any(|m| matches!(m, Mutation::FlipBit(_))));
        assert!(a.iter().any(|m| matches!(m, Mutation::Truncate(_))));
        assert!(a
            .iter()
            .any(|m| matches!(m, Mutation::VarintBoundary { .. })));
        assert!(a.iter().any(|m| matches!(m, Mutation::Splice { .. })));
        assert_ne!(a, mutation_schedule(200, 6, 500, 43));
    }

    #[test]
    fn sweep_on_a_small_cycle_rejects_or_stays_sound() {
        let g = generators::cycle(20);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let stats = corruption_sweep(
            &oracle,
            NodeId::new(0),
            NodeId::new(9),
            NodeId::new(4),
            NodeId::new(13),
            400,
            0xC0FFEE,
        );
        assert!(stats.attempted >= 390);
        // The checksum should reject essentially everything except
        // whole-label splices.
        assert!(stats.rejected * 10 >= stats.attempted * 9);
    }
}
