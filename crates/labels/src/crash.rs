//! Deterministic crash-point injection for the durability test harness.
//!
//! The WAL and store write protocols are only trustworthy if every
//! interleaving of "the process died *here*" has been exercised. This
//! module names the interesting points ([`CrashPoint`]) and offers two
//! injection modes:
//!
//! * **In-process** ([`arm`]): the next time the armed point is reached,
//!   the write path returns a typed injected error instead of continuing.
//!   The caller must treat the oracle as crashed — drop it and reopen
//!   from the store; the on-disk bytes are exactly what a real crash at
//!   that point would have left. Arming is one-shot and global (points
//!   are reached from background threads too), so crash-matrix tests
//!   iterate points sequentially.
//! * **Out-of-process** (`FSDL_CRASH_POINT=<name>` in the environment):
//!   reaching the named point calls [`std::process::abort`], which is how
//!   the CI kill-and-recover round trip murders a real CLI process
//!   mid-commit.
//!
//! Production builds pay one relaxed atomic load per point when nothing
//! is armed and the environment variable is absent.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::OnceLock;

/// A named point inside the WAL / store commit protocol where a crash can
/// be injected. The order below follows one update's journey: WAL append,
/// then (on a rebuild) segment write, manifest swap, and WAL rotation.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before any WAL bytes for the record are written: the update is
    /// lost entirely, as if the caller never issued it.
    BeforeWalAppend,
    /// After a torn prefix of the record's bytes reached the file but
    /// before the record was complete: recovery must truncate the tail.
    MidWalAppend,
    /// After the record is durably appended but before it is applied in
    /// memory / acknowledged: recovery must replay it.
    AfterWalAppend,
    /// Before the rebuild's segment file is written.
    BeforeSegmentWrite,
    /// After the segment is durable but before the manifest swap (the
    /// commit point): recovery must serve the previous generation.
    BeforeManifestSwap,
    /// Immediately after the manifest swap: the new generation is
    /// committed, but pruning and WAL rotation have not happened.
    AfterManifestSwap,
    /// After pruning, before the fresh WAL for the new generation is
    /// created.
    BeforeWalRotate,
    /// After the fresh WAL exists (rotation complete, ack pending).
    AfterWalRotate,
}

/// Every crash point, in commit-protocol order (the crash-matrix tests
/// iterate this).
pub const ALL_CRASH_POINTS: [CrashPoint; 8] = [
    CrashPoint::BeforeWalAppend,
    CrashPoint::MidWalAppend,
    CrashPoint::AfterWalAppend,
    CrashPoint::BeforeSegmentWrite,
    CrashPoint::BeforeManifestSwap,
    CrashPoint::AfterManifestSwap,
    CrashPoint::BeforeWalRotate,
    CrashPoint::AfterWalRotate,
];

impl CrashPoint {
    /// The stable name used by `FSDL_CRASH_POINT` and error messages.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::BeforeWalAppend => "before-wal-append",
            CrashPoint::MidWalAppend => "mid-wal-append",
            CrashPoint::AfterWalAppend => "after-wal-append",
            CrashPoint::BeforeSegmentWrite => "before-segment-write",
            CrashPoint::BeforeManifestSwap => "before-manifest-swap",
            CrashPoint::AfterManifestSwap => "after-manifest-swap",
            CrashPoint::BeforeWalRotate => "before-wal-rotate",
            CrashPoint::AfterWalRotate => "after-wal-rotate",
        }
    }

    /// Parses a [`CrashPoint::name`] back into the point.
    pub fn parse(name: &str) -> Option<CrashPoint> {
        ALL_CRASH_POINTS.iter().copied().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// `ARMED` holds the armed point's index + 1 (0 = disarmed); `ACTIVE` is
/// a cheap pre-filter so the disarmed fast path is one relaxed load.
static ARMED: AtomicU32 = AtomicU32::new(0);
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn env_point() -> Option<CrashPoint> {
    static CACHE: OnceLock<Option<CrashPoint>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("FSDL_CRASH_POINT")
            .ok()
            .as_deref()
            .and_then(CrashPoint::parse)
    })
}

fn index_of(point: CrashPoint) -> u32 {
    ALL_CRASH_POINTS
        .iter()
        .position(|&p| p == point)
        .map(|k| k as u32 + 1)
        .unwrap_or(0)
}

/// Arms `point` for one-shot in-process injection: the next write-path
/// visit to it fails with a typed injected error instead of continuing.
/// Global state — crash-matrix tests must iterate points sequentially.
pub fn arm(point: CrashPoint) {
    ARMED.store(index_of(point), Ordering::SeqCst);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Disarms any armed crash point.
pub fn disarm() {
    ARMED.store(0, Ordering::SeqCst);
    ACTIVE.store(env_point().is_some(), Ordering::SeqCst);
}

/// Checks `point` against the armed state and the `FSDL_CRASH_POINT`
/// environment variable. Returns `Err(point)` (after disarming — the
/// injection is one-shot) when armed in-process, aborts the process when
/// the environment names this point, and is a near-free no-op otherwise.
pub(crate) fn fire(point: CrashPoint) -> Result<(), CrashPoint> {
    if !ACTIVE.load(Ordering::Relaxed) {
        // Fast path; `ACTIVE` also covers the env mode (set on first use).
        if env_point().is_some() {
            ACTIVE.store(true, Ordering::SeqCst);
        } else {
            return Ok(());
        }
    }
    if env_point() == Some(point) {
        // The CI kill-and-recover harness: die exactly like a power cut.
        std::process::abort();
    }
    let want = index_of(point);
    if ARMED
        .compare_exchange(want, 0, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        ACTIVE.store(env_point().is_some(), Ordering::SeqCst);
        return Err(point);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in ALL_CRASH_POINTS {
            assert_eq!(CrashPoint::parse(p.name()), Some(p), "{p}");
        }
        assert_eq!(CrashPoint::parse("nope"), None);
    }

    #[test]
    fn arming_is_one_shot_and_point_specific() {
        disarm();
        assert_eq!(fire(CrashPoint::AfterWalAppend), Ok(()));
        arm(CrashPoint::AfterWalAppend);
        // A different point passes through untouched.
        assert_eq!(fire(CrashPoint::BeforeWalAppend), Ok(()));
        assert_eq!(
            fire(CrashPoint::AfterWalAppend),
            Err(CrashPoint::AfterWalAppend)
        );
        // One-shot: the second visit continues normally.
        assert_eq!(fire(CrashPoint::AfterWalAppend), Ok(()));
        disarm();
    }
}
