//! The decoder: answers forbidden-set distance queries from labels alone.
//!
//! A query `(s, t, F)` receives `L(s)`, `L(t)` and the labels of every
//! forbidden vertex and edge, and *no other information about the graph*.
//! Following the paper, the decoder
//!
//! 1. assembles the sketch graph `H` from the level graphs `H_i(v)` encoded
//!    in the labels of `F̄ = {s, t} ∪ F`, admitting a level-`i` edge only if
//!    it is certifiably outside the protected ball `PB_i(f) = B(f, λᵢ)` of
//!    every fault `f` (so the underlying path avoids `F`; Lemma 2.3), and
//!    admitting a lowest-level real edge only when neither endpoint nor the
//!    edge itself is forbidden;
//! 2. runs Dijkstra from `s` to `t` in `H` and returns the result, which is
//!    `≥ d_{G∖F}(s,t)` always and `≤ (1+ε)·d_{G∖F}(s,t)` by Lemma 2.4.
//!
//! ## Protected-ball certificates
//!
//! For an endpoint `x` that is a stored net point, membership in `PB_i(f)`
//! is decided *exactly* from `f`'s level-`i` point list (absence means
//! `d_G(f,x) > rᵢ > λᵢ`). For an endpoint that is a label owner (`s`, `t`,
//! or a fault), the decoder uses a certified lower bound via the owner's
//! nearest stored point `x*`: `est = d(f, x*) − d(owner, x*) ≤ d(f, owner)`,
//! reading `d(f, x*)` from `f`'s label. Admitting on `est > λᵢ` is sound;
//! the enlarged clearance radius `μᵢ = λᵢ + 3ρᵢ` (see [`SchemeParams`])
//! keeps the existence analysis intact. Edge faults contribute their
//! canonical (smaller-id) endpoint as a protected-ball center — any short
//! path through the faulty edge must visit that endpoint — while their
//! endpoints remain usable by lowest-level real edges.

use std::collections::{HashMap, HashSet};

use fsdl_graph::{DijkstraScratch, Dist, Edge, NodeId, SketchGraph};

use crate::label::{Label, LabelPoint};
use crate::params::SchemeParams;

/// Where a sketch edge came from: the level that admitted it and whether it
/// is a real (weight-1) graph edge or a virtual (shortest-path) edge. Used
/// by the trace experiments that reproduce the paper's Figures 1 and 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeProvenance {
    /// The label level `i` that admitted the (minimum-weight copy of the)
    /// edge.
    pub level: u32,
    /// `true` for lowest-level real edges of `G`.
    pub real: bool,
    /// The edge weight (`d_G` between the endpoints).
    pub weight: u64,
}

/// The sketch graph `H(s, t, F)` with provenance, as assembled by
/// [`build_sketch`].
#[derive(Clone, Debug)]
pub struct Sketch {
    /// The weighted sketch graph `H`.
    pub graph: SketchGraph,
    /// The forbidden vertices named by the query.
    pub forbidden: HashSet<NodeId>,
    /// Provenance of each admitted edge (keyed by canonical endpoints).
    pub edge_info: HashMap<Edge, EdgeProvenance>,
}

/// The labels given to the decoder for one query `(s, t, F)`.
#[derive(Clone, Debug, Default)]
pub struct QueryLabels<'a> {
    /// Labels of forbidden vertices.
    pub fault_vertices: Vec<&'a Label>,
    /// Labels of the two endpoints of each forbidden edge.
    pub fault_edges: Vec<(&'a Label, &'a Label)>,
}

impl<'a> QueryLabels<'a> {
    /// A failure-free query input.
    pub fn none() -> Self {
        QueryLabels::default()
    }

    /// `|F|`: number of forbidden elements.
    pub fn len(&self) -> usize {
        self.fault_vertices.len() + self.fault_edges.len()
    }

    /// `true` when the forbidden set is empty.
    pub fn is_empty(&self) -> bool {
        self.fault_vertices.is_empty() && self.fault_edges.is_empty()
    }
}

/// The decoder's answer to one query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryAnswer {
    /// The `(1+ε)`-approximate distance `δ(s,t,F)`; [`Dist::INFINITE`] when
    /// `s` and `t` are not connected in `G ∖ F` (or an endpoint is
    /// forbidden).
    pub distance: Dist,
    /// The witnessing path in the sketch graph `H` (a sequence of graph
    /// vertices starting at `s` and ending at `t`, each consecutive pair
    /// joined by a safe virtual or real edge). Empty when unreachable.
    pub path: Vec<NodeId>,
    /// Size of the sketch graph that was built (for Lemma 2.6 accounting).
    pub sketch_vertices: usize,
    /// Number of admitted sketch edges.
    pub sketch_edges: usize,
}

/// Reusable buffers for the allocation-free decode fast path.
///
/// One scratch owns everything a query would otherwise allocate: the
/// sketch-graph arena and intern table, the Dijkstra queue (heap or Dial
/// buckets), the sorted forbidden sets, the provider dedup mask, and the
/// per-level center directory. After a few warm-up queries every buffer has
/// grown to the working-set size and [`query_with_scratch`] allocates
/// nothing but the returned answer.
///
/// A scratch carries no query state between calls by construction: every
/// decode begins by bumping the generation counter and clearing all buffers
/// (capacity-retained), so a scratch previously used against a *different*
/// labeling — or left mid-state by a panicking caller — is reset rather
/// than trusted.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, NodeId};
/// use fsdl_labels::{query, query_with_scratch, DecodeScratch, Labeling, QueryLabels, SchemeParams};
///
/// let g = generators::cycle(16);
/// let labeling = Labeling::build(&g, SchemeParams::new(1.0, 16));
/// let (ls, lt) = (labeling.label_of(NodeId::new(0)), labeling.label_of(NodeId::new(3)));
/// let mut scratch = DecodeScratch::new();
/// for _ in 0..3 {
///     let warm = query_with_scratch(
///         labeling.params(), &ls, &lt, &QueryLabels::none(), &mut scratch,
///     );
///     assert_eq!(warm, query(labeling.params(), &ls, &lt, &QueryLabels::none()));
/// }
/// ```
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Generation counter: bumped at the start of every decode so state is
    /// invalidated wholesale, never selectively trusted across queries.
    epoch: u64,
    sketch: SketchGraph,
    dijkstra: DijkstraScratch,
    /// Sorted, deduplicated — membership via binary search.
    forbidden_vertices: Vec<NodeId>,
    /// Sorted, deduplicated — membership via binary search.
    forbidden_edges: Vec<Edge>,
    seen_owners: Vec<NodeId>,
    /// Per chain position: is this label the first occurrence of its owner
    /// *and* usable? Mirrors the allocating path's provider dedup.
    provider_mask: Vec<bool>,
    /// Per-level directory of protected-ball centers.
    center_kinds: Vec<(NodeId, CenterKind)>,
    /// Per provider-level point admission masks: bit `k` of point `p`'s
    /// word group is set when `p` is *near* center `k` (inside its
    /// protected ball at this level). Filled by one sorted merge per
    /// center instead of per-edge searches.
    near_points: Vec<u64>,
    /// The owner-endpoint near mask (one word group), same bit layout.
    near_owner: Vec<u64>,
    /// Edge provenance, filled only when tracing asks for it.
    edge_info: HashMap<Edge, EdgeProvenance>,
    /// Buffer for the batched word-parallel varint reader used when a
    /// label is materialized from a segment on the query path.
    varints: crate::codec::VarintScratch,
}

impl DecodeScratch {
    /// Creates an empty scratch; buffers grow during the first queries.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// Number of decodes begun with this scratch (each one starts a new
    /// generation; useful for asserting reuse in tests).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drops all cached query state, retaining buffer capacity. Every
    /// decode entry point calls this first, so explicit calls are only
    /// needed to release sensitive state early.
    pub fn reset(&mut self) {
        self.epoch += 1;
        self.sketch.reset();
        self.forbidden_vertices.clear();
        self.forbidden_edges.clear();
        self.seen_owners.clear();
        self.provider_mask.clear();
        self.center_kinds.clear();
        self.near_points.clear();
        self.near_owner.clear();
        self.edge_info.clear();
    }

    /// The varint batch buffer, for materializing segment labels on the
    /// query path without allocating per label.
    pub(crate) fn varints_mut(&mut self) -> &mut crate::codec::VarintScratch {
        &mut self.varints
    }

    /// Is `v` one of the forbidden vertices of the query just decoded?
    pub(crate) fn is_forbidden(&self, v: NodeId) -> bool {
        self.forbidden_vertices.binary_search(&v).is_ok()
    }

    pub(crate) fn sketch(&self) -> &SketchGraph {
        &self.sketch
    }

    pub(crate) fn edge_info(&self) -> &HashMap<Edge, EdgeProvenance> {
        &self.edge_info
    }

    /// Split borrow for running Dijkstra on the assembled sketch.
    pub(crate) fn sketch_and_dijkstra(&mut self) -> (&SketchGraph, &mut DijkstraScratch) {
        (&self.sketch, &mut self.dijkstra)
    }
}

/// How a protected-ball center participates in edge admission at one level.
#[derive(Clone, Copy, Debug)]
enum CenterKind {
    /// The center's ball cannot be checked (unusable label, or a point list
    /// that is not strictly sorted so binary search would be unsound):
    /// vetoes every edge — the conservative, sound direction.
    Veto,
    /// Strictly sorted level points, searched in place. A missing level
    /// stores no points, so every lookup certifies "far" — exactly like
    /// the allocating path's empty map.
    Points,
}

/// Answers the query `(s, t, F)` from labels alone.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, NodeId};
/// use fsdl_labels::{query, Labeling, QueryLabels, SchemeParams};
///
/// let g = generators::cycle(16);
/// let labeling = Labeling::build(&g, SchemeParams::new(1.0, 16));
/// let (ls, lt, lf) = (
///     labeling.label_of(NodeId::new(0)),
///     labeling.label_of(NodeId::new(3)),
///     labeling.label_of(NodeId::new(1)),
/// );
/// let faults = QueryLabels { fault_vertices: vec![&lf], fault_edges: vec![] };
/// let answer = query(labeling.params(), &ls, &lt, &faults);
/// assert_eq!(answer.distance.finite(), Some(13)); // the long way round
/// ```
///
/// # Robustness
///
/// The decoder never panics on label *content*. Labels whose level range
/// disagrees with `params` (mixing labelings, or hand-built labels) are
/// handled conservatively and soundly: such a label contributes no sketch
/// edges, and if it names a fault, every candidate edge is suppressed —
/// the answer can only move toward `INFINITE`, never below
/// `d_{G∖F}(s,t)`. Out-of-range edge endpoint indices (impossible for
/// labels from [`crate::codec::decode`], which validates them) are
/// skipped rather than indexed.
pub fn query(
    params: &SchemeParams,
    source: &Label,
    target: &Label,
    faults: &QueryLabels<'_>,
) -> QueryAnswer {
    query_with_scratch(params, source, target, faults, &mut DecodeScratch::new())
}

/// [`query`] on the *allocating* decode path: per-query hash maps and a
/// fresh sketch graph, with only the Dijkstra buffers reused. Kept verbatim
/// as the differential reference for [`query_with_scratch`] — the T14
/// latency experiment asserts bit-identity between the two and measures
/// one against the other. Same answer as [`query`], bit for bit.
pub fn query_with(
    params: &SchemeParams,
    source: &Label,
    target: &Label,
    faults: &QueryLabels<'_>,
    scratch: &mut DijkstraScratch,
) -> QueryAnswer {
    let sketch = build_sketch(params, source, target, faults);
    let (h, forbidden) = (&sketch.graph, &sketch.forbidden);
    let s = source.owner;
    let t = target.owner;
    if forbidden.contains(&s) || forbidden.contains(&t) {
        return QueryAnswer {
            distance: Dist::INFINITE,
            path: Vec::new(),
            sketch_vertices: h.num_vertices(),
            sketch_edges: h.num_edges(),
        };
    }
    if s == t {
        return QueryAnswer {
            distance: Dist::ZERO,
            path: vec![s],
            sketch_vertices: h.num_vertices(),
            sketch_edges: h.num_edges(),
        };
    }
    match h.shortest_path_with(s, t, scratch) {
        Some((d, path)) => QueryAnswer {
            // A finite sketch distance that does not fit in `Dist` must
            // widen to INFINITE (an overestimate stays sound); clamping
            // down would return a finite underestimate and break the
            // Theorem 2.1 lower-bound guarantee.
            distance: Dist::try_new(d).unwrap_or(Dist::INFINITE),
            path,
            sketch_vertices: h.num_vertices(),
            sketch_edges: h.num_edges(),
        },
        None => QueryAnswer {
            distance: Dist::INFINITE,
            path: Vec::new(),
            sketch_vertices: h.num_vertices(),
            sketch_edges: h.num_edges(),
        },
    }
}

/// [`query`] with a caller-provided [`DecodeScratch`] — the allocation-free
/// fast path for serving loops, where each worker reuses one scratch across
/// many queries. Same answer as [`query`] and [`query_with`], bit for bit:
/// sorted-slice point lookups replace the per-center hash maps (sound
/// because [`Label::validate`] guarantees strictly sorted point lists, and
/// any list that is not is conservatively treated as unverifiable), and
/// the sketch Dijkstra runs on a Dial bucket queue that settles vertices
/// in the same `(distance, index)` order as the heap.
pub fn query_with_scratch(
    params: &SchemeParams,
    source: &Label,
    target: &Label,
    faults: &QueryLabels<'_>,
    scratch: &mut DecodeScratch,
) -> QueryAnswer {
    build_sketch_scratch(params, source, &[target], faults, false, scratch);
    let (s, t) = (source.owner, target.owner);
    let sketch_vertices = scratch.sketch.num_vertices();
    let sketch_edges = scratch.sketch.num_edges();
    if scratch.is_forbidden(s) || scratch.is_forbidden(t) {
        return QueryAnswer {
            distance: Dist::INFINITE,
            path: Vec::new(),
            sketch_vertices,
            sketch_edges,
        };
    }
    if s == t {
        return QueryAnswer {
            distance: Dist::ZERO,
            path: vec![s],
            sketch_vertices,
            sketch_edges,
        };
    }
    let (sketch, dijkstra) = scratch.sketch_and_dijkstra();
    match sketch.shortest_path_with(s, t, dijkstra) {
        Some((d, path)) => QueryAnswer {
            // Widen unrepresentable finite distances to INFINITE (sound
            // overestimate), never clamp down — as in [`query_with`].
            distance: Dist::try_new(d).unwrap_or(Dist::INFINITE),
            path,
            sketch_vertices,
            sketch_edges,
        },
        None => QueryAnswer {
            distance: Dist::INFINITE,
            path: Vec::new(),
            sketch_vertices,
            sketch_edges,
        },
    }
}

/// [`query_many`] with a caller-provided [`DecodeScratch`]; same answers,
/// bit for bit, without the per-call sketch and dedup allocations.
pub fn query_many_with_scratch(
    params: &SchemeParams,
    source: &Label,
    targets: &[&Label],
    faults: &QueryLabels<'_>,
    scratch: &mut DecodeScratch,
) -> Vec<Dist> {
    // Duplicate targets need no pre-dedup here: the provider mask keeps the
    // first occurrence of each owner and interning is idempotent, so the
    // assembled sketch matches `query_many`'s exactly.
    build_sketch_scratch(params, source, targets, faults, false, scratch);
    let s = source.owner;
    let source_forbidden = scratch.is_forbidden(s);
    let have_table = !source_forbidden && {
        let (sketch, dijkstra) = scratch.sketch_and_dijkstra();
        sketch.distances_from_with(s, dijkstra)
    };
    targets
        .iter()
        .map(|t| {
            if source_forbidden || scratch.is_forbidden(t.owner) {
                return Dist::INFINITE;
            }
            if t.owner == s {
                return Dist::ZERO;
            }
            if !have_table {
                return Dist::INFINITE;
            }
            match scratch
                .sketch
                .index_of(t.owner)
                .and_then(|idx| scratch.dijkstra.distance_at(idx as usize))
            {
                // Widen unrepresentable finite distances to INFINITE
                // (sound overestimate), never clamp down.
                Some(d) => Dist::try_new(d).unwrap_or(Dist::INFINITE),
                None => Dist::INFINITE,
            }
        })
        .collect()
}

/// Answers one-to-many queries `(s, tᵢ, F)` for a batch of targets with a
/// *single* sketch construction and a *single* Dijkstra pass.
///
/// The sketch built from `{s} ∪ {tᵢ} ∪ F` is a superset of each individual
/// `(s, tᵢ, F)` sketch, so every per-target answer is at most the
/// single-query answer (still `≤ (1+ε)·d_{G∖F}`) and — because edge
/// admission is independent of which labels contributed — still safe
/// (`≥ d_{G∖F}`). This is the paper's hand-held-device usage pattern:
/// download the labels for your region once, then answer all local queries.
///
/// Returns one distance per target, in order. Inconsistent labels are
/// handled as in [`query`]: conservatively, soundly, and without
/// panicking.
pub fn query_many(
    params: &SchemeParams,
    source: &Label,
    targets: &[&Label],
    faults: &QueryLabels<'_>,
) -> Vec<Dist> {
    let s = source.owner;
    // Dedupe repeated target labels by owner before sketch assembly: a
    // batch often names the same region repeatedly, and each duplicate
    // would otherwise be carried through provider collection.
    let mut endpoints: Vec<&Label> = Vec::with_capacity(targets.len() + 1);
    let mut distinct: HashSet<NodeId> = HashSet::with_capacity(targets.len() + 1);
    distinct.insert(s);
    endpoints.push(source);
    for t in targets {
        if distinct.insert(t.owner) {
            endpoints.push(t);
        }
    }
    let sketch = build_sketch_from(params, &endpoints, faults);
    let (h, forbidden) = (&sketch.graph, &sketch.forbidden);
    // Loop-invariant over targets: hoisted out of the per-target closure.
    let source_forbidden = forbidden.contains(&s);
    let dist_table = if source_forbidden {
        None
    } else {
        h.distances_from(s)
    };
    targets
        .iter()
        .map(|t| {
            if source_forbidden || forbidden.contains(&t.owner) {
                return Dist::INFINITE;
            }
            if t.owner == s {
                return Dist::ZERO;
            }
            match (&dist_table, h.index_of(t.owner)) {
                (Some(table), Some(idx)) => {
                    let d = table[idx as usize];
                    if d == u64::MAX {
                        Dist::INFINITE
                    } else {
                        // Widen unrepresentable finite distances to
                        // INFINITE (sound overestimate), never clamp down.
                        Dist::try_new(d).unwrap_or(Dist::INFINITE)
                    }
                }
                _ => Dist::INFINITE,
            }
        })
        .collect()
}

/// Builds the sketch graph `H(s, t, F)` from the labels (exposed for tests,
/// the routing layer, and the trace experiments).
pub fn build_sketch(
    params: &SchemeParams,
    source: &Label,
    target: &Label,
    faults: &QueryLabels<'_>,
) -> Sketch {
    build_sketch_from(params, &[source, target], faults)
}

/// Core sketch assembly over an arbitrary set of endpoint labels (two for a
/// plain query, `1 + |targets|` for [`query_many`]).
fn build_sketch_from(
    params: &SchemeParams,
    endpoints: &[&Label],
    faults: &QueryLabels<'_>,
) -> Sketch {
    // A label is usable only when its level range agrees with `params`;
    // anything else (a label from a different labeling, or hand-built
    // data) must not feed edges into H.
    let usable = |l: &Label| l.first_level == params.c() + 1;

    // Collect F-bar: all labels whose level graphs feed H, deduplicated by
    // owner. Unusable labels contribute no level graphs (sound: fewer
    // sketch edges can only overestimate).
    let mut providers: Vec<&Label> = Vec::new();
    let mut seen: HashSet<NodeId> = HashSet::new();
    for l in endpoints
        .iter()
        .copied()
        .chain(faults.fault_vertices.iter().copied())
        .chain(faults.fault_edges.iter().flat_map(|(a, b)| [*a, *b]))
    {
        if seen.insert(l.owner) && usable(l) {
            providers.push(l);
        }
    }

    let forbidden_vertices: HashSet<NodeId> =
        faults.fault_vertices.iter().map(|l| l.owner).collect();
    let forbidden_edges: HashSet<Edge> = faults
        .fault_edges
        .iter()
        .map(|(a, b)| Edge::new(a.owner, b.owner))
        .collect();

    // Protected-ball centers: every forbidden vertex, plus the canonical
    // (smaller-id) endpoint of every forbidden edge.
    let mut centers: Vec<&Label> = faults.fault_vertices.clone();
    for (a, b) in &faults.fault_edges {
        centers.push(if a.owner <= b.owner { a } else { b });
    }

    let mut h = SketchGraph::new();
    let mut edge_info: HashMap<Edge, EdgeProvenance> = HashMap::new();
    for l in endpoints {
        h.intern(l.owner);
    }

    for i in params.levels() {
        let lambda = params.lambda(i);
        // Exact distance maps of each center at this level. A center whose
        // label is unusable gets `None`: its protected ball cannot be
        // checked, so no edge may be admitted while it is present (the
        // conservative, sound direction).
        let center_maps: Vec<(NodeId, Option<HashMap<NodeId, u32>>)> = centers
            .iter()
            .map(|c| {
                let map = usable(c).then(|| {
                    c.level(i)
                        .map(|lvl| {
                            lvl.points
                                .iter()
                                .map(|p| (p.vertex, p.dist))
                                .collect::<HashMap<_, _>>()
                        })
                        .unwrap_or_default()
                });
                (c.owner, map)
            })
            .collect();

        for label in &providers {
            let Some(level) = label.level(i) else {
                continue;
            };
            // The owner's nearest stored point, for the est-certificate.
            let anchor = level
                .points
                .iter()
                .min_by_key(|p| (p.dist, p.vertex))
                .map(|p| (p.vertex, p.dist));

            // Owner edges (owner, x) for stored points within lambda.
            for p in &level.points {
                if p.vertex == label.owner || u64::from(p.dist) > lambda {
                    continue;
                }
                if edge_admitted(
                    Endpoint::Special {
                        vertex: label.owner,
                        anchor,
                    },
                    Endpoint::NetPoint(p.vertex),
                    lambda,
                    &center_maps,
                ) {
                    h.add_edge(label.owner, p.vertex, u64::from(p.dist));
                    record_edge(
                        &mut edge_info,
                        label.owner,
                        p.vertex,
                        i,
                        false,
                        u64::from(p.dist),
                    );
                }
            }

            // Virtual edges between stored points. Indices are validated
            // by the codec and `Label::validate`; skip (never index past
            // the point list) if a hand-built label violates that.
            for e in &level.virtual_edges {
                let (Some(px), Some(py)) = (
                    level.points.get(e.a as usize),
                    level.points.get(e.b as usize),
                ) else {
                    continue;
                };
                let (x, y) = (px.vertex, py.vertex);
                if edge_admitted(
                    Endpoint::NetPoint(x),
                    Endpoint::NetPoint(y),
                    lambda,
                    &center_maps,
                ) {
                    h.add_edge(x, y, u64::from(e.dist));
                    record_edge(&mut edge_info, x, y, i, false, u64::from(e.dist));
                }
            }

            // Lowest-level real edges: admitted when untouched by F.
            for e in &level.real_edges {
                let (Some(pu), Some(pw)) = (
                    level.points.get(e.a as usize),
                    level.points.get(e.b as usize),
                ) else {
                    continue;
                };
                let (u, w) = (pu.vertex, pw.vertex);
                if forbidden_vertices.contains(&u) || forbidden_vertices.contains(&w) {
                    continue;
                }
                if !forbidden_edges.is_empty() && forbidden_edges.contains(&Edge::new(u, w)) {
                    continue;
                }
                h.add_edge(u, w, 1);
                record_edge(&mut edge_info, u, w, i, true, 1);
            }
        }
    }

    Sketch {
        graph: h,
        forbidden: forbidden_vertices,
        edge_info,
    }
}

/// Sketch assembly into a [`DecodeScratch`], allocation-free after
/// warm-up. The endpoint set is `{source} ∪ extra_endpoints` (one extra for
/// a plain query, the target batch for [`query_many_with_scratch`]).
/// Produces the same sketch as [`build_sketch_from`] — same intern order,
/// same `add_edge` sequence — with provenance recorded only when `record`
/// is set (the tracing path).
pub(crate) fn build_sketch_scratch(
    params: &SchemeParams,
    source: &Label,
    extra_endpoints: &[&Label],
    faults: &QueryLabels<'_>,
    record: bool,
    scratch: &mut DecodeScratch,
) {
    scratch.reset();
    let DecodeScratch {
        sketch,
        forbidden_vertices,
        forbidden_edges,
        seen_owners,
        provider_mask,
        center_kinds,
        near_points,
        near_owner,
        edge_info,
        ..
    } = scratch;
    let usable = |l: &Label| l.first_level == params.c() + 1;

    // The F-bar chain, in the same order the allocating path walks it.
    let chain = || {
        std::iter::once(source)
            .chain(extra_endpoints.iter().copied())
            .chain(faults.fault_vertices.iter().copied())
            .chain(faults.fault_edges.iter().flat_map(|(a, b)| [*a, *b]))
    };

    // Provider mask: first occurrence of an owner wins; unusable labels
    // contribute no level graphs (sound: fewer sketch edges can only
    // overestimate). The chain is short, so the linear dedup scan beats a
    // hash set without allocating.
    for l in chain() {
        let first = !seen_owners.contains(&l.owner);
        if first {
            seen_owners.push(l.owner);
        }
        provider_mask.push(first && usable(l));
    }

    for l in &faults.fault_vertices {
        forbidden_vertices.push(l.owner);
    }
    forbidden_vertices.sort_unstable();
    forbidden_vertices.dedup();
    for (a, b) in &faults.fault_edges {
        forbidden_edges.push(Edge::new(a.owner, b.owner));
    }
    forbidden_edges.sort_unstable();
    forbidden_edges.dedup();

    sketch.intern(source.owner);
    for l in extra_endpoints {
        sketch.intern(l.owner);
    }

    let num_centers = faults.fault_vertices.len() + faults.fault_edges.len();
    // One mask word group holds a near/far bit per center.
    let words = num_centers.div_ceil(64);
    for i in params.levels() {
        let lambda = params.lambda(i);
        center_kinds.clear();
        let mut any_veto = false;
        for k in 0..num_centers {
            let c = center_label(faults, k);
            let kind = if !usable(c) {
                CenterKind::Veto
            } else {
                match c.level(i) {
                    None => CenterKind::Points,
                    Some(lvl) if strictly_sorted(&lvl.points) => CenterKind::Points,
                    Some(_) => CenterKind::Veto,
                }
            };
            any_veto |= matches!(kind, CenterKind::Veto);
            center_kinds.push((c.owner, kind));
        }

        for (pos, label) in chain().enumerate() {
            if !provider_mask[pos] {
                continue;
            }
            let Some(level) = label.level(i) else {
                continue;
            };
            // The owner's nearest stored point, for the est-certificate.
            let anchor = level
                .points
                .iter()
                .min_by_key(|p| (p.dist, p.vertex))
                .map(|p| (p.vertex, p.dist));

            // Admission strategy for this provider level. With centers
            // present and none vetoing, precompute per-point near masks by
            // merging the (sorted) provider and center point lists — one
            // linear pass per center instead of a search per candidate
            // edge. Edge (x, y) is then admitted iff no center is near
            // both endpoints: `near[x] & near[y] == 0`, the pointwise
            // complement of `edge_admitted`'s ∀-centers test. Providers
            // with out-of-order points (hand-built labels) fall back to
            // per-edge searches, which impose no order.
            let merged = num_centers > 0 && !any_veto && sorted_nondecreasing(&level.points) && {
                near_points.clear();
                near_points.resize(level.points.len() * words, 0);
                near_owner.clear();
                near_owner.resize(words, 0);
                for (k, &(center, _)) in center_kinds.iter().enumerate() {
                    let cpoints = center_points(faults, k, i);
                    let (w, bit) = (k / 64, 1u64 << (k % 64));
                    let owner_endpoint = Endpoint::Special {
                        vertex: label.owner,
                        anchor,
                    };
                    if !endpoint_far_sorted(owner_endpoint, center, cpoints, lambda) {
                        near_owner[w] |= bit;
                    }
                    let mut b = 0usize;
                    for (pi, p) in level.points.iter().enumerate() {
                        while b < cpoints.len() && cpoints[b].vertex < p.vertex {
                            b += 1;
                        }
                        let near = p.vertex == center
                            || (b < cpoints.len()
                                && cpoints[b].vertex == p.vertex
                                && u64::from(cpoints[b].dist) <= lambda);
                        if near {
                            near_points[pi * words + w] |= bit;
                        }
                    }
                }
                true
            };
            let row = |pi: usize| &near_points[pi * words..(pi + 1) * words];
            let disjoint = |a: &[u64], b: &[u64]| a.iter().zip(b).all(|(x, y)| x & y == 0);

            // Owner and virtual edges are all vetoed when any center's
            // ball is uncheckable; real edges below don't go through
            // admission and are still processed.
            if !any_veto {
                // Owner edges (owner, x) for stored points within lambda.
                for (pi, p) in level.points.iter().enumerate() {
                    if p.vertex == label.owner || u64::from(p.dist) > lambda {
                        continue;
                    }
                    let admitted = if num_centers == 0 {
                        true
                    } else if merged {
                        disjoint(near_owner, row(pi))
                    } else {
                        edge_admitted_sorted(
                            Endpoint::Special {
                                vertex: label.owner,
                                anchor,
                            },
                            Endpoint::NetPoint(p.vertex),
                            lambda,
                            i,
                            faults,
                            center_kinds,
                        )
                    };
                    if admitted {
                        sketch.add_edge(label.owner, p.vertex, u64::from(p.dist));
                        if record {
                            record_edge(
                                edge_info,
                                label.owner,
                                p.vertex,
                                i,
                                false,
                                u64::from(p.dist),
                            );
                        }
                    }
                }

                // Virtual edges between stored points. Indices are
                // validated by the codec and `Label::validate`; skip
                // (never index past the point list) if a hand-built label
                // violates that.
                for e in &level.virtual_edges {
                    let (Some(px), Some(py)) = (
                        level.points.get(e.a as usize),
                        level.points.get(e.b as usize),
                    ) else {
                        continue;
                    };
                    let (x, y) = (px.vertex, py.vertex);
                    let admitted = if num_centers == 0 {
                        true
                    } else if merged {
                        disjoint(row(e.a as usize), row(e.b as usize))
                    } else {
                        edge_admitted_sorted(
                            Endpoint::NetPoint(x),
                            Endpoint::NetPoint(y),
                            lambda,
                            i,
                            faults,
                            center_kinds,
                        )
                    };
                    if admitted {
                        sketch.add_edge(x, y, u64::from(e.dist));
                        if record {
                            record_edge(edge_info, x, y, i, false, u64::from(e.dist));
                        }
                    }
                }
            }

            // Lowest-level real edges: admitted when untouched by F.
            for e in &level.real_edges {
                let (Some(pu), Some(pw)) = (
                    level.points.get(e.a as usize),
                    level.points.get(e.b as usize),
                ) else {
                    continue;
                };
                let (u, w) = (pu.vertex, pw.vertex);
                if forbidden_vertices.binary_search(&u).is_ok()
                    || forbidden_vertices.binary_search(&w).is_ok()
                {
                    continue;
                }
                if !forbidden_edges.is_empty()
                    && forbidden_edges.binary_search(&Edge::new(u, w)).is_ok()
                {
                    continue;
                }
                sketch.add_edge(u, w, 1);
                if record {
                    record_edge(edge_info, u, w, i, true, 1);
                }
            }
        }
    }
}

/// The `k`-th protected-ball center label: forbidden vertices first, then
/// the canonical (smaller-id) endpoint of each forbidden edge — the same
/// order the allocating path materializes its `centers` vector in.
fn center_label<'a>(faults: &QueryLabels<'a>, k: usize) -> &'a Label {
    let nv = faults.fault_vertices.len();
    if k < nv {
        faults.fault_vertices[k]
    } else {
        let (a, b) = faults.fault_edges[k - nv];
        if a.owner <= b.owner {
            a
        } else {
            b
        }
    }
}

/// The `k`-th center's level-`i` point slice (empty when the level is
/// absent — absence of a point then certifies "far", exactly like the
/// allocating path's empty map).
fn center_points<'a>(faults: &QueryLabels<'a>, k: usize, level: u32) -> &'a [LabelPoint] {
    center_label(faults, k)
        .level(level)
        .map(|lvl| lvl.points.as_slice())
        .unwrap_or(&[])
}

/// Point lists must be strictly sorted by vertex for binary search to be
/// exact; [`Label::validate`] enforces this for decoded labels, but the
/// decoder re-checks so hand-built labels degrade soundly (to a veto)
/// instead of silently missing entries.
fn strictly_sorted(points: &[LabelPoint]) -> bool {
    points.windows(2).all(|w| w[0].vertex < w[1].vertex)
}

/// Weaker order check for the merge-based admission pass: the *provider's*
/// points only need to be non-decreasing for the two-pointer merge to
/// visit every center entry (duplicates are fine — the merge cursor
/// simply stays put).
fn sorted_nondecreasing(points: &[LabelPoint]) -> bool {
    points.windows(2).all(|w| w[0].vertex <= w[1].vertex)
}

/// Looks up `v` in a strictly sorted point list, returning its stored
/// distance. Galloping search: probe exponentially to bracket `v`, then
/// binary-search the bracket — for the short lists of the common small-`|F|`
/// case this touches fewer cache lines than a full-width binary search.
fn lookup_sorted(points: &[LabelPoint], v: NodeId) -> Option<u32> {
    let mut hi = 1usize;
    while hi < points.len() && points[hi].vertex < v {
        hi <<= 1;
    }
    let lo = hi >> 1;
    // points[hi] (when in range) satisfies vertex >= v, so keep it in the
    // searched bracket.
    let end = if hi < points.len() {
        hi + 1
    } else {
        points.len()
    };
    points[lo..end]
        .binary_search_by_key(&v, |p| p.vertex)
        .ok()
        .map(|k| points[lo + k].dist)
}

/// [`edge_admitted`] over sorted point slices read directly from the fault
/// labels — no per-level maps. Center `k`'s kind comes from the scratch
/// directory; its points are resolved on the fly via [`center_points`].
fn edge_admitted_sorted(
    x: Endpoint,
    y: Endpoint,
    lambda: u64,
    level: u32,
    faults: &QueryLabels<'_>,
    centers: &[(NodeId, CenterKind)],
) -> bool {
    centers
        .iter()
        .enumerate()
        .all(|(k, &(center, kind))| match kind {
            CenterKind::Veto => false,
            CenterKind::Points => {
                let points = center_points(faults, k, level);
                endpoint_far_sorted(x, center, points, lambda)
                    || endpoint_far_sorted(y, center, points, lambda)
            }
        })
}

/// [`endpoint_far`] over a strictly sorted point slice: same certificates,
/// binary search instead of hashing.
fn endpoint_far_sorted(e: Endpoint, center: NodeId, points: &[LabelPoint], lambda: u64) -> bool {
    match e {
        Endpoint::NetPoint(x) => {
            if x == center {
                return false;
            }
            match lookup_sorted(points, x) {
                // Stored net points within r_i are all in the center's
                // list; absence certifies d > r_i > lambda.
                None => true,
                Some(d) => u64::from(d) > lambda,
            }
        }
        Endpoint::Special { vertex, anchor } => {
            if vertex == center {
                return false;
            }
            // If the owner happens to be a stored net point itself, its own
            // presence/absence in the center list is already exact.
            if let Some(d) = lookup_sorted(points, vertex) {
                return u64::from(d) > lambda;
            }
            let Some((xstar, d_ux)) = anchor else {
                // No stored point at all (isolated region): cannot certify.
                return false;
            };
            match lookup_sorted(points, xstar) {
                // d(center, x*) > r_i, hence
                // d(center, owner) >= d(center, x*) - d(owner, x*)
                //                  >  r_i - rho_i > lambda.
                None => true,
                Some(d_fx) => u64::from(d_fx).saturating_sub(u64::from(d_ux)) > lambda,
            }
        }
    }
}

/// Records provenance for the minimum-weight copy of an admitted edge.
fn record_edge(
    info: &mut HashMap<Edge, EdgeProvenance>,
    a: NodeId,
    b: NodeId,
    level: u32,
    real: bool,
    weight: u64,
) {
    if a == b {
        return;
    }
    let key = Edge::new(a, b);
    let entry = EdgeProvenance {
        level,
        real,
        weight,
    };
    info.entry(key)
        .and_modify(|e| {
            if weight < e.weight {
                *e = entry;
            }
        })
        .or_insert(entry);
}

/// One endpoint of a candidate sketch edge, for protected-ball checking.
#[derive(Clone, Copy, Debug)]
enum Endpoint {
    /// A stored net point: exact membership via the center's point map.
    NetPoint(NodeId),
    /// A label owner: certified via its nearest stored point
    /// `anchor = (x*, d(owner, x*))`.
    Special {
        vertex: NodeId,
        anchor: Option<(NodeId, u32)>,
    },
}

/// Is the candidate edge `(x, y)` (of length `≤ λ`) admissible: for every
/// protected-ball center, at least one endpoint certifiably outside
/// `B(center, λ)`? A center with no usable point map (`None`) can never
/// certify anything, so it vetoes every edge.
fn edge_admitted(
    x: Endpoint,
    y: Endpoint,
    lambda: u64,
    center_maps: &[(NodeId, Option<HashMap<NodeId, u32>>)],
) -> bool {
    center_maps.iter().all(|(center, map)| match map {
        None => false,
        Some(map) => endpoint_far(x, *center, map, lambda) || endpoint_far(y, *center, map, lambda),
    })
}

/// Certifies `d_G(endpoint, center) > λ` from label data (sound: never
/// returns `true` when the endpoint is actually inside the protected ball).
fn endpoint_far(
    e: Endpoint,
    center: NodeId,
    center_map: &HashMap<NodeId, u32>,
    lambda: u64,
) -> bool {
    match e {
        Endpoint::NetPoint(x) => {
            if x == center {
                return false;
            }
            match center_map.get(&x) {
                // Stored net points within r_i are all in the center's map;
                // absence certifies d > r_i > lambda.
                None => true,
                Some(&d) => u64::from(d) > lambda,
            }
        }
        Endpoint::Special { vertex, anchor } => {
            if vertex == center {
                return false;
            }
            // If the owner happens to be a stored net point itself, its own
            // presence/absence in the center map is already exact.
            if let Some(&d) = center_map.get(&vertex) {
                return u64::from(d) > lambda;
            }
            let Some((xstar, d_ux)) = anchor else {
                // No stored point at all (isolated region): cannot certify.
                return false;
            };
            match center_map.get(&xstar) {
                // d(center, x*) > r_i, hence
                // d(center, owner) >= d(center, x*) - d(owner, x*)
                //                  >  r_i - rho_i > lambda.
                None => true,
                Some(&d_fx) => u64::from(d_fx).saturating_sub(u64::from(d_ux)) > lambda,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(u32, u32)]) -> HashMap<NodeId, u32> {
        entries.iter().map(|&(v, d)| (NodeId::new(v), d)).collect()
    }

    #[test]
    fn net_point_far_by_absence() {
        let m = map(&[(1, 3)]);
        assert!(endpoint_far(
            Endpoint::NetPoint(NodeId::new(9)),
            NodeId::new(0),
            &m,
            8
        ));
    }

    #[test]
    fn net_point_near_by_presence() {
        let m = map(&[(1, 3)]);
        assert!(!endpoint_far(
            Endpoint::NetPoint(NodeId::new(1)),
            NodeId::new(0),
            &m,
            8
        ));
        assert!(endpoint_far(
            Endpoint::NetPoint(NodeId::new(1)),
            NodeId::new(0),
            &m,
            2
        ));
    }

    #[test]
    fn center_itself_is_never_far() {
        let m = map(&[]);
        assert!(!endpoint_far(
            Endpoint::NetPoint(NodeId::new(4)),
            NodeId::new(4),
            &m,
            8
        ));
        assert!(!endpoint_far(
            Endpoint::Special {
                vertex: NodeId::new(4),
                anchor: Some((NodeId::new(1), 0))
            },
            NodeId::new(4),
            &m,
            8
        ));
    }

    #[test]
    fn special_certificate_lower_bound() {
        // anchor x* = v1 with d(owner, x*) = 2; center knows d(center, x*) = 12.
        // est = 12 - 2 = 10 > lambda 8 -> far.
        let m = map(&[(1, 12)]);
        let sp = Endpoint::Special {
            vertex: NodeId::new(7),
            anchor: Some((NodeId::new(1), 2)),
        };
        assert!(endpoint_far(sp, NodeId::new(0), &m, 8));
        // est = 12 - 5 = 7 <= 8 -> cannot certify.
        let sp = Endpoint::Special {
            vertex: NodeId::new(7),
            anchor: Some((NodeId::new(1), 5)),
        };
        assert!(!endpoint_far(sp, NodeId::new(0), &m, 8));
    }

    #[test]
    fn special_without_anchor_is_conservative() {
        let m = map(&[]);
        let sp = Endpoint::Special {
            vertex: NodeId::new(7),
            anchor: None,
        };
        assert!(!endpoint_far(sp, NodeId::new(0), &m, 8));
    }

    #[test]
    fn special_exact_when_owner_is_stored() {
        let m = map(&[(7, 20)]);
        let sp = Endpoint::Special {
            vertex: NodeId::new(7),
            anchor: Some((NodeId::new(1), 0)),
        };
        assert!(endpoint_far(sp, NodeId::new(0), &m, 8));
        let m = map(&[(7, 5)]);
        assert!(!endpoint_far(sp, NodeId::new(0), &m, 8));
    }

    #[test]
    fn admission_requires_one_far_endpoint_per_center() {
        let centers = vec![
            (NodeId::new(100), Some(map(&[(1, 3), (2, 20)]))),
            (NodeId::new(101), Some(map(&[(1, 20), (2, 3)]))),
        ];
        let x = Endpoint::NetPoint(NodeId::new(1));
        let y = Endpoint::NetPoint(NodeId::new(2));
        // Center 100: x near (3 <= 8), y far (20 > 8). Center 101: x far, y
        // near. Both centers have a far endpoint -> admitted.
        assert!(edge_admitted(x, y, 8, &centers));
        // With lambda 25 nothing is far -> rejected.
        assert!(!edge_admitted(x, y, 25, &centers));
        // No centers -> always admitted.
        assert!(edge_admitted(x, y, 8, &[]));
    }

    #[test]
    fn unverifiable_center_vetoes_every_edge() {
        // A fault whose label cannot be checked (level-range mismatch)
        // must suppress all edges: distances can only overestimate.
        let centers = vec![(NodeId::new(100), None)];
        let x = Endpoint::NetPoint(NodeId::new(1));
        let y = Endpoint::NetPoint(NodeId::new(2));
        assert!(!edge_admitted(x, y, 8, &centers));
    }

    fn points(entries: &[(u32, u32)]) -> Vec<LabelPoint> {
        entries
            .iter()
            .map(|&(v, d)| LabelPoint {
                vertex: NodeId::new(v),
                dist: d,
                net_level: 0,
            })
            .collect()
    }

    #[test]
    fn lookup_sorted_matches_linear_scan() {
        // Exercise galloping across list lengths and probe positions,
        // including the bracket boundary where points[hi].vertex == v.
        for len in 0usize..20 {
            let pts = points(
                &(0..len)
                    .map(|k| (3 * k as u32 + 1, k as u32))
                    .collect::<Vec<_>>(),
            );
            for v in 0..70u32 {
                let expected = pts
                    .iter()
                    .find(|p| p.vertex == NodeId::new(v))
                    .map(|p| p.dist);
                assert_eq!(
                    lookup_sorted(&pts, NodeId::new(v)),
                    expected,
                    "len {len}, probe {v}"
                );
            }
        }
    }

    #[test]
    fn endpoint_far_sorted_agrees_with_hash_maps() {
        let entries = [(1u32, 3u32), (5, 12), (7, 20), (9, 1)];
        let mut sorted = entries;
        sorted.sort();
        let m = map(&entries);
        let pts = points(&sorted);
        let endpoints = [
            Endpoint::NetPoint(NodeId::new(1)),
            Endpoint::NetPoint(NodeId::new(2)),
            Endpoint::NetPoint(NodeId::new(9)),
            Endpoint::Special {
                vertex: NodeId::new(7),
                anchor: Some((NodeId::new(5), 2)),
            },
            Endpoint::Special {
                vertex: NodeId::new(42),
                anchor: Some((NodeId::new(5), 2)),
            },
            Endpoint::Special {
                vertex: NodeId::new(42),
                anchor: None,
            },
        ];
        for e in endpoints {
            for lambda in [0u64, 2, 8, 25] {
                for center in [NodeId::new(0), NodeId::new(7), NodeId::new(42)] {
                    assert_eq!(
                        endpoint_far_sorted(e, center, &pts, lambda),
                        endpoint_far(e, center, &m, lambda),
                        "{e:?} center {center:?} lambda {lambda}"
                    );
                }
            }
        }
    }

    #[test]
    fn strictly_sorted_rejects_duplicates_and_disorder() {
        assert!(strictly_sorted(&points(&[])));
        assert!(strictly_sorted(&points(&[(3, 0)])));
        assert!(strictly_sorted(&points(&[(1, 5), (2, 0), (9, 3)])));
        assert!(!strictly_sorted(&points(&[(2, 0), (2, 1)])));
        assert!(!strictly_sorted(&points(&[(5, 0), (1, 0)])));
    }

    #[test]
    fn scratch_epoch_advances_per_reset() {
        let mut scratch = DecodeScratch::new();
        assert_eq!(scratch.epoch(), 0);
        scratch.reset();
        scratch.reset();
        assert_eq!(scratch.epoch(), 2);
    }
}
