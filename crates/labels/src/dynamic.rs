//! The fully-dynamic distance oracle byproduct.
//!
//! Abraham, Chechik & Gavoille (STOC 2012) observed that any `(1+ε)`
//! forbidden-set labeling scheme yields a fully dynamic `(1+ε)` distance
//! oracle: buffer deletions in a forbidden set `F` answered at query time,
//! and when `|F|` exceeds a threshold (`√n` balances the `|F|²` query cost
//! against the rebuild cost), rebuild the labeling on the surviving graph.
//! The paper cites this combination explicitly as giving, for doubling
//! dimension `α`, a dynamic oracle of size `Õ((1+ε⁻¹)^{2α} n)` with
//! `Õ(n^{1/2})` worst-case query/update time.
//!
//! [`DynamicOracle`] implements deletions and re-insertions of vertices and
//! edges of the original graph `G` (the supported update model: the live
//! graph is always `G ∖ F` for the current buffer `F`).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use fsdl_graph::subgraph::{self, Subgraph};
use fsdl_graph::{Dist, FaultSet, Graph, NodeId};

use crate::oracle::ForbiddenSetOracle;
use crate::params::SchemeParams;
use crate::store::{self, Segment, StoreError, StoreReport};

/// Typed errors for [`DynamicOracle`] update operations.
///
/// The update API is fallible rather than panicking: a production oracle
/// receives deletions/restorations from callers it does not control, and
/// an out-of-range id or a restore of something that was never deleted
/// must be reportable without tearing the service down.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynamicError {
    /// The vertex id is not a vertex of the original graph.
    VertexOutOfRange {
        /// The offending id.
        v: NodeId,
        /// Number of vertices in the original graph.
        n: usize,
    },
    /// The endpoint pair is not an edge of the original graph.
    NotAnEdge {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
    },
    /// `restore_vertex` on a vertex that is not currently deleted.
    VertexNotDeleted {
        /// The vertex.
        v: NodeId,
    },
    /// `restore_edge` on an edge that is not currently deleted.
    EdgeNotDeleted {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
    },
    /// An update succeeded in memory but persisting the resulting rebuild
    /// to the attached store failed. The in-memory oracle is consistent
    /// and the store still holds its previous (older but openable)
    /// generation.
    Persist {
        /// The underlying [`crate::StoreError`], stringified.
        message: String,
    },
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::VertexOutOfRange { v, n } => {
                write!(f, "vertex {v} out of range for an {n}-vertex graph")
            }
            DynamicError::NotAnEdge { a, b } => {
                write!(f, "{{{a}, {b}}} is not an edge of the original graph")
            }
            DynamicError::VertexNotDeleted { v } => {
                write!(f, "vertex {v} is not currently deleted")
            }
            DynamicError::EdgeNotDeleted { a, b } => {
                write!(f, "edge {{{a}, {b}}} is not currently deleted")
            }
            DynamicError::Persist { message } => {
                write!(f, "rebuild succeeded but persisting it failed: {message}")
            }
        }
    }
}

impl std::error::Error for DynamicError {}

/// A fully dynamic `(1+ε)` distance oracle over `G ∖ F` with buffered
/// updates and periodic rebuilds.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, NodeId};
/// use fsdl_labels::DynamicOracle;
///
/// let g = generators::cycle(24);
/// let mut oracle = DynamicOracle::new(&g, 1.0);
/// oracle.delete_vertex(NodeId::new(1)).unwrap();
/// let d = oracle.distance(NodeId::new(0), NodeId::new(2)).finite().unwrap();
/// assert!(d >= 22); // forced the long way around
/// oracle.restore_vertex(NodeId::new(1)).unwrap();
/// assert_eq!(oracle.distance(NodeId::new(0), NodeId::new(2)).finite(), Some(2));
/// ```
#[derive(Debug)]
pub struct DynamicOracle {
    original: Graph,
    epsilon: f64,
    /// Faults already folded into the current base labeling.
    baked: FaultSet,
    /// Faults buffered since the last rebuild (answered via the decoder).
    buffer: FaultSet,
    /// Rebuild when the buffer exceeds this many elements.
    threshold: usize,
    /// The surviving graph the current labeling was built on, plus the id
    /// mappings from original ids.
    base: Subgraph,
    oracle: ForbiddenSetOracle,
    rebuilds: usize,
    /// When attached ([`DynamicOracle::attach_store`]), every rebuild is
    /// persisted here as a new store generation, LSM-style.
    store_dir: Option<PathBuf>,
}

impl DynamicOracle {
    /// Creates the oracle over `g` with precision `epsilon` and the default
    /// `⌈√n⌉` rebuild threshold.
    pub fn new(g: &Graph, epsilon: f64) -> Self {
        let threshold = (g.num_vertices() as f64).sqrt().ceil() as usize;
        Self::with_threshold(g, epsilon, threshold.max(1))
    }

    /// Creates the oracle with an explicit rebuild threshold (the harness
    /// sweeps this to show the `√n` balance point).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`, `g` is empty, or `epsilon` is invalid.
    pub fn with_threshold(g: &Graph, epsilon: f64, threshold: usize) -> Self {
        assert!(threshold > 0, "rebuild threshold must be positive");
        let base = subgraph::remove_faults(g, &FaultSet::empty());
        let params = SchemeParams::new(epsilon, base.graph.num_vertices());
        let oracle = ForbiddenSetOracle::with_params(&base.graph, params);
        DynamicOracle {
            original: g.clone(),
            epsilon,
            baked: FaultSet::empty(),
            buffer: FaultSet::empty(),
            threshold,
            base,
            oracle,
            rebuilds: 0,
            store_dir: None,
        }
    }

    /// Number of buffered (not yet baked) faults.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Number of rebuilds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// The current full fault set (baked + buffered).
    pub fn current_faults(&self) -> FaultSet {
        let mut f = self.baked.clone();
        for v in self.buffer.vertices() {
            f.forbid_vertex(v);
        }
        for e in self.buffer.edges() {
            f.forbid_edge_unchecked(e.lo(), e.hi());
        }
        f
    }

    /// Deletes a vertex of `G` (`Ok` no-op if already deleted).
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] when `v` is not a vertex of the
    /// original graph.
    pub fn delete_vertex(&mut self, v: NodeId) -> Result<(), DynamicError> {
        self.check_vertex(v)?;
        if self.baked.is_vertex_faulty(v) || self.buffer.is_vertex_faulty(v) {
            return Ok(());
        }
        self.buffer.forbid_vertex(v);
        if self.maybe_rebuild() {
            self.persist_after_rebuild()?;
        }
        Ok(())
    }

    /// Deletes an edge of `G` (`Ok` no-op if already deleted).
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] for an out-of-range endpoint;
    /// [`DynamicError::NotAnEdge`] when `{a, b}` is not an edge of the
    /// original graph.
    pub fn delete_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), DynamicError> {
        self.check_vertex(a)?;
        self.check_vertex(b)?;
        if !self.original.has_edge(a, b) {
            return Err(DynamicError::NotAnEdge { a, b });
        }
        if self.baked.is_edge_faulty(a, b) || self.buffer.is_edge_faulty(a, b) {
            return Ok(());
        }
        self.buffer.forbid_edge_unchecked(a, b);
        if self.maybe_rebuild() {
            self.persist_after_rebuild()?;
        }
        Ok(())
    }

    /// Restores a previously deleted vertex of `G`. Restorations of baked
    /// deletions force a rebuild (the labeling no longer matches).
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] for an out-of-range id;
    /// [`DynamicError::VertexNotDeleted`] when `v` is not currently
    /// deleted (previously a silent no-op — surfacing it catches
    /// desynchronized callers).
    pub fn restore_vertex(&mut self, v: NodeId) -> Result<(), DynamicError> {
        self.check_vertex(v)?;
        if self.buffer.permit_vertex(v) {
            return Ok(());
        }
        if self.baked.permit_vertex(v) {
            self.rebuild();
            self.persist_after_rebuild()?;
            return Ok(());
        }
        Err(DynamicError::VertexNotDeleted { v })
    }

    /// Restores a previously deleted edge of `G`.
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] for an out-of-range endpoint;
    /// [`DynamicError::EdgeNotDeleted`] when `{a, b}` is not currently
    /// deleted.
    pub fn restore_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), DynamicError> {
        self.check_vertex(a)?;
        self.check_vertex(b)?;
        if self.buffer.permit_edge(a, b) {
            return Ok(());
        }
        if self.baked.permit_edge(a, b) {
            self.rebuild();
            self.persist_after_rebuild()?;
            return Ok(());
        }
        Err(DynamicError::EdgeNotDeleted { a, b })
    }

    fn check_vertex(&self, v: NodeId) -> Result<(), DynamicError> {
        if self.original.contains(v) {
            Ok(())
        } else {
            Err(DynamicError::VertexOutOfRange {
                v,
                n: self.original.num_vertices(),
            })
        }
    }

    /// The `(1+ε)`-approximate distance between `s` and `t` (original ids)
    /// in the current graph `G ∖ F`.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range for the original graph. Use
    /// [`DynamicOracle::try_distance`] (which this routes through) to get
    /// a typed error instead — the right entry point when the query ids
    /// come from callers the service does not control.
    pub fn distance(&self, s: NodeId, t: NodeId) -> Dist {
        match self.try_distance(s, t) {
            Ok(d) => d,
            Err(e) => panic!("query vertex out of range: {e}"),
        }
    }

    /// Strict variant of [`DynamicOracle::distance`]: rejects out-of-range
    /// query vertices with a typed [`DynamicError`] instead of panicking,
    /// matching the fallible update API (and the store serving path,
    /// which must never abort on untrusted query input).
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] when `s` or `t` is not a vertex
    /// of the original graph.
    pub fn try_distance(&self, s: NodeId, t: NodeId) -> Result<Dist, DynamicError> {
        self.check_vertex(s)?;
        self.check_vertex(t)?;
        // Deleted endpoints are unreachable by definition.
        let (Some(bs), Some(bt)) = (self.base.map(s), self.base.map(t)) else {
            return Ok(Dist::INFINITE);
        };
        if self.buffer.is_vertex_faulty(s) || self.buffer.is_vertex_faulty(t) {
            return Ok(Dist::INFINITE);
        }
        // Translate buffered faults into base-graph ids.
        let mut f = FaultSet::empty();
        for v in self.buffer.vertices() {
            if let Some(bv) = self.base.map(v) {
                f.forbid_vertex(bv);
            }
        }
        for e in self.buffer.edges() {
            if let (Some(a), Some(b)) = (self.base.map(e.lo()), self.base.map(e.hi())) {
                if self.base.graph.has_edge(a, b) {
                    f.forbid_edge_unchecked(a, b);
                }
            }
        }
        Ok(self.oracle.distance(bs, bt, &f))
    }

    /// Connectivity in the current graph.
    pub fn connected(&self, s: NodeId, t: NodeId) -> bool {
        self.distance(s, t).is_finite()
    }

    fn maybe_rebuild(&mut self) -> bool {
        if self.buffer.len() > self.threshold {
            self.rebuild();
            true
        } else {
            false
        }
    }

    /// Persists the current state to the attached store, if any, mapping
    /// the failure into the update API's error type. The in-memory oracle
    /// is already consistent when this runs; on error the store simply
    /// still holds its previous generation.
    fn persist_after_rebuild(&mut self) -> Result<(), DynamicError> {
        let Some(dir) = self.store_dir.clone() else {
            return Ok(());
        };
        self.save(&dir)
            .map(|_| ())
            .map_err(|e| DynamicError::Persist {
                message: e.to_string(),
            })
    }

    /// Folds the buffer into the baked set and rebuilds the labeling on the
    /// surviving graph.
    pub fn rebuild(&mut self) {
        for v in self.buffer.vertices().collect::<Vec<_>>() {
            self.baked.forbid_vertex(v);
        }
        for e in self.buffer.edges().collect::<Vec<_>>() {
            self.baked.forbid_edge_unchecked(e.lo(), e.hi());
        }
        self.buffer = FaultSet::empty();
        self.base = subgraph::remove_faults(&self.original, &self.baked);
        let n = self.base.graph.num_vertices().max(1);
        // Degenerate case: everything deleted; keep a 1-vertex placeholder
        // graph (queries all return INFINITE via the mapping checks).
        if self.base.graph.num_vertices() == 0 {
            let placeholder = fsdl_graph::GraphBuilder::new(1).build();
            let params = SchemeParams::new(self.epsilon, 1);
            self.oracle = ForbiddenSetOracle::with_params(&placeholder, params);
        } else {
            let params = SchemeParams::new(self.epsilon, n);
            self.oracle = ForbiddenSetOracle::with_params(&self.base.graph, params);
        }
        self.rebuilds += 1;
    }

    /// Persists the oracle's full state to the store at `dir` as a new
    /// generation: the base labeling's segment plus a manifest recording
    /// the baked fault set, the *buffered* fault set, and the rebuild
    /// threshold — so a mid-churn [`DynamicOracle::open`] resumes
    /// bit-identically, buffered deletions included. Older generations
    /// are pruned after the manifest swap.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] on encoding or I/O failure; the store keeps
    /// its previous generation in that case.
    pub fn save(&self, dir: &Path) -> Result<StoreReport, StoreError> {
        let encoded = self.oracle.encoded_labels()?;
        store::write_generation(
            dir,
            self.oracle.params(),
            store::graph_fingerprint(self.oracle.labeling().graph()),
            &encoded,
            &self.baked,
            &self.buffer,
            Some(self.threshold),
        )
    }

    /// Warm-starts a dynamic oracle from the store at `dir`, previously
    /// written by [`DynamicOracle::save`] (directly or via an attached
    /// store). `g` must be the *original* graph: the baked fault set from
    /// the manifest is re-applied to reconstruct the base subgraph, whose
    /// fingerprint must match the segment's; labels then decode lazily
    /// from the segment, so the rebuild cost is skipped. The returned
    /// oracle keeps `dir` attached, so subsequent rebuilds persist new
    /// generations.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] for every corruption, mismatch, or I/O
    /// failure — never a panic on untrusted on-disk bytes.
    pub fn open(dir: &Path, g: &Graph) -> Result<Self, StoreError> {
        let manifest = store::read_manifest(dir)?;
        let segment = Segment::read(&dir.join(&manifest.segment))?;
        for v in manifest.baked.vertices().chain(manifest.buffer.vertices()) {
            if !g.contains(v) {
                return Err(StoreError::ManifestCorrupt {
                    line: 0,
                    message: format!(
                        "fault vertex {v} out of range for a {}-vertex graph",
                        g.num_vertices()
                    ),
                });
            }
        }
        for e in manifest.baked.edges().chain(manifest.buffer.edges()) {
            if !g.contains(e.lo()) || !g.contains(e.hi()) {
                return Err(StoreError::ManifestCorrupt {
                    line: 0,
                    message: format!("fault edge ({}, {}) out of range", e.lo(), e.hi()),
                });
            }
        }
        if manifest.threshold == Some(0) {
            return Err(StoreError::ManifestCorrupt {
                line: 0,
                message: "rebuild threshold must be positive".into(),
            });
        }
        let base = subgraph::remove_faults(g, &manifest.baked);
        let oracle = if base.graph.num_vertices() == 0 {
            // The degenerate all-deleted state was saved over the 1-vertex
            // placeholder graph; reconstruct the same placeholder.
            let placeholder = fsdl_graph::GraphBuilder::new(1).build();
            ForbiddenSetOracle::from_segment(&placeholder, Arc::new(segment))?
        } else {
            ForbiddenSetOracle::from_segment(&base.graph, Arc::new(segment))?
        };
        let epsilon = oracle.params().epsilon();
        let threshold = manifest
            .threshold
            .unwrap_or_else(|| ((g.num_vertices() as f64).sqrt().ceil() as usize).max(1));
        Ok(DynamicOracle {
            original: g.clone(),
            epsilon,
            baked: manifest.baked,
            buffer: manifest.buffer,
            threshold,
            base,
            oracle,
            rebuilds: 0,
            store_dir: Some(dir.to_path_buf()),
        })
    }

    /// Attaches a store directory and persists the current state to it
    /// immediately. From then on every rebuild (threshold overflow or
    /// baked restoration) is persisted as a new generation; a persist
    /// failure surfaces from the triggering update as
    /// [`DynamicError::Persist`] while the in-memory oracle stays
    /// consistent. Explicit [`DynamicOracle::rebuild`] calls are
    /// in-memory only; call [`DynamicOracle::save`] to checkpoint after
    /// one.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] if the initial save fails (the store is
    /// then *not* attached).
    pub fn attach_store(&mut self, dir: &Path) -> Result<StoreReport, StoreError> {
        let report = self.save(dir)?;
        self.store_dir = Some(dir.to_path_buf());
        Ok(report)
    }

    /// The attached store directory, if any.
    pub fn store_dir(&self) -> Option<&Path> {
        self.store_dir.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::{bfs, generators};

    fn check_against_truth(oracle: &DynamicOracle, g: &Graph, faults: &FaultSet, eps: f64) {
        for s in (0..g.num_vertices() as u32).step_by(5) {
            for t in (0..g.num_vertices() as u32).step_by(7) {
                let d = oracle.distance(NodeId::new(s), NodeId::new(t));
                let truth = bfs::pair_distance_avoiding(g, NodeId::new(s), NodeId::new(t), faults);
                match truth.finite() {
                    None => assert!(d.is_infinite(), "{s}->{t} should be disconnected"),
                    Some(0) => assert_eq!(d.finite(), Some(0)),
                    Some(td) => {
                        let dd = d.finite().expect("should be connected");
                        assert!(dd >= td);
                        assert!(
                            f64::from(dd) <= (1.0 + eps) * f64::from(td) + 1e-9,
                            "{s}->{t}: {dd} vs {td}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deletions_and_queries_match_truth() {
        let g = generators::grid2d(6, 6);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 100);
        let mut faults = FaultSet::empty();
        for v in [7u32, 21, 28] {
            oracle.delete_vertex(NodeId::new(v)).unwrap();
            faults.forbid_vertex(NodeId::new(v));
            check_against_truth(&oracle, &g, &faults, 1.0);
        }
        assert_eq!(oracle.rebuilds(), 0);
    }

    #[test]
    fn rebuild_threshold_triggers() {
        let g = generators::cycle(30);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 2);
        oracle.delete_vertex(NodeId::new(1)).unwrap();
        oracle.delete_vertex(NodeId::new(2)).unwrap();
        assert_eq!(oracle.rebuilds(), 0);
        oracle.delete_vertex(NodeId::new(3)).unwrap();
        assert_eq!(oracle.rebuilds(), 1);
        assert_eq!(oracle.buffered(), 0);
        // Queries still correct after the rebuild.
        let faults = oracle.current_faults();
        check_against_truth(&oracle, &g, &faults, 1.0);
    }

    #[test]
    fn restore_buffered_and_baked() {
        let g = generators::cycle(16);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 1);
        oracle.delete_vertex(NodeId::new(3)).unwrap();
        oracle.restore_vertex(NodeId::new(3)).unwrap(); // buffered -> cheap
        assert_eq!(oracle.rebuilds(), 0);
        assert_eq!(
            oracle.distance(NodeId::new(2), NodeId::new(4)).finite(),
            Some(2)
        );
        oracle.delete_vertex(NodeId::new(3)).unwrap();
        oracle.delete_vertex(NodeId::new(8)).unwrap(); // exceeds threshold -> baked
        assert_eq!(oracle.rebuilds(), 1);
        oracle.restore_vertex(NodeId::new(3)).unwrap(); // baked -> rebuild
        assert_eq!(oracle.rebuilds(), 2);
        assert_eq!(
            oracle.distance(NodeId::new(2), NodeId::new(4)).finite(),
            Some(2)
        );
    }

    #[test]
    fn edge_deletions() {
        let g = generators::cycle(12);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 50);
        oracle.delete_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let d = oracle
            .distance(NodeId::new(0), NodeId::new(1))
            .finite()
            .unwrap();
        assert!(d >= 11);
        oracle.restore_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(
            oracle.distance(NodeId::new(0), NodeId::new(1)).finite(),
            Some(1)
        );
    }

    #[test]
    fn duplicate_deletes_are_noops() {
        let g = generators::path(8);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 10);
        oracle.delete_vertex(NodeId::new(4)).unwrap();
        oracle.delete_vertex(NodeId::new(4)).unwrap();
        assert_eq!(oracle.buffered(), 1);
    }

    #[test]
    fn queries_to_deleted_vertices() {
        let g = generators::path(8);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 1);
        oracle.delete_vertex(NodeId::new(4)).unwrap();
        oracle.delete_vertex(NodeId::new(5)).unwrap(); // rebuild happens
        assert!(oracle.rebuilds() >= 1);
        assert!(oracle
            .distance(NodeId::new(4), NodeId::new(0))
            .is_infinite());
        assert!(oracle
            .distance(NodeId::new(0), NodeId::new(5))
            .is_infinite());
        assert!(!oracle.connected(NodeId::new(0), NodeId::new(7)));
        assert!(oracle.connected(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn out_of_range_updates_are_typed_errors() {
        let g = generators::path(8);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 10);
        assert_eq!(
            oracle.delete_vertex(NodeId::new(8)),
            Err(DynamicError::VertexOutOfRange {
                v: NodeId::new(8),
                n: 8
            })
        );
        assert!(matches!(
            oracle.restore_vertex(NodeId::new(99)),
            Err(DynamicError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            oracle.delete_edge(NodeId::new(0), NodeId::new(42)),
            Err(DynamicError::VertexOutOfRange { .. })
        ));
        // The failed updates must not have perturbed the oracle.
        assert_eq!(oracle.buffered(), 0);
        assert_eq!(
            oracle.distance(NodeId::new(0), NodeId::new(7)).finite(),
            Some(7)
        );
    }

    #[test]
    fn delete_non_edge_is_a_typed_error() {
        let g = generators::path(8); // no edge {0, 2}
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 10);
        assert_eq!(
            oracle.delete_edge(NodeId::new(0), NodeId::new(2)),
            Err(DynamicError::NotAnEdge {
                a: NodeId::new(0),
                b: NodeId::new(2)
            })
        );
        assert_eq!(oracle.buffered(), 0);
    }

    #[test]
    fn restore_of_never_deleted_fault_is_a_typed_error() {
        let g = generators::cycle(12);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 10);
        assert_eq!(
            oracle.restore_vertex(NodeId::new(3)),
            Err(DynamicError::VertexNotDeleted { v: NodeId::new(3) })
        );
        assert_eq!(
            oracle.restore_edge(NodeId::new(0), NodeId::new(1)),
            Err(DynamicError::EdgeNotDeleted {
                a: NodeId::new(0),
                b: NodeId::new(1)
            })
        );
        // A delete/restore pair brings the restore back to Ok, and a second
        // restore errors again.
        oracle.delete_vertex(NodeId::new(3)).unwrap();
        oracle.restore_vertex(NodeId::new(3)).unwrap();
        assert!(oracle.restore_vertex(NodeId::new(3)).is_err());
    }
}
