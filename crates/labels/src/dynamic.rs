//! The fully-dynamic distance oracle byproduct.
//!
//! Abraham, Chechik & Gavoille (STOC 2012) observed that any `(1+ε)`
//! forbidden-set labeling scheme yields a fully dynamic `(1+ε)` distance
//! oracle: buffer deletions in a forbidden set `F` answered at query time,
//! and when `|F|` exceeds a threshold (`√n` balances the `|F|²` query cost
//! against the rebuild cost), rebuild the labeling on the surviving graph.
//! The paper cites this combination explicitly as giving, for doubling
//! dimension `α`, a dynamic oracle of size `Õ((1+ε⁻¹)^{2α} n)` with
//! `Õ(n^{1/2})` worst-case query/update time.
//!
//! [`DynamicOracle`] implements deletions and re-insertions of vertices and
//! edges of the original graph `G` (the supported update model: the live
//! graph is always `G ∖ F` for the current buffer `F`), with two service
//! qualities layered on top of the paper's algorithm:
//!
//! * **Durability.** With a store attached, every update is appended to a
//!   checksummed, `fsync`'d write-ahead log ([`crate::wal`]) *before* it
//!   is applied in memory, and [`DynamicOracle::open`] replays the log on
//!   top of the last persisted generation — a crash between rebuilds no
//!   longer loses buffered updates. Replay reproduces the exact fold
//!   points (threshold crossings, baked restorations, explicit folds), so
//!   the recovered oracle's baked/buffered split — and therefore its
//!   labeling and its answers — is bit-identical to the pre-crash one in
//!   [`RebuildMode::Blocking`].
//! * **Availability.** In [`RebuildMode::Background`] the threshold
//!   rebuild runs on a background thread while the current generation
//!   keeps serving; queries only ever touch an `Arc` swap lock held for
//!   `O(1)` per install, never the rebuild itself. Updates arriving
//!   mid-rebuild go to the WAL plus a carry-over buffer. If the rebuild
//!   fails (injected fault, persist error, panic), the oracle degrades
//!   gracefully: the old generation keeps serving, the failure surfaces
//!   as [`DynamicError::RebuildFailed`] on the next update, and retries
//!   back off exponentially.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fsdl_graph::subgraph::{self, Subgraph};
use fsdl_graph::{Dist, FaultSet, Graph, NodeId};

use crate::crash::{self, CrashPoint};
use crate::decode::DecodeScratch;
use crate::oracle::ForbiddenSetOracle;
use crate::params::SchemeParams;
use crate::store::{self, OpenMode, Segment, StoreError, StoreReport};
use crate::wal::{ReplayReport, Wal, WalError, WalRecord};

/// Typed errors for [`DynamicOracle`] update operations.
///
/// The update API is fallible rather than panicking: a production oracle
/// receives deletions/restorations from callers it does not control, and
/// an out-of-range id or a restore of something that was never deleted
/// must be reportable without tearing the service down.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynamicError {
    /// The vertex id is not a vertex of the original graph.
    VertexOutOfRange {
        /// The offending id.
        v: NodeId,
        /// Number of vertices in the original graph.
        n: usize,
    },
    /// The endpoint pair is not an edge of the original graph.
    NotAnEdge {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
    },
    /// `restore_vertex` on a vertex that is not currently deleted.
    VertexNotDeleted {
        /// The vertex.
        v: NodeId,
    },
    /// `restore_edge` on an edge that is not currently deleted.
    EdgeNotDeleted {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
    },
    /// An update succeeded in memory but persisting the resulting rebuild
    /// to the attached store failed. The in-memory oracle is consistent
    /// and the store still holds its previous (older but openable)
    /// generation.
    Persist {
        /// The underlying [`crate::StoreError`], stringified.
        message: String,
    },
    /// The constructor was handed an unusable configuration (zero
    /// threshold, empty graph, non-positive or non-finite ε).
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
    /// Appending the update to the write-ahead log failed, so the update
    /// was rejected *before* touching memory (durability would otherwise
    /// silently lapse). Includes injected crash points, after which the
    /// oracle must be treated as crashed — drop it and reopen.
    Wal {
        /// The underlying [`crate::WalError`], stringified.
        message: String,
    },
    /// A background rebuild failed since the last update (build fault,
    /// persist error, or panic). The update that received this error was
    /// still applied; the oracle keeps serving the previous generation
    /// with the decoder-side buffer and will retry the rebuild with
    /// backoff.
    RebuildFailed {
        /// Why the rebuild failed.
        message: String,
    },
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::VertexOutOfRange { v, n } => {
                write!(f, "vertex {v} out of range for an {n}-vertex graph")
            }
            DynamicError::NotAnEdge { a, b } => {
                write!(f, "{{{a}, {b}}} is not an edge of the original graph")
            }
            DynamicError::VertexNotDeleted { v } => {
                write!(f, "vertex {v} is not currently deleted")
            }
            DynamicError::EdgeNotDeleted { a, b } => {
                write!(f, "edge {{{a}, {b}}} is not currently deleted")
            }
            DynamicError::Persist { message } => {
                write!(f, "rebuild succeeded but persisting it failed: {message}")
            }
            DynamicError::InvalidConfig { message } => {
                write!(f, "invalid dynamic oracle configuration: {message}")
            }
            DynamicError::Wal { message } => {
                write!(
                    f,
                    "write-ahead log append failed (update rejected): {message}"
                )
            }
            DynamicError::RebuildFailed { message } => {
                write!(
                    f,
                    "background rebuild failed (still serving the previous \
                     generation; will retry): {message}"
                )
            }
        }
    }
}

impl std::error::Error for DynamicError {}

/// How threshold rebuilds are scheduled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RebuildMode {
    /// Rebuild synchronously inside the triggering update (the paper's
    /// model, and the default: update latency pays the rebuild, recovery
    /// is bit-identical, rebuild counts are deterministic).
    #[default]
    Blocking,
    /// Rebuild on a background thread while the current generation keeps
    /// serving; the triggering update returns immediately.
    Background,
}

/// Construction-time configuration for [`DynamicOracle::try_with_config`].
#[derive(Clone, Debug)]
pub struct DynamicConfig {
    /// The scheme's precision `ε`.
    pub epsilon: f64,
    /// Rebuild threshold; `None` means the default `⌈√n⌉`.
    pub threshold: Option<usize>,
    /// Rebuild scheduling.
    pub mode: RebuildMode,
    /// Worker threads for background rebuilds; `0` means "all cores but
    /// one" (leaving one for the serving path).
    pub rebuild_workers: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            epsilon: 1.0,
            threshold: None,
            mode: RebuildMode::Blocking,
            rebuild_workers: 0,
        }
    }
}

/// Rebuild / WAL health counters, the service-facing view of the oracle
/// (`fsdl stats --store`, `exp_t16_wal`'s availability gate).
#[non_exhaustive]
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DynamicStats {
    /// Total rebuilds installed (blocking + background).
    pub rebuilds: u64,
    /// Rebuilds installed by the background thread.
    pub background_rebuilds: u64,
    /// Background rebuilds that failed (build fault, persist error, or
    /// panic) and were discarded.
    pub failed_rebuilds: u64,
    /// Wall-clock duration of the most recent installed rebuild, in
    /// milliseconds (0 when none has run).
    pub last_rebuild_ms: f64,
    /// Whether a background rebuild is currently in flight.
    pub rebuild_in_flight: bool,
    /// Buffered (decoder-side) faults right now.
    pub buffered: usize,
    /// Faults baked into the serving labeling.
    pub baked: usize,
    /// The rebuild threshold.
    pub threshold: usize,
    /// Store generation currently persisted (0 = no store attached or
    /// nothing persisted yet).
    pub store_generation: u64,
    /// WAL records appended or replayed since the last rotation.
    pub wal_records_since_rotation: u64,
    /// WAL bytes (past the header) since the last rotation.
    pub wal_bytes_since_rotation: u64,
    /// Buffered faults carried over across the most recent background
    /// install (updates that arrived mid-rebuild).
    pub carry_over_depth: u64,
    /// Records replayed from the WAL by [`DynamicOracle::open`].
    pub replayed_records: u64,
    /// Torn-tail bytes truncated during that replay.
    pub replay_truncated_bytes: u64,
    /// Queries that blocked on the serving lock *while a background
    /// build was running*. Structurally zero: the build holds its own
    /// gate, never the serving lock — this counter is the availability
    /// gate's witness.
    pub blocked_on_rebuild: u64,
    /// Queries that found the serving lock contended (colliding with an
    /// `O(1)` install swap; sub-microsecond, and not rebuild-induced).
    pub serving_swaps_contended: u64,
    /// Labels currently materialized in the serving generation's arena
    /// (see [`crate::LabelPlaneStats`]).
    pub resident_labels: u64,
    /// Estimated heap bytes of those materialized labels.
    pub resident_label_bytes: u64,
    /// On-disk label payload bytes of the serving generation's segment
    /// (0 when the generation was built in memory).
    pub on_disk_label_bytes: u64,
    /// How the serving generation's segment was opened; `None` for
    /// in-memory generations.
    pub label_open_mode: Option<OpenMode>,
}

/// One immutable installed generation: the surviving graph the labeling
/// was built on, the labeling itself, and the faults folded into it.
#[derive(Debug)]
struct GenerationState {
    base: Subgraph,
    oracle: ForbiddenSetOracle,
    baked: FaultSet,
}

/// What queries read: the current generation plus the decoder-side
/// buffer. Swapped atomically (behind a briefly-held write lock) on every
/// update and install.
#[derive(Debug)]
struct ServingState {
    generation: Arc<GenerationState>,
    buffer: FaultSet,
}

/// Durable-commit state: everything an update must serialize on. Queries
/// never touch this lock.
#[derive(Debug)]
struct CommitState {
    store_dir: Option<PathBuf>,
    wal: Option<Wal>,
    /// Generation currently named by the manifest (0 = none yet).
    generation: u64,
}

/// Background-rebuild control block.
#[derive(Debug, Default)]
struct RebuildCtl {
    running: bool,
    handle: Option<JoinHandle<()>>,
    /// The buffer snapshot the in-flight rebuild is folding (restores of
    /// these faults must drain the rebuild first).
    fold: Option<FaultSet>,
    /// A failure waiting to surface on the next update.
    failure: Option<String>,
    consecutive_failures: u32,
    /// Earliest instant the next background attempt may start (backoff).
    not_before: Option<Instant>,
}

#[derive(Debug, Default)]
struct Counters {
    rebuilds: AtomicU64,
    background_rebuilds: AtomicU64,
    failed_rebuilds: AtomicU64,
    last_rebuild_nanos: AtomicU64,
    carry_over_depth: AtomicU64,
    blocked_on_rebuild: AtomicU64,
    serving_swaps_contended: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    original: Graph,
    epsilon: f64,
    threshold: usize,
    background: AtomicBool,
    rebuild_workers: AtomicUsize,
    /// True exactly while a background *build* is computing (cleared
    /// before the install swap) — the availability gate's reference.
    build_in_flight: AtomicBool,
    serving: RwLock<Arc<ServingState>>,
    commit: Mutex<CommitState>,
    rebuild: Mutex<RebuildCtl>,
    counters: Counters,
    replay: Option<ReplayReport>,
    inject_build_errors: AtomicUsize,
    inject_build_panics: AtomicUsize,
}

/// A fully dynamic `(1+ε)` distance oracle over `G ∖ F` with buffered
/// updates, periodic (optionally background) rebuilds, and write-ahead
/// logged durability when a store is attached.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, NodeId};
/// use fsdl_labels::DynamicOracle;
///
/// let g = generators::cycle(24);
/// let mut oracle = DynamicOracle::new(&g, 1.0);
/// oracle.delete_vertex(NodeId::new(1)).unwrap();
/// let d = oracle.distance(NodeId::new(0), NodeId::new(2)).finite().unwrap();
/// assert!(d >= 22); // forced the long way around
/// oracle.restore_vertex(NodeId::new(1)).unwrap();
/// assert_eq!(oracle.distance(NodeId::new(0), NodeId::new(2)).finite(), Some(2));
/// ```
#[derive(Debug)]
pub struct DynamicOracle {
    inner: Arc<Inner>,
}

/// Backoff after `failures` consecutive background failures: 10 ms
/// doubling, capped at 1 s.
fn backoff_after(failures: u32) -> Duration {
    let ms = 10u64.saturating_mul(1u64 << failures.saturating_sub(1).min(10));
    Duration::from_millis(ms.min(1_000))
}

/// Adds every fault of `extra` to `baked`.
fn fold_into(baked: &mut FaultSet, extra: &FaultSet) {
    for v in extra.vertices() {
        baked.forbid_vertex(v);
    }
    for e in extra.edges() {
        baked.forbid_edge_unchecked(e.lo(), e.hi());
    }
}

/// The faults of `a` not present in `b` (the carry-over computation).
fn fault_difference(a: &FaultSet, b: &FaultSet) -> FaultSet {
    let mut out = FaultSet::empty();
    for v in a.vertices() {
        if !b.is_vertex_faulty(v) {
            out.forbid_vertex(v);
        }
    }
    for e in a.edges() {
        if !b.is_edge_faulty(e.lo(), e.hi()) {
            out.forbid_edge_unchecked(e.lo(), e.hi());
        }
    }
    out
}

/// Builds the labeling for `original ∖ baked`. `prewarm_workers > 0`
/// materializes every label eagerly on that many threads (the background
/// path); `0` leaves labels lazy (the blocking path, where persistence
/// prewarms anyway).
fn build_generation(
    original: &Graph,
    baked: FaultSet,
    epsilon: f64,
    prewarm_workers: usize,
) -> GenerationState {
    let base = subgraph::remove_faults(original, &baked);
    let oracle = if base.graph.num_vertices() == 0 {
        // Degenerate case: everything deleted; keep a 1-vertex placeholder
        // graph (queries all return INFINITE via the mapping checks).
        let placeholder = fsdl_graph::GraphBuilder::new(1).build();
        ForbiddenSetOracle::with_params(&placeholder, SchemeParams::new(epsilon, 1))
    } else {
        let n = base.graph.num_vertices();
        ForbiddenSetOracle::with_params(&base.graph, SchemeParams::new(epsilon, n))
    };
    if prewarm_workers > 0 {
        oracle.prewarm_workers(prewarm_workers);
    }
    GenerationState {
        base,
        oracle,
        baked,
    }
}

fn fire_store(point: CrashPoint) -> Result<(), StoreError> {
    crash::fire(point).map_err(|p| {
        StoreError::Wal(WalError::Injected {
            point: p.name().to_string(),
        })
    })
}

/// Creates the fresh WAL for `generation` and installs it in `commit`
/// (the rotation step of the commit protocol — the stale log was already
/// pruned by the manifest swap's post-commit cleanup).
fn rotate_wal(commit: &mut CommitState, dir: &Path, generation: u64) -> Result<(), StoreError> {
    fire_store(CrashPoint::BeforeWalRotate)?;
    let wal = Wal::create(dir, generation)?;
    fire_store(CrashPoint::AfterWalRotate)?;
    commit.wal = Some(wal);
    Ok(())
}

/// Persists `gen` + `buffer` as a new store generation and rotates the
/// WAL. No-op without an attached store. On failure the store keeps its
/// previous generation (and, if rotation itself failed, the WAL is
/// marked unavailable so subsequent updates fail fast rather than
/// silently losing durability).
fn persist_and_rotate(
    threshold: usize,
    commit: &mut CommitState,
    gen: &GenerationState,
    buffer: &FaultSet,
) -> Result<(), StoreError> {
    let Some(dir) = commit.store_dir.clone() else {
        return Ok(());
    };
    let encoded = gen.oracle.encoded_labels()?;
    let report = store::write_generation(
        &dir,
        gen.oracle.params(),
        store::graph_fingerprint(gen.oracle.labeling().graph()),
        &encoded,
        &gen.baked,
        buffer,
        Some(threshold),
    )?;
    // Past the manifest swap the old log is both stale and pruned: the
    // new manifest snapshots the full fault state.
    commit.wal = None;
    rotate_wal(commit, &dir, report.generation)?;
    commit.generation = report.generation;
    Ok(())
}

/// The replay simulation: mirrors the live update path's fold rules over
/// `(baked, buffer)` without building any labeling, so recovery lands on
/// the exact pre-crash baked/buffered split.
struct ReplaySim {
    baked: FaultSet,
    buffer: FaultSet,
    /// Whether `baked` changed relative to the persisted segment (a
    /// labeling rebuild + re-persist is then required).
    dirty: bool,
}

impl ReplaySim {
    fn fold(&mut self) {
        if !self.buffer.is_empty() {
            fold_into(&mut self.baked, &self.buffer);
            self.buffer = FaultSet::empty();
            self.dirty = true;
        }
    }

    fn apply(
        &mut self,
        g: &Graph,
        threshold: usize,
        index: usize,
        record: WalRecord,
    ) -> Result<(), WalError> {
        let invalid = |message: String| WalError::RecordInvalid { index, message };
        let check = |v: NodeId| -> Result<(), WalError> {
            if g.contains(v) {
                Ok(())
            } else {
                Err(invalid(format!("vertex {v} out of range")))
            }
        };
        match record {
            WalRecord::DeleteVertex(v) => {
                check(v)?;
                if self.baked.is_vertex_faulty(v) || self.buffer.is_vertex_faulty(v) {
                    return Err(invalid(format!("vertex {v} already deleted")));
                }
                self.buffer.forbid_vertex(v);
                if self.buffer.len() > threshold {
                    self.fold();
                }
            }
            WalRecord::DeleteEdge(a, b) => {
                check(a)?;
                check(b)?;
                if !g.has_edge(a, b) {
                    return Err(invalid(format!("{{{a}, {b}}} is not an edge")));
                }
                if self.baked.is_edge_faulty(a, b) || self.buffer.is_edge_faulty(a, b) {
                    return Err(invalid(format!("edge {{{a}, {b}}} already deleted")));
                }
                self.buffer.forbid_edge_unchecked(a, b);
                if self.buffer.len() > threshold {
                    self.fold();
                }
            }
            WalRecord::RestoreVertex(v) => {
                check(v)?;
                if self.buffer.permit_vertex(v) {
                    return Ok(());
                }
                if self.baked.permit_vertex(v) {
                    // Live semantics: a baked restore rebuilds, folding
                    // the buffer along the way.
                    self.dirty = true;
                    self.fold();
                    return Ok(());
                }
                return Err(invalid(format!("vertex {v} is not deleted")));
            }
            WalRecord::RestoreEdge(a, b) => {
                check(a)?;
                check(b)?;
                if self.buffer.permit_edge(a, b) {
                    return Ok(());
                }
                if self.baked.permit_edge(a, b) {
                    self.dirty = true;
                    self.fold();
                    return Ok(());
                }
                return Err(invalid(format!("edge {{{a}, {b}}} is not deleted")));
            }
            WalRecord::Fold => self.fold(),
        }
        Ok(())
    }
}

impl DynamicOracle {
    /// Creates the oracle over `g` with precision `epsilon` and the default
    /// `⌈√n⌉` rebuild threshold.
    ///
    /// # Panics
    ///
    /// Panics on an unusable configuration; [`DynamicOracle::try_new`] is
    /// the typed-error variant.
    pub fn new(g: &Graph, epsilon: f64) -> Self {
        Self::try_new(g, epsilon).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates the oracle with an explicit rebuild threshold (the harness
    /// sweeps this to show the `√n` balance point).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`, `g` is empty, or `epsilon` is invalid;
    /// [`DynamicOracle::try_with_threshold`] is the typed-error variant.
    pub fn with_threshold(g: &Graph, epsilon: f64, threshold: usize) -> Self {
        Self::try_with_threshold(g, epsilon, threshold).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`DynamicOracle::new`].
    ///
    /// # Errors
    ///
    /// [`DynamicError::InvalidConfig`] for an empty graph or an invalid
    /// `epsilon`.
    pub fn try_new(g: &Graph, epsilon: f64) -> Result<Self, DynamicError> {
        Self::try_with_config(
            g,
            DynamicConfig {
                epsilon,
                ..DynamicConfig::default()
            },
        )
    }

    /// Fallible [`DynamicOracle::with_threshold`].
    ///
    /// # Errors
    ///
    /// [`DynamicError::InvalidConfig`] when `threshold == 0`, `g` is
    /// empty, or `epsilon` is not positive finite.
    pub fn try_with_threshold(
        g: &Graph,
        epsilon: f64,
        threshold: usize,
    ) -> Result<Self, DynamicError> {
        Self::try_with_config(
            g,
            DynamicConfig {
                epsilon,
                threshold: Some(threshold),
                ..DynamicConfig::default()
            },
        )
    }

    /// Creates the oracle from a full [`DynamicConfig`] (rebuild mode,
    /// worker count, threshold).
    ///
    /// # Errors
    ///
    /// [`DynamicError::InvalidConfig`] for any unusable setting.
    pub fn try_with_config(g: &Graph, config: DynamicConfig) -> Result<Self, DynamicError> {
        let invalid = |message: String| DynamicError::InvalidConfig { message };
        if g.num_vertices() == 0 {
            return Err(invalid("the graph has no vertices".into()));
        }
        if !(config.epsilon.is_finite() && config.epsilon > 0.0) {
            return Err(invalid(format!(
                "epsilon must be positive finite, got {}",
                config.epsilon
            )));
        }
        if config.threshold == Some(0) {
            return Err(invalid("rebuild threshold must be positive".into()));
        }
        let threshold = config
            .threshold
            .unwrap_or_else(|| ((g.num_vertices() as f64).sqrt().ceil() as usize).max(1));
        let generation = Arc::new(build_generation(g, FaultSet::empty(), config.epsilon, 0));
        Ok(Self::assemble(
            g.clone(),
            config.epsilon,
            threshold,
            config.mode,
            config.rebuild_workers,
            generation,
            FaultSet::empty(),
            None,
            None,
            0,
            None,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        original: Graph,
        epsilon: f64,
        threshold: usize,
        mode: RebuildMode,
        rebuild_workers: usize,
        generation: Arc<GenerationState>,
        buffer: FaultSet,
        store_dir: Option<PathBuf>,
        wal: Option<Wal>,
        store_generation: u64,
        replay: Option<ReplayReport>,
    ) -> Self {
        DynamicOracle {
            inner: Arc::new(Inner {
                original,
                epsilon,
                threshold,
                background: AtomicBool::new(mode == RebuildMode::Background),
                rebuild_workers: AtomicUsize::new(rebuild_workers),
                build_in_flight: AtomicBool::new(false),
                serving: RwLock::new(Arc::new(ServingState { generation, buffer })),
                commit: Mutex::new(CommitState {
                    store_dir,
                    wal,
                    generation: store_generation,
                }),
                rebuild: Mutex::new(RebuildCtl::default()),
                counters: Counters::default(),
                replay,
                inject_build_errors: AtomicUsize::new(0),
                inject_build_panics: AtomicUsize::new(0),
            }),
        }
    }

    // ----- lock helpers (panic-free on poisoning: a poisoned thread must
    // degrade, not cascade) -----

    fn lock_commit(&self) -> MutexGuard<'_, CommitState> {
        self.inner.commit.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_rebuild(&self) -> MutexGuard<'_, RebuildCtl> {
        self.inner.rebuild.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The query path's snapshot: an `Arc` clone out of the serving lock.
    /// Never touches the commit or rebuild locks — contention can only
    /// come from an `O(1)` install swap, and is counted to prove it.
    fn snapshot(&self) -> Arc<ServingState> {
        match self.inner.serving.try_read() {
            Ok(s) => Arc::clone(&s),
            Err(std::sync::TryLockError::Poisoned(e)) => Arc::clone(&e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => {
                let c = &self.inner.counters;
                c.serving_swaps_contended.fetch_add(1, Ordering::Relaxed);
                if self.inner.build_in_flight.load(Ordering::Relaxed) {
                    c.blocked_on_rebuild.fetch_add(1, Ordering::Relaxed);
                }
                let guard = self.inner.serving.read().unwrap_or_else(|e| e.into_inner());
                Arc::clone(&guard)
            }
        }
    }

    /// Publishes a new serving state (commit lock must be held by the
    /// caller — updates and installs serialize there).
    fn install(&self, generation: Arc<GenerationState>, buffer: FaultSet) {
        let next = Arc::new(ServingState { generation, buffer });
        let mut guard = self
            .inner
            .serving
            .write()
            .unwrap_or_else(|e| e.into_inner());
        *guard = next;
    }

    /// Number of buffered (not yet baked) faults.
    pub fn buffered(&self) -> usize {
        self.snapshot().buffer.len()
    }

    /// Number of vertices of the original graph — the id space every
    /// update and query uses, regardless of how many vertices the current
    /// fault set has removed.
    pub fn num_vertices(&self) -> usize {
        self.inner.original.num_vertices()
    }

    /// Number of rebuilds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.inner.counters.rebuilds.load(Ordering::Relaxed) as usize
    }

    /// The current full fault set (baked + buffered).
    pub fn current_faults(&self) -> FaultSet {
        let snap = self.snapshot();
        let mut f = snap.generation.baked.clone();
        fold_into(&mut f, &snap.buffer);
        f
    }

    /// Switches the rebuild scheduling mode (takes effect at the next
    /// threshold crossing; an in-flight background rebuild finishes
    /// regardless).
    pub fn set_rebuild_mode(&mut self, mode: RebuildMode) {
        self.inner
            .background
            .store(mode == RebuildMode::Background, Ordering::SeqCst);
    }

    /// The current rebuild scheduling mode.
    pub fn rebuild_mode(&self) -> RebuildMode {
        if self.inner.background.load(Ordering::SeqCst) {
            RebuildMode::Background
        } else {
            RebuildMode::Blocking
        }
    }

    /// Whether a background rebuild is currently in flight.
    pub fn rebuild_in_flight(&self) -> bool {
        self.lock_rebuild().running
    }

    /// Blocks until no background rebuild is in flight (returns
    /// immediately when none is).
    pub fn wait_for_rebuild(&self) {
        loop {
            let handle = {
                let mut ctl = self.lock_rebuild();
                if !ctl.running && ctl.handle.is_none() {
                    return;
                }
                ctl.handle.take()
            };
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => std::thread::yield_now(),
            }
        }
    }

    /// Makes the next `n` background rebuild attempts fail with an
    /// injected build fault (test/chaos hook for the degradation ladder).
    pub fn inject_rebuild_errors(&self, n: usize) {
        self.inner.inject_build_errors.store(n, Ordering::SeqCst);
    }

    /// Makes the next `n` background rebuild attempts panic (exercises
    /// the poisoned-thread leg of the degradation ladder).
    pub fn inject_rebuild_panics(&self, n: usize) {
        self.inner.inject_build_panics.store(n, Ordering::SeqCst);
    }

    /// A point-in-time snapshot of the rebuild / WAL health counters.
    pub fn stats(&self) -> DynamicStats {
        let snap = self.snapshot();
        let c = &self.inner.counters;
        let (generation, wal_records, wal_bytes) = {
            let commit = self.lock_commit();
            match commit.wal.as_ref() {
                Some(w) => (
                    commit.generation,
                    w.records_since_rotation(),
                    w.bytes_since_rotation(),
                ),
                None => (commit.generation, 0, 0),
            }
        };
        let (replayed_records, replay_truncated_bytes) = self
            .inner
            .replay
            .as_ref()
            .map_or((0, 0), |r| (r.records as u64, r.truncated_bytes));
        let plane = snap.generation.oracle.label_plane_stats();
        DynamicStats {
            rebuilds: c.rebuilds.load(Ordering::Relaxed),
            background_rebuilds: c.background_rebuilds.load(Ordering::Relaxed),
            failed_rebuilds: c.failed_rebuilds.load(Ordering::Relaxed),
            last_rebuild_ms: c.last_rebuild_nanos.load(Ordering::Relaxed) as f64 / 1e6,
            rebuild_in_flight: self.rebuild_in_flight(),
            buffered: snap.buffer.len(),
            baked: snap.generation.baked.len(),
            threshold: self.inner.threshold,
            store_generation: generation,
            wal_records_since_rotation: wal_records,
            wal_bytes_since_rotation: wal_bytes,
            carry_over_depth: c.carry_over_depth.load(Ordering::Relaxed),
            replayed_records,
            replay_truncated_bytes,
            blocked_on_rebuild: c.blocked_on_rebuild.load(Ordering::Relaxed),
            serving_swaps_contended: c.serving_swaps_contended.load(Ordering::Relaxed),
            resident_labels: plane.resident_labels,
            resident_label_bytes: plane.resident_label_bytes,
            on_disk_label_bytes: plane.on_disk_label_bytes,
            label_open_mode: plane.open_mode,
        }
    }

    /// The WAL replay this oracle performed at [`DynamicOracle::open`]
    /// time, if any.
    pub fn wal_replay(&self) -> Option<&ReplayReport> {
        self.inner.replay.as_ref()
    }

    fn check_vertex(&self, v: NodeId) -> Result<(), DynamicError> {
        if self.inner.original.contains(v) {
            Ok(())
        } else {
            Err(DynamicError::VertexOutOfRange {
                v,
                n: self.inner.original.num_vertices(),
            })
        }
    }

    /// Surfaces a background failure recorded since the last update, per
    /// the degradation contract.
    fn take_background_failure(&self) -> Result<(), DynamicError> {
        let mut ctl = self.lock_rebuild();
        match ctl.failure.take() {
            Some(message) => Err(DynamicError::RebuildFailed { message }),
            None => Ok(()),
        }
    }

    /// Appends `record` to the WAL (the durability handshake: nothing is
    /// applied in memory until this succeeds). No-op without a store.
    fn wal_append(&self, commit: &mut CommitState, record: WalRecord) -> Result<(), DynamicError> {
        if commit.store_dir.is_none() {
            return Ok(());
        }
        match commit.wal.as_mut() {
            Some(w) => w.append(record).map_err(|e| DynamicError::Wal {
                message: e.to_string(),
            }),
            None => Err(DynamicError::Wal {
                message: "log unavailable after a failed rotation; \
                          re-attach the store to restore durability"
                    .into(),
            }),
        }
    }

    /// Post-update step: trigger a rebuild when the buffer crossed the
    /// threshold, then surface any pending background failure.
    fn after_update(&self, mut commit: MutexGuard<'_, CommitState>) -> Result<(), DynamicError> {
        let over = self.snapshot().buffer.len() > self.inner.threshold;
        if over {
            if self.inner.background.load(Ordering::SeqCst) {
                self.spawn_background_rebuild();
            } else {
                self.blocking_fold_rebuild(&mut commit, None).map_err(|e| {
                    DynamicError::Persist {
                        message: e.to_string(),
                    }
                })?;
            }
        }
        drop(commit);
        self.take_background_failure()
    }

    /// Folds buffer (and optionally restores a baked fault) into a new
    /// generation, installs it, and persists + rotates. Commit lock held
    /// by the caller. Blocking-path workhorse; also the open-replay and
    /// baked-restore path.
    fn blocking_fold_rebuild(
        &self,
        commit: &mut CommitState,
        restore_baked: Option<RestoreOp>,
    ) -> Result<(), StoreError> {
        let snap = self.snapshot();
        let started = Instant::now();
        let mut baked = snap.generation.baked.clone();
        if let Some(op) = restore_baked {
            match op {
                RestoreOp::Vertex(v) => {
                    baked.permit_vertex(v);
                }
                RestoreOp::Edge(a, b) => {
                    baked.permit_edge(a, b);
                }
            }
        }
        fold_into(&mut baked, &snap.buffer);
        let generation = Arc::new(build_generation(
            &self.inner.original,
            baked,
            self.inner.epsilon,
            0,
        ));
        self.install(Arc::clone(&generation), FaultSet::empty());
        let c = &self.inner.counters;
        c.rebuilds.fetch_add(1, Ordering::Relaxed);
        c.last_rebuild_nanos
            .store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        persist_and_rotate(
            self.inner.threshold,
            commit,
            &generation,
            &FaultSet::empty(),
        )
    }

    /// Spawns the background rebuild thread unless one is running or the
    /// failure backoff is still cooling down. Commit lock held by the
    /// caller (so the fold snapshot cannot race an install).
    fn spawn_background_rebuild(&self) {
        let mut ctl = self.lock_rebuild();
        if ctl.running {
            return;
        }
        if let Some(nb) = ctl.not_before {
            if Instant::now() < nb {
                return;
            }
        }
        // Reap the previous thread's handle (it has already finished).
        if let Some(h) = ctl.handle.take() {
            let _ = h.join();
        }
        let snap = self.snapshot();
        if snap.buffer.is_empty() {
            return;
        }
        let fold = snap.buffer.clone();
        let baked_start = snap.generation.baked.clone();
        ctl.running = true;
        ctl.fold = Some(fold.clone());
        self.inner.build_in_flight.store(true, Ordering::SeqCst);
        let inner = Arc::clone(&self.inner);
        ctl.handle = Some(std::thread::spawn(move || {
            background_rebuild(&inner, baked_start, fold);
        }));
    }

    /// Deletes a vertex of `G` (`Ok` no-op if already deleted).
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] when `v` is not a vertex of the
    /// original graph; [`DynamicError::Wal`] when the write-ahead append
    /// failed (the update is then *not* applied); [`DynamicError::Persist`]
    /// / [`DynamicError::RebuildFailed`] per the store contract (the
    /// update *is* applied in memory).
    pub fn delete_vertex(&mut self, v: NodeId) -> Result<(), DynamicError> {
        self.check_vertex(v)?;
        let mut commit = self.lock_commit();
        let snap = self.snapshot();
        if snap.generation.baked.is_vertex_faulty(v) || snap.buffer.is_vertex_faulty(v) {
            drop(commit);
            return self.take_background_failure();
        }
        self.wal_append(&mut commit, WalRecord::DeleteVertex(v))?;
        let mut buffer = snap.buffer.clone();
        buffer.forbid_vertex(v);
        self.install(Arc::clone(&snap.generation), buffer);
        self.after_update(commit)
    }

    /// Deletes an edge of `G` (`Ok` no-op if already deleted).
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] for an out-of-range endpoint;
    /// [`DynamicError::NotAnEdge`] when `{a, b}` is not an edge of the
    /// original graph; plus the store-path errors of
    /// [`DynamicOracle::delete_vertex`].
    pub fn delete_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), DynamicError> {
        self.check_vertex(a)?;
        self.check_vertex(b)?;
        if !self.inner.original.has_edge(a, b) {
            return Err(DynamicError::NotAnEdge { a, b });
        }
        let mut commit = self.lock_commit();
        let snap = self.snapshot();
        if snap.generation.baked.is_edge_faulty(a, b) || snap.buffer.is_edge_faulty(a, b) {
            drop(commit);
            return self.take_background_failure();
        }
        self.wal_append(&mut commit, WalRecord::DeleteEdge(a, b))?;
        let mut buffer = snap.buffer.clone();
        buffer.forbid_edge_unchecked(a, b);
        self.install(Arc::clone(&snap.generation), buffer);
        self.after_update(commit)
    }

    /// True when an in-flight background rebuild is folding this fault —
    /// restoring it must drain the rebuild first (otherwise the install
    /// would bake a fault the caller just restored).
    fn fold_conflict(&self, check: impl Fn(&FaultSet) -> bool) -> bool {
        let ctl = self.lock_rebuild();
        ctl.running && ctl.fold.as_ref().is_some_and(&check)
    }

    /// Restores a previously deleted vertex of `G`. Restorations of baked
    /// deletions force a (blocking) rebuild — the labeling no longer
    /// matches — draining any in-flight background rebuild first.
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] for an out-of-range id;
    /// [`DynamicError::VertexNotDeleted`] when `v` is not currently
    /// deleted; plus the store-path errors of
    /// [`DynamicOracle::delete_vertex`].
    pub fn restore_vertex(&mut self, v: NodeId) -> Result<(), DynamicError> {
        self.check_vertex(v)?;
        if self.fold_conflict(|f| f.is_vertex_faulty(v)) {
            self.wait_for_rebuild();
        }
        let mut commit = self.lock_commit();
        let snap = self.snapshot();
        if snap.buffer.is_vertex_faulty(v) {
            self.wal_append(&mut commit, WalRecord::RestoreVertex(v))?;
            let mut buffer = snap.buffer.clone();
            buffer.permit_vertex(v);
            self.install(Arc::clone(&snap.generation), buffer);
            drop(commit);
            return self.take_background_failure();
        }
        if snap.generation.baked.is_vertex_faulty(v) {
            self.wal_append(&mut commit, WalRecord::RestoreVertex(v))?;
            self.blocking_fold_rebuild(&mut commit, Some(RestoreOp::Vertex(v)))
                .map_err(|e| DynamicError::Persist {
                    message: e.to_string(),
                })?;
            drop(commit);
            return self.take_background_failure();
        }
        Err(DynamicError::VertexNotDeleted { v })
    }

    /// Restores a previously deleted edge of `G`.
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] for an out-of-range endpoint;
    /// [`DynamicError::EdgeNotDeleted`] when `{a, b}` is not currently
    /// deleted; plus the store-path errors of
    /// [`DynamicOracle::delete_vertex`].
    pub fn restore_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), DynamicError> {
        self.check_vertex(a)?;
        self.check_vertex(b)?;
        if self.fold_conflict(|f| f.is_edge_faulty(a, b)) {
            self.wait_for_rebuild();
        }
        let mut commit = self.lock_commit();
        let snap = self.snapshot();
        if snap.buffer.is_edge_faulty(a, b) {
            self.wal_append(&mut commit, WalRecord::RestoreEdge(a, b))?;
            let mut buffer = snap.buffer.clone();
            buffer.permit_edge(a, b);
            self.install(Arc::clone(&snap.generation), buffer);
            drop(commit);
            return self.take_background_failure();
        }
        if snap.generation.baked.is_edge_faulty(a, b) {
            self.wal_append(&mut commit, WalRecord::RestoreEdge(a, b))?;
            self.blocking_fold_rebuild(&mut commit, Some(RestoreOp::Edge(a, b)))
                .map_err(|e| DynamicError::Persist {
                    message: e.to_string(),
                })?;
            drop(commit);
            return self.take_background_failure();
        }
        Err(DynamicError::EdgeNotDeleted { a, b })
    }

    /// The `(1+ε)`-approximate distance between `s` and `t` (original ids)
    /// in the current graph `G ∖ F`.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range for the original graph. Use
    /// [`DynamicOracle::try_distance`] (which this routes through) to get
    /// a typed error instead — the right entry point when the query ids
    /// come from callers the service does not control.
    pub fn distance(&self, s: NodeId, t: NodeId) -> Dist {
        match self.try_distance(s, t) {
            Ok(d) => d,
            Err(e) => panic!("query vertex out of range: {e}"),
        }
    }

    /// Strict variant of [`DynamicOracle::distance`]: rejects out-of-range
    /// query vertices with a typed [`DynamicError`] instead of panicking,
    /// matching the fallible update API (and the store serving path,
    /// which must never abort on untrusted query input).
    ///
    /// This is the always-available path: it reads one `Arc` snapshot
    /// from the serving lock and never waits on the commit or rebuild
    /// locks, so an in-flight background rebuild cannot block it.
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] when `s` or `t` is not a vertex
    /// of the original graph.
    pub fn try_distance(&self, s: NodeId, t: NodeId) -> Result<Dist, DynamicError> {
        self.try_distance_with(s, t, &mut DecodeScratch::new())
    }

    /// [`DynamicOracle::try_distance`] with a caller-provided
    /// [`DecodeScratch`] — the dynamic counterpart of
    /// [`crate::ForbiddenSetOracle::try_query_with`], so a serving loop
    /// (one connection, many requests) keeps the zero-allocation decode
    /// fast path across the network hop. Same answer, bit for bit.
    ///
    /// # Errors
    ///
    /// [`DynamicError::VertexOutOfRange`] when `s` or `t` is not a vertex
    /// of the original graph.
    pub fn try_distance_with(
        &self,
        s: NodeId,
        t: NodeId,
        scratch: &mut DecodeScratch,
    ) -> Result<Dist, DynamicError> {
        self.check_vertex(s)?;
        self.check_vertex(t)?;
        let snap = self.snapshot();
        let gen = &snap.generation;
        // Deleted endpoints are unreachable by definition.
        let (Some(bs), Some(bt)) = (gen.base.map(s), gen.base.map(t)) else {
            return Ok(Dist::INFINITE);
        };
        if snap.buffer.is_vertex_faulty(s) || snap.buffer.is_vertex_faulty(t) {
            return Ok(Dist::INFINITE);
        }
        // Translate buffered faults into base-graph ids.
        let mut f = FaultSet::empty();
        for v in snap.buffer.vertices() {
            if let Some(bv) = gen.base.map(v) {
                f.forbid_vertex(bv);
            }
        }
        for e in snap.buffer.edges() {
            if let (Some(a), Some(b)) = (gen.base.map(e.lo()), gen.base.map(e.hi())) {
                if gen.base.graph.has_edge(a, b) {
                    f.forbid_edge_unchecked(a, b);
                }
            }
        }
        Ok(gen.oracle.query_with(bs, bt, &f, scratch).distance)
    }

    /// Connectivity in the current graph.
    pub fn connected(&self, s: NodeId, t: NodeId) -> bool {
        self.distance(s, t).is_finite()
    }

    /// Folds the buffer into the baked set and rebuilds the labeling on
    /// the surviving graph, synchronously and in memory only (call
    /// [`DynamicOracle::save`] to checkpoint). With a store attached, the
    /// fold is still WAL-logged so a post-crash replay reproduces the
    /// same baked/buffered split; a WAL failure here is recorded and
    /// surfaces from the next update.
    pub fn rebuild(&mut self) {
        self.wait_for_rebuild();
        let mut commit = self.lock_commit();
        if commit.store_dir.is_some() {
            if let Err(e) = self.wal_append(&mut commit, WalRecord::Fold) {
                let mut ctl = self.lock_rebuild();
                ctl.failure = Some(format!("logging an explicit fold failed: {e}"));
            }
        }
        let snap = self.snapshot();
        let started = Instant::now();
        let mut baked = snap.generation.baked.clone();
        fold_into(&mut baked, &snap.buffer);
        let generation = Arc::new(build_generation(
            &self.inner.original,
            baked,
            self.inner.epsilon,
            0,
        ));
        self.install(generation, FaultSet::empty());
        let c = &self.inner.counters;
        c.rebuilds.fetch_add(1, Ordering::Relaxed);
        c.last_rebuild_nanos
            .store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Persists the oracle's full state to the store at `dir` as a new
    /// generation: the base labeling's segment plus a manifest recording
    /// the baked fault set, the *buffered* fault set, and the rebuild
    /// threshold — so a mid-churn [`DynamicOracle::open`] resumes
    /// bit-identically, buffered deletions included. Older generations
    /// are pruned after the manifest swap; when `dir` is the attached
    /// store, the WAL is rotated too (the new manifest subsumes it).
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] on encoding or I/O failure; the store keeps
    /// its previous generation in that case.
    pub fn save(&self, dir: &Path) -> Result<StoreReport, StoreError> {
        let mut commit = self.lock_commit();
        let snap = self.snapshot();
        let encoded = snap.generation.oracle.encoded_labels()?;
        let report = store::write_generation(
            dir,
            snap.generation.oracle.params(),
            store::graph_fingerprint(snap.generation.oracle.labeling().graph()),
            &encoded,
            &snap.generation.baked,
            &snap.buffer,
            Some(self.inner.threshold),
        )?;
        if commit.store_dir.as_deref() == Some(dir) {
            commit.wal = None;
            rotate_wal(&mut commit, dir, report.generation)?;
            commit.generation = report.generation;
        }
        Ok(report)
    }

    /// Warm-starts a dynamic oracle from the store at `dir`, previously
    /// written by [`DynamicOracle::save`] (directly or via an attached
    /// store). `g` must be the *original* graph: the baked fault set from
    /// the manifest is re-applied to reconstruct the base subgraph, whose
    /// fingerprint must match the segment's; labels then decode lazily
    /// from the segment, so the rebuild cost is skipped.
    ///
    /// Recovery work on top of that: stale WAL files, orphaned segments,
    /// and `.tmp-` artifacts are pruned; the current generation's WAL is
    /// replayed (torn tails truncated, corruption rejected with a typed
    /// error); if the replay crossed a fold point, the labeling is
    /// rebuilt and persisted as a fresh generation before serving. The
    /// returned oracle keeps `dir` attached (WAL included), so subsequent
    /// updates are durable. It starts in [`RebuildMode::Blocking`]; use
    /// [`DynamicOracle::set_rebuild_mode`] to go non-blocking.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] for every corruption, mismatch, or I/O
    /// failure — never a panic on untrusted on-disk bytes.
    pub fn open(dir: &Path, g: &Graph) -> Result<Self, StoreError> {
        Self::open_with(dir, g, OpenMode::Eager)
    }

    /// [`DynamicOracle::open`] with an explicit [`OpenMode`] for the
    /// segment (see [`crate::ForbiddenSetOracle::open_with`]): under
    /// [`OpenMode::Lazy`] the serving generation memory-maps the segment
    /// and materializes labels at first touch, so a warm restart reaches
    /// its first answer in O(touched labels). Rebuilt generations (fold
    /// replay, threshold crossings) are in-memory and unaffected.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`]; see [`DynamicOracle::open`].
    pub fn open_with(dir: &Path, g: &Graph, mode: OpenMode) -> Result<Self, StoreError> {
        let manifest = store::read_manifest(dir)?;
        // A crash loop must not leak files: drop orphaned segments, stale
        // WALs, and temp artifacts before anything else.
        store::prune_generations(dir, manifest.generation);
        let segment = Segment::open(&dir.join(&manifest.segment), mode)?;
        for v in manifest.baked.vertices().chain(manifest.buffer.vertices()) {
            if !g.contains(v) {
                return Err(StoreError::ManifestCorrupt {
                    line: 0,
                    message: format!(
                        "fault vertex {v} out of range for a {}-vertex graph",
                        g.num_vertices()
                    ),
                });
            }
        }
        for e in manifest.baked.edges().chain(manifest.buffer.edges()) {
            if !g.contains(e.lo()) || !g.contains(e.hi()) {
                return Err(StoreError::ManifestCorrupt {
                    line: 0,
                    message: format!("fault edge ({}, {}) out of range", e.lo(), e.hi()),
                });
            }
        }
        if manifest.threshold == Some(0) {
            return Err(StoreError::ManifestCorrupt {
                line: 0,
                message: "rebuild threshold must be positive".into(),
            });
        }
        let threshold = manifest
            .threshold
            .unwrap_or_else(|| ((g.num_vertices() as f64).sqrt().ceil() as usize).max(1));
        // Guard against wrong-graph opens before any replay writes: the
        // segment must have been built on exactly `g ∖ baked`.
        let base0 = subgraph::remove_faults(g, &manifest.baked);
        let expected_fp = if base0.graph.num_vertices() == 0 {
            store::graph_fingerprint(&fsdl_graph::GraphBuilder::new(1).build())
        } else {
            store::graph_fingerprint(&base0.graph)
        };
        if expected_fp != segment.graph_fingerprint() {
            return Err(StoreError::GraphMismatch {
                expected: expected_fp,
                found: segment.graph_fingerprint(),
            });
        }
        let epsilon = segment.params()?.epsilon();
        // Replay the WAL (if one survived) over the manifest state.
        let wal_path = dir.join(crate::wal::wal_file_name(manifest.generation));
        let (wal, records, replay) = if wal_path.exists() {
            let (w, records, replay) = Wal::open(dir, manifest.generation)?;
            (w, records, replay)
        } else {
            (
                Wal::create(dir, manifest.generation)?,
                Vec::new(),
                ReplayReport::default(),
            )
        };
        let mut sim = ReplaySim {
            baked: manifest.baked,
            buffer: manifest.buffer,
            dirty: false,
        };
        for (index, record) in records.iter().enumerate() {
            sim.apply(g, threshold, index, *record)?;
        }
        if !sim.dirty {
            // The segment's labeling still matches the baked set; serve
            // straight from it, keeping the WAL and its records.
            let oracle = if base0.graph.num_vertices() == 0 {
                let placeholder = fsdl_graph::GraphBuilder::new(1).build();
                ForbiddenSetOracle::from_segment(&placeholder, Arc::new(segment))?
            } else {
                ForbiddenSetOracle::from_segment(&base0.graph, Arc::new(segment))?
            };
            let generation = Arc::new(GenerationState {
                base: base0,
                oracle,
                baked: sim.baked,
            });
            return Ok(Self::assemble(
                g.clone(),
                epsilon,
                threshold,
                RebuildMode::Blocking,
                0,
                generation,
                sim.buffer,
                Some(dir.to_path_buf()),
                Some(wal),
                manifest.generation,
                Some(replay),
            ));
        }
        // The replay crossed a fold point: the persisted labeling is
        // stale. Rebuild on the recovered baked set, persist it as a new
        // generation, and rotate — all before serving, so a crash during
        // recovery just replays again from the old manifest + WAL.
        drop(wal);
        let generation = Arc::new(build_generation(g, sim.baked, epsilon, 0));
        let encoded = generation.oracle.encoded_labels()?;
        let report = store::write_generation(
            dir,
            generation.oracle.params(),
            store::graph_fingerprint(generation.oracle.labeling().graph()),
            &encoded,
            &generation.baked,
            &sim.buffer,
            Some(threshold),
        )?;
        let mut commit_stub = CommitState {
            store_dir: Some(dir.to_path_buf()),
            wal: None,
            generation: report.generation,
        };
        rotate_wal(&mut commit_stub, dir, report.generation)?;
        let oracle = Self::assemble(
            g.clone(),
            epsilon,
            threshold,
            RebuildMode::Blocking,
            0,
            generation,
            sim.buffer,
            Some(dir.to_path_buf()),
            commit_stub.wal,
            report.generation,
            Some(replay),
        );
        oracle
            .inner
            .counters
            .rebuilds
            .fetch_add(1, Ordering::Relaxed);
        Ok(oracle)
    }

    /// Attaches a store directory and persists the current state to it
    /// immediately (creating the write-ahead log that makes subsequent
    /// updates durable). From then on every rebuild (threshold overflow
    /// or baked restoration) is persisted as a new generation; a persist
    /// failure surfaces from the triggering update as
    /// [`DynamicError::Persist`] while the in-memory oracle stays
    /// consistent. Explicit [`DynamicOracle::rebuild`] calls are
    /// in-memory only; call [`DynamicOracle::save`] to checkpoint after
    /// one.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] if the initial save or WAL creation fails
    /// (the store is then *not* attached).
    pub fn attach_store(&mut self, dir: &Path) -> Result<StoreReport, StoreError> {
        self.wait_for_rebuild();
        let mut commit = self.lock_commit();
        let snap = self.snapshot();
        let encoded = snap.generation.oracle.encoded_labels()?;
        let report = store::write_generation(
            dir,
            snap.generation.oracle.params(),
            store::graph_fingerprint(snap.generation.oracle.labeling().graph()),
            &encoded,
            &snap.generation.baked,
            &snap.buffer,
            Some(self.inner.threshold),
        )?;
        commit.wal = None;
        if let Err(e) = rotate_wal(&mut commit, dir, report.generation) {
            commit.store_dir = None;
            return Err(e);
        }
        commit.store_dir = Some(dir.to_path_buf());
        commit.generation = report.generation;
        Ok(report)
    }

    /// The attached store directory, if any.
    pub fn store_dir(&self) -> Option<PathBuf> {
        self.lock_commit().store_dir.clone()
    }
}

#[derive(Clone, Copy)]
enum RestoreOp {
    Vertex(NodeId),
    Edge(NodeId, NodeId),
}

/// The background rebuild thread body: build the next generation off to
/// the side, then (commit lock) persist, rotate, and install — or, on any
/// failure, discard the work, record it for the next update, and back
/// off. The serving path is untouched throughout except for the final
/// `O(1)` install swap.
fn background_rebuild(inner: &Arc<Inner>, baked_start: FaultSet, fold: FaultSet) {
    let started = Instant::now();
    let built: Result<GenerationState, String> = {
        let take = |cell: &AtomicUsize| {
            cell.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
        };
        if take(&inner.inject_build_errors) {
            Err("injected background build fault".into())
        } else {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if take(&inner.inject_build_panics) {
                    panic!("injected background build panic");
                }
                let mut baked = baked_start;
                fold_into(&mut baked, &fold);
                let requested = inner.rebuild_workers.load(Ordering::SeqCst);
                let n = inner.original.num_vertices();
                let workers = if requested == 0 {
                    fsdl_nets::parallel::background_workers(n)
                } else {
                    fsdl_nets::parallel::resolve_workers(requested, n)
                };
                build_generation(&inner.original, baked, inner.epsilon, workers)
            }));
            match outcome {
                Ok(gen) => Ok(gen),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "background rebuild panicked".into());
                    Err(format!("background rebuild panicked: {msg}"))
                }
            }
        }
    };
    // The build phase is over (successful or not); from here only the
    // O(1) commit/install steps remain, so queries observing contention
    // past this point are not blocked "on the rebuild".
    inner.build_in_flight.store(false, Ordering::SeqCst);

    let outcome: Result<(), String> = match built {
        Ok(gen) => {
            let gen = Arc::new(gen);
            let mut commit = inner.commit.lock().unwrap_or_else(|e| e.into_inner());
            let snap = Arc::clone(&inner.serving.read().unwrap_or_else(|e| e.into_inner()));
            // Updates that arrived mid-rebuild carry over to the new
            // generation's decoder-side buffer.
            let carry = fault_difference(&snap.buffer, &fold);
            match persist_and_rotate(inner.threshold, &mut commit, &gen, &carry) {
                Ok(()) => {
                    {
                        let next = Arc::new(ServingState {
                            generation: gen,
                            buffer: carry.clone(),
                        });
                        let mut guard = inner.serving.write().unwrap_or_else(|e| e.into_inner());
                        *guard = next;
                    }
                    let c = &inner.counters;
                    c.rebuilds.fetch_add(1, Ordering::Relaxed);
                    c.background_rebuilds.fetch_add(1, Ordering::Relaxed);
                    c.last_rebuild_nanos
                        .store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    c.carry_over_depth
                        .store(carry.len() as u64, Ordering::Relaxed);
                    Ok(())
                }
                Err(e) => Err(format!("persisting the rebuilt generation failed: {e}")),
            }
        }
        Err(msg) => Err(msg),
    };

    let mut ctl = inner.rebuild.lock().unwrap_or_else(|e| e.into_inner());
    match outcome {
        Ok(()) => {
            ctl.consecutive_failures = 0;
            ctl.not_before = None;
        }
        Err(message) => {
            inner
                .counters
                .failed_rebuilds
                .fetch_add(1, Ordering::Relaxed);
            ctl.consecutive_failures += 1;
            ctl.not_before = Some(Instant::now() + backoff_after(ctl.consecutive_failures));
            ctl.failure = Some(message);
        }
    }
    ctl.fold = None;
    ctl.running = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::{bfs, generators};

    fn check_against_truth(oracle: &DynamicOracle, g: &Graph, faults: &FaultSet, eps: f64) {
        for s in (0..g.num_vertices() as u32).step_by(5) {
            for t in (0..g.num_vertices() as u32).step_by(7) {
                let d = oracle.distance(NodeId::new(s), NodeId::new(t));
                let truth = bfs::pair_distance_avoiding(g, NodeId::new(s), NodeId::new(t), faults);
                match truth.finite() {
                    None => assert!(d.is_infinite(), "{s}->{t} should be disconnected"),
                    Some(0) => assert_eq!(d.finite(), Some(0)),
                    Some(td) => {
                        let dd = d.finite().expect("should be connected");
                        assert!(dd >= td);
                        assert!(
                            f64::from(dd) <= (1.0 + eps) * f64::from(td) + 1e-9,
                            "{s}->{t}: {dd} vs {td}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deletions_and_queries_match_truth() {
        let g = generators::grid2d(6, 6);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 100);
        let mut faults = FaultSet::empty();
        for v in [7u32, 21, 28] {
            oracle.delete_vertex(NodeId::new(v)).unwrap();
            faults.forbid_vertex(NodeId::new(v));
            check_against_truth(&oracle, &g, &faults, 1.0);
        }
        assert_eq!(oracle.rebuilds(), 0);
    }

    #[test]
    fn rebuild_threshold_triggers() {
        let g = generators::cycle(30);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 2);
        oracle.delete_vertex(NodeId::new(1)).unwrap();
        oracle.delete_vertex(NodeId::new(2)).unwrap();
        assert_eq!(oracle.rebuilds(), 0);
        oracle.delete_vertex(NodeId::new(3)).unwrap();
        assert_eq!(oracle.rebuilds(), 1);
        assert_eq!(oracle.buffered(), 0);
        // Queries still correct after the rebuild.
        let faults = oracle.current_faults();
        check_against_truth(&oracle, &g, &faults, 1.0);
    }

    #[test]
    fn restore_buffered_and_baked() {
        let g = generators::cycle(16);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 1);
        oracle.delete_vertex(NodeId::new(3)).unwrap();
        oracle.restore_vertex(NodeId::new(3)).unwrap(); // buffered -> cheap
        assert_eq!(oracle.rebuilds(), 0);
        assert_eq!(
            oracle.distance(NodeId::new(2), NodeId::new(4)).finite(),
            Some(2)
        );
        oracle.delete_vertex(NodeId::new(3)).unwrap();
        oracle.delete_vertex(NodeId::new(8)).unwrap(); // exceeds threshold -> baked
        assert_eq!(oracle.rebuilds(), 1);
        oracle.restore_vertex(NodeId::new(3)).unwrap(); // baked -> rebuild
        assert_eq!(oracle.rebuilds(), 2);
        assert_eq!(
            oracle.distance(NodeId::new(2), NodeId::new(4)).finite(),
            Some(2)
        );
    }

    #[test]
    fn edge_deletions() {
        let g = generators::cycle(12);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 50);
        oracle.delete_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let d = oracle
            .distance(NodeId::new(0), NodeId::new(1))
            .finite()
            .unwrap();
        assert!(d >= 11);
        oracle.restore_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(
            oracle.distance(NodeId::new(0), NodeId::new(1)).finite(),
            Some(1)
        );
    }

    #[test]
    fn duplicate_deletes_are_noops() {
        let g = generators::path(8);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 10);
        oracle.delete_vertex(NodeId::new(4)).unwrap();
        oracle.delete_vertex(NodeId::new(4)).unwrap();
        assert_eq!(oracle.buffered(), 1);
    }

    #[test]
    fn queries_to_deleted_vertices() {
        let g = generators::path(8);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 1);
        oracle.delete_vertex(NodeId::new(4)).unwrap();
        oracle.delete_vertex(NodeId::new(5)).unwrap(); // rebuild happens
        assert!(oracle.rebuilds() >= 1);
        assert!(oracle
            .distance(NodeId::new(4), NodeId::new(0))
            .is_infinite());
        assert!(oracle
            .distance(NodeId::new(0), NodeId::new(5))
            .is_infinite());
        assert!(!oracle.connected(NodeId::new(0), NodeId::new(7)));
        assert!(oracle.connected(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn out_of_range_updates_are_typed_errors() {
        let g = generators::path(8);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 10);
        assert_eq!(
            oracle.delete_vertex(NodeId::new(8)),
            Err(DynamicError::VertexOutOfRange {
                v: NodeId::new(8),
                n: 8
            })
        );
        assert!(matches!(
            oracle.restore_vertex(NodeId::new(99)),
            Err(DynamicError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            oracle.delete_edge(NodeId::new(0), NodeId::new(42)),
            Err(DynamicError::VertexOutOfRange { .. })
        ));
        // The failed updates must not have perturbed the oracle.
        assert_eq!(oracle.buffered(), 0);
        assert_eq!(
            oracle.distance(NodeId::new(0), NodeId::new(7)).finite(),
            Some(7)
        );
    }

    #[test]
    fn delete_non_edge_is_a_typed_error() {
        let g = generators::path(8); // no edge {0, 2}
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 10);
        assert_eq!(
            oracle.delete_edge(NodeId::new(0), NodeId::new(2)),
            Err(DynamicError::NotAnEdge {
                a: NodeId::new(0),
                b: NodeId::new(2)
            })
        );
        assert_eq!(oracle.buffered(), 0);
    }

    #[test]
    fn restore_of_never_deleted_fault_is_a_typed_error() {
        let g = generators::cycle(12);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 10);
        assert_eq!(
            oracle.restore_vertex(NodeId::new(3)),
            Err(DynamicError::VertexNotDeleted { v: NodeId::new(3) })
        );
        assert_eq!(
            oracle.restore_edge(NodeId::new(0), NodeId::new(1)),
            Err(DynamicError::EdgeNotDeleted {
                a: NodeId::new(0),
                b: NodeId::new(1)
            })
        );
        // A delete/restore pair brings the restore back to Ok, and a second
        // restore errors again.
        oracle.delete_vertex(NodeId::new(3)).unwrap();
        oracle.restore_vertex(NodeId::new(3)).unwrap();
        assert!(oracle.restore_vertex(NodeId::new(3)).is_err());
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let g = generators::cycle(8);
        assert!(matches!(
            DynamicOracle::try_with_threshold(&g, 1.0, 0),
            Err(DynamicError::InvalidConfig { .. })
        ));
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                DynamicOracle::try_new(&g, eps),
                Err(DynamicError::InvalidConfig { .. })
            ));
        }
        let empty = fsdl_graph::GraphBuilder::new(0).build();
        assert!(matches!(
            DynamicOracle::try_new(&empty, 1.0),
            Err(DynamicError::InvalidConfig { .. })
        ));
        // The panicking shims still panic, with the typed message.
        let err = std::panic::catch_unwind(|| DynamicOracle::with_threshold(&g, 1.0, 0));
        assert!(err.is_err());
        // And a valid config still works.
        assert!(DynamicOracle::try_with_threshold(&g, 1.0, 3).is_ok());
    }

    #[test]
    fn background_rebuild_matches_blocking_answers() {
        let g = generators::grid2d(6, 6);
        let mut background = DynamicOracle::try_with_config(
            &g,
            DynamicConfig {
                epsilon: 1.0,
                threshold: Some(2),
                mode: RebuildMode::Background,
                rebuild_workers: 1,
            },
        )
        .unwrap();
        let mut faults = FaultSet::empty();
        for v in [7u32, 14, 21, 28] {
            background.delete_vertex(NodeId::new(v)).unwrap();
            faults.forbid_vertex(NodeId::new(v));
        }
        background.wait_for_rebuild();
        assert!(background.stats().background_rebuilds >= 1);
        check_against_truth(&background, &g, &faults, 1.0);
        // Restores still work after background installs.
        background.restore_vertex(NodeId::new(7)).unwrap();
        faults.permit_vertex(NodeId::new(7));
        background.wait_for_rebuild();
        check_against_truth(&background, &g, &faults, 1.0);
    }

    #[test]
    fn injected_background_failure_degrades_and_recovers() {
        let g = generators::grid2d(5, 5);
        let mut oracle = DynamicOracle::try_with_config(
            &g,
            DynamicConfig {
                epsilon: 1.0,
                threshold: Some(1),
                mode: RebuildMode::Background,
                rebuild_workers: 1,
            },
        )
        .unwrap();
        oracle.inject_rebuild_errors(1);
        oracle.delete_vertex(NodeId::new(6)).unwrap();
        oracle.delete_vertex(NodeId::new(12)).unwrap(); // crosses threshold
        oracle.wait_for_rebuild();
        let stats = oracle.stats();
        assert_eq!(stats.failed_rebuilds, 1);
        assert_eq!(stats.background_rebuilds, 0);
        // Old generation + buffer still serve correct answers.
        let mut faults = FaultSet::empty();
        faults.forbid_vertex(NodeId::new(6));
        faults.forbid_vertex(NodeId::new(12));
        check_against_truth(&oracle, &g, &faults, 1.0);
        // The failure surfaces exactly once, on the next update.
        let err = oracle.delete_vertex(NodeId::new(18)).unwrap_err();
        assert!(matches!(err, DynamicError::RebuildFailed { .. }), "{err}");
        faults.forbid_vertex(NodeId::new(18));
        // After the backoff elapses, a later update retries and succeeds.
        std::thread::sleep(backoff_after(1));
        oracle.delete_vertex(NodeId::new(19)).unwrap();
        faults.forbid_vertex(NodeId::new(19));
        oracle.wait_for_rebuild();
        assert_eq!(oracle.stats().background_rebuilds, 1);
        check_against_truth(&oracle, &g, &faults, 1.0);
    }

    #[test]
    fn injected_background_panic_is_contained() {
        let g = generators::grid2d(4, 4);
        let mut oracle = DynamicOracle::try_with_config(
            &g,
            DynamicConfig {
                epsilon: 1.0,
                threshold: Some(1),
                mode: RebuildMode::Background,
                rebuild_workers: 1,
            },
        )
        .unwrap();
        oracle.inject_rebuild_panics(1);
        oracle.delete_vertex(NodeId::new(5)).unwrap();
        oracle.delete_vertex(NodeId::new(10)).unwrap();
        oracle.wait_for_rebuild();
        assert_eq!(oracle.stats().failed_rebuilds, 1);
        let err = oracle.delete_vertex(NodeId::new(3)).unwrap_err();
        assert!(
            matches!(err, DynamicError::RebuildFailed { message } if message.contains("panicked"))
        );
        // Still serving.
        assert!(oracle.distance(NodeId::new(0), NodeId::new(15)).is_finite());
    }

    #[test]
    fn stats_reflect_rebuilds() {
        let g = generators::cycle(20);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 1);
        let s0 = oracle.stats();
        assert_eq!(s0.rebuilds, 0);
        assert_eq!(s0.threshold, 1);
        assert_eq!(s0.blocked_on_rebuild, 0);
        oracle.delete_vertex(NodeId::new(1)).unwrap();
        oracle.delete_vertex(NodeId::new(2)).unwrap();
        let s1 = oracle.stats();
        assert_eq!(s1.rebuilds, 1);
        assert!(s1.last_rebuild_ms > 0.0);
        assert_eq!(s1.baked, 2);
        assert_eq!(s1.buffered, 0);
        assert_eq!(s1.store_generation, 0); // no store attached
    }
}
