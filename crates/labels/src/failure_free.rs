//! The failure-free `(1+ε)` distance labeling of the paper's Section 2.1
//! overview.
//!
//! Label of `v`: for each level `i ∈ {c, …, ⌈log n⌉}` (with
//! `c = max{0, ⌈log₂(2/ε)⌉}`), the net points of `N_{i−c} ∩ B(v, 2^{i+1}−1)`
//! with their exact distances from `v`. A query finds the smallest `i` such
//! that `M_{i−c}(t)` (read from `L(t)`) appears in `L_i(s)` and returns
//! `d(s, M) + d(M, t)`, which the paper shows is a `1+ε` approximation.
//!
//! This scheme is both a baseline (what you get when you ignore faults —
//! the harness shows its answers can be arbitrarily wrong under `F ≠ ∅`)
//! and the conceptual skeleton the fault-tolerant labels extend.

use fsdl_graph::bfs::{self, BfsScratch};
use fsdl_graph::{Dist, Graph, NodeId};
use fsdl_nets::{ceil_log2, NetHierarchy};

use crate::codec::BitWriter;
use crate::label::LabelPoint;

/// A failure-free label: per-level net points with exact distances.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureFreeLabel {
    /// The vertex this label belongs to.
    pub owner: NodeId,
    /// The lowest level `c`.
    pub first_level: u32,
    /// Point lists for levels `c, c+1, …, ⌈log n⌉` (sorted by vertex id).
    pub levels: Vec<Vec<LabelPoint>>,
}

impl FailureFreeLabel {
    /// Canonical encoded size in bits (same codec conventions as the
    /// fault-tolerant labels).
    pub fn encoded_bits(&self, n: usize) -> usize {
        let mut w = BitWriter::new();
        w.write_bits(u64::from(self.owner.raw()), ceil_log2(n).max(1))
            .expect("owner id fits the id field");
        w.write_varint(u64::from(self.first_level));
        w.write_varint(self.levels.len() as u64);
        for level in &self.levels {
            w.write_varint(level.len() as u64);
            let mut prev = 0u64;
            for (k, p) in level.iter().enumerate() {
                let id = u64::from(p.vertex.raw());
                let delta = if k == 0 { id } else { id - prev };
                prev = id;
                w.write_varint(delta);
                w.write_varint(u64::from(p.dist));
            }
        }
        w.len_bits()
    }
}

/// The failure-free labeling scheme: marker side.
#[derive(Clone, Debug)]
pub struct FailureFreeLabeling<'g> {
    graph: &'g Graph,
    nets: NetHierarchy,
    c: u32,
    top_level: u32,
    epsilon: f64,
}

impl<'g> FailureFreeLabeling<'g> {
    /// Preprocesses `g` for precision `epsilon`, with the paper's
    /// `c = max{0, ⌈log₂(2/ε)⌉}`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not positive finite or `g` is empty.
    pub fn build(g: &'g Graph, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be a positive finite number"
        );
        assert!(g.num_vertices() > 0, "labeling needs a nonempty graph");
        let c = (2.0 / epsilon).log2().ceil().max(0.0) as u32;
        let nets = NetHierarchy::build(g);
        let top_level = nets.top_level().max(c);
        FailureFreeLabeling {
            graph: g,
            nets,
            c,
            top_level,
            epsilon,
        }
    }

    /// The level offset `c(ε)`.
    pub fn c(&self) -> u32 {
        self.c
    }

    /// The precision `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Materializes the failure-free label of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_of(&self, v: NodeId) -> FailureFreeLabel {
        assert!(self.graph.contains(v), "vertex out of range");
        let n = self.graph.num_vertices();
        let mut scratch = BfsScratch::new(n);
        let mut levels = Vec::new();
        for i in self.c..=self.top_level {
            let radius = radius_at(i, n);
            let net = (i - self.c).min(self.nets.top_level());
            let mut pts: Vec<LabelPoint> = bfs::ball(self.graph, v, radius, &mut scratch)
                .into_iter()
                .filter(|m| self.nets.is_in_net(m.vertex, net))
                .map(|m| LabelPoint {
                    vertex: m.vertex,
                    dist: m.dist,
                    net_level: self.nets.level_of(m.vertex),
                })
                .collect();
            pts.sort_unstable_by_key(|p| p.vertex);
            levels.push(pts);
        }
        FailureFreeLabel {
            owner: v,
            first_level: self.c,
            levels,
        }
    }

    /// Encoded size in bits of `L(v)`.
    pub fn label_bits(&self, v: NodeId) -> usize {
        self.label_of(v).encoded_bits(self.graph.num_vertices())
    }
}

/// Ball radius `2^{i+1} − 1`, clamped to graph scale.
fn radius_at(i: u32, n: usize) -> u32 {
    let r = (1u64 << (i + 1)) - 1;
    u32::try_from(r.min(n as u64)).expect("n fits in u32")
}

/// Decodes a failure-free distance query from two labels alone: the
/// smallest level `i` at which `t`'s nearest level-`i` net point appears in
/// `L_i(s)` yields the estimate `d(s, M) + d(M, t)`.
///
/// Returns [`Dist::INFINITE`] when `s` and `t` are disconnected.
///
/// # Panics
///
/// Panics if the labels have inconsistent level ranges.
pub fn query_failure_free(source: &FailureFreeLabel, target: &FailureFreeLabel) -> Dist {
    assert_eq!(
        source.first_level, target.first_level,
        "labels come from different schemes"
    );
    if source.owner == target.owner {
        return Dist::ZERO;
    }
    for (k, t_level) in target.levels.iter().enumerate() {
        // M_{i-c}(t): the nearest stored point at this level.
        let Some(m) = t_level.iter().min_by_key(|p| (p.dist, p.vertex)) else {
            continue;
        };
        let Some(s_level) = source.levels.get(k) else {
            break;
        };
        if let Ok(idx) = s_level.binary_search_by_key(&m.vertex, |p| p.vertex) {
            let d = u64::from(s_level[idx].dist) + u64::from(m.dist);
            return Dist::new(u32::try_from(d).expect("distance fits u32"));
        }
    }
    Dist::INFINITE
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;

    fn exact(g: &Graph, s: u32, t: u32) -> u32 {
        bfs::pair_distance_avoiding(
            g,
            NodeId::new(s),
            NodeId::new(t),
            &fsdl_graph::FaultSet::empty(),
        )
        .finite()
        .unwrap()
    }

    #[test]
    fn exact_on_small_path() {
        let g = generators::path(32);
        let ff = FailureFreeLabeling::build(&g, 0.5);
        for s in [0u32, 7, 31] {
            let ls = ff.label_of(NodeId::new(s));
            for t in 0..32u32 {
                let lt = ff.label_of(NodeId::new(t));
                let d = query_failure_free(&ls, &lt);
                let truth = exact(&g, s, t);
                assert!(d.finite().unwrap() >= truth);
                assert!(
                    f64::from(d.finite().unwrap()) <= 1.5 * f64::from(truth) + 1e-9,
                    "stretch violated: {s}->{t} got {d} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn stretch_bound_on_grid() {
        let g = generators::grid2d(9, 9);
        let eps = 1.0;
        let ff = FailureFreeLabeling::build(&g, eps);
        let mut worst: f64 = 1.0;
        for s in (0..81).step_by(7) {
            let ls = ff.label_of(NodeId::new(s));
            for t in (0..81).step_by(5) {
                if s == t {
                    continue;
                }
                let lt = ff.label_of(NodeId::new(t));
                let d = query_failure_free(&ls, &lt).finite().unwrap();
                let truth = exact(&g, s, t);
                assert!(d >= truth);
                worst = worst.max(f64::from(d) / f64::from(truth));
            }
        }
        assert!(worst <= 1.0 + eps + 1e-9, "worst stretch {worst}");
    }

    #[test]
    fn same_vertex_is_zero() {
        let g = generators::cycle(12);
        let ff = FailureFreeLabeling::build(&g, 1.0);
        let l = ff.label_of(NodeId::new(3));
        assert_eq!(query_failure_free(&l, &l), Dist::ZERO);
    }

    #[test]
    fn disconnected_is_infinite() {
        let mut b = fsdl_graph::GraphBuilder::new(6);
        b.add_edges([(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let g = b.build();
        let ff = FailureFreeLabeling::build(&g, 1.0);
        let a = ff.label_of(NodeId::new(0));
        let b2 = ff.label_of(NodeId::new(5));
        assert!(query_failure_free(&a, &b2).is_infinite());
    }

    #[test]
    fn c_values() {
        let g = generators::path(8);
        assert_eq!(FailureFreeLabeling::build(&g, 2.0).c(), 0);
        assert_eq!(FailureFreeLabeling::build(&g, 1.0).c(), 1);
        assert_eq!(FailureFreeLabeling::build(&g, 0.5).c(), 2);
        assert_eq!(FailureFreeLabeling::build(&g, 0.25).c(), 3);
    }

    #[test]
    fn label_bits_positive_and_deterministic() {
        let g = generators::grid2d(6, 6);
        let ff = FailureFreeLabeling::build(&g, 1.0);
        let bits = ff.label_bits(NodeId::new(17));
        assert!(bits > 0);
        assert_eq!(bits, ff.label_bits(NodeId::new(17)));
    }

    #[test]
    fn encoded_bits_roundtrip_consistency() {
        let g = generators::grid2d(5, 5);
        let ff = FailureFreeLabeling::build(&g, 0.5);
        let l = ff.label_of(NodeId::new(12));
        assert_eq!(l.encoded_bits(25), ff.label_bits(NodeId::new(12)));
    }
}
