//! Byte-aligned group-varint label codec — the ablation arm.
//!
//! The canonical codec ([`crate::codec`]) is a bit-granular delta+varint
//! format: 5-bit groups, unaligned, as small as the scheme knows how to
//! be. The classic alternative from the integer-compression literature is
//! **group varint**: values in groups of four, one tag byte holding four
//! 2-bit length codes, then 1–4 little-endian payload bytes per value —
//! byte-aligned throughout, so decoding is tag-dispatch plus unaligned
//! loads, no bit shifting across byte boundaries.
//!
//! This module exists for the T18 codec ablation (`exp_t18_labelplane`):
//! it encodes the *same* label field stream as the canonical codec
//! (owner, levels, per-level delta-coded points and edge lists) so the
//! two arms are byte-for-byte comparable on decode ns/label and
//! bytes/label. It is **not** wired into the store format — the ablation
//! decides whether it should be.
//!
//! Untrusted-input contract matches [`crate::codec::decode`]: typed
//! [`CodecError`], never a panic, structural validation of every id and
//! index.

use fsdl_graph::NodeId;

use crate::codec::CodecError;
use crate::label::{Label, LabelPoint, LevelLabel, RealEdge, VirtualEdge};

/// Upper bound on plausible net levels (mirrors the canonical codec).
const MAX_PLAUSIBLE_LEVEL: u64 = 64;

/// Append `values` as group varint: one tag byte per group of four, then
/// each value's 1–4 little-endian bytes. A trailing partial group is
/// padded with zero-length... no — zero *values*, which cost one byte
/// each; the decoder knows the true count and ignores the pad slots.
fn write_group(out: &mut Vec<u8>, values: &[u32]) {
    for chunk in values.chunks(4) {
        let mut group = [0u32; 4];
        group[..chunk.len()].copy_from_slice(chunk);
        let mut tag = 0u8;
        let lens: Vec<u32> = group
            .iter()
            .map(|&v| {
                if v < (1 << 8) {
                    1
                } else if v < (1 << 16) {
                    2
                } else if v < (1 << 24) {
                    3
                } else {
                    4
                }
            })
            .collect();
        for (k, &len) in lens.iter().enumerate() {
            tag |= ((len - 1) as u8) << (2 * k);
        }
        out.push(tag);
        for (k, &v) in group.iter().enumerate() {
            out.extend_from_slice(&v.to_le_bytes()[..lens[k] as usize]);
        }
    }
}

/// Cursor over group-varint bytes.
struct GroupReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> GroupReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        GroupReader { bytes, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> CodecError {
        CodecError::new(self.pos * 8, message)
    }

    /// Reads `count` values into `out` (cleared first).
    fn read_group(&mut self, count: usize, out: &mut Vec<u32>) -> Result<(), CodecError> {
        out.clear();
        out.reserve(count);
        let mut remaining = count;
        while remaining > 0 {
            let tag = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("group varint tag truncated"))?;
            self.pos += 1;
            let in_group = remaining.min(4);
            for k in 0..4 {
                let len = ((tag >> (2 * k)) & 0b11) as usize + 1;
                let end = self.pos + len;
                let slice = self
                    .bytes
                    .get(self.pos..end)
                    .ok_or_else(|| self.err("group varint value truncated"))?;
                if k < in_group {
                    let mut buf = [0u8; 4];
                    buf[..len].copy_from_slice(slice);
                    out.push(u32::from_le_bytes(buf));
                }
                // Pad slots still consume their declared bytes so the
                // stream stays aligned with the encoder's layout.
                self.pos = end;
            }
            remaining -= in_group;
        }
        Ok(())
    }

    fn read_one(&mut self) -> Result<u32, CodecError> {
        let mut one = Vec::with_capacity(1);
        self.read_group(1, &mut one)?;
        Ok(one[0])
    }
}

/// Encodes `label` in the group-varint format. Field stream mirrors the
/// canonical codec: owner, owner net level, first level, level count,
/// then per level the point count + delta-coded point triples, virtual
/// edge count + triples, real edge count + pairs.
///
/// # Errors
///
/// [`CodecError`] when a field exceeds `u32` range or `label.owner` is
/// not a vertex of an `n`-vertex graph.
pub fn encode(label: &Label, n: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    if label.owner.index() >= n {
        return Err(CodecError::new(
            0,
            format!("owner {} out of range for n={n}", label.owner),
        ));
    }
    let fit = |v: usize| -> Result<u32, CodecError> {
        u32::try_from(v).map_err(|_| CodecError::new(0, format!("field {v} exceeds u32 range")))
    };
    write_group(
        &mut out,
        &[
            label.owner.raw(),
            label.owner_net_level,
            label.first_level,
            fit(label.levels.len())?,
        ],
    );
    // Each field stream gets its own group alignment (a count is its own
    // one-value group) so the decoder — which must read a count before it
    // knows how many values follow — sees the same group boundaries the
    // encoder wrote.
    let mut values = Vec::new();
    for level in &label.levels {
        write_group(&mut out, &[fit(level.points.len())?]);
        values.clear();
        let mut prev = 0u32;
        for (k, p) in level.points.iter().enumerate() {
            let id = p.vertex.raw();
            let delta = if k == 0 { id } else { id - prev };
            prev = id;
            values.extend_from_slice(&[delta, p.dist, p.net_level]);
        }
        write_group(&mut out, &values);
        write_group(&mut out, &[fit(level.virtual_edges.len())?]);
        values.clear();
        for e in &level.virtual_edges {
            values.extend_from_slice(&[e.a, e.b, e.dist]);
        }
        write_group(&mut out, &values);
        write_group(&mut out, &[fit(level.real_edges.len())?]);
        values.clear();
        for e in &level.real_edges {
            values.extend_from_slice(&[e.a, e.b]);
        }
        write_group(&mut out, &values);
    }
    Ok(out)
}

/// Decodes a group-varint label written by [`encode`]. Untrusted-input
/// safe: typed errors, bounded allocation, full structural validation.
///
/// # Errors
///
/// [`CodecError`] on truncated, malformed, or out-of-range input.
pub fn decode(bytes: &[u8], n: usize) -> Result<Label, CodecError> {
    let mut r = GroupReader::new(bytes);
    let mut head = Vec::with_capacity(4);
    r.read_group(4, &mut head)?;
    let (owner_raw, owner_net_level, first_level, num_levels) =
        (head[0], head[1], head[2], head[3]);
    if owner_raw as usize >= n {
        return Err(r.err(format!("owner id {owner_raw} out of range for n={n}")));
    }
    if u64::from(owner_net_level) > MAX_PLAUSIBLE_LEVEL
        || u64::from(first_level) > MAX_PLAUSIBLE_LEVEL
        || u64::from(num_levels) > MAX_PLAUSIBLE_LEVEL
    {
        return Err(r.err("implausible level field"));
    }
    let mut levels = Vec::with_capacity(num_levels as usize);
    let mut buf = Vec::new();
    for _ in 0..num_levels {
        levels.push(decode_level(&mut r, n, &mut buf)?);
    }
    if r.pos != bytes.len() {
        return Err(r.err(format!("{} trailing bytes", bytes.len() - r.pos)));
    }
    Ok(Label {
        owner: NodeId::new(owner_raw),
        owner_net_level,
        first_level,
        levels,
    })
}

fn decode_level(
    r: &mut GroupReader<'_>,
    n: usize,
    buf: &mut Vec<u32>,
) -> Result<LevelLabel, CodecError> {
    let read_count = |r: &mut GroupReader<'_>, per_elem: usize| -> Result<usize, CodecError> {
        let v = r.read_one()? as usize;
        // Each element costs at least one payload byte (plus amortized
        // tag); reject counts the remaining bytes cannot possibly hold.
        let cap = r.bytes.len().saturating_sub(r.pos) / per_elem.max(1);
        if v > cap {
            return Err(r.err(format!("count {v} exceeds remaining input ({cap})")));
        }
        Ok(v)
    };
    let num_points = read_count(r, 3)?;
    r.read_group(num_points * 3, buf)?;
    let mut points = Vec::with_capacity(num_points);
    let mut prev = 0u32;
    for k in 0..num_points {
        let delta = buf[3 * k];
        let id = if k == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .ok_or_else(|| r.err("point id delta overflows"))?
        };
        prev = id;
        if id as usize >= n {
            return Err(r.err(format!("point id {id} out of range for n={n}")));
        }
        let net_level = buf[3 * k + 2];
        if u64::from(net_level) > MAX_PLAUSIBLE_LEVEL {
            return Err(r.err(format!("implausible point net level {net_level}")));
        }
        points.push(LabelPoint {
            vertex: NodeId::new(id),
            dist: buf[3 * k + 1],
            net_level,
        });
    }
    let num_virtual = read_count(r, 3)?;
    r.read_group(num_virtual * 3, buf)?;
    let mut virtual_edges = Vec::with_capacity(num_virtual);
    for k in 0..num_virtual {
        let (a, b, dist) = (buf[3 * k], buf[3 * k + 1], buf[3 * k + 2]);
        if a as usize >= points.len() || b as usize >= points.len() {
            return Err(r.err("virtual edge index out of range"));
        }
        virtual_edges.push(VirtualEdge { a, b, dist });
    }
    let num_real = read_count(r, 2)?;
    r.read_group(num_real * 2, buf)?;
    let mut real_edges = Vec::with_capacity(num_real);
    for k in 0..num_real {
        let (a, b) = (buf[2 * k], buf[2 * k + 1]);
        if a as usize >= points.len() || b as usize >= points.len() {
            return Err(r.err("real edge index out of range"));
        }
        real_edges.push(RealEdge { a, b });
    }
    Ok(LevelLabel {
        points,
        virtual_edges,
        real_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_label() -> Label {
        Label {
            owner: NodeId::new(12),
            owner_net_level: 2,
            first_level: 3,
            levels: vec![
                LevelLabel {
                    points: vec![
                        LabelPoint {
                            vertex: NodeId::new(3),
                            dist: 9,
                            net_level: 0,
                        },
                        LabelPoint {
                            vertex: NodeId::new(12),
                            dist: 0,
                            net_level: 2,
                        },
                        LabelPoint {
                            vertex: NodeId::new(40),
                            dist: 70_000,
                            net_level: 5,
                        },
                    ],
                    virtual_edges: vec![VirtualEdge {
                        a: 0,
                        b: 2,
                        dist: 30,
                    }],
                    real_edges: vec![RealEdge { a: 0, b: 1 }],
                },
                LevelLabel::default(),
            ],
        }
    }

    #[test]
    fn roundtrip_identity() {
        let label = sample_label();
        let bytes = encode(&label, 50).unwrap();
        assert_eq!(decode(&bytes, 50).unwrap(), label);
    }

    #[test]
    fn rejects_truncation_at_every_byte() {
        let label = sample_label();
        let bytes = encode(&label, 50).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], 50).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let label = sample_label();
        let bytes = encode(&label, 50).unwrap();
        // Decoding for a smaller graph must reject the point ids.
        assert!(decode(&bytes, 5).is_err());
    }

    #[test]
    fn random_labels_roundtrip() {
        fsdl_testkit::check("group varint roundtrip", 200, |rng| {
            let n = rng.gen_range(2..500usize);
            let num_points = rng.gen_range(0..20usize);
            let mut ids: Vec<u32> = (0..num_points)
                .map(|_| rng.gen_range(0..n as u32))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            let points: Vec<LabelPoint> = ids
                .iter()
                .map(|&id| LabelPoint {
                    vertex: NodeId::new(id),
                    dist: rng.gen_range(0..1_000_000u32),
                    net_level: rng.gen_range(0..64u32),
                })
                .collect();
            let virtual_edges: Vec<VirtualEdge> = if points.is_empty() {
                Vec::new()
            } else {
                (0..rng.gen_range(0..6usize))
                    .map(|_| VirtualEdge {
                        a: rng.gen_range(0..points.len() as u32),
                        b: rng.gen_range(0..points.len() as u32),
                        dist: rng.gen_range(0..u32::MAX),
                    })
                    .collect()
            };
            let label = Label {
                owner: NodeId::new(rng.gen_range(0..n as u32)),
                owner_net_level: rng.gen_range(0..64u32),
                first_level: rng.gen_range(0..64u32),
                levels: vec![LevelLabel {
                    points,
                    virtual_edges,
                    real_edges: Vec::new(),
                }],
            };
            let bytes = encode(&label, n).unwrap();
            assert_eq!(decode(&bytes, n).unwrap(), label);
        });
    }

    #[test]
    fn garbage_never_panics() {
        fsdl_testkit::check("group varint garbage", 300, |rng| {
            let len = rng.gen_range(0..200usize);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = decode(&bytes, 100); // must return, never panic
        });
    }
}
