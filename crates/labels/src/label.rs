//! The per-vertex label data structures.
//!
//! A vertex label `L(v)` is a list of level labels `L_i(v)`, `i ∈ I`; each
//! level label encodes the weighted graph `H_i(v)`:
//!
//! * **points** — the vertices of `H_i(v)`: every net point of
//!   `N_{i−c−1} ∩ B(v, rᵢ)`, stored with its exact distance from `v` and its
//!   maximal net level. The implicit *owner edges* `(v, x)` of the paper are
//!   exactly the points with `d_G(v, x) ≤ λᵢ`.
//! * **virtual edges** — pairs `(x, y)` of stored points with
//!   `d_G(x, y) ≤ λᵢ`, weighted by `d_G(x, y)`. Following the analysis (only
//!   edges with a waypoint endpoint are ever used), we store a pair only
//!   when at least one endpoint lies in `N_{i−c}` — an optimization that
//!   keeps every edge the existence proof needs while shrinking labels by
//!   roughly a `2^α` factor.
//! * **real edges** — at the lowest level `c+1` only: the edges of `G`
//!   inside `B(v, r_{c+1})`, stored as index pairs into the point list.

use fsdl_graph::NodeId;

/// One stored net point of a level label, with its exact distance from the
/// label's owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelPoint {
    /// The net point (a vertex of `G`).
    pub vertex: NodeId,
    /// Exact `d_G(owner, vertex)`.
    pub dist: u32,
    /// The largest `j` with `vertex ∈ N_j` (its maximal net level).
    pub net_level: u32,
}

/// A virtual edge between two stored points (indices into
/// [`LevelLabel::points`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VirtualEdge {
    /// Index of the first endpoint in the level's point list.
    pub a: u32,
    /// Index of the second endpoint in the level's point list.
    pub b: u32,
    /// Exact `d_G` between the endpoints (`≤ λᵢ`).
    pub dist: u32,
}

/// A weight-1 edge of `G` stored at the lowest level (indices into
/// [`LevelLabel::points`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RealEdge {
    /// Index of the first endpoint in the level's point list.
    pub a: u32,
    /// Index of the second endpoint in the level's point list.
    pub b: u32,
}

/// The level-`i` slice `L_i(v)` of a label, encoding `H_i(v)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LevelLabel {
    /// Stored points, sorted by vertex id (canonical order for encoding).
    pub points: Vec<LabelPoint>,
    /// Virtual edges between stored points.
    pub virtual_edges: Vec<VirtualEdge>,
    /// Real edges of `G` (lowest level only; empty at other levels).
    pub real_edges: Vec<RealEdge>,
}

impl LevelLabel {
    /// Looks up a stored point by vertex id (binary search: points are
    /// sorted by id).
    pub fn find_point(&self, v: NodeId) -> Option<&LabelPoint> {
        self.points
            .binary_search_by_key(&v, |p| p.vertex)
            .ok()
            .map(|idx| &self.points[idx])
    }

    /// Exact `d_G(owner, v)` if `v` is stored at this level.
    pub fn dist_to(&self, v: NodeId) -> Option<u32> {
        self.find_point(v).map(|p| p.dist)
    }
}

/// A complete vertex label `L(v)`.
///
/// This is the *only* information about `G` the decoder may touch: queries
/// are answered from labels alone ([`crate::decode`]), exactly as the
/// distributed model demands.
#[derive(Clone, Debug, PartialEq)]
pub struct Label {
    /// The vertex this label belongs to.
    pub owner: NodeId,
    /// The owner's maximal net level (used by the protected-ball
    /// certificate).
    pub owner_net_level: u32,
    /// The lowest level `c + 1` (levels are `first_level..first_level +
    /// levels.len()`).
    pub first_level: u32,
    /// Level labels for `i = first_level, first_level+1, …`.
    pub levels: Vec<LevelLabel>,
}

/// A structural problem found by [`Label::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelInvalid {
    /// The level index (into [`Label::levels`]) of the problem.
    pub level_index: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for LabelInvalid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid label (level {}): {}",
            self.level_index, self.message
        )
    }
}

impl std::error::Error for LabelInvalid {}

impl Label {
    /// Structurally validates a label (e.g. one decoded from an untrusted
    /// bit string): point lists sorted and duplicate-free, edge indices in
    /// range, edges free of self-loops. The decoder assumes these
    /// invariants, so callers receiving labels from outside should validate
    /// first.
    ///
    /// # Errors
    ///
    /// Returns the first [`LabelInvalid`] found.
    pub fn validate(&self) -> Result<(), LabelInvalid> {
        for (k, level) in self.levels.iter().enumerate() {
            let fail = |message: String| LabelInvalid {
                level_index: k,
                message,
            };
            for w in level.points.windows(2) {
                if w[0].vertex >= w[1].vertex {
                    return Err(fail(format!(
                        "points not strictly sorted at {}",
                        w[1].vertex
                    )));
                }
            }
            let np = level.points.len() as u32;
            for e in &level.virtual_edges {
                if e.a >= np || e.b >= np {
                    return Err(fail("virtual edge index out of range".into()));
                }
                if e.a == e.b {
                    return Err(fail("virtual self-loop".into()));
                }
            }
            for e in &level.real_edges {
                if e.a >= np || e.b >= np {
                    return Err(fail("real edge index out of range".into()));
                }
                if e.a == e.b {
                    return Err(fail("real self-loop".into()));
                }
            }
        }
        Ok(())
    }

    /// The level label `L_i(owner)`, or `None` if `i` is outside `I`.
    pub fn level(&self, i: u32) -> Option<&LevelLabel> {
        let idx = i.checked_sub(self.first_level)? as usize;
        self.levels.get(idx)
    }

    /// Iterates over `(i, L_i)` pairs.
    pub fn levels_iter(&self) -> impl Iterator<Item = (u32, &LevelLabel)> {
        self.levels
            .iter()
            .enumerate()
            .map(move |(k, l)| (self.first_level + k as u32, l))
    }

    /// Size accounting used by the evaluation: numbers of stored points and
    /// edges across all levels.
    pub fn stats(&self) -> LabelStats {
        let mut s = LabelStats::default();
        for l in &self.levels {
            s.points += l.points.len();
            s.virtual_edges += l.virtual_edges.len();
            s.real_edges += l.real_edges.len();
            s.max_level_points = s.max_level_points.max(l.points.len());
        }
        s.levels = self.levels.len();
        s
    }

    /// Estimated heap footprint of this materialized label in bytes:
    /// the struct itself plus every level's point and edge vectors (by
    /// length, not capacity — a stable estimate independent of allocator
    /// growth policy). Used for resident-vs-on-disk accounting in
    /// [`crate::LabelPlaneStats`].
    pub fn resident_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut bytes = size_of::<Label>() as u64;
        for l in &self.levels {
            bytes += size_of::<LevelLabel>() as u64;
            bytes += (l.points.len() * size_of::<LabelPoint>()) as u64;
            bytes += (l.virtual_edges.len() * size_of::<VirtualEdge>()) as u64;
            bytes += (l.real_edges.len() * size_of::<RealEdge>()) as u64;
        }
        bytes
    }
}

/// Size statistics of a [`Label`] (see [`Label::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LabelStats {
    /// Number of levels `|I|`.
    pub levels: usize,
    /// Total stored points over all levels.
    pub points: usize,
    /// Total virtual edges over all levels.
    pub virtual_edges: usize,
    /// Total real edges (lowest level).
    pub real_edges: usize,
    /// Largest single-level point count.
    pub max_level_points: usize,
}

impl LabelStats {
    /// Total entries (points + edges), a codec-independent size proxy.
    pub fn entries(&self) -> usize {
        self.points + self.virtual_edges + self.real_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_level() -> LevelLabel {
        LevelLabel {
            points: vec![
                LabelPoint {
                    vertex: NodeId::new(2),
                    dist: 0,
                    net_level: 4,
                },
                LabelPoint {
                    vertex: NodeId::new(5),
                    dist: 3,
                    net_level: 1,
                },
                LabelPoint {
                    vertex: NodeId::new(9),
                    dist: 7,
                    net_level: 2,
                },
            ],
            virtual_edges: vec![VirtualEdge {
                a: 0,
                b: 2,
                dist: 7,
            }],
            real_edges: vec![],
        }
    }

    #[test]
    fn find_point_binary_search() {
        let l = sample_level();
        assert_eq!(l.find_point(NodeId::new(5)).unwrap().dist, 3);
        assert_eq!(l.dist_to(NodeId::new(9)), Some(7));
        assert_eq!(l.dist_to(NodeId::new(4)), None);
    }

    #[test]
    fn label_level_indexing() {
        let label = Label {
            owner: NodeId::new(2),
            owner_net_level: 4,
            first_level: 3,
            levels: vec![sample_level(), LevelLabel::default()],
        };
        assert!(label.level(2).is_none());
        assert!(label.level(3).is_some());
        assert!(label.level(4).is_some());
        assert!(label.level(5).is_none());
        let collected: Vec<u32> = label.levels_iter().map(|(i, _)| i).collect();
        assert_eq!(collected, vec![3, 4]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let label = Label {
            owner: NodeId::new(2),
            owner_net_level: 4,
            first_level: 3,
            levels: vec![sample_level()],
        };
        assert_eq!(label.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unsorted_points() {
        let mut level = sample_level();
        level.points.swap(0, 2);
        let label = Label {
            owner: NodeId::new(2),
            owner_net_level: 4,
            first_level: 3,
            levels: vec![level],
        };
        let err = label.validate().unwrap_err();
        assert!(err.message.contains("sorted"), "{err}");
    }

    #[test]
    fn validate_rejects_bad_edges() {
        let mut level = sample_level();
        level.virtual_edges.push(VirtualEdge {
            a: 1,
            b: 9,
            dist: 2,
        });
        let label = Label {
            owner: NodeId::new(2),
            owner_net_level: 4,
            first_level: 3,
            levels: vec![level],
        };
        assert!(label.validate().is_err());
        let mut level = sample_level();
        level.real_edges.push(RealEdge { a: 1, b: 1 });
        let label = Label {
            owner: NodeId::new(2),
            owner_net_level: 4,
            first_level: 3,
            levels: vec![level],
        };
        assert!(label.validate().unwrap_err().message.contains("self-loop"));
    }

    #[test]
    fn stats_accumulate() {
        let label = Label {
            owner: NodeId::new(0),
            owner_net_level: 0,
            first_level: 3,
            levels: vec![sample_level(), sample_level()],
        };
        let s = label.stats();
        assert_eq!(s.levels, 2);
        assert_eq!(s.points, 6);
        assert_eq!(s.virtual_edges, 2);
        assert_eq!(s.real_edges, 0);
        assert_eq!(s.max_level_points, 3);
        assert_eq!(s.entries(), 8);
    }
}
