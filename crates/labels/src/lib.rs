//! # fsdl-labels — forbidden-set `(1+ε)` distance labels for doubling graphs
//!
//! The core contribution of *Forbidden-set distance labels for graphs of
//! bounded doubling dimension* (Abraham, Chechik, Gavoille, Peleg; PODC 2010
//! / TALG 2016), Theorem 2.1: every unweighted `n`-vertex graph of doubling
//! dimension `α` admits per-vertex labels of `O(1+ε⁻¹)^{2α} log² n` bits
//! such that, given the labels of `s`, `t` and of a forbidden set `F` of
//! vertices and/or edges, a decoder computes a `(1+ε)`-approximation of
//! `d_{G∖F}(s, t)` in `O(1+ε⁻¹)^{2α}·|F|² log n` time — with labels that do
//! not depend on `F` or its size.
//!
//! ## Layout
//!
//! * [`SchemeParams`] — the parameter schedule `(c, ρᵢ, λᵢ, μᵢ, rᵢ)` with
//!   the documented (and invariant-checked) deviation `μᵢ = λᵢ + 3ρᵢ` that
//!   makes the protected-ball test computable from labels alone;
//! * [`Labeling`] — the marker: preprocessing plus on-demand label
//!   materialization;
//! * [`Label`] — the per-vertex artifact, with a canonical bit encoding in
//!   [`codec`] so label *length in bits* is measured honestly;
//! * [`decode`] — the pure decoder: sketch graph + protected-ball
//!   certificates + Dijkstra, touching nothing but labels;
//! * [`ForbiddenSetOracle`] — the centralized `n ×` label table byproduct;
//! * [`DynamicOracle`] — the fully-dynamic oracle byproduct (buffered
//!   deletions, `√n` rebuild policy, optional background rebuilds);
//! * [`store`] — the on-disk label store: checksummed segment files plus
//!   an atomically swapped manifest, so oracles warm-start from disk and
//!   a crash mid-write can never be observed as a torn store;
//! * [`wal`] — the checksummed write-ahead log that makes dynamic updates
//!   durable between store generations, with [`crash`] naming the
//!   injectable crash points of the commit protocol;
//! * [`failure_free`] — the simpler Section 2.1 overview scheme, used as a
//!   baseline and a special case;
//! * [`WeightedOracle`] — integer-weighted graphs via exact edge
//!   subdivision, extending the scheme beyond the paper's unweighted
//!   setting.
//!
//! ## Example
//!
//! ```
//! use fsdl_graph::{generators, FaultSet, NodeId};
//! use fsdl_labels::ForbiddenSetOracle;
//!
//! // A ring network; router v1 fails.
//! let g = generators::cycle(64);
//! let oracle = ForbiddenSetOracle::new(&g, 0.5);
//! let faults = FaultSet::from_vertices([NodeId::new(1)]);
//! let d = oracle.distance(NodeId::new(0), NodeId::new(4), &faults);
//! let exact = 60; // the long way around
//! assert!(d.finite().unwrap() >= exact);
//! assert!(f64::from(d.finite().unwrap()) <= 1.5 * f64::from(exact));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
mod builder;
pub mod codec;
pub mod corrupt;
pub mod crash;
pub mod decode;
mod dynamic;
pub mod failure_free;
pub mod groupvarint;
mod label;
mod oracle;
mod params;
pub mod partition;
pub mod store;
mod trace;
pub mod wal;
mod weighted;

pub use builder::{BuildError, LabelScratch, Labeling, LabelingOptions, LevelReport};
pub use decode::{
    build_sketch, query, query_many, query_many_with_scratch, query_with, query_with_scratch,
    DecodeScratch, EdgeProvenance, QueryAnswer, QueryLabels, Sketch,
};
pub use dynamic::{DynamicConfig, DynamicError, DynamicOracle, DynamicStats, RebuildMode};
pub use failure_free::{query_failure_free, FailureFreeLabel, FailureFreeLabeling};
pub use label::{Label, LabelInvalid, LabelPoint, LabelStats, LevelLabel, RealEdge, VirtualEdge};
pub use oracle::{ForbiddenSetOracle, LabelPlaneStats, OracleError};
pub use params::SchemeParams;
pub use partition::{
    write_shard_stores, PartitionError, PartitionPlan, PartitionStrategy, ShardReport, ShardStore,
};
pub use store::{OpenMode, StoreError, StoreReport};
pub use trace::{trace_query, trace_query_with, QueryTrace, TraceHop};
pub use wal::{ReplayReport, WalError, WalRecord};
pub use weighted::{WeightedFaults, WeightedOracle};
