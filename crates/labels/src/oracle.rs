//! The aggregated forbidden-set distance oracle — a concurrent serving
//! engine.
//!
//! The paper observes that storing every vertex's label in one table yields
//! a centralized `(1+ε)` forbidden-set distance oracle of size `n ×` label
//! length. [`ForbiddenSetOracle`] is that table, with labels materialized
//! lazily into a lock-free arena of `OnceLock` slots: a query `(s, t, F)`
//! loads the `|F| + 2` relevant labels and runs the pure label
//! [decoder](crate::decode) — the graph is consulted only to *validate* the
//! fault set, never to answer, which tests assert by construction.
//!
//! ## Concurrency model
//!
//! The oracle is `Send + Sync` and is designed to be shared (`&oracle` or
//! `Arc<oracle>`) across serving threads:
//!
//! * each vertex's label lives in a dedicated `OnceLock<Arc<Label>>` slot —
//!   first use materializes it (at most once, even under races), later uses
//!   are lock-free pointer loads;
//! * materialization is deterministic, so whichever thread wins the race
//!   stores the same bytes a sequential run would;
//! * [`ForbiddenSetOracle::query_batch`] fans a query batch across scoped
//!   threads, each worker reusing one [`DecodeScratch`] (the
//!   allocation-free decode fast path), and merges answers in input order,
//!   so the batch output is bit-identical to a sequential loop.

use std::path::Path;
use std::sync::{Arc, OnceLock};

use fsdl_graph::{Dist, FaultSet, Graph, NodeId};

use crate::builder::Labeling;
use crate::codec::VarintScratch;
use crate::decode::{self, DecodeScratch, QueryAnswer, QueryLabels};
use crate::label::Label;
use crate::params::SchemeParams;
use crate::store::{self, OpenMode, Segment, StoreError, StoreReport};

/// Label slots per arena cache line: a `OnceLock<Arc<Label>>` is 16
/// bytes (one pointer plus the init state), so four fill a 64-byte line
/// exactly on 64-bit targets.
const SLOTS_PER_LINE: usize = 4;

/// One cache line of label slots. Aligning groups to 64 bytes anchors
/// the arena on a line boundary, so the line a slot lands on is a pure
/// function of its vertex index — neighboring vertices (which queries
/// touch together) share lines, and a slot never straddles two.
#[derive(Debug, Default)]
#[repr(align(64))]
struct SlotLine([OnceLock<Arc<Label>>; SLOTS_PER_LINE]);

/// The lock-free label arena: `n` `OnceLock` slots in cache-aligned
/// groups. Supports exactly what serving needs — indexed access and a
/// residency scan.
#[derive(Debug)]
struct LabelArena {
    lines: Box<[SlotLine]>,
    len: usize,
}

impl LabelArena {
    fn new(n: usize) -> Self {
        LabelArena {
            lines: (0..n.div_ceil(SLOTS_PER_LINE))
                .map(|_| SlotLine::default())
                .collect(),
            len: n,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn slot(&self, k: usize) -> &OnceLock<Arc<Label>> {
        &self.lines[k / SLOTS_PER_LINE].0[k % SLOTS_PER_LINE]
    }

    /// `(materialized labels, estimated heap bytes)` currently resident.
    fn resident(&self) -> (u64, u64) {
        let mut labels = 0u64;
        let mut bytes = 0u64;
        for k in 0..self.len {
            if let Some(label) = self.slot(k).get() {
                labels += 1;
                bytes += label.resident_bytes();
            }
        }
        (labels, bytes)
    }
}

/// Residency snapshot of an oracle's label plane: how many labels are
/// materialized in the arena (and their estimated heap footprint) versus
/// the on-disk payload backing them. The lazy-open win — serving at
/// O(touched labels) residency — is observable here and through
/// `fsdl stats --store`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelPlaneStats {
    /// Labels currently materialized in the arena.
    pub resident_labels: u64,
    /// Estimated heap bytes of the materialized labels.
    pub resident_label_bytes: u64,
    /// On-disk label payload bytes (0 for in-memory builds).
    pub on_disk_label_bytes: u64,
    /// How the backing segment was opened; `None` for in-memory builds.
    pub open_mode: Option<OpenMode>,
    /// True when the segment payload is served from a memory map.
    pub mapped: bool,
}

/// A malformed query handed to the strict oracle entry points
/// ([`ForbiddenSetOracle::try_query`],
/// [`ForbiddenSetOracle::try_distances_to`]).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum OracleError {
    /// A referenced vertex (endpoint, target, or fault) is not a vertex of
    /// the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        v: NodeId,
        /// The graph's vertex count.
        n: usize,
    },
    /// A forbidden edge is not an edge of the graph.
    FaultEdgeNotInGraph {
        /// Smaller endpoint.
        a: NodeId,
        /// Larger endpoint.
        b: NodeId,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::VertexOutOfRange { v, n } => {
                write!(f, "{v} is out of range for a graph with {n} vertices")
            }
            OracleError::FaultEdgeNotInGraph { a, b } => {
                write!(f, "forbidden edge ({a}, {b}) is not an edge of the graph")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// Fault labels for one query: vertex-fault labels and edge-fault endpoint
/// label pairs, in fault-set iteration order.
type FaultLabels = (Vec<Arc<Label>>, Vec<(Arc<Label>, Arc<Label>)>);

/// A centralized `(1+ε)`-approximate forbidden-set distance oracle backed by
/// the labeling scheme.
///
/// # Malformed fault sets
///
/// The lenient entry points ([`ForbiddenSetOracle::query`],
/// [`ForbiddenSetOracle::distance`], [`ForbiddenSetOracle::distances_to`])
/// never panic on a malformed `FaultSet`: a forbidden vertex outside the
/// graph, or a forbidden edge that is not an edge of the graph, names
/// nothing in `G` — removing it cannot change `G ∖ F` — so such elements
/// are ignored and the answer is *exactly* the answer for the well-formed
/// subset of `F`. Use [`ForbiddenSetOracle::try_query`] /
/// [`ForbiddenSetOracle::try_distances_to`] to reject malformed input with
/// a typed [`OracleError`] instead.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, FaultSet, NodeId};
/// use fsdl_labels::ForbiddenSetOracle;
///
/// let g = generators::cycle(32);
/// let oracle = ForbiddenSetOracle::new(&g, 1.0);
/// let f = FaultSet::from_vertices([NodeId::new(1)]);
/// let d = oracle.distance(NodeId::new(0), NodeId::new(2), &f);
/// // The cycle detour 0-31-30-...-2 has length 30; the answer is a
/// // (1+eps)-approximation of it.
/// assert!(d.finite().unwrap() >= 30);
/// assert!(d.finite().unwrap() <= 45);
/// ```
#[derive(Debug)]
pub struct ForbiddenSetOracle {
    labeling: Labeling,
    slots: LabelArena,
    /// When warm-started from a [`store`], labels decode lazily from this
    /// segment instead of being recomputed; `None` for in-memory builds.
    segment: Option<Arc<Segment>>,
}

impl ForbiddenSetOracle {
    /// Builds the oracle for `g` with precision `epsilon` (paper parameter
    /// schedule).
    ///
    /// # Panics
    ///
    /// Panics if `g` is empty or `epsilon` is not positive finite.
    pub fn new(g: &Graph, epsilon: f64) -> Self {
        let params = SchemeParams::new(epsilon, g.num_vertices());
        Self::with_params(g, params)
    }

    /// Builds the oracle with an explicit parameter schedule.
    pub fn with_params(g: &Graph, params: SchemeParams) -> Self {
        Self::from_labeling(Labeling::build(g, params))
    }

    /// Wraps an existing labeling (e.g. one built with non-default
    /// [`crate::LabelingOptions`]).
    pub fn from_labeling(labeling: Labeling) -> Self {
        let n = labeling.graph().num_vertices();
        ForbiddenSetOracle {
            labeling,
            slots: LabelArena::new(n),
            segment: None,
        }
    }

    /// Warm-starts the oracle from the label store at `dir`, previously
    /// written by [`ForbiddenSetOracle::save`] (or `fsdl build --store`).
    /// The expensive per-vertex label construction is skipped entirely:
    /// labels decode lazily from the segment into the arena, and the
    /// answers are bit-identical to a fresh in-memory build.
    ///
    /// Equivalent to [`ForbiddenSetOracle::open_with`] in
    /// [`OpenMode::Eager`]: the whole segment is read and checksummed up
    /// front.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] for every failure mode — missing or corrupt
    /// manifest/segment, format version skew, a store built for a
    /// different graph, or an invalid parameter schedule. Never panics on
    /// untrusted on-disk bytes.
    pub fn open(dir: &Path, g: &Graph) -> Result<Self, StoreError> {
        Self::open_with(dir, g, OpenMode::Eager)
    }

    /// [`ForbiddenSetOracle::open`] with an explicit [`OpenMode`]. Under
    /// [`OpenMode::Lazy`] the segment is memory-mapped (owned-read
    /// fallback) and only its header + index are validated at open;
    /// label payload bytes stay on disk until a query touches them, so
    /// open-to-first-query cost is O(touched labels) instead of O(n).
    /// Answers are bit-identical across modes: a label that fails its
    /// first-touch validation is recomputed from the graph (the same
    /// reject-or-sound fallback the eager path has always had).
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`]; see [`ForbiddenSetOracle::open`].
    pub fn open_with(dir: &Path, g: &Graph, mode: OpenMode) -> Result<Self, StoreError> {
        let manifest = store::read_manifest(dir)?;
        let segment = Segment::open(&dir.join(&manifest.segment), mode)?;
        Self::from_segment(g, Arc::new(segment))
    }

    /// Wraps an already-read segment around `g` (shared with
    /// [`crate::DynamicOracle`]'s open path, which reads the segment
    /// against a reconstructed base subgraph).
    pub(crate) fn from_segment(g: &Graph, segment: Arc<Segment>) -> Result<Self, StoreError> {
        let expected = store::graph_fingerprint(g);
        let found = segment.graph_fingerprint();
        if expected != found {
            return Err(StoreError::GraphMismatch { expected, found });
        }
        if segment.num_labels() != g.num_vertices() {
            return Err(StoreError::SegmentCorrupt {
                path: segment.path().to_path_buf(),
                message: format!(
                    "segment holds {} labels for a {}-vertex graph",
                    segment.num_labels(),
                    g.num_vertices()
                ),
            });
        }
        let params = segment.params()?;
        let labeling = Labeling::try_build(g, params).map_err(|e| StoreError::ParamsInvalid {
            message: e.to_string(),
        })?;
        let n = g.num_vertices();
        Ok(ForbiddenSetOracle {
            labeling,
            slots: LabelArena::new(n),
            segment: Some(segment),
        })
    }

    /// Persists every label to the store at `dir` as a new generation:
    /// segment written durably first (temp file + `fsync` + atomic
    /// rename), manifest swapped second, older generations pruned last —
    /// so a crash at any point leaves a previously published generation
    /// openable. The write path is fallible end to end
    /// ([`crate::codec::try_encode`], typed I/O errors); it never panics.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] on encoding or I/O failure.
    pub fn save(&self, dir: &Path) -> Result<StoreReport, StoreError> {
        let encoded = self.encoded_labels()?;
        store::write_generation(
            dir,
            self.params(),
            store::graph_fingerprint(self.labeling.graph()),
            &encoded,
            &FaultSet::empty(),
            &FaultSet::empty(),
            None,
        )
    }

    /// Materializes and encodes the label of one vertex through the
    /// fallible codec path — the canonical wire form a shard store
    /// persists and a label-fetch reply carries. Deterministic: the same
    /// oracle always yields the same bytes for `v`.
    ///
    /// # Errors
    ///
    /// Relays the codec's typed failure (never expected for in-range
    /// vertices of a well-formed labeling).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range (as [`ForbiddenSetOracle::query`]
    /// does; range-check first when serving untrusted ids).
    pub fn encoded_label(&self, v: NodeId) -> Result<(Vec<u8>, usize), StoreError> {
        let n = self.slots.len();
        let label = self.label(v);
        let w = crate::codec::try_encode(&label, n)?;
        Ok((w.as_bytes().to_vec(), w.len_bits()))
    }

    /// Materializes (in parallel) and encodes every label, in vertex
    /// order, through the fallible codec path.
    pub(crate) fn encoded_labels(&self) -> Result<Vec<(Vec<u8>, usize)>, StoreError> {
        self.prewarm();
        let n = self.slots.len();
        (0..n)
            .map(|v| {
                let label = self.label(NodeId::from_index(v));
                let w = crate::codec::try_encode(&label, n)?;
                Ok((w.as_bytes().to_vec(), w.len_bits()))
            })
            .collect()
    }

    /// Decodes `v`'s label from the attached segment, if any. Returns
    /// `None` (so callers fall back to in-memory materialization — still
    /// sound, merely slower) when there is no segment, the payload fails
    /// decoding, or the decoded label is not actually `v`'s: on-disk
    /// bytes are untrusted even after the segment checksum passed. Under
    /// a lazy open this is the first-touch validation point: corrupt
    /// payload bits surface as a typed decode failure here, never a
    /// panic, and the fallback keeps the answer bit-identical.
    fn segment_label(&self, v: NodeId, varints: &mut VarintScratch) -> Option<Label> {
        let segment = self.segment.as_deref()?;
        let label = segment.decode_label_with(v, varints).ok()?;
        (label.owner == v && label.validate().is_ok()).then_some(label)
    }

    /// Residency snapshot: materialized labels and bytes versus the
    /// on-disk payload. The scan is O(n) over the arena but touches only
    /// slot headers, not label contents.
    pub fn label_plane_stats(&self) -> LabelPlaneStats {
        let (resident_labels, resident_label_bytes) = self.slots.resident();
        LabelPlaneStats {
            resident_labels,
            resident_label_bytes,
            on_disk_label_bytes: self.segment.as_deref().map_or(0, Segment::payload_bytes),
            open_mode: self.segment.as_deref().map(Segment::open_mode),
            mapped: self.segment.as_deref().is_some_and(Segment::is_mapped),
        }
    }

    /// The underlying labeling (marker side).
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The parameter schedule in force.
    pub fn params(&self) -> &SchemeParams {
        self.labeling.params()
    }

    /// Returns (materializing and memoizing on first use) the label of `v`.
    ///
    /// Thread-safe: under concurrent first use the label is materialized at
    /// most once; every later call is a lock-free pointer clone.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> Arc<Label> {
        self.label_scoped(v, &mut VarintScratch::new())
    }

    /// [`ForbiddenSetOracle::label`] with a caller-owned
    /// [`DecodeScratch`]: first-touch materialization from a segment
    /// reuses the scratch's varint batch buffer, keeping the serving
    /// path allocation-free beyond the label itself.
    pub fn label_with(&self, v: NodeId, scratch: &mut DecodeScratch) -> Arc<Label> {
        self.label_scoped(v, scratch.varints_mut())
    }

    fn label_scoped(&self, v: NodeId, varints: &mut VarintScratch) -> Arc<Label> {
        assert!(
            v.index() < self.slots.len(),
            "{v} is out of range for a graph with {} vertices",
            self.slots.len()
        );
        self.slots
            .slot(v.index())
            .get_or_init(|| {
                Arc::new(
                    self.segment_label(v, varints)
                        .unwrap_or_else(|| self.labeling.label_of(v)),
                )
            })
            .clone()
    }

    /// Eagerly materializes every label into the arena over
    /// `available_parallelism` scoped threads (idempotent; already-filled
    /// slots are kept). Serving threads then never pay materialization
    /// latency.
    pub fn prewarm(&self) {
        let n = self.slots.len();
        self.prewarm_workers(fsdl_nets::parallel::default_workers(n));
    }

    /// [`ForbiddenSetOracle::prewarm`] with an explicit worker count
    /// (`workers == 0` means available parallelism, `1` materializes
    /// sequentially; see [`fsdl_nets::parallel::resolve_workers`]) — the
    /// knob the throughput experiment sweeps. The arena contents are
    /// independent of the worker count because materialization is
    /// deterministic per vertex.
    pub fn prewarm_workers(&self, workers: usize) {
        let n = self.slots.len();
        fsdl_nets::parallel::run_indexed_with(
            n,
            fsdl_nets::parallel::resolve_workers(workers, n),
            || (crate::builder::LabelScratch::new(n), VarintScratch::new()),
            |(scratch, varints), v| {
                let id = NodeId::from_index(v);
                self.slots.slot(v).get_or_init(|| {
                    Arc::new(
                        self.segment_label(id, varints)
                            .unwrap_or_else(|| self.labeling.label_of_with(id, scratch)),
                    )
                });
            },
        );
    }

    /// Collects the fault labels for the well-formed subset of `faults`
    /// (see the type-level docs on malformed fault sets).
    fn fault_labels(&self, faults: &FaultSet, varints: &mut VarintScratch) -> FaultLabels {
        let g = self.labeling.graph();
        let vertex_labels: Vec<Arc<Label>> = faults
            .vertices()
            .filter(|&f| g.contains(f))
            .map(|f| self.label_scoped(f, varints))
            .collect();
        let edge_labels: Vec<(Arc<Label>, Arc<Label>)> = faults
            .edges()
            .filter(|e| g.contains(e.lo()) && g.contains(e.hi()) && g.has_edge(e.lo(), e.hi()))
            .map(|e| {
                (
                    self.label_scoped(e.lo(), varints),
                    self.label_scoped(e.hi(), varints),
                )
            })
            .collect();
        (vertex_labels, edge_labels)
    }

    /// Validates every vertex and edge of a query strictly, for the `try_*`
    /// entry points.
    fn validate(&self, endpoints: &[NodeId], faults: &FaultSet) -> Result<(), OracleError> {
        let g = self.labeling.graph();
        let n = g.num_vertices();
        for &v in endpoints {
            if !g.contains(v) {
                return Err(OracleError::VertexOutOfRange { v, n });
            }
        }
        for f in faults.vertices() {
            if !g.contains(f) {
                return Err(OracleError::VertexOutOfRange { v: f, n });
            }
        }
        for e in faults.edges() {
            for v in [e.lo(), e.hi()] {
                if !g.contains(v) {
                    return Err(OracleError::VertexOutOfRange { v, n });
                }
            }
            if !g.has_edge(e.lo(), e.hi()) {
                return Err(OracleError::FaultEdgeNotInGraph {
                    a: e.lo(),
                    b: e.hi(),
                });
            }
        }
        Ok(())
    }

    /// Answers the forbidden-set distance query `(s, t, F)` with the full
    /// decoder output (distance, witness path, sketch size). Malformed
    /// fault elements are ignored (exactly; see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn query(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> QueryAnswer {
        self.query_with(s, t, faults, &mut DecodeScratch::new())
    }

    /// Strict variant of [`ForbiddenSetOracle::query`]: rejects out-of-range
    /// vertices and non-edge edge faults with a typed error instead of
    /// panicking or ignoring.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] naming the first malformed element.
    pub fn try_query(
        &self,
        s: NodeId,
        t: NodeId,
        faults: &FaultSet,
    ) -> Result<QueryAnswer, OracleError> {
        self.validate(&[s, t], faults)?;
        Ok(self.query(s, t, faults))
    }

    /// Strict variant of [`ForbiddenSetOracle::query_with`]: the typed
    /// validation of [`ForbiddenSetOracle::try_query`] combined with the
    /// caller-provided [`DecodeScratch`] of the zero-allocation fast path.
    /// This is the network-serving hot path: a connection handler reuses
    /// one scratch across every request it answers while untrusted query
    /// input still gets a typed rejection, never a panic.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] naming the first malformed element.
    pub fn try_query_with(
        &self,
        s: NodeId,
        t: NodeId,
        faults: &FaultSet,
        scratch: &mut DecodeScratch,
    ) -> Result<QueryAnswer, OracleError> {
        self.validate(&[s, t], faults)?;
        Ok(self.query_with(s, t, faults, scratch))
    }

    /// [`ForbiddenSetOracle::query`] with a caller-provided
    /// [`DecodeScratch`] — the per-worker hot path of
    /// [`ForbiddenSetOracle::query_batch`], also usable directly by serving
    /// loops that answer many queries on one thread. Same answer as
    /// [`ForbiddenSetOracle::query`], bit for bit.
    pub fn query_with(
        &self,
        s: NodeId,
        t: NodeId,
        faults: &FaultSet,
        scratch: &mut DecodeScratch,
    ) -> QueryAnswer {
        let source = self.label_with(s, scratch);
        let target = self.label_with(t, scratch);
        let (vertex_labels, edge_labels) = self.fault_labels(faults, scratch.varints_mut());
        let query_labels = QueryLabels {
            fault_vertices: vertex_labels.iter().map(Arc::as_ref).collect(),
            fault_edges: edge_labels
                .iter()
                .map(|(a, b)| (a.as_ref(), b.as_ref()))
                .collect(),
        };
        decode::query_with_scratch(self.params(), &source, &target, &query_labels, scratch)
    }

    /// The `(1+ε)`-approximate distance `δ(s, t, F)`.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn distance(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> Dist {
        self.query(s, t, faults).distance
    }

    /// Answers a batch of queries, fanning the work across
    /// `available_parallelism` scoped threads with per-worker Dijkstra
    /// scratch. Answers come back in input order and are bit-identical to a
    /// sequential `query` loop (the only shared mutable state is the label
    /// arena, whose fills are deterministic).
    ///
    /// # Panics
    ///
    /// Panics if any `s` or `t` is out of range (malformed fault elements
    /// are ignored, as in [`ForbiddenSetOracle::query`]).
    pub fn query_batch(&self, queries: &[(NodeId, NodeId, FaultSet)]) -> Vec<QueryAnswer> {
        self.query_batch_workers(queries, fsdl_nets::parallel::default_workers(queries.len()))
    }

    /// [`ForbiddenSetOracle::query_batch`] with an explicit worker count
    /// (`workers == 0` means available parallelism, `1` answers
    /// sequentially on the calling thread; see
    /// [`fsdl_nets::parallel::resolve_workers`]).
    pub fn query_batch_workers(
        &self,
        queries: &[(NodeId, NodeId, FaultSet)],
        workers: usize,
    ) -> Vec<QueryAnswer> {
        fsdl_nets::parallel::run_indexed_with(
            queries.len(),
            fsdl_nets::parallel::resolve_workers(workers, queries.len()),
            DecodeScratch::new,
            |scratch, k| {
                let (s, t, faults) = &queries[k];
                self.query_with(*s, *t, faults, scratch)
            },
        )
    }

    /// One-to-many distances: `δ(s, tᵢ, F)` for every target, computed with
    /// a single sketch construction and Dijkstra pass (see
    /// [`decode::query_many`]). Answers are still within `1 + ε` of
    /// `d_{G∖F}(s, tᵢ)`. Malformed fault elements are ignored (exactly; see
    /// the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `s` or any target is out of range.
    pub fn distances_to(&self, s: NodeId, targets: &[NodeId], faults: &FaultSet) -> Vec<Dist> {
        self.distances_to_with(s, targets, faults, &mut DecodeScratch::new())
    }

    /// [`ForbiddenSetOracle::distances_to`] with a caller-provided
    /// [`DecodeScratch`]; same answers, bit for bit, reusing the scratch's
    /// buffers across calls.
    pub fn distances_to_with(
        &self,
        s: NodeId,
        targets: &[NodeId],
        faults: &FaultSet,
        scratch: &mut DecodeScratch,
    ) -> Vec<Dist> {
        let source = self.label_with(s, scratch);
        let target_labels: Vec<Arc<Label>> = targets
            .iter()
            .map(|&t| self.label_with(t, scratch))
            .collect();
        let (vertex_labels, edge_labels) = self.fault_labels(faults, scratch.varints_mut());
        let query_labels = QueryLabels {
            fault_vertices: vertex_labels.iter().map(Arc::as_ref).collect(),
            fault_edges: edge_labels
                .iter()
                .map(|(a, b)| (a.as_ref(), b.as_ref()))
                .collect(),
        };
        let target_refs: Vec<&Label> = target_labels.iter().map(Arc::as_ref).collect();
        decode::query_many_with_scratch(
            self.params(),
            &source,
            &target_refs,
            &query_labels,
            scratch,
        )
    }

    /// Strict variant of [`ForbiddenSetOracle::distances_to`].
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] naming the first malformed element.
    pub fn try_distances_to(
        &self,
        s: NodeId,
        targets: &[NodeId],
        faults: &FaultSet,
    ) -> Result<Vec<Dist>, OracleError> {
        self.validate(&[s], faults)?;
        self.validate(targets, faults)?;
        Ok(self.distances_to(s, targets, faults))
    }

    /// Forbidden-set connectivity: are `s` and `t` connected in `G ∖ F`?
    ///
    /// This is the "very large ε" special case the paper's lower bound
    /// (Theorem 3.1) applies to: any scheme answering these queries needs
    /// `Ω(2^{α/2} + log n)`-bit labels.
    pub fn connected(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> bool {
        self.distance(s, t, faults).is_finite()
    }

    /// Total oracle size in bits: the sum of all `n` encoded label lengths.
    /// Expensive (encodes every label, fanned out over scoped threads
    /// without touching the memoization arena); used by the size
    /// experiments.
    pub fn total_bits(&self) -> u64 {
        let n = self.labeling.graph().num_vertices();
        let labeling = &self.labeling;
        fsdl_nets::parallel::run_indexed(n, |v| labeling.label_bits(NodeId::from_index(v)) as u64)
            .into_iter()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::{bfs, generators};

    #[test]
    fn failure_free_queries_are_upper_bounds_with_stretch() {
        let g = generators::grid2d(6, 6);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let empty = FaultSet::empty();
        for s in [0u32, 14, 35] {
            for t in 0..36u32 {
                let d = oracle.distance(NodeId::new(s), NodeId::new(t), &empty);
                let truth = bfs::pair_distance_avoiding(&g, NodeId::new(s), NodeId::new(t), &empty)
                    .finite()
                    .unwrap();
                let dd = d.finite().expect("connected graph");
                assert!(dd >= truth, "{s}->{t}: {dd} < {truth}");
                assert!(
                    f64::from(dd) <= 2.0 * f64::from(truth) + 1e-9,
                    "{s}->{t}: stretch {dd}/{truth}"
                );
            }
        }
    }

    #[test]
    fn faulty_endpoint_is_infinite() {
        let g = generators::path(10);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(0)]);
        assert!(oracle
            .distance(NodeId::new(0), NodeId::new(5), &f)
            .is_infinite());
        assert!(oracle
            .distance(NodeId::new(5), NodeId::new(0), &f)
            .is_infinite());
    }

    #[test]
    fn disconnection_detected() {
        let g = generators::path(9);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(4)]);
        assert!(!oracle.connected(NodeId::new(0), NodeId::new(8), &f));
        assert!(oracle.connected(NodeId::new(0), NodeId::new(3), &f));
        assert!(oracle.connected(NodeId::new(5), NodeId::new(8), &f));
    }

    #[test]
    fn label_cache_returns_same_arc() {
        let g = generators::cycle(8);
        let oracle = ForbiddenSetOracle::new(&g, 2.0);
        let a = oracle.label(NodeId::new(3));
        let b = oracle.label(NodeId::new(3));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn prewarm_fills_the_arena_deterministically() {
        let g = generators::grid2d(5, 5);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let early = oracle.label(NodeId::new(7));
        oracle.prewarm_workers(4);
        // Already-filled slots are kept; new slots match fresh
        // materialization.
        assert!(Arc::ptr_eq(&early, &oracle.label(NodeId::new(7))));
        for v in 0..25u32 {
            assert_eq!(
                *oracle.label(NodeId::new(v)),
                oracle.labeling().label_of(NodeId::new(v))
            );
        }
    }

    #[test]
    fn invalid_edge_fault_is_ignored_exactly() {
        // (0, 4) is not an edge of the path, so forbidding it cannot change
        // G \ F: the lenient API answers as if F were empty.
        let g = generators::path(5);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let mut f = FaultSet::empty();
        f.forbid_edge_unchecked(NodeId::new(0), NodeId::new(4));
        let with = oracle.query(NodeId::new(0), NodeId::new(4), &f);
        let without = oracle.query(NodeId::new(0), NodeId::new(4), &FaultSet::empty());
        assert_eq!(with.distance, without.distance);
    }

    #[test]
    fn out_of_range_fault_vertex_is_ignored_exactly() {
        let g = generators::path(5);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(77)]);
        let d = oracle.distance(NodeId::new(0), NodeId::new(4), &f);
        assert_eq!(
            d,
            oracle.distance(NodeId::new(0), NodeId::new(4), &FaultSet::empty())
        );
        assert_eq!(
            oracle.distances_to(NodeId::new(0), &[NodeId::new(4)], &f),
            vec![d]
        );
    }

    #[test]
    fn try_query_rejects_malformed_faults() {
        let g = generators::path(5);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let mut f = FaultSet::empty();
        f.forbid_edge_unchecked(NodeId::new(0), NodeId::new(4));
        assert_eq!(
            oracle.try_query(NodeId::new(0), NodeId::new(4), &f),
            Err(OracleError::FaultEdgeNotInGraph {
                a: NodeId::new(0),
                b: NodeId::new(4)
            })
        );
        let far = FaultSet::from_vertices([NodeId::new(99)]);
        assert_eq!(
            oracle.try_query(NodeId::new(0), NodeId::new(4), &far),
            Err(OracleError::VertexOutOfRange {
                v: NodeId::new(99),
                n: 5
            })
        );
        assert_eq!(
            oracle.try_query(NodeId::new(0), NodeId::new(9), &FaultSet::empty()),
            Err(OracleError::VertexOutOfRange {
                v: NodeId::new(9),
                n: 5
            })
        );
        let ok = oracle
            .try_query(NodeId::new(0), NodeId::new(4), &FaultSet::empty())
            .unwrap();
        assert_eq!(ok.distance.finite(), Some(4));
    }

    #[test]
    fn try_distances_to_rejects_bad_targets() {
        let g = generators::path(6);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        assert_eq!(
            oracle.try_distances_to(
                NodeId::new(0),
                &[NodeId::new(2), NodeId::new(42)],
                &FaultSet::empty()
            ),
            Err(OracleError::VertexOutOfRange {
                v: NodeId::new(42),
                n: 6
            })
        );
        let out = oracle
            .try_distances_to(NodeId::new(0), &[NodeId::new(2)], &FaultSet::empty())
            .unwrap();
        assert_eq!(out[0].finite(), Some(2));
    }

    #[test]
    fn oracle_error_display() {
        let e = OracleError::VertexOutOfRange {
            v: NodeId::new(9),
            n: 4,
        };
        assert!(e.to_string().contains("out of range"));
        let e = OracleError::FaultEdgeNotInGraph {
            a: NodeId::new(1),
            b: NodeId::new(3),
        };
        assert!(e.to_string().contains("not an edge"));
    }

    #[test]
    fn query_batch_matches_sequential_bit_for_bit() {
        let g = generators::grid2d(6, 6);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let mut queries = Vec::new();
        for s in (0..36u32).step_by(5) {
            for t in (0..36u32).step_by(7) {
                let f = FaultSet::from_vertices([NodeId::new((s + t + 1) % 36)]);
                queries.push((NodeId::new(s), NodeId::new(t), f));
            }
        }
        let sequential: Vec<QueryAnswer> = queries
            .iter()
            .map(|(s, t, f)| oracle.query(*s, *t, f))
            .collect();
        for workers in [1, 2, 4, 8] {
            assert_eq!(
                oracle.query_batch_workers(&queries, workers),
                sequential,
                "workers = {workers}"
            );
        }
        assert_eq!(oracle.query_batch(&queries), sequential);
        assert!(oracle.query_batch(&[]).is_empty());
    }

    #[test]
    fn distances_to_matches_individual_queries_and_truth() {
        let g = generators::grid2d(7, 7);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(24), NodeId::new(10)]);
        let s = NodeId::new(0);
        let targets: Vec<NodeId> = (0..49u32).step_by(3).map(NodeId::new).collect();
        let batch = oracle.distances_to(s, &targets, &f);
        assert_eq!(batch.len(), targets.len());
        for (k, &t) in targets.iter().enumerate() {
            let single = oracle.distance(s, t, &f);
            let truth = bfs::pair_distance_avoiding(&g, s, t, &f);
            // Batch uses a superset sketch: at least as good as the single
            // query, still sound.
            match truth.finite() {
                None => assert!(batch[k].is_infinite(), "t = {t}"),
                Some(td) => {
                    let bd = batch[k].finite().expect("connected");
                    assert!(bd >= td, "unsound batch answer for {t}");
                    assert!(
                        bd <= single.finite().unwrap_or(u32::MAX),
                        "batch worse than single for {t}"
                    );
                    assert!(f64::from(bd) <= 2.0 * f64::from(td) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn distances_to_handles_faulty_and_self_targets() {
        let g = generators::path(12);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(6)]);
        let s = NodeId::new(2);
        let out = oracle.distances_to(s, &[NodeId::new(2), NodeId::new(6), NodeId::new(11)], &f);
        assert_eq!(out[0].finite(), Some(0)); // self
        assert!(out[1].is_infinite()); // the fault itself
        assert!(out[2].is_infinite()); // cut off by the fault
    }

    #[test]
    fn distances_to_empty_targets() {
        let g = generators::path(4);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        assert!(oracle
            .distances_to(NodeId::new(0), &[], &FaultSet::empty())
            .is_empty());
    }

    #[test]
    fn distances_to_dedupes_repeated_targets() {
        let g = generators::cycle(16);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(1)]);
        let s = NodeId::new(0);
        let t = NodeId::new(4);
        let repeated = oracle.distances_to(s, &[t, t, t, s], &f);
        let single = oracle.distances_to(s, &[t, s], &f);
        assert_eq!(repeated, vec![single[0], single[0], single[0], single[1]]);
    }

    #[test]
    fn total_bits_positive() {
        let g = generators::path(12);
        let oracle = ForbiddenSetOracle::new(&g, 2.0);
        let total = oracle.total_bits();
        assert!(total > 0);
        // Parallel sum equals the sequential sum.
        let seq: u64 = (0..12u32)
            .map(|v| oracle.labeling().label_bits(NodeId::new(v)) as u64)
            .sum();
        assert_eq!(total, seq);
    }

    #[test]
    fn reused_and_cross_oracle_scratch_match_fresh_queries() {
        let g1 = generators::grid2d(5, 5);
        let g2 = generators::cycle(30);
        let o1 = ForbiddenSetOracle::new(&g1, 1.0);
        let o2 = ForbiddenSetOracle::new(&g2, 0.5);
        let mut scratch = DecodeScratch::new();
        for k in 0..10u32 {
            let f = FaultSet::from_vertices([NodeId::new((k + 3) % 25)]);
            let (s, t) = (NodeId::new(k % 25), NodeId::new((k * 7) % 25));
            assert_eq!(o1.query_with(s, t, &f, &mut scratch), o1.query(s, t, &f));
            // Hand the same scratch to a different oracle mid-stream: no
            // state may leak between labelings.
            let (s2, t2) = (NodeId::new(k % 30), NodeId::new((k * 11) % 30));
            let empty = FaultSet::empty();
            assert_eq!(
                o2.query_with(s2, t2, &empty, &mut scratch),
                o2.query(s2, t2, &empty)
            );
            // distances_to through the same scratch as well.
            let targets = [t, s, NodeId::new(24)];
            assert_eq!(
                o1.distances_to_with(s, &targets, &f, &mut scratch),
                o1.distances_to(s, &targets, &f)
            );
        }
        assert!(scratch.epoch() >= 30);
    }

    #[test]
    fn oracle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ForbiddenSetOracle>();
        assert_send_sync::<Labeling>();
        assert_send_sync::<crate::SchemeParams>();
        assert_send_sync::<Label>();
        assert_send_sync::<OracleError>();
    }
}
