//! The aggregated forbidden-set distance oracle.
//!
//! The paper observes that storing every vertex's label in one table yields
//! a centralized `(1+ε)` forbidden-set distance oracle of size `n ×` label
//! length. [`ForbiddenSetOracle`] is that table, with labels materialized
//! lazily and memoized: a query `(s, t, F)` loads the `|F| + 2` relevant
//! labels and runs the pure label [decoder](crate::decode) — the graph is
//! never consulted at query time, which tests assert by construction.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use fsdl_graph::{Dist, FaultSet, Graph, NodeId};

use crate::builder::Labeling;
use crate::decode::{self, QueryAnswer, QueryLabels};
use crate::label::Label;
use crate::params::SchemeParams;

/// A centralized `(1+ε)`-approximate forbidden-set distance oracle backed by
/// the labeling scheme.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, FaultSet, NodeId};
/// use fsdl_labels::ForbiddenSetOracle;
///
/// let g = generators::cycle(32);
/// let oracle = ForbiddenSetOracle::new(&g, 1.0);
/// let f = FaultSet::from_vertices([NodeId::new(1)]);
/// let d = oracle.distance(NodeId::new(0), NodeId::new(2), &f);
/// // The cycle detour 0-31-30-...-2 has length 30; the answer is a
/// // (1+eps)-approximation of it.
/// assert!(d.finite().unwrap() >= 30);
/// assert!(d.finite().unwrap() <= 45);
/// ```
#[derive(Debug)]
pub struct ForbiddenSetOracle {
    labeling: Labeling,
    cache: RefCell<HashMap<NodeId, Rc<Label>>>,
}

impl ForbiddenSetOracle {
    /// Builds the oracle for `g` with precision `epsilon` (paper parameter
    /// schedule).
    ///
    /// # Panics
    ///
    /// Panics if `g` is empty or `epsilon` is not positive finite.
    pub fn new(g: &Graph, epsilon: f64) -> Self {
        let params = SchemeParams::new(epsilon, g.num_vertices());
        Self::with_params(g, params)
    }

    /// Builds the oracle with an explicit parameter schedule.
    pub fn with_params(g: &Graph, params: SchemeParams) -> Self {
        Self::from_labeling(Labeling::build(g, params))
    }

    /// Wraps an existing labeling (e.g. one built with non-default
    /// [`crate::LabelingOptions`]).
    pub fn from_labeling(labeling: Labeling) -> Self {
        ForbiddenSetOracle {
            labeling,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The underlying labeling (marker side).
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The parameter schedule in force.
    pub fn params(&self) -> &SchemeParams {
        self.labeling.params()
    }

    /// Returns (materializing and memoizing on first use) the label of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> Rc<Label> {
        if let Some(l) = self.cache.borrow().get(&v) {
            return Rc::clone(l);
        }
        let label = Rc::new(self.labeling.label_of(v));
        self.cache.borrow_mut().insert(v, Rc::clone(&label));
        label
    }

    /// Answers the forbidden-set distance query `(s, t, F)` with the full
    /// decoder output (distance, witness path, sketch size).
    ///
    /// # Panics
    ///
    /// Panics if any referenced vertex is out of range, or if an edge fault
    /// in `F` is not an edge of the graph.
    pub fn query(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> QueryAnswer {
        let source = self.label(s);
        let target = self.label(t);
        let vertex_labels: Vec<Rc<Label>> = faults.vertices().map(|f| self.label(f)).collect();
        let edge_labels: Vec<(Rc<Label>, Rc<Label>)> = faults
            .edges()
            .map(|e| {
                assert!(
                    self.labeling.graph().has_edge(e.lo(), e.hi()),
                    "forbidden edge {e} is not an edge of the graph"
                );
                (self.label(e.lo()), self.label(e.hi()))
            })
            .collect();
        let query_labels = QueryLabels {
            fault_vertices: vertex_labels.iter().map(Rc::as_ref).collect(),
            fault_edges: edge_labels
                .iter()
                .map(|(a, b)| (a.as_ref(), b.as_ref()))
                .collect(),
        };
        decode::query(self.params(), &source, &target, &query_labels)
    }

    /// The `(1+ε)`-approximate distance `δ(s, t, F)`.
    pub fn distance(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> Dist {
        self.query(s, t, faults).distance
    }

    /// One-to-many distances: `δ(s, tᵢ, F)` for every target, computed with
    /// a single sketch construction and Dijkstra pass (see
    /// [`decode::query_many`]). Answers are still within `1 + ε` of
    /// `d_{G∖F}(s, tᵢ)`.
    ///
    /// # Panics
    ///
    /// Panics if any referenced vertex is out of range, or if an edge fault
    /// is not an edge of the graph.
    pub fn distances_to(&self, s: NodeId, targets: &[NodeId], faults: &FaultSet) -> Vec<Dist> {
        let source = self.label(s);
        let target_labels: Vec<Rc<Label>> = targets.iter().map(|&t| self.label(t)).collect();
        let vertex_labels: Vec<Rc<Label>> = faults.vertices().map(|f| self.label(f)).collect();
        let edge_labels: Vec<(Rc<Label>, Rc<Label>)> = faults
            .edges()
            .map(|e| {
                assert!(
                    self.labeling.graph().has_edge(e.lo(), e.hi()),
                    "forbidden edge {e} is not an edge of the graph"
                );
                (self.label(e.lo()), self.label(e.hi()))
            })
            .collect();
        let query_labels = QueryLabels {
            fault_vertices: vertex_labels.iter().map(Rc::as_ref).collect(),
            fault_edges: edge_labels
                .iter()
                .map(|(a, b)| (a.as_ref(), b.as_ref()))
                .collect(),
        };
        let target_refs: Vec<&Label> = target_labels.iter().map(Rc::as_ref).collect();
        decode::query_many(self.params(), &source, &target_refs, &query_labels)
    }

    /// Forbidden-set connectivity: are `s` and `t` connected in `G ∖ F`?
    ///
    /// This is the "very large ε" special case the paper's lower bound
    /// (Theorem 3.1) applies to: any scheme answering these queries needs
    /// `Ω(2^{α/2} + log n)`-bit labels.
    pub fn connected(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> bool {
        self.distance(s, t, faults).is_finite()
    }

    /// Total oracle size in bits: the sum of all `n` encoded label lengths.
    /// Expensive (materializes every label, fanned out over scoped threads);
    /// used by the size experiments.
    pub fn total_bits(&self) -> u64 {
        let n = self.labeling.graph().num_vertices();
        let labeling = &self.labeling;
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(n.max(1));
        if workers <= 1 {
            return (0..n as u32)
                .map(|v| labeling.label_bits(NodeId::new(v)) as u64)
                .sum();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let v = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if v >= n {
                        break;
                    }
                    let bits = labeling.label_bits(NodeId::from_index(v)) as u64;
                    total.fetch_add(bits, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        total.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::{bfs, generators};

    #[test]
    fn failure_free_queries_are_upper_bounds_with_stretch() {
        let g = generators::grid2d(6, 6);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let empty = FaultSet::empty();
        for s in [0u32, 14, 35] {
            for t in 0..36u32 {
                let d = oracle.distance(NodeId::new(s), NodeId::new(t), &empty);
                let truth = bfs::pair_distance_avoiding(&g, NodeId::new(s), NodeId::new(t), &empty)
                    .finite()
                    .unwrap();
                let dd = d.finite().expect("connected graph");
                assert!(dd >= truth, "{s}->{t}: {dd} < {truth}");
                assert!(
                    f64::from(dd) <= 2.0 * f64::from(truth) + 1e-9,
                    "{s}->{t}: stretch {dd}/{truth}"
                );
            }
        }
    }

    #[test]
    fn faulty_endpoint_is_infinite() {
        let g = generators::path(10);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(0)]);
        assert!(oracle
            .distance(NodeId::new(0), NodeId::new(5), &f)
            .is_infinite());
        assert!(oracle
            .distance(NodeId::new(5), NodeId::new(0), &f)
            .is_infinite());
    }

    #[test]
    fn disconnection_detected() {
        let g = generators::path(9);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(4)]);
        assert!(!oracle.connected(NodeId::new(0), NodeId::new(8), &f));
        assert!(oracle.connected(NodeId::new(0), NodeId::new(3), &f));
        assert!(oracle.connected(NodeId::new(5), NodeId::new(8), &f));
    }

    #[test]
    fn label_cache_returns_same_rc() {
        let g = generators::cycle(8);
        let oracle = ForbiddenSetOracle::new(&g, 2.0);
        let a = oracle.label(NodeId::new(3));
        let b = oracle.label(NodeId::new(3));
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn invalid_edge_fault_rejected() {
        let g = generators::path(5);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let mut f = FaultSet::empty();
        f.forbid_edge_unchecked(NodeId::new(0), NodeId::new(4));
        let _ = oracle.query(NodeId::new(0), NodeId::new(4), &f);
    }

    #[test]
    fn distances_to_matches_individual_queries_and_truth() {
        let g = generators::grid2d(7, 7);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(24), NodeId::new(10)]);
        let s = NodeId::new(0);
        let targets: Vec<NodeId> = (0..49u32).step_by(3).map(NodeId::new).collect();
        let batch = oracle.distances_to(s, &targets, &f);
        assert_eq!(batch.len(), targets.len());
        for (k, &t) in targets.iter().enumerate() {
            let single = oracle.distance(s, t, &f);
            let truth = bfs::pair_distance_avoiding(&g, s, t, &f);
            // Batch uses a superset sketch: at least as good as the single
            // query, still sound.
            match truth.finite() {
                None => assert!(batch[k].is_infinite(), "t = {t}"),
                Some(td) => {
                    let bd = batch[k].finite().expect("connected");
                    assert!(bd >= td, "unsound batch answer for {t}");
                    assert!(
                        bd <= single.finite().unwrap_or(u32::MAX),
                        "batch worse than single for {t}"
                    );
                    assert!(f64::from(bd) <= 2.0 * f64::from(td) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn distances_to_handles_faulty_and_self_targets() {
        let g = generators::path(12);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(6)]);
        let s = NodeId::new(2);
        let out = oracle.distances_to(s, &[NodeId::new(2), NodeId::new(6), NodeId::new(11)], &f);
        assert_eq!(out[0].finite(), Some(0)); // self
        assert!(out[1].is_infinite()); // the fault itself
        assert!(out[2].is_infinite()); // cut off by the fault
    }

    #[test]
    fn distances_to_empty_targets() {
        let g = generators::path(4);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        assert!(oracle
            .distances_to(NodeId::new(0), &[], &FaultSet::empty())
            .is_empty());
    }

    #[test]
    fn total_bits_positive() {
        let g = generators::path(12);
        let oracle = ForbiddenSetOracle::new(&g, 2.0);
        let total = oracle.total_bits();
        assert!(total > 0);
        // Parallel sum equals the sequential sum.
        let seq: u64 = (0..12u32)
            .map(|v| oracle.labeling().label_bits(NodeId::new(v)) as u64)
            .sum();
        assert_eq!(total, seq);
    }

    #[test]
    fn labeling_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Labeling>();
        assert_send_sync::<crate::SchemeParams>();
        assert_send_sync::<Label>();
    }
}
