//! The parameter schedule of the labeling scheme (paper Section 2.1).
//!
//! For precision `ε > 0` the paper fixes `c = max{⌈log₂(6/ε)⌉, 2}` and, for
//! each level `i ∈ I = {c+1, …, ⌈log n⌉}`:
//!
//! * `ρᵢ = 2^{i−c}` — domination radius of the net `N_{i−c}` whose points
//!   serve as waypoints at level `i`;
//! * `λᵢ = 2^{i+1}` — maximum length of a virtual edge stored at level `i`,
//!   and the radius of the *protected ball* `PBᵢ(f) = B(f, λᵢ)`;
//! * `μᵢ` — fault-clearance radius defining `i(v)` (the largest level whose
//!   clearance ball around `v` is fault-free);
//! * `rᵢ = μ_{i+1} + 2^i + ρ_{i+1}` — radius of the label ball `Bᵢ(v)`.
//!
//! ## Deviation: `μᵢ = λᵢ + 3ρᵢ` instead of the paper's `λᵢ + ρᵢ`
//!
//! The paper's decoder must decide whether an endpoint `x` of a candidate
//! edge lies in `PBᵢ(f)`, i.e. whether `d_G(x, f) ≤ λᵢ`. When `x` is a net
//! point of `N_{i−c−1}` this is read off exactly from `f`'s label (which
//! stores every such point within `rᵢ ≥ λᵢ`, with exact distance). But when
//! `x` is one of the *special* vertices `s, t` (or another fault), no label
//! stores the pair distance `d_G(x, f)`, so the check is not computable from
//! labels alone — a gap in the paper's prose. We close it with a *certified
//! lower bound*: let `x* = M_{i−c}(x)` be `x`'s nearest net point at level
//! `i−c` (distance `< ρᵢ`, recorded in `x`'s own label). Then
//!
//! ```text
//! est(x, f) = d_G(f, x*) − d_G(x, x*)  ≤  d_G(x, f)
//! ```
//!
//! with `d_G(f, x*)` read from `f`'s label (`> rᵢ` when absent). Admitting
//! an edge when `est > λᵢ` therefore never admits an unsafe edge (Lemma 2.3
//! survives). For the *existence* side (Lemma 2.4) the certificate is weaker
//! than the truth by up to `2ρᵢ`, so every case of the analysis that
//! concluded "`d_G(x, F) > μᵢ` hence `x` is certifiably outside every
//! `PBᵢ(f)`" needs `μᵢ − 2ρᵢ > λᵢ`. Setting `μᵢ = λᵢ + 3ρᵢ` restores all of
//! them with room to spare; the re-derived chain of inequalities is encoded
//! in [`SchemeParams::verify_invariants`] and checked by tests for every
//! `(ε, n)` the harness uses:
//!
//! * Claim 1(a): `λᵢ ≥ ρᵢ + ρ_{i+1} + 2^i` (needs `c ≥ 2`);
//! * level drift (Claim 2): `μ_{i−1} < μᵢ − 2^i` and `μ_{i+1} + 2^i < μ_{i+2}`;
//! * certificate slack: `μᵢ − 2ρᵢ > λᵢ` and `μᵢ − ρᵢ > λᵢ`;
//! * per-hop stretch: `ρᵢ + ρ_{i+1} ≤ (ε/2)·2^i` (needs `c ≥ log₂(6/ε)`);
//! * label-ball growth: `rᵢ < 2^{i+3}` (so Lemma 2.5's count is unchanged).
//!
//! With `c ≥ 2`: `rᵢ = μ_{i+1} + 2^i + ρ_{i+1} = 5·2^i + 2^{i+3−c} ≤ 7·2^i`,
//! strictly below the paper's `2^{i+3}` bound, so the label-length theorem
//! `O(1+ε⁻¹)^{2α} log² n` holds verbatim.

use fsdl_nets::ceil_log2;

/// The complete parameter schedule for one `(ε, n)` instance of the scheme.
///
/// # Examples
///
/// ```
/// use fsdl_labels::SchemeParams;
///
/// let p = SchemeParams::new(1.0, 1000);
/// assert_eq!(p.c(), 3); // max{ceil(log2 6), 2}
/// assert_eq!(p.top_level(), 10); // ceil(log2 1000)
/// assert!(p.verify_invariants().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SchemeParams {
    epsilon: f64,
    c: u32,
    top_level: u32,
    n: usize,
}

impl SchemeParams {
    /// Builds the schedule for precision `epsilon` on an `n`-vertex graph,
    /// with the paper's `c = max{⌈log₂(6/ε)⌉, 2}`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0`, is not finite, or `n == 0`.
    pub fn new(epsilon: f64, n: usize) -> Self {
        Self::with_c(epsilon, Self::paper_c(epsilon), n)
    }

    /// The paper's setting `c(ε) = max{⌈log₂(6/ε)⌉, 2}`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0` or is not finite.
    pub fn paper_c(epsilon: f64) -> u32 {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be a positive finite number"
        );
        let c = (6.0 / epsilon).log2().ceil();
        (c.max(2.0)) as u32
    }

    /// Builds a schedule with an explicit `c` (precision knob for
    /// experiments). The guaranteed stretch is `1 + ε` only when
    /// `c ≥ max{⌈log₂(6/ε)⌉, 2}`; smaller `c` trades the guarantee for
    /// smaller labels (an ablation the harness measures).
    ///
    /// # Panics
    ///
    /// Panics if `c < 2`, `n == 0`, or `epsilon` is not positive finite.
    pub fn with_c(epsilon: f64, c: u32, n: usize) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be a positive finite number"
        );
        assert!(c >= 2, "the analysis requires c >= 2");
        assert!(n > 0, "graph must be nonempty");
        let top_level = ceil_log2(n).max(c + 1);
        SchemeParams {
            epsilon,
            c,
            top_level,
            n,
        }
    }

    /// The precision parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The level offset `c`.
    pub fn c(&self) -> u32 {
        self.c
    }

    /// The top level `⌈log₂ n⌉` (raised to `c+1` for tiny graphs so that
    /// the level range `I` is never empty).
    pub fn top_level(&self) -> u32 {
        self.top_level
    }

    /// Number of vertices this schedule was derived for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The level range `I = {c+1, …, top}`.
    pub fn levels(&self) -> impl Iterator<Item = u32> {
        (self.c + 1)..=self.top_level
    }

    /// Number of levels `|I|`.
    pub fn num_levels(&self) -> usize {
        (self.top_level - self.c) as usize
    }

    /// `ρᵢ = 2^{i−c}`: waypoint-net domination radius at level `i`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `i ≤ c`.
    pub fn rho(&self, i: u32) -> u64 {
        debug_assert!(i > self.c, "rho is defined for i > c");
        1u64 << (i - self.c)
    }

    /// `λᵢ = 2^{i+1}`: maximum virtual-edge length / protected-ball radius.
    pub fn lambda(&self, i: u32) -> u64 {
        1u64 << (i + 1)
    }

    /// `μᵢ = λᵢ + 3ρᵢ`: fault-clearance radius (see the module docs for why
    /// this deviates from the paper's `λᵢ + ρᵢ`).
    pub fn mu(&self, i: u32) -> u64 {
        self.lambda(i) + 3 * self.rho(i)
    }

    /// `rᵢ = μ_{i+1} + 2^i + ρ_{i+1}`: label-ball radius at level `i`.
    pub fn r(&self, i: u32) -> u64 {
        self.mu(i + 1) + (1u64 << i) + self.rho(i + 1)
    }

    /// The net level whose points are *stored* at label level `i`
    /// (`N_{i−c−1}`).
    pub fn stored_net_level(&self, i: u32) -> u32 {
        i - self.c - 1
    }

    /// The net level of the *waypoints* `M̂` used at level `i` (`N_{i−c}`);
    /// virtual edges must have at least one endpoint at this net level or
    /// higher (see the builder docs).
    pub fn waypoint_net_level(&self, i: u32) -> u32 {
        i - self.c
    }

    /// Checks the full chain of schedule inequalities listed in the module
    /// docs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated inequality. With the
    /// shipped schedule this never fails (property-tested); it exists so
    /// that experimental schedules (ablations) are checked before use.
    pub fn verify_invariants(&self) -> Result<(), String> {
        for i in self.levels() {
            let (rho_i, lam_i, mu_i, r_i) = (self.rho(i), self.lambda(i), self.mu(i), self.r(i));
            let pow = 1u64 << i;
            if lam_i < rho_i + self.rho(i + 1) + pow {
                return Err(format!("Claim 1(a) fails at level {i}"));
            }
            if i > self.c + 1 && self.mu(i - 1) >= mu_i - pow {
                return Err(format!("level drift (down) fails at level {i}"));
            }
            if self.mu(i + 1) + pow >= self.mu(i + 2) {
                return Err(format!("level drift (up) fails at level {i}"));
            }
            if mu_i <= lam_i + 2 * rho_i {
                return Err(format!("certificate slack fails at level {i}"));
            }
            if r_i < self.mu(i + 1) + pow + self.rho(i + 1) {
                return Err(format!("label ball too small at level {i}"));
            }
            if r_i >= 1u64 << (i + 3) {
                return Err(format!("label ball exceeds 2^(i+3) at level {i}"));
            }
        }
        // Per-hop stretch: rho_i + rho_{i+1} <= (eps/2) * 2^i, i.e.
        // 3 * 2^{-c} <= eps / 2. Only guaranteed when c >= log2(6/eps).
        if (self.c as f64) >= (6.0 / self.epsilon).log2() {
            let lhs = 3.0 * (0.5f64).powi(self.c as i32);
            if lhs > self.epsilon / 2.0 + 1e-12 {
                return Err("per-hop stretch bound fails".into());
            }
        }
        // Claim 1(b): the top-level ball must cover every vertex; distances
        // are < n <= 2^top, and r_top >= 2^{top+2} > n.
        if self.r(self.top_level) < self.n as u64 {
            return Err("top-level ball does not cover the graph".into());
        }
        Ok(())
    }

    /// `true` when `c` meets the paper's threshold for the `1+ε` guarantee.
    pub fn stretch_guaranteed(&self) -> bool {
        self.c >= Self::paper_c(self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_c_values() {
        assert_eq!(SchemeParams::paper_c(3.0), 2); // ceil(log2 2) = 1 -> max 2
        assert_eq!(SchemeParams::paper_c(2.0), 2); // ceil(log2 3) = 2
        assert_eq!(SchemeParams::paper_c(1.0), 3); // ceil(log2 6) = 3
        assert_eq!(SchemeParams::paper_c(0.5), 4); // ceil(log2 12) = 4
        assert_eq!(SchemeParams::paper_c(0.1), 6); // ceil(log2 60) = 6
        assert_eq!(SchemeParams::paper_c(100.0), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_epsilon() {
        let _ = SchemeParams::new(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "c >= 2")]
    fn rejects_small_c() {
        let _ = SchemeParams::with_c(1.0, 1, 10);
    }

    #[test]
    fn schedule_values() {
        let p = SchemeParams::new(1.0, 1 << 12); // c = 3, top = 12
        assert_eq!(p.c(), 3);
        assert_eq!(p.top_level(), 12);
        let i = 5;
        assert_eq!(p.rho(i), 4); // 2^{5-3}
        assert_eq!(p.lambda(i), 64); // 2^6
        assert_eq!(p.mu(i), 64 + 12);
        assert_eq!(p.r(i), p.mu(6) + 32 + p.rho(6));
        assert!(p.r(i) < 1 << 8);
    }

    #[test]
    fn levels_range() {
        let p = SchemeParams::new(2.0, 100); // c = 2, top = 7
        let levels: Vec<u32> = p.levels().collect();
        assert_eq!(levels, vec![3, 4, 5, 6, 7]);
        assert_eq!(p.num_levels(), 5);
    }

    #[test]
    fn tiny_graph_has_nonempty_level_range() {
        let p = SchemeParams::new(0.5, 2); // c = 4, ceil_log2(2) = 1 < c+1
        assert_eq!(p.top_level(), 5);
        assert_eq!(p.levels().count(), 1);
        assert!(p.verify_invariants().is_ok());
    }

    #[test]
    fn invariants_hold_for_harness_grid() {
        for &eps in &[0.25, 0.5, 1.0, 2.0, 3.0, 8.0] {
            for &n in &[2usize, 10, 100, 1000, 100_000, 1 << 20] {
                let p = SchemeParams::new(eps, n);
                assert_eq!(p.verify_invariants(), Ok(()), "eps={eps} n={n}");
            }
        }
    }

    #[test]
    fn stretch_guarantee_flag() {
        assert!(SchemeParams::new(1.0, 100).stretch_guaranteed());
        assert!(!SchemeParams::with_c(0.5, 2, 100).stretch_guaranteed());
        assert!(SchemeParams::with_c(0.5, 4, 100).stretch_guaranteed());
    }

    #[test]
    fn net_level_offsets() {
        let p = SchemeParams::new(2.0, 64); // c = 2
        assert_eq!(p.stored_net_level(3), 0);
        assert_eq!(p.waypoint_net_level(3), 1);
        assert_eq!(p.stored_net_level(6), 3);
    }
}
