//! Vertex partitioning for the sharded label plane.
//!
//! The paper's labels are fully self-contained — answering `(s, t, F)`
//! needs only the labels of `s`, `t`, and the elements of `F`, never
//! cross-label state — so splitting the label table across `S` shard
//! servers is *trivially sound*: any assignment of vertices to shards
//! serves bit-identical answers, because the router re-assembles exactly
//! the label multiset a single-process oracle would read. Partitioning is
//! therefore purely a locality/balance decision, and the net hierarchy
//! already encodes locality: vertices whose nearest level-`i` net point
//! coincides are within `2^{i+1}` of each other (Lemma 2.2), so grouping
//! by net cell keeps each shard's working set geographically coherent and
//! lets one `label-fetch` frame cover both endpoints of a short query.
//!
//! A [`PartitionPlan`] assigns every vertex to exactly one shard:
//!
//! * [`PartitionPlan::by_net_cell`] — cells are the nearest-net-point
//!   regions at the coarsest hierarchy level that still has at least `S`
//!   net points; cells are bin-packed onto shards largest-first. Falls
//!   back to contiguous ranges when the hierarchy cannot support `S`
//!   cells (tiny graphs).
//! * [`PartitionPlan::contiguous`] — `n/S`-sized index ranges; the
//!   data-independent fallback.
//!
//! [`write_shard_stores`] persists one store *per shard* through the
//! existing manifest machinery (segment + atomically swapped `MANIFEST`),
//! plus a checksummed `SHARD` sidecar naming the shard's global vertex
//! ids, the global `n`, and the shard's slice of the plan. A shard
//! segment's labels are a subset of the graph's, so its header `n` is the
//! *shard size*; the sidecar carries the global vertex count the decoder
//! actually needs, and [`ShardStore::fetch`] serves raw encoded bytes by
//! *global* id — decode happens router-side against the global id width.
//!
//! Everything here is untrusted-input safe: a corrupt sidecar, plan file,
//! or segment surfaces as a typed [`PartitionError`], never a panic.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use fsdl_graph::NodeId;
use fsdl_nets::NetHierarchy;

use crate::oracle::ForbiddenSetOracle;
use crate::store::{self, Manifest, OpenMode, Segment, StoreError};

/// File name of the per-shard sidecar (next to `MANIFEST`).
pub const SHARD_META_NAME: &str = "SHARD";

/// Magic prefixes for the two on-disk artifacts.
const SHARD_MAGIC: [u8; 8] = *b"FSDLSHR1";
const PLAN_MAGIC: [u8; 8] = *b"FSDLPLN1";

/// Typed failures of the partition plane.
#[derive(Debug)]
pub enum PartitionError {
    /// An underlying store operation failed (segment, manifest, I/O).
    Store(StoreError),
    /// The `SHARD` sidecar is missing, torn, or inconsistent with its
    /// segment.
    Meta {
        /// The sidecar path.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// A plan is internally inconsistent or does not match its inputs
    /// (wrong vertex count, out-of-range shard ids, corrupt plan file).
    Plan {
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Store(e) => write!(f, "shard store: {e}"),
            PartitionError::Meta { path, message } => {
                write!(f, "shard sidecar {}: {message}", path.display())
            }
            PartitionError::Plan { message } => write!(f, "partition plan: {message}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<StoreError> for PartitionError {
    fn from(e: StoreError) -> Self {
        PartitionError::Store(e)
    }
}

/// How a plan's assignment was derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Vertices grouped by nearest net point at `level`, cells bin-packed
    /// onto shards.
    NetCell {
        /// The hierarchy level whose net points define the cells.
        level: u32,
    },
    /// Contiguous vertex-index ranges.
    Contiguous,
}

impl PartitionStrategy {
    fn tag(self) -> (u8, u32) {
        match self {
            PartitionStrategy::Contiguous => (0, 0),
            PartitionStrategy::NetCell { level } => (1, level),
        }
    }

    fn from_tag(tag: u8, level: u32) -> Option<PartitionStrategy> {
        match tag {
            0 => Some(PartitionStrategy::Contiguous),
            1 => Some(PartitionStrategy::NetCell { level }),
            _ => None,
        }
    }
}

/// An assignment of every vertex to exactly one of `S` shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    num_shards: u32,
    strategy: PartitionStrategy,
    /// `assignment[v] < num_shards` for every vertex index `v`.
    assignment: Vec<u32>,
}

impl PartitionPlan {
    /// Partitions by net-hierarchy cell: vertices cluster to their
    /// nearest net point at the coarsest level with at least `shards`
    /// net points, and the resulting cells are assigned to shards
    /// largest-first onto the least-loaded shard (deterministic
    /// tie-breaks). Falls back to [`PartitionPlan::contiguous`] when no
    /// level yields at least `shards` nonempty cells.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` (a plan with no shards is meaningless).
    pub fn by_net_cell(nets: &NetHierarchy, shards: u32) -> PartitionPlan {
        assert!(shards >= 1, "a partition needs at least one shard");
        let n = nets.num_vertices();
        if shards == 1 {
            return PartitionPlan {
                num_shards: 1,
                strategy: PartitionStrategy::NetCell { level: 0 },
                assignment: vec![0; n],
            };
        }
        // Coarsest level that still has >= `shards` net points: fewer,
        // larger cells mean fewer cross-shard fetches for local queries.
        let sizes = nets.level_sizes();
        let level = (0..=nets.top_level())
            .rev()
            .find(|&i| sizes.get(i as usize).is_some_and(|&s| s >= shards as usize));
        let Some(level) = level else {
            return PartitionPlan::contiguous(n, shards);
        };
        // Cell of v = its nearest net point at `level`. `nearest` is total
        // on connected components containing net points; a vertex with no
        // reachable net point becomes its own singleton cell.
        let mut cell_of: Vec<u32> = Vec::with_capacity(n);
        for v in 0..n {
            let v = NodeId::from_index(v);
            let cell = nets.nearest(v, level).map_or(v, |(p, _)| p);
            cell_of.push(cell.raw());
        }
        // Group cells, then bin-pack largest-first onto the least-loaded
        // shard. Ties break toward the smaller cell id / shard id, so the
        // plan is a pure function of the hierarchy.
        let mut cells: Vec<(u32, usize)> = {
            let mut sorted = cell_of.clone();
            sorted.sort_unstable();
            let mut out = Vec::new();
            let mut k = 0;
            while k < sorted.len() {
                let id = sorted[k];
                let mut count = 0;
                while k < sorted.len() && sorted[k] == id {
                    count += 1;
                    k += 1;
                }
                out.push((id, count));
            }
            out
        };
        if cells.len() < shards as usize {
            return PartitionPlan::contiguous(n, shards);
        }
        cells.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut load = vec![0usize; shards as usize];
        let mut shard_of_cell: Vec<(u32, u32)> = Vec::with_capacity(cells.len());
        for (cell, size) in cells {
            let shard = (0..shards as usize)
                .min_by_key(|&s| (load[s], s))
                .expect("shards >= 1");
            load[shard] += size;
            shard_of_cell.push((cell, shard as u32));
        }
        shard_of_cell.sort_unstable_by_key(|&(cell, _)| cell);
        let assignment = cell_of
            .iter()
            .map(|cell| {
                let at = shard_of_cell
                    .binary_search_by_key(cell, |&(c, _)| c)
                    .expect("every cell was packed");
                shard_of_cell[at].1
            })
            .collect();
        PartitionPlan {
            num_shards: shards,
            strategy: PartitionStrategy::NetCell { level },
            assignment,
        }
    }

    /// Contiguous index ranges: shard `i` owns `[i·⌈n/S⌉, (i+1)·⌈n/S⌉)`
    /// clamped to `n` — the data-independent fallback.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn contiguous(n: usize, shards: u32) -> PartitionPlan {
        assert!(shards >= 1, "a partition needs at least one shard");
        let chunk = n.div_ceil(shards as usize).max(1);
        let assignment = (0..n)
            .map(|v| ((v / chunk) as u32).min(shards - 1))
            .collect();
        PartitionPlan {
            num_shards: shards,
            strategy: PartitionStrategy::Contiguous,
            assignment,
        }
    }

    /// [`PartitionPlan::by_net_cell`] over the oracle's own hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn for_oracle(oracle: &ForbiddenSetOracle, shards: u32) -> PartitionPlan {
        PartitionPlan::by_net_cell(oracle.labeling().nets(), shards)
    }

    /// Number of shards this plan spans.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// Number of vertices this plan assigns.
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// How the assignment was derived.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The shard owning vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the planned graph.
    pub fn shard_of(&self, v: NodeId) -> u32 {
        self.assignment[v.index()]
    }

    /// [`PartitionPlan::shard_of`] for untrusted ids: `None` when out of
    /// range.
    pub fn try_shard_of(&self, v: u32) -> Option<u32> {
        self.assignment.get(v as usize).copied()
    }

    /// The vertices assigned to `shard`, ascending.
    pub fn vertices_of(&self, shard: u32) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(v, _)| NodeId::from_index(v))
            .collect()
    }

    /// Vertices per shard (indexed by shard id).
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_shards as usize];
        for &s in &self.assignment {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Serializes the plan to one checksummed file (temp file + `fsync` +
    /// atomic rename), so a router can load the exact assignment the
    /// shard stores were written under.
    ///
    /// # Errors
    ///
    /// Relays I/O failures as [`PartitionError::Store`].
    pub fn save(&self, path: &Path) -> Result<(), PartitionError> {
        let (tag, level) = self.strategy.tag();
        let mut out = Vec::with_capacity(29 + 4 * self.assignment.len());
        out.extend_from_slice(&PLAN_MAGIC);
        out.extend_from_slice(&self.num_shards.to_le_bytes());
        out.push(tag);
        out.extend_from_slice(&level.to_le_bytes());
        out.extend_from_slice(&(self.assignment.len() as u64).to_le_bytes());
        for &s in &self.assignment {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&store::fnv32(&out).to_le_bytes());
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| PartitionError::Plan {
                message: format!("{} is not a writable file path", path.display()),
            })?;
        store::write_atomic(dir.unwrap_or(Path::new(".")), name, &out)?;
        Ok(())
    }

    /// Loads a plan written by [`PartitionPlan::save`], re-validating
    /// magic, checksum, and every assignment entry.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Plan`] on any malformation; never panics.
    pub fn load(path: &Path) -> Result<PartitionPlan, PartitionError> {
        let plan_err = |message: String| PartitionError::Plan { message };
        let bytes = std::fs::read(path)
            .map_err(|e| plan_err(format!("{}: {e}", path.display())))?;
        if bytes.len() < 29 {
            return Err(plan_err(format!("plan file is {} bytes", bytes.len())));
        }
        let (body, crc) = bytes.split_at(bytes.len() - 4);
        let recorded = u32::from_le_bytes(crc.try_into().expect("4 bytes"));
        if recorded != store::fnv32(body) {
            return Err(plan_err("plan checksum mismatch".into()));
        }
        if body[..8] != PLAN_MAGIC {
            return Err(plan_err("bad plan magic".into()));
        }
        let num_shards = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
        let tag = body[12];
        let level = u32::from_le_bytes(body[13..17].try_into().expect("4 bytes"));
        let n = u64::from_le_bytes(body[17..25].try_into().expect("8 bytes"));
        let strategy = PartitionStrategy::from_tag(tag, level)
            .ok_or_else(|| plan_err(format!("unknown strategy tag {tag}")))?;
        if num_shards == 0 {
            return Err(plan_err("plan names zero shards".into()));
        }
        let n = usize::try_from(n)
            .ok()
            .filter(|&n| n <= u32::MAX as usize + 1)
            .ok_or_else(|| plan_err(format!("implausible vertex count {n}")))?;
        if body.len() != 25 + 4 * n {
            return Err(plan_err(format!(
                "plan body is {} bytes but the header implies {}",
                body.len(),
                25 + 4 * n
            )));
        }
        let mut assignment = Vec::with_capacity(n);
        for k in 0..n {
            let at = 25 + 4 * k;
            let s = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
            if s >= num_shards {
                return Err(plan_err(format!(
                    "vertex {k} assigned to shard {s} of {num_shards}"
                )));
            }
            assignment.push(s);
        }
        Ok(PartitionPlan {
            num_shards,
            strategy,
            assignment,
        })
    }
}

/// Mixes the shard coordinates into the graph fingerprint, so a shard
/// segment can never be opened as the full store, as another shard, or
/// under a different shard count (FNV-1a over the three values).
fn shard_fingerprint(graph_fp: u64, shard: u32, num_shards: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&graph_fp.to_le_bytes());
    eat(&shard.to_le_bytes());
    eat(&num_shards.to_le_bytes());
    h
}

/// What [`write_shard_stores`] persisted for one shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: u32,
    /// Labels persisted (the shard's vertex count).
    pub labels: usize,
    /// The store generation committed.
    pub generation: u64,
    /// Segment size in bytes.
    pub segment_bytes: u64,
}

/// Persists one store per shard under `dir/shard-{i}`, each through the
/// standard write protocol: segment durably first, checksummed `SHARD`
/// sidecar second, `MANIFEST` swap as the commit point, pruning last. The
/// plan itself is saved as `dir/PLAN`. Re-running over an existing
/// directory commits fresh generations (the previous ones remain
/// openable until the swap).
///
/// # Errors
///
/// Relays store failures typed; a failed shard leaves earlier shards
/// committed and the failed one on its previous generation.
///
/// # Panics
///
/// Panics if the plan's vertex count differs from the oracle's (caller
/// bug, as with mismatched graph/store pairs elsewhere).
pub fn write_shard_stores(
    oracle: &ForbiddenSetOracle,
    dir: &Path,
    plan: &PartitionPlan,
) -> Result<Vec<ShardReport>, PartitionError> {
    let g = oracle.labeling().graph();
    let n = g.num_vertices();
    assert_eq!(
        plan.num_vertices(),
        n,
        "plan covers {} vertices but the oracle serves {n}",
        plan.num_vertices()
    );
    let graph_fp = store::graph_fingerprint(g);
    let params = oracle.labeling().params();
    let encoded = oracle.encoded_labels()?;
    std::fs::create_dir_all(dir).map_err(|e| StoreError::Io {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    plan.save(&dir.join(PLAN_FILE_NAME))?;
    let mut reports = Vec::with_capacity(plan.num_shards() as usize);
    for shard in 0..plan.num_shards() {
        let sub = dir.join(shard_dir_name(shard));
        std::fs::create_dir_all(&sub).map_err(|e| StoreError::Io {
            path: sub.clone(),
            message: e.to_string(),
        })?;
        let vertices = plan.vertices_of(shard);
        let shard_encoded: Vec<(Vec<u8>, usize)> = vertices
            .iter()
            .map(|v| encoded[v.index()].clone())
            .collect();
        let generation = store::next_generation(&sub);
        let segment_bytes = store::write_segment(
            &sub,
            generation,
            params,
            shard_fingerprint(graph_fp, shard, plan.num_shards()),
            &shard_encoded,
        )?;
        write_shard_meta(&sub, plan, shard, graph_fp, n as u64, &vertices)?;
        store::write_manifest(&sub, &Manifest::static_store(generation))?;
        store::prune_generations(&sub, generation);
        reports.push(ShardReport {
            shard,
            labels: vertices.len(),
            generation,
            segment_bytes,
        });
    }
    Ok(reports)
}

/// File name of the saved plan inside a partition directory.
pub const PLAN_FILE_NAME: &str = "PLAN";

/// Directory name of one shard's store inside a partition directory.
pub fn shard_dir_name(shard: u32) -> String {
    format!("shard-{shard}")
}

fn write_shard_meta(
    sub: &Path,
    plan: &PartitionPlan,
    shard: u32,
    graph_fp: u64,
    n: u64,
    vertices: &[NodeId],
) -> Result<(), PartitionError> {
    let (tag, level) = plan.strategy().tag();
    let mut out = Vec::with_capacity(45 + 4 * vertices.len());
    out.extend_from_slice(&SHARD_MAGIC);
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&plan.num_shards().to_le_bytes());
    out.push(tag);
    out.extend_from_slice(&level.to_le_bytes());
    out.extend_from_slice(&graph_fp.to_le_bytes());
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(&(vertices.len() as u64).to_le_bytes());
    for v in vertices {
        out.extend_from_slice(&v.raw().to_le_bytes());
    }
    out.extend_from_slice(&store::fnv32(&out).to_le_bytes());
    store::write_atomic(sub, SHARD_META_NAME, &out)?;
    Ok(())
}

/// One shard's persisted slice of the label plane, opened for serving:
/// the current segment (via the manifest) plus the sidecar's global-id
/// directory. Serves **raw encoded label bytes by global vertex id**;
/// decoding happens wherever the bytes are consumed (router-side, against
/// the global id width).
pub struct ShardStore {
    shard: u32,
    num_shards: u32,
    strategy: PartitionStrategy,
    /// Fingerprint of the *unsharded* graph this shard was cut from.
    graph_fingerprint: u64,
    /// Global vertex count of the partitioned graph.
    total_vertices: u64,
    /// Sorted global ids owned by this shard; position = segment index.
    vertices: Vec<u32>,
    segment: Arc<Segment>,
    generation: u64,
}

impl ShardStore {
    /// Opens `dir` eagerly (whole-file checksum verified up front).
    ///
    /// # Errors
    ///
    /// Typed [`PartitionError`] on any corruption or inconsistency.
    pub fn open(dir: &Path) -> Result<ShardStore, PartitionError> {
        ShardStore::open_with(dir, OpenMode::Eager)
    }

    /// Opens `dir` in `mode` ([`OpenMode::Lazy`] defers payload
    /// validation to first fetch of each label — a corrupt untouched
    /// label is then surfaced by the *decoder* at the router, still a
    /// typed failure).
    ///
    /// # Errors
    ///
    /// Typed [`PartitionError`] on any corruption or inconsistency
    /// between manifest, segment, and sidecar.
    pub fn open_with(dir: &Path, mode: OpenMode) -> Result<ShardStore, PartitionError> {
        let manifest = store::read_manifest(dir)?;
        let segment = Segment::open(&dir.join(&manifest.segment), mode)?;
        let meta_path = dir.join(SHARD_META_NAME);
        let meta_err = |message: String| PartitionError::Meta {
            path: meta_path.clone(),
            message,
        };
        let bytes =
            std::fs::read(&meta_path).map_err(|e| meta_err(format!("unreadable: {e}")))?;
        if bytes.len() < 49 {
            return Err(meta_err(format!("sidecar is {} bytes", bytes.len())));
        }
        let (body, crc) = bytes.split_at(bytes.len() - 4);
        let recorded = u32::from_le_bytes(crc.try_into().expect("4 bytes"));
        if recorded != store::fnv32(body) {
            return Err(meta_err("sidecar checksum mismatch".into()));
        }
        if body[..8] != SHARD_MAGIC {
            return Err(meta_err("bad sidecar magic".into()));
        }
        let shard = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
        let num_shards = u32::from_le_bytes(body[12..16].try_into().expect("4 bytes"));
        let tag = body[16];
        let level = u32::from_le_bytes(body[17..21].try_into().expect("4 bytes"));
        let graph_fp = u64::from_le_bytes(body[21..29].try_into().expect("8 bytes"));
        let total = u64::from_le_bytes(body[29..37].try_into().expect("8 bytes"));
        let count = u64::from_le_bytes(body[37..45].try_into().expect("8 bytes"));
        let strategy = PartitionStrategy::from_tag(tag, level)
            .ok_or_else(|| meta_err(format!("unknown strategy tag {tag}")))?;
        if num_shards == 0 || shard >= num_shards {
            return Err(meta_err(format!("shard {shard} of {num_shards}")));
        }
        if total == 0 || total > u64::from(u32::MAX) + 1 {
            return Err(meta_err(format!("implausible vertex count {total}")));
        }
        let count = usize::try_from(count)
            .ok()
            .filter(|&c| c <= total as usize)
            .ok_or_else(|| meta_err(format!("implausible label count {count}")))?;
        if body.len() != 45 + 4 * count {
            return Err(meta_err(format!(
                "sidecar body is {} bytes but the header implies {}",
                body.len(),
                45 + 4 * count
            )));
        }
        let mut vertices = Vec::with_capacity(count);
        let mut prev: Option<u32> = None;
        for k in 0..count {
            let at = 45 + 4 * k;
            let v = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
            if u64::from(v) >= total {
                return Err(meta_err(format!("vertex {v} out of range for n={total}")));
            }
            if prev.is_some_and(|p| p >= v) {
                return Err(meta_err("vertex ids are not strictly ascending".into()));
            }
            prev = Some(v);
            vertices.push(v);
        }
        if segment.num_labels() != count {
            return Err(meta_err(format!(
                "segment holds {} labels but the sidecar names {count}",
                segment.num_labels()
            )));
        }
        // The segment's fingerprint is the graph fingerprint *mixed with the
        // shard coordinates*, so a segment can never pass as another shard,
        // another shard count, or the unsharded store.
        let expected = shard_fingerprint(graph_fp, shard, num_shards);
        if segment.graph_fingerprint() != expected {
            return Err(meta_err(format!(
                "segment fingerprint {:#018x} does not match shard {shard}/{num_shards} \
                 of graph {graph_fp:#018x}",
                segment.graph_fingerprint()
            )));
        }
        Ok(ShardStore {
            shard,
            num_shards,
            strategy,
            graph_fingerprint: graph_fp,
            total_vertices: total,
            vertices,
            segment: Arc::new(segment),
            generation: manifest.generation,
        })
    }

    /// The raw encoded label bytes and bit length of *global* vertex `v`,
    /// or `None` when this shard does not own `v`.
    pub fn fetch(&self, v: u32) -> Option<(&[u8], usize)> {
        let at = self.vertices.binary_search(&v).ok()?;
        self.segment.encoded_label(at)
    }

    /// Whether this shard owns global vertex `v`.
    pub fn owns(&self, v: u32) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// This shard's index.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Total shards in the partition this store belongs to.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// The partitioned graph's global vertex count (the decode id space).
    pub fn total_vertices(&self) -> u64 {
        self.total_vertices
    }

    /// Fingerprint of the unsharded graph this shard was cut from —
    /// compare against [`graph_fingerprint`](crate::store::graph_fingerprint)
    /// of a candidate graph before trusting the pairing.
    pub fn graph_fingerprint(&self) -> u64 {
        self.graph_fingerprint
    }

    /// Labels this shard owns.
    pub fn num_labels(&self) -> usize {
        self.vertices.len()
    }

    /// The committed store generation serving these bytes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How the partition that produced this shard was derived.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The decode parameters as wire fields:
    /// `(epsilon_bits, c, global_n)` — exactly what a label-fetch reply
    /// header carries so the router can reconstruct [`SchemeParams`]
    /// without filesystem access.
    ///
    /// [`SchemeParams`]: crate::SchemeParams
    pub fn wire_params(&self) -> (u64, u32, u64) {
        (
            self.segment.epsilon().to_bits(),
            self.segment.c(),
            self.total_vertices,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;

    fn hierarchy(n: usize) -> NetHierarchy {
        NetHierarchy::build(&generators::grid2d(n / 8, 8))
    }

    #[test]
    fn every_vertex_assigned_exactly_once_net_cell() {
        let nets = hierarchy(128);
        for shards in [1u32, 2, 3, 4, 7] {
            let plan = PartitionPlan::by_net_cell(&nets, shards);
            assert_eq!(plan.num_vertices(), 128);
            assert_eq!(plan.num_shards(), shards);
            // Exactly-once is structural (one assignment entry per
            // vertex); what needs checking is range and the size ledger.
            let sizes = plan.shard_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), 128);
            for v in 0..128 {
                assert!(plan.shard_of(NodeId::from_index(v)) < shards);
            }
            let mut from_lists = vec![false; 128];
            for s in 0..shards {
                for v in plan.vertices_of(s) {
                    assert!(!from_lists[v.index()], "{v} assigned twice");
                    from_lists[v.index()] = true;
                }
            }
            assert!(from_lists.iter().all(|&b| b), "some vertex unassigned");
        }
    }

    #[test]
    fn contiguous_covers_everything_even_when_shards_exceed_n() {
        let plan = PartitionPlan::contiguous(3, 8);
        assert_eq!(plan.shard_sizes().iter().sum::<usize>(), 3);
        let plan = PartitionPlan::contiguous(10, 3);
        assert_eq!(plan.shard_sizes(), vec![4, 4, 2]);
    }

    #[test]
    fn tiny_graph_falls_back_to_contiguous() {
        let nets = NetHierarchy::build(&generators::path(3));
        let plan = PartitionPlan::by_net_cell(&nets, 3);
        // 3 vertices cannot support 3 net cells at any coarse level; the
        // fallback must still assign every vertex.
        assert_eq!(plan.num_vertices(), 3);
        assert_eq!(plan.shard_sizes().iter().sum::<usize>(), 3);
    }

    #[test]
    fn net_cell_plan_is_reasonably_balanced() {
        let nets = hierarchy(256);
        let plan = PartitionPlan::by_net_cell(&nets, 4);
        if let PartitionStrategy::NetCell { .. } = plan.strategy() {
            let sizes = plan.shard_sizes();
            let max = *sizes.iter().max().expect("4 shards");
            let min = *sizes.iter().min().expect("4 shards");
            // Largest-first bin packing keeps the spread within one
            // largest cell; for a grid at a level with >= 4 points the
            // skew stays far from degenerate (no empty shard).
            assert!(min > 0, "bin packing left a shard empty: {sizes:?}");
            assert!(max < 256, "one shard swallowed the graph: {sizes:?}");
        } else {
            panic!("grid with 256 vertices should partition by net cell");
        }
    }

    #[test]
    fn shard_stores_reopen_bit_identically() {
        let g = generators::grid2d(8, 8);
        let oracle = ForbiddenSetOracle::new(&g, 0.5);
        let plan = PartitionPlan::for_oracle(&oracle, 3);
        let dir = std::env::temp_dir().join(format!("fsdl-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reports = write_shard_stores(&oracle, &dir, &plan).expect("write shards");
        assert_eq!(reports.len(), 3);
        assert_eq!(reports.iter().map(|r| r.labels).sum::<usize>(), 64);
        let loaded = PartitionPlan::load(&dir.join(PLAN_FILE_NAME)).expect("plan");
        assert_eq!(loaded, plan);
        let mut seen = vec![false; 64];
        for shard in 0..3 {
            let store =
                ShardStore::open(&dir.join(shard_dir_name(shard))).expect("open shard");
            assert_eq!(store.shard(), shard);
            assert_eq!(store.num_shards(), 3);
            assert_eq!(store.total_vertices(), 64);
            let (eps_bits, c, n) = store.wire_params();
            assert_eq!(f64::from_bits(eps_bits), 0.5);
            assert!((2..=64).contains(&c));
            assert_eq!(n, 64);
            for v in 0..64u32 {
                let Some((bytes, bits)) = store.fetch(v) else {
                    assert!(!store.owns(v));
                    continue;
                };
                assert!(!seen[v as usize], "v{v} served by two shards");
                seen[v as usize] = true;
                assert_eq!(plan.shard_of(NodeId::new(v)), shard);
                // Bit-identical to the oracle's canonical wire form.
                let (want, want_bits) =
                    oracle.encoded_label(NodeId::new(v)).expect("encode");
                assert_eq!(bits, want_bits, "v{v} bit length");
                assert_eq!(bytes, &want[..], "v{v} payload");
            }
        }
        assert!(seen.iter().all(|&b| b), "some vertex not served");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_sidecar_corruption_is_typed() {
        let g = generators::grid2d(4, 4);
        let oracle = ForbiddenSetOracle::new(&g, 0.5);
        let plan = PartitionPlan::contiguous(16, 2);
        let dir = std::env::temp_dir().join(format!("fsdl-shardsc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_shard_stores(&oracle, &dir, &plan).expect("write shards");
        let sub = dir.join(shard_dir_name(0));
        let meta = sub.join(SHARD_META_NAME);
        let bytes = std::fs::read(&meta).expect("read sidecar");
        for at in (0..bytes.len()).step_by(5) {
            let mut mutated = bytes.clone();
            mutated[at] ^= 0x20;
            std::fs::write(&meta, &mutated).expect("write");
            match ShardStore::open(&sub) {
                Ok(s) => assert_eq!(s.num_labels(), 8),
                Err(PartitionError::Meta { .. }) => {}
                Err(other) => panic!("unexpected error class: {other}"),
            }
        }
        // A shard segment opened as the wrong shard id must be refused by
        // the fingerprint mix even if the sidecar is internally valid.
        std::fs::write(&meta, &bytes).expect("restore");
        let other_meta = std::fs::read(dir.join(shard_dir_name(1)).join(SHARD_META_NAME))
            .expect("read shard 1 sidecar");
        std::fs::write(&meta, &other_meta).expect("cross-plant sidecar");
        assert!(ShardStore::open(&sub).is_err(), "shard identity not enforced");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_save_load_roundtrip_and_corruption() {
        let nets = hierarchy(64);
        let plan = PartitionPlan::by_net_cell(&nets, 4);
        let dir = std::env::temp_dir().join(format!("fsdl-plan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("PLAN");
        plan.save(&path).expect("save");
        let back = PartitionPlan::load(&path).expect("load");
        assert_eq!(back, plan);
        // Every single-byte corruption is a typed rejection or decodes to
        // a valid plan (CRC collisions are possible in principle; a panic
        // is not).
        let bytes = std::fs::read(&path).expect("read");
        for at in (0..bytes.len()).step_by(7) {
            let mut mutated = bytes.clone();
            mutated[at] ^= 0x40;
            std::fs::write(&path, &mutated).expect("write");
            match PartitionPlan::load(&path) {
                Ok(p) => {
                    assert!(p.num_shards() >= 1);
                }
                Err(PartitionError::Plan { .. }) => {}
                Err(other) => panic!("unexpected error class: {other}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
