//! On-disk, versioned label store with atomic snapshots.
//!
//! The labeling scheme's selling point is that labels are built once and
//! then served cheaply — so the serialized label bytes themselves are the
//! service's unit of storage. This module persists an oracle's label table
//! as an immutable, checksummed **segment** file plus a tiny **manifest**
//! naming the current generation, in the LSM tradition:
//!
//! * a segment is written to a temp file, `fsync`ed, and atomically
//!   renamed into place; only then is the manifest (same protocol)
//!   swapped to point at it — a crash between the two steps leaves the
//!   previous generation fully openable, and a crash mid-write leaves
//!   only an ignored temp file;
//! * every segment carries a magic, a format version, the
//!   [`SchemeParams`] fingerprint (`ε`, `c`, `n`), a graph fingerprint,
//!   a per-label offset index, and a whole-file checksum layered over
//!   the per-label checksums the codec already embeds;
//! * old generations are pruned only *after* the manifest swap.
//!
//! Every byte read from disk is untrusted: parsing is fully fallible and
//! surfaces a typed [`StoreError`] — never a panic, and (because label
//! payloads are re-validated structurally on decode) never an unsound
//! answer.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use fsdl_graph::{FaultSet, Graph, NodeId};
use fsdl_mmap::{ByteSource, SourceKind};

use crate::codec::{self, CodecError, VarintScratch};
use crate::crash::{self, CrashPoint};
use crate::label::Label;
use crate::params::SchemeParams;
use crate::wal::{self, WalError};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"FSDLSEG1";
/// Current segment format version. Version 2 adds a dedicated checksum
/// over the header + offset index (between the index and the payload),
/// so a lazy open can certify the index without faulting in the payload.
pub const FORMAT_VERSION: u32 = 2;
/// The manifest file name inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// Header line (format + version) opening every manifest.
const MANIFEST_HEADER: &str = "fsdl-store 1";
/// Prefix of in-flight temp files (ignored by readers, pruned by writers).
const TMP_PREFIX: &str = ".tmp-";

/// Fixed segment header length in bytes (magic, version, ε bits, `c`,
/// `n`, graph fingerprint, payload length).
const HEADER_BYTES: usize = 8 + 4 + 8 + 4 + 8 + 8 + 8;
/// Bytes per index entry (byte offset + bit length).
const INDEX_ENTRY_BYTES: usize = 16;
/// Checksum over header + index, sitting between index and payload.
const INDEX_CRC_BYTES: usize = 4;
/// Trailing whole-file checksum length in bytes.
const CRC_BYTES: usize = 4;

/// How a segment's payload is brought into service at open time.
///
/// * [`OpenMode::Eager`] reads the whole file into an owned buffer and
///   verifies the whole-file checksum before returning — the strongest
///   up-front guarantee, at O(file size) open cost.
/// * [`OpenMode::Lazy`] memory-maps the file (owned-read fallback on
///   platforms or filesystems without mmap) and verifies only the header
///   and the index checksum; label payload bytes are left on disk and
///   validated per label — by the codec's embedded 32-bit checksum and
///   structural checks — at first touch. Cold-start cost is O(touched
///   labels), and a corrupted untouched label surfaces as a typed
///   [`CodecError`] the first time it is decoded, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpenMode {
    /// Full read + whole-file checksum at open.
    #[default]
    Eager,
    /// Zero-copy map; per-label validation deferred to first touch.
    Lazy,
}

impl OpenMode {
    /// Parses a CLI-style mode name.
    pub fn parse(s: &str) -> Option<OpenMode> {
        match s {
            "eager" => Some(OpenMode::Eager),
            "lazy" => Some(OpenMode::Lazy),
            _ => None,
        }
    }

    /// The CLI-style name (`eager` / `lazy`).
    pub fn name(self) -> &'static str {
        match self {
            OpenMode::Eager => "eager",
            OpenMode::Lazy => "lazy",
        }
    }
}

/// A typed error from the persistent label store. Every corruption,
/// truncation, version skew, or mismatch observable from on-disk bytes
/// maps to one of these variants — the store read path never panics.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure (permissions, missing directory, …).
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error, stringified.
        message: String,
    },
    /// The store directory has no manifest (not a store, or never
    /// published).
    ManifestMissing {
        /// The expected manifest path.
        path: PathBuf,
    },
    /// The manifest exists but does not parse or fails its checksum.
    ManifestCorrupt {
        /// 1-based line number of the offending line (0 = whole file).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The manifest names a segment file that does not exist.
    SegmentMissing {
        /// The missing segment path.
        path: PathBuf,
    },
    /// The segment file exists but is torn, truncated, bit-flipped, or
    /// otherwise fails structural validation.
    SegmentCorrupt {
        /// The segment path.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// The segment was written by an unsupported format version.
    VersionUnsupported {
        /// The version found on disk.
        found: u32,
    },
    /// The segment was built for a different graph than the one supplied
    /// at open time (stale store, or the wrong directory).
    GraphMismatch {
        /// Fingerprint of the supplied graph.
        expected: u64,
        /// Fingerprint recorded in the segment.
        found: u64,
    },
    /// The parameter schedule recorded in the segment is invalid
    /// (non-positive ε, `c < 2`, `n == 0`, …).
    ParamsInvalid {
        /// What went wrong.
        message: String,
    },
    /// A label payload failed to encode or decode.
    Codec(CodecError),
    /// The write-ahead log accompanying a dynamic store failed (corrupt
    /// record, torn header, generation skew, or an injected crash point).
    Wal(WalError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "i/o error on {}: {message}", path.display())
            }
            StoreError::ManifestMissing { path } => {
                write!(f, "no manifest at {}", path.display())
            }
            StoreError::ManifestCorrupt { line, message } => {
                write!(f, "corrupt manifest (line {line}): {message}")
            }
            StoreError::SegmentMissing { path } => {
                write!(f, "segment file missing: {}", path.display())
            }
            StoreError::SegmentCorrupt { path, message } => {
                write!(f, "corrupt segment {}: {message}", path.display())
            }
            StoreError::VersionUnsupported { found } => {
                write!(
                    f,
                    "segment format version {found} unsupported (this build reads {FORMAT_VERSION})"
                )
            }
            StoreError::GraphMismatch { expected, found } => {
                write!(
                    f,
                    "store was built for a different graph \
                     (fingerprint {found:#018x}, expected {expected:#018x})"
                )
            }
            StoreError::ParamsInvalid { message } => {
                write!(f, "invalid parameter schedule in store: {message}")
            }
            StoreError::Codec(e) => write!(f, "label codec error: {e}"),
            StoreError::Wal(e) => write!(f, "write-ahead log error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<WalError> for StoreError {
    fn from(e: WalError) -> Self {
        StoreError::Wal(e)
    }
}

/// Maps an armed crash point firing at `point` into the store's error
/// space (the on-disk state is then exactly a real crash's).
fn fire(point: CrashPoint) -> Result<(), StoreError> {
    crash::fire(point).map_err(|p| {
        StoreError::Wal(WalError::Injected {
            point: p.name().to_string(),
        })
    })
}

fn io_err(path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// 64-bit FNV-1a over a byte slice (the store's fingerprint primitive).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 32-bit fold of [`fnv1a64`], used for the whole-file segment checksum
/// and the manifest checksum line.
pub(crate) fn fnv32(bytes: &[u8]) -> u32 {
    let h = fnv1a64(bytes);
    (h ^ (h >> 32)) as u32
}

/// Fingerprint of a graph's structure: FNV-1a over `n`, `m`, and every
/// edge `(lo, hi)`. Two graphs with the same vertex count and edge set
/// fingerprint identically; a store opened against a different graph is
/// rejected with [`StoreError::GraphMismatch`].
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut bytes = Vec::with_capacity(16 + g.num_edges() * 8);
    bytes.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    bytes.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
    for e in g.edges() {
        bytes.extend_from_slice(&e.lo().raw().to_le_bytes());
        bytes.extend_from_slice(&e.hi().raw().to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// The file name of generation `g`'s segment.
pub fn segment_file_name(generation: u64) -> String {
    format!("seg-{generation}.fsl")
}

/// What a successful save reports back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreReport {
    /// The generation just published.
    pub generation: u64,
    /// Size of the published segment file in bytes.
    pub segment_bytes: u64,
    /// Number of labels in the segment.
    pub labels: usize,
}

/// The parsed manifest: which generation is current, plus the dynamic
/// oracle's fault state (empty for static stores).
#[derive(Clone, Debug)]
pub struct Manifest {
    /// The current generation number.
    pub generation: u64,
    /// File name (relative to the store directory) of the current
    /// segment.
    pub segment: String,
    /// Faults baked into the segment's labeling (original-graph ids);
    /// empty for static oracles.
    pub baked: FaultSet,
    /// Faults buffered since the last rebuild (original-graph ids);
    /// empty for static oracles.
    pub buffer: FaultSet,
    /// The dynamic oracle's rebuild threshold, when persisted.
    pub threshold: Option<usize>,
}

impl Manifest {
    /// A static-store manifest for generation `generation`.
    pub fn static_store(generation: u64) -> Self {
        Manifest {
            generation,
            segment: segment_file_name(generation),
            baked: FaultSet::empty(),
            buffer: FaultSet::empty(),
            threshold: None,
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        out.push_str(&format!("generation {}\n", self.generation));
        out.push_str(&format!("segment {}\n", self.segment));
        if let Some(t) = self.threshold {
            out.push_str(&format!("threshold {t}\n"));
        }
        for v in self.baked.vertices() {
            out.push_str(&format!("baked-v {}\n", v.raw()));
        }
        for e in self.baked.edges() {
            out.push_str(&format!("baked-f {} {}\n", e.lo().raw(), e.hi().raw()));
        }
        for v in self.buffer.vertices() {
            out.push_str(&format!("buffer-v {}\n", v.raw()));
        }
        for e in self.buffer.edges() {
            out.push_str(&format!("buffer-f {} {}\n", e.lo().raw(), e.hi().raw()));
        }
        out.push_str(&format!("crc {:08x}\n", fnv32(out.as_bytes())));
        out
    }

    fn parse(text: &str) -> Result<Self, StoreError> {
        let corrupt = |line: usize, message: String| StoreError::ManifestCorrupt { line, message };
        let mut generation: Option<u64> = None;
        let mut segment: Option<String> = None;
        let mut threshold: Option<usize> = None;
        let mut baked = FaultSet::empty();
        let mut buffer = FaultSet::empty();
        let mut crc_seen = false;
        let mut body_len = 0usize;
        for (k, line) in text.lines().enumerate() {
            let lineno = k + 1;
            if crc_seen {
                return Err(corrupt(lineno, "content after crc line".into()));
            }
            if k == 0 {
                if line != MANIFEST_HEADER {
                    return Err(corrupt(1, format!("bad header {line:?}")));
                }
                body_len += line.len() + 1;
                continue;
            }
            let mut parts = line.split_ascii_whitespace();
            let key = parts.next().unwrap_or("");
            let parse_u64 = |s: Option<&str>| -> Result<u64, StoreError> {
                s.ok_or_else(|| corrupt(lineno, format!("missing value for {key}")))?
                    .parse::<u64>()
                    .map_err(|e| corrupt(lineno, format!("bad number: {e}")))
            };
            let parse_node = |s: Option<&str>| -> Result<NodeId, StoreError> {
                let raw = s
                    .ok_or_else(|| corrupt(lineno, format!("missing id for {key}")))?
                    .parse::<u32>()
                    .map_err(|e| corrupt(lineno, format!("bad vertex id: {e}")))?;
                Ok(NodeId::new(raw))
            };
            match key {
                "generation" => generation = Some(parse_u64(parts.next())?),
                "segment" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| corrupt(lineno, "missing segment name".into()))?;
                    if name.contains('/') || name.contains("..") {
                        return Err(corrupt(lineno, format!("unsafe segment name {name:?}")));
                    }
                    segment = Some(name.to_string());
                }
                "threshold" => {
                    let t = parse_u64(parts.next())?;
                    threshold = Some(usize::try_from(t).map_err(|_| {
                        corrupt(lineno, format!("threshold {t} too large for this platform"))
                    })?);
                }
                "baked-v" => {
                    baked.forbid_vertex(parse_node(parts.next())?);
                }
                "baked-f" => {
                    let a = parse_node(parts.next())?;
                    let b = parse_node(parts.next())?;
                    baked.forbid_edge_unchecked(a, b);
                }
                "buffer-v" => {
                    buffer.forbid_vertex(parse_node(parts.next())?);
                }
                "buffer-f" => {
                    let a = parse_node(parts.next())?;
                    let b = parse_node(parts.next())?;
                    buffer.forbid_edge_unchecked(a, b);
                }
                "crc" => {
                    let want = parts
                        .next()
                        .ok_or_else(|| corrupt(lineno, "missing crc value".into()))?;
                    let want = u32::from_str_radix(want, 16)
                        .map_err(|e| corrupt(lineno, format!("bad crc: {e}")))?;
                    let got = fnv32(&text.as_bytes()[..body_len]);
                    if want != got {
                        return Err(corrupt(
                            lineno,
                            format!("checksum mismatch: recorded {want:08x}, computed {got:08x}"),
                        ));
                    }
                    crc_seen = true;
                }
                other => return Err(corrupt(lineno, format!("unknown key {other:?}"))),
            }
            if parts.next().is_some() {
                return Err(corrupt(lineno, format!("trailing garbage after {key}")));
            }
            body_len += line.len() + 1;
        }
        if !crc_seen {
            return Err(corrupt(0, "missing crc line".into()));
        }
        let generation = generation.ok_or_else(|| corrupt(0, "missing generation".into()))?;
        let segment = segment.ok_or_else(|| corrupt(0, "missing segment".into()))?;
        Ok(Manifest {
            generation,
            segment,
            baked,
            buffer,
            threshold,
        })
    }
}

/// Reads and validates the manifest of the store at `dir`.
///
/// # Errors
///
/// [`StoreError::ManifestMissing`] when there is none,
/// [`StoreError::ManifestCorrupt`] when it fails to parse or checksum,
/// [`StoreError::Io`] for OS-level failures.
pub fn read_manifest(dir: &Path) -> Result<Manifest, StoreError> {
    let path = dir.join(MANIFEST_NAME);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::ManifestMissing { path });
        }
        Err(e) => return Err(io_err(&path, &e)),
    };
    Manifest::parse(&text)
}

/// Durably writes `bytes` to `dir/name` via temp file + `fsync` + atomic
/// rename (+ directory `fsync`), so readers observe either the old file
/// or the complete new one — never a torn write.
pub(crate) fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = dir.join(format!("{TMP_PREFIX}{name}"));
    let dst = dir.join(name);
    let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, &e))?;
    f.sync_all().map_err(|e| io_err(&tmp, &e))?;
    drop(f);
    fs::rename(&tmp, &dst).map_err(|e| io_err(&dst, &e))?;
    if let Ok(d) = fs::File::open(dir) {
        // Durability of the rename itself; non-fatal where unsupported.
        let _ = d.sync_all();
    }
    Ok(())
}

/// Atomically publishes `manifest` as `dir`'s current manifest. This is
/// the commit point of the write protocol: call it only after the
/// segment it names is durably in place.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<(), StoreError> {
    write_atomic(dir, MANIFEST_NAME, manifest.render().as_bytes())
}

/// Serializes and durably writes the segment for `generation` (temp
/// file, `fsync`, atomic rename), **without** touching the manifest —
/// a crash (or a deliberate stop, as the crash-consistency tests do)
/// after this call leaves the previous generation current and openable.
///
/// `encoded` holds each vertex's label encoding, in vertex order, as
/// `(bytes, bit_len)` pairs produced by [`codec::try_encode`].
///
/// Returns the segment's size in bytes.
pub fn write_segment(
    dir: &Path,
    generation: u64,
    params: &SchemeParams,
    graph_fingerprint: u64,
    encoded: &[(Vec<u8>, usize)],
) -> Result<u64, StoreError> {
    let n = encoded.len();
    let payload_len: usize = encoded.iter().map(|(b, _)| b.len()).sum();
    let mut out = Vec::with_capacity(
        HEADER_BYTES + n * INDEX_ENTRY_BYTES + INDEX_CRC_BYTES + payload_len + CRC_BYTES,
    );
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&params.epsilon().to_bits().to_le_bytes());
    out.extend_from_slice(&params.c().to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&graph_fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload_len as u64).to_le_bytes());
    let mut offset = 0u64;
    for (bytes, bit_len) in encoded {
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(*bit_len as u64).to_le_bytes());
        offset += bytes.len() as u64;
    }
    // Index checksum: covers header + index so a lazy open can certify
    // the offsets it will trust without reading the payload.
    out.extend_from_slice(&fnv32(&out).to_le_bytes());
    for (bytes, _) in encoded {
        out.extend_from_slice(bytes);
    }
    out.extend_from_slice(&fnv32(&out).to_le_bytes());
    let size = out.len() as u64;
    write_atomic(dir, &segment_file_name(generation), &out)?;
    Ok(size)
}

/// Best-effort removal of segment and WAL files other than `keep`'s, and
/// of any stale temp files. Failures are ignored: pruning is an
/// optimization, never a correctness requirement. A WAL older than the
/// current manifest is safe to drop because every manifest snapshots the
/// full fault state — the log only ever carries updates newer than it.
pub fn prune_generations(dir: &Path, keep: u64) {
    let keep_name = segment_file_name(keep);
    let keep_wal = wal::wal_file_name(keep);
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_segment = name.starts_with("seg-") && name.ends_with(".fsl") && name != keep_name;
        let stale_wal = name.starts_with("wal-") && name.ends_with(".log") && name != keep_wal;
        if stale_segment || stale_wal || name.starts_with(TMP_PREFIX) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// The next free generation number for `dir`: one past the manifest's
/// generation when a manifest exists, otherwise one past the largest
/// generation named by any segment file lying around (so an interrupted
/// first save never reuses its own torn temp numbers).
pub fn next_generation(dir: &Path) -> u64 {
    if let Ok(m) = read_manifest(dir) {
        return m.generation + 1;
    }
    let mut max_seen = 0u64;
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(g) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".fsl"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                max_seen = max_seen.max(g);
            }
        }
    }
    max_seen + 1
}

/// Writes one complete generation: segment first (durable), then the
/// manifest swap (the commit point), then pruning of older generations.
/// The generation number is allocated with [`next_generation`].
pub fn write_generation(
    dir: &Path,
    params: &SchemeParams,
    graph_fingerprint: u64,
    encoded: &[(Vec<u8>, usize)],
    baked: &FaultSet,
    buffer: &FaultSet,
    threshold: Option<usize>,
) -> Result<StoreReport, StoreError> {
    fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
    let generation = next_generation(dir);
    fire(CrashPoint::BeforeSegmentWrite)?;
    let segment_bytes = write_segment(dir, generation, params, graph_fingerprint, encoded)?;
    let manifest = Manifest {
        generation,
        segment: segment_file_name(generation),
        baked: baked.clone(),
        buffer: buffer.clone(),
        threshold,
    };
    fire(CrashPoint::BeforeManifestSwap)?;
    write_manifest(dir, &manifest)?;
    fire(CrashPoint::AfterManifestSwap)?;
    prune_generations(dir, generation);
    Ok(StoreReport {
        generation,
        segment_bytes,
        labels: encoded.len(),
    })
}

/// One parsed, checksum-verified segment: the label payload plus the
/// per-label offset index. Labels decode lazily ([`Segment::decode_label`])
/// so opening a store is cheap and serving pays decode cost only for the
/// labels it touches.
///
/// The payload bytes live in a [`ByteSource`]: an owned buffer under
/// [`OpenMode::Eager`], a read-only memory map (with an owned fallback)
/// under [`OpenMode::Lazy`]. Either way [`Segment::decode_label`] reads
/// the label's bits *in place* — the only copies made are the decoded
/// [`Label`] structures themselves.
#[derive(Debug)]
pub struct Segment {
    path: PathBuf,
    n: usize,
    epsilon: f64,
    c: u32,
    graph_fingerprint: u64,
    /// Per-vertex `(byte offset into payload, bit length)`.
    index: Vec<(usize, usize)>,
    /// The whole segment file's bytes, mapped or owned.
    source: Box<dyn ByteSource>,
    /// Byte offset of the payload within `source`.
    payload_start: usize,
    /// Payload length in bytes (on-disk label bytes, excluding header,
    /// index, and checksums).
    payload_len: usize,
    mode: OpenMode,
}

impl Segment {
    /// Eagerly reads and fully validates the segment at `path`
    /// (equivalent to [`Segment::open`] with [`OpenMode::Eager`]).
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`]; this function never panics on any byte
    /// sequence.
    pub fn read(path: &Path) -> Result<Self, StoreError> {
        Segment::open(path, OpenMode::Eager)
    }

    /// Opens and structurally validates the segment at `path`: magic,
    /// version, header consistency, the index checksum, and every index
    /// entry (offsets and bit lengths must lie within the payload, so
    /// later lazy decodes can never read out of bounds). Under
    /// [`OpenMode::Eager`] the whole-file checksum is verified too; under
    /// [`OpenMode::Lazy`] payload bytes are not touched at open — each
    /// label's embedded checksum and structural validation run at first
    /// decode instead.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`]; this function never panics on any byte
    /// sequence.
    pub fn open(path: &Path, mode: OpenMode) -> Result<Self, StoreError> {
        let corrupt = |message: String| StoreError::SegmentCorrupt {
            path: path.to_path_buf(),
            message,
        };
        let opened = match mode {
            OpenMode::Eager => fsdl_mmap::open_owned(path),
            OpenMode::Lazy => fsdl_mmap::open(path),
        };
        let source = match opened {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::SegmentMissing {
                    path: path.to_path_buf(),
                });
            }
            Err(e) => return Err(io_err(path, &e)),
        };
        let bytes = source.as_bytes();
        if bytes.len() < HEADER_BYTES + INDEX_CRC_BYTES + CRC_BYTES {
            return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
        }
        if bytes[..8] != SEGMENT_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(StoreError::VersionUnsupported { found: version });
        }
        let epsilon = f64::from_bits(u64_at(12));
        let c = u32_at(20);
        let n_raw = u64_at(24);
        let graph_fp = u64_at(32);
        let payload_len_raw = u64_at(40);
        let n = usize::try_from(n_raw)
            .ok()
            .filter(|&n| n > 0 && n <= u32::MAX as usize + 1)
            .ok_or_else(|| corrupt(format!("implausible label count {n_raw}")))?;
        let payload_len = usize::try_from(payload_len_raw)
            .map_err(|_| corrupt(format!("implausible payload length {payload_len_raw}")))?;
        let index_end = HEADER_BYTES
            .checked_add(
                n.checked_mul(INDEX_ENTRY_BYTES)
                    .ok_or_else(|| corrupt(format!("index size overflow for {n} labels")))?,
            )
            .ok_or_else(|| corrupt("index size overflow".into()))?;
        let expected_len = index_end
            .checked_add(INDEX_CRC_BYTES)
            .and_then(|x| x.checked_add(payload_len))
            .and_then(|x| x.checked_add(CRC_BYTES))
            .ok_or_else(|| corrupt("file size overflow".into()))?;
        if bytes.len() != expected_len {
            return Err(corrupt(format!(
                "file is {} bytes but the header implies {expected_len}",
                bytes.len()
            )));
        }
        // The index checksum certifies header + index alone, so the lazy
        // path can trust the offsets it serves from without faulting in
        // the payload pages.
        let recorded_index = u32_at(index_end);
        let computed_index = fnv32(&bytes[..index_end]);
        if recorded_index != computed_index {
            return Err(corrupt(format!(
                "index checksum mismatch: recorded {recorded_index:08x}, \
                 computed {computed_index:08x}"
            )));
        }
        if mode == OpenMode::Eager {
            let body = &bytes[..bytes.len() - CRC_BYTES];
            let recorded = u32_at(bytes.len() - CRC_BYTES);
            let computed = fnv32(body);
            if recorded != computed {
                return Err(corrupt(format!(
                    "checksum mismatch: recorded {recorded:08x}, computed {computed:08x}"
                )));
            }
        }
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(StoreError::ParamsInvalid {
                message: format!("epsilon {epsilon} is not positive finite"),
            });
        }
        if !(2..=64).contains(&c) {
            return Err(StoreError::ParamsInvalid {
                message: format!("implausible parameter c = {c}"),
            });
        }
        let mut index = Vec::with_capacity(n);
        for k in 0..n {
            let at = HEADER_BYTES + k * INDEX_ENTRY_BYTES;
            let off = u64_at(at);
            let bit_len = u64_at(at + 8);
            let off = usize::try_from(off)
                .map_err(|_| corrupt(format!("label {k}: offset {off} overflows")))?;
            let bit_len = usize::try_from(bit_len)
                .map_err(|_| corrupt(format!("label {k}: bit length {bit_len} overflows")))?;
            let byte_len = bit_len.div_ceil(8);
            let end = off
                .checked_add(byte_len)
                .ok_or_else(|| corrupt(format!("label {k}: extent overflows")))?;
            if end > payload_len {
                return Err(corrupt(format!(
                    "label {k}: claims bytes {off}..{end} of a {payload_len}-byte payload"
                )));
            }
            index.push((off, bit_len));
        }
        Ok(Segment {
            path: path.to_path_buf(),
            n,
            epsilon,
            c,
            graph_fingerprint: graph_fp,
            index,
            source,
            payload_start: index_end + INDEX_CRC_BYTES,
            payload_len,
            mode,
        })
    }

    /// Number of labels stored.
    pub fn num_labels(&self) -> usize {
        self.n
    }

    /// The mode this segment was opened with.
    pub fn open_mode(&self) -> OpenMode {
        self.mode
    }

    /// True when the payload is served from a memory map rather than an
    /// owned heap buffer.
    pub fn is_mapped(&self) -> bool {
        self.source.kind() == SourceKind::Mapped
    }

    /// On-disk label payload size in bytes (excluding header, index, and
    /// checksums) — the denominator of resident-vs-on-disk accounting.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_len as u64
    }

    /// Total size of the segment file in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.source.as_bytes().len() as u64
    }

    fn payload(&self) -> &[u8] {
        &self.source.as_bytes()[self.payload_start..self.payload_start + self.payload_len]
    }

    /// The graph fingerprint recorded at write time.
    pub fn graph_fingerprint(&self) -> u64 {
        self.graph_fingerprint
    }

    /// Reconstructs the parameter schedule recorded in the header.
    ///
    /// # Errors
    ///
    /// [`StoreError::ParamsInvalid`] — although [`Segment::read`] already
    /// pre-validated the fields, this re-checks so the function is safe
    /// to call on any segment value.
    pub fn params(&self) -> Result<SchemeParams, StoreError> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) || self.c < 2 || self.n == 0 {
            return Err(StoreError::ParamsInvalid {
                message: format!("epsilon = {}, c = {}, n = {}", self.epsilon, self.c, self.n),
            });
        }
        Ok(SchemeParams::with_c(self.epsilon, self.c, self.n))
    }

    /// Decodes the label of `v` from the payload. Untrusted-input safe:
    /// any malformed payload yields a [`CodecError`], never a panic.
    ///
    /// # Errors
    ///
    /// [`CodecError`] when `v` is out of range for the segment or the
    /// payload bits fail structural validation / checksum.
    pub fn decode_label(&self, v: NodeId) -> Result<Label, CodecError> {
        let mut scratch = VarintScratch::new();
        self.decode_label_with(v, &mut scratch)
    }

    /// [`Segment::decode_label`] with a caller-owned [`VarintScratch`],
    /// keeping the hot serving path allocation-free across labels (the
    /// batched word-parallel varint reader fills the scratch buffer in
    /// place).
    ///
    /// # Errors
    ///
    /// [`CodecError`] when `v` is out of range for the segment or the
    /// payload bits fail structural validation / checksum.
    pub fn decode_label_with(
        &self,
        v: NodeId,
        scratch: &mut VarintScratch,
    ) -> Result<Label, CodecError> {
        let Some(&(off, bit_len)) = self.index.get(v.index()) else {
            return Err(CodecError::new(
                0,
                format!(
                    "label index {} out of range for {} labels",
                    v.index(),
                    self.n
                ),
            ));
        };
        let bytes = &self.payload()[off..off + bit_len.div_ceil(8)];
        codec::decode_with(bytes, bit_len, self.n, scratch)
    }

    /// The raw encoded payload bytes and bit length of the `k`-th label,
    /// or `None` when `k` is out of range. This is the sharded label
    /// plane's serving primitive: a shard ships these bytes verbatim over
    /// the wire and the router decodes them against the *global* vertex-id
    /// space (a shard segment's own label count is its shard size, not the
    /// graph's `n`, so [`Segment::decode_label`] would use the wrong id
    /// width there).
    pub fn encoded_label(&self, k: usize) -> Option<(&[u8], usize)> {
        let &(off, bit_len) = self.index.get(k)?;
        Some((&self.payload()[off..off + bit_len.div_ceil(8)], bit_len))
    }

    /// The `ε` recorded in the header (pre-validated positive finite at
    /// open).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The `c` parameter recorded in the header (pre-validated in
    /// `2..=64` at open).
    pub fn c(&self) -> u32 {
        self.c
    }

    /// The file this segment was read from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let k = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("fsdl-store-unit-{tag}-{}-{k}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_roundtrip_with_faults() {
        let mut baked = FaultSet::empty();
        baked.forbid_vertex(NodeId::new(3));
        baked.forbid_edge_unchecked(NodeId::new(1), NodeId::new(2));
        let mut buffer = FaultSet::empty();
        buffer.forbid_vertex(NodeId::new(7));
        let m = Manifest {
            generation: 5,
            segment: segment_file_name(5),
            baked,
            buffer,
            threshold: Some(9),
        };
        let parsed = Manifest::parse(&m.render()).unwrap();
        assert_eq!(parsed.generation, 5);
        assert_eq!(parsed.segment, "seg-5.fsl");
        assert_eq!(parsed.threshold, Some(9));
        assert!(parsed.baked.is_vertex_faulty(NodeId::new(3)));
        assert!(parsed.baked.is_edge_faulty(NodeId::new(1), NodeId::new(2)));
        assert!(parsed.buffer.is_vertex_faulty(NodeId::new(7)));
    }

    #[test]
    fn manifest_rejects_tampering() {
        let m = Manifest::static_store(2);
        let good = m.render();
        // Flip the generation without fixing the crc.
        let bad = good.replace("generation 2", "generation 3");
        assert!(matches!(
            Manifest::parse(&bad),
            Err(StoreError::ManifestCorrupt { .. })
        ));
        // Remove the crc line entirely.
        let no_crc: String = good
            .lines()
            .filter(|l| !l.starts_with("crc"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            Manifest::parse(&no_crc),
            Err(StoreError::ManifestCorrupt { .. })
        ));
        // Unknown keys and unsafe segment names are rejected.
        assert!(matches!(
            Manifest::parse("fsdl-store 1\nwat 3\ncrc 0\n"),
            Err(StoreError::ManifestCorrupt { .. })
        ));
        let evil = Manifest {
            segment: "../outside.fsl".into(),
            ..Manifest::static_store(1)
        };
        assert!(matches!(
            Manifest::parse(&evil.render()),
            Err(StoreError::ManifestCorrupt { .. })
        ));
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("not a manifest\n").is_err());
    }

    #[test]
    fn missing_manifest_is_typed() {
        let dir = scratch_dir("missing");
        assert!(matches!(
            read_manifest(&dir),
            Err(StoreError::ManifestMissing { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn next_generation_falls_back_to_segment_scan() {
        let dir = scratch_dir("nextgen");
        assert_eq!(next_generation(&dir), 1);
        fs::write(dir.join(segment_file_name(4)), b"junk").unwrap();
        fs::write(dir.join(".tmp-seg-9.fsl"), b"junk").unwrap();
        assert_eq!(next_generation(&dir), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_current_and_drops_the_rest() {
        let dir = scratch_dir("prune");
        for g in 1..=3u64 {
            fs::write(dir.join(segment_file_name(g)), b"x").unwrap();
        }
        fs::write(dir.join(".tmp-seg-4.fsl"), b"x").unwrap();
        fs::write(dir.join("MANIFEST"), b"x").unwrap();
        fs::write(dir.join(wal::wal_file_name(2)), b"x").unwrap();
        fs::write(dir.join(wal::wal_file_name(3)), b"x").unwrap();
        prune_generations(&dir, 3);
        assert!(dir.join(segment_file_name(3)).exists());
        assert!(!dir.join(segment_file_name(2)).exists());
        assert!(!dir.join(segment_file_name(1)).exists());
        assert!(!dir.join(".tmp-seg-4.fsl").exists());
        assert!(!dir.join(wal::wal_file_name(2)).exists());
        assert!(dir.join(wal::wal_file_name(3)).exists());
        assert!(dir.join("MANIFEST").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_read_rejects_garbage_without_panicking() {
        let dir = scratch_dir("garbage");
        let path = dir.join("seg-1.fsl");
        for junk in [
            &b""[..],
            &b"short"[..],
            &[0u8; 64][..],
            &b"FSDLSEG1then-what-exactly-is-this-supposed-to-be....."[..],
        ] {
            fs::write(&path, junk).unwrap();
            let err = Segment::read(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::SegmentCorrupt { .. } | StoreError::VersionUnsupported { .. }
                ),
                "junk {junk:?} gave {err:?}"
            );
        }
        assert!(matches!(
            Segment::read(&dir.join("seg-404.fsl")),
            Err(StoreError::SegmentMissing { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_display_is_informative() {
        let e = StoreError::GraphMismatch {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("different graph"));
        let e = StoreError::VersionUnsupported { found: 9 };
        assert!(e.to_string().contains('9'));
        let e = StoreError::Codec(CodecError::new(3, "x"));
        assert!(e.to_string().contains("codec"));
    }
}
