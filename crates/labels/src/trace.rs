//! Structured query traces: the decoder's witness path with per-hop
//! provenance.
//!
//! The paper's Figures 1 and 2 depict how the Lemma 2.4 walk alternates
//! between low-level real edges near faults and high-level virtual hops in
//! the clear. [`trace_query`] packages that view as data: every hop of the
//! witness path annotated with the admitting level, kind, and weight — used
//! by the `exp_f1`/`exp_f2` reproductions and available to downstream
//! tooling (visualizers, debuggers).

use fsdl_graph::{Dist, Edge, NodeId};

use crate::decode::{build_sketch_scratch, DecodeScratch, QueryLabels};
use crate::label::Label;
use crate::params::SchemeParams;

/// One hop of a traced witness path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceHop {
    /// Hop source.
    pub from: NodeId,
    /// Hop target.
    pub to: NodeId,
    /// The label level that admitted the edge.
    pub level: u32,
    /// `true` for a lowest-level real edge of `G`.
    pub real: bool,
    /// The hop weight (`d_G(from, to)`).
    pub weight: u64,
}

/// A fully annotated query answer.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryTrace {
    /// The `(1+ε)`-approximate distance.
    pub distance: Dist,
    /// The witness path, hop by hop with provenance. Empty when
    /// unreachable or `s == t`.
    pub hops: Vec<TraceHop>,
    /// Sketch-graph size (vertices, edges).
    pub sketch_size: (usize, usize),
}

impl QueryTrace {
    /// The highest level used by a virtual hop (`None` if the path is all
    /// real edges or empty).
    pub fn max_virtual_level(&self) -> Option<u32> {
        self.hops.iter().filter(|h| !h.real).map(|h| h.level).max()
    }

    /// Length of the real-edge prefix (the Figure 2 walk out of the
    /// protected region).
    pub fn real_prefix_len(&self) -> usize {
        self.hops.iter().take_while(|h| h.real).count()
    }

    /// Sum of hop weights — equals `distance` when finite (asserted by
    /// tests).
    pub fn total_weight(&self) -> u64 {
        self.hops.iter().map(|h| h.weight).sum()
    }
}

/// Answers a query and annotates the witness path with per-hop provenance.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, NodeId};
/// use fsdl_labels::{trace_query, Labeling, QueryLabels, SchemeParams};
///
/// let g = generators::cycle(64);
/// let labeling = Labeling::build(&g, SchemeParams::new(1.0, 64));
/// let (ls, lt, lf) = (
///     labeling.label_of(NodeId::new(1)),
///     labeling.label_of(NodeId::new(32)),
///     labeling.label_of(NodeId::new(0)),
/// );
/// let faults = QueryLabels { fault_vertices: vec![&lf], fault_edges: vec![] };
/// let trace = trace_query(labeling.params(), &ls, &lt, &faults);
/// assert_eq!(trace.distance.finite(), Some(31));
/// assert!(trace.real_prefix_len() > 0); // starts next to the fault
/// ```
///
/// # Panics
///
/// Panics if the labels disagree with `params` on the level range.
pub fn trace_query(
    params: &SchemeParams,
    source: &Label,
    target: &Label,
    faults: &QueryLabels<'_>,
) -> QueryTrace {
    trace_query_with(params, source, target, faults, &mut DecodeScratch::new())
}

/// [`trace_query`] with a caller-provided [`DecodeScratch`] — same trace,
/// reusing the scratch's sketch arena, provenance map, and Dijkstra
/// buffers across calls.
pub fn trace_query_with(
    params: &SchemeParams,
    source: &Label,
    target: &Label,
    faults: &QueryLabels<'_>,
    scratch: &mut DecodeScratch,
) -> QueryTrace {
    build_sketch_scratch(params, source, &[target], faults, true, scratch);
    let s = source.owner;
    let t = target.owner;
    let sketch_size = (
        scratch.sketch().num_vertices(),
        scratch.sketch().num_edges(),
    );
    if scratch.is_forbidden(s) || scratch.is_forbidden(t) {
        return QueryTrace {
            distance: Dist::INFINITE,
            hops: Vec::new(),
            sketch_size,
        };
    }
    if s == t {
        return QueryTrace {
            distance: Dist::ZERO,
            hops: Vec::new(),
            sketch_size,
        };
    }
    let (sketch, dijkstra) = scratch.sketch_and_dijkstra();
    let found = sketch.shortest_path_with(s, t, dijkstra);
    match found {
        // A finite sketch distance that does not fit in `Dist` widens to
        // INFINITE (sound, matching `decode::query`); the hops are still
        // reported so the overflow is inspectable.
        Some((d, path)) => {
            let hops = path
                .windows(2)
                .map(|w| {
                    let info = scratch
                        .edge_info()
                        .get(&Edge::new(w[0], w[1]))
                        .expect("every witness hop has provenance");
                    TraceHop {
                        from: w[0],
                        to: w[1],
                        level: info.level,
                        real: info.real,
                        weight: info.weight,
                    }
                })
                .collect();
            QueryTrace {
                distance: Dist::try_new(d).unwrap_or(Dist::INFINITE),
                hops,
                sketch_size,
            }
        }
        None => QueryTrace {
            distance: Dist::INFINITE,
            hops: Vec::new(),
            sketch_size,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Labeling;
    use fsdl_graph::generators;

    fn setup(n: usize) -> Labeling {
        let g = generators::cycle(n);
        Labeling::build(&g, SchemeParams::new(1.0, n))
    }

    #[test]
    fn trace_weights_sum_to_distance() {
        let labeling = setup(48);
        let ls = labeling.label_of(NodeId::new(2));
        let lt = labeling.label_of(NodeId::new(30));
        let lf = labeling.label_of(NodeId::new(10));
        let faults = QueryLabels {
            fault_vertices: vec![&lf],
            fault_edges: vec![],
        };
        let trace = trace_query(labeling.params(), &ls, &lt, &faults);
        let d = trace.distance.finite().expect("connected");
        assert_eq!(trace.total_weight(), u64::from(d));
        assert_eq!(trace.hops.first().map(|h| h.from), Some(NodeId::new(2)));
        assert_eq!(trace.hops.last().map(|h| h.to), Some(NodeId::new(30)));
        // Consecutive hops chain.
        for w in trace.hops.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
    }

    #[test]
    fn trace_unreachable_and_self() {
        let g = generators::path(8);
        let labeling = Labeling::build(&g, SchemeParams::new(1.0, 8));
        let ls = labeling.label_of(NodeId::new(0));
        let lt = labeling.label_of(NodeId::new(7));
        let lf = labeling.label_of(NodeId::new(4));
        let faults = QueryLabels {
            fault_vertices: vec![&lf],
            fault_edges: vec![],
        };
        let trace = trace_query(labeling.params(), &ls, &lt, &faults);
        assert!(trace.distance.is_infinite());
        assert!(trace.hops.is_empty());
        let self_trace = trace_query(labeling.params(), &ls, &ls, &faults);
        assert_eq!(self_trace.distance.finite(), Some(0));
        assert!(self_trace.hops.is_empty());
    }

    #[test]
    fn figure_shape_helpers() {
        // Long cycle, fault next to s: real prefix then virtual climbs.
        let labeling = setup(256);
        let ls = labeling.label_of(NodeId::new(1));
        let lt = labeling.label_of(NodeId::new(128));
        let lf = labeling.label_of(NodeId::new(0));
        let faults = QueryLabels {
            fault_vertices: vec![&lf],
            fault_edges: vec![],
        };
        let trace = trace_query(labeling.params(), &ls, &lt, &faults);
        assert!(
            trace.real_prefix_len() > 0,
            "must leave the protected ball on foot"
        );
        assert!(
            trace.max_virtual_level().is_some(),
            "far segment must use virtual hops"
        );
        assert!(trace.sketch_size.0 > 0 && trace.sketch_size.1 > 0);
    }

    #[test]
    fn trace_with_reused_scratch_matches_fresh() {
        let labeling = setup(48);
        let mut scratch = DecodeScratch::new();
        for (s, t, f) in [(2u32, 30u32, 10u32), (0, 17, 5), (1, 1, 3), (40, 8, 41)] {
            let ls = labeling.label_of(NodeId::new(s));
            let lt = labeling.label_of(NodeId::new(t));
            let lf = labeling.label_of(NodeId::new(f));
            let faults = QueryLabels {
                fault_vertices: vec![&lf],
                fault_edges: vec![],
            };
            assert_eq!(
                trace_query_with(labeling.params(), &ls, &lt, &faults, &mut scratch),
                trace_query(labeling.params(), &ls, &lt, &faults),
                "{s}->{t} avoiding {f}"
            );
        }
    }

    #[test]
    fn trace_agrees_with_query() {
        let labeling = setup(40);
        let ls = labeling.label_of(NodeId::new(0));
        let lt = labeling.label_of(NodeId::new(17));
        let lf = labeling.label_of(NodeId::new(5));
        let faults = QueryLabels {
            fault_vertices: vec![&lf],
            fault_edges: vec![],
        };
        let trace = trace_query(labeling.params(), &ls, &lt, &faults);
        let plain = crate::decode::query(labeling.params(), &ls, &lt, &faults);
        assert_eq!(trace.distance, plain.distance);
        let trace_path: Vec<NodeId> = std::iter::once(NodeId::new(0))
            .chain(trace.hops.iter().map(|h| h.to))
            .collect();
        assert_eq!(trace_path, plain.path);
    }
}
